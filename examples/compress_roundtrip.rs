//! End-to-end LZW on the DataFlow machine: the whole `compress` benchmark
//! driver — input generation, LZW compression, 12-bit packing,
//! decompression, round-trip verification, and CRC32 — executes on the
//! fabric, with calls and heap traffic serviced by the GPP (Figure 12's
//! full system in motion).
//!
//! ```sh
//! cargo run --release --example compress_roundtrip
//! ```

use javaflow_bytecode::Value;
use javaflow_core::Machine;
use javaflow_fabric::FabricConfig;
use javaflow_workloads::{compress, SuiteKind};

fn main() {
    let bench = compress::compress_benchmark(SuiteKind::Jvm2008, 192);

    // Reference: the whole driver on the interpreter (GPP only).
    let gpp_only = bench.run().expect("driver runs").expect("returns");
    println!("GPP-only run    : {gpp_only} round-trip mismatches (0 = lossless)");

    // The same driver deployed to the fabric. The driver method's loops,
    // array traffic, and the calls into compress/output/decompress all flow
    // through the machine: loops stall on the serial token bundle, memory
    // ordering rides the MEMORY_TOKEN, calls are GPP services.
    let mut machine = Machine::new(&bench.program, FabricConfig::compact4());
    let run = machine
        .run_named("compress.driver", &bench.driver_args)
        .expect("fabric executes the driver");
    println!(
        "fabric run      : {} mismatches, {} mesh cycles, {} instructions fired, IPC {:.3}",
        run.value.unwrap(),
        run.report.mesh_cycles,
        run.report.executed,
        run.report.ipc
    );
    assert_eq!(run.value, Some(Value::Int(0)), "LZW round trip must be lossless");
    assert_eq!(run.value.unwrap(), gpp_only, "fabric and GPP agree");
    println!("\nLZW compress → pack → decompress round-tripped losslessly on the fabric.");
}

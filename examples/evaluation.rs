//! A miniature Chapter 7 evaluation: run the population across all six
//! machine configurations under both branch scripts and print the
//! Figure-of-Merit table (Table 22) plus parallelism (Table 26).
//!
//! ```sh
//! cargo run --release --example evaluation
//! ```
//!
//! For the full table set, use the dedicated binary:
//! `cargo run --release -p javaflow-bench --bin tables`.

use javaflow_core::{EvalConfig, Evaluation, Filter};

fn main() {
    println!("running population × 6 configurations × 2 branch scripts …");
    let eval = Evaluation::run(&EvalConfig { synthetic_count: 120, ..EvalConfig::default() });

    println!("\npopulation: {} methods (", eval.records.len());
    for f in Filter::ALL {
        println!("  {:<10} {:>4} methods", f.label(), eval.filtered(*f).len());
    }
    println!(")");

    println!("\nFigure of Merit vs the collapsed baseline (Table 22 analog):");
    println!("{:<11} {:>9} {:>9} {:>7} {:>8}", "config", "IPC mean", "IPC med", "FM", "FM std");
    for row in eval.config_rows(Filter::All) {
        println!(
            "{:<11} {:>9.3} {:>9.3} {:>7.2} {:>8.2}",
            row.name, row.ipc.mean, row.ipc.median, row.fom.mean, row.fom.std_dev
        );
    }

    println!("\nParallelism — fraction of busy time with ≥2 instructions firing:");
    for (name, p) in eval.parallelism() {
        println!("{name:<11} {:>5.1}%", p * 100.0);
    }

    let hetero_fm = eval.config_rows(Filter::All).last().map(|r| r.fom.mean).unwrap_or_default();
    println!(
        "\nheadline: the heterogeneous fabric sustains {:.0}% of the baseline IPC",
        hetero_fm * 100.0
    );
    println!("(the dissertation reports 40% with a ~3.1 nodes-per-instruction span)");
}

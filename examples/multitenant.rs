//! Multi-method fabric residency: deploy several hot kernels into one
//! fabric through the management protocol (anchors, regions, busy
//! signals, unloading) and measure the superposed system throughput —
//! the Chapter 8 claim that resident methods execute simultaneously and
//! system IPC is the sum of the per-method IPCs.
//!
//! ```sh
//! cargo run --release --example multitenant
//! ```

use javaflow_bytecode::Program;
use javaflow_fabric::{BranchMode, FabricConfig, FabricManager};
use javaflow_workloads::{crypto, scimark};

fn main() {
    // Build a shared program holding several hot kernels.
    let mut program = Program::new();
    let (_cls, _make, next_double) = scimark::build_random(&mut program);
    let submul = crypto::build_submul_1(&mut program);
    let sha = crypto::build_sha160(&mut program);
    let sor = scimark::build_sor_execute(&mut program);

    let mut mgr = FabricManager::new(FabricConfig::hetero2());
    println!("deploying four kernels into one Hetero2 fabric:\n");
    let mut deployed = Vec::new();
    for id in [next_double, submul, sha, sor] {
        let method = program.method(id);
        let (anchor, loaded) = mgr.deploy(method).expect("fits");
        let (start, end) =
            mgr.resident().find(|(a, _, _)| *a == anchor).map(|(_, _, r)| r).expect("resident");
        println!(
            "  {anchor}: {:<28} {:>4} insts -> nodes [{start:>4}, {end:>4})",
            method.name,
            method.len()
        );
        deployed.push((anchor, loaded));
    }
    println!("\nfabric occupancy: {} nodes", mgr.occupied());

    // The anchor busy protocol forbids re-entry while running.
    let first = deployed[0].0;
    mgr.begin_run(first).unwrap();
    assert!(mgr.begin_run(first).is_err(), "busy anchor must refuse a second thread");
    mgr.end_run(first).unwrap();

    // Run all four concurrently-resident methods.
    let refs: Vec<_> = deployed.iter().map(|(a, l)| (*a, l)).collect();
    let (reports, system_ipc) = mgr.run_all_scripted(&refs, BranchMode::Bp1).unwrap();
    println!("\nper-method execution (scripted, BP-1):");
    for ((_, l), r) in deployed.iter().zip(&reports) {
        println!("  {:<28} {:>8} mesh cycles  IPC {:.3}", l.method.name, r.mesh_cycles, r.ipc);
    }
    println!("\nsuperposed system IPC: {system_ipc:.3}");
    println!("(Chapter 8: traffic is localized per method, so the system sustains");
    println!(
        " the sum of the individual IPCs — here {:.1}x one method alone)",
        system_ipc / reports[0].ipc.max(1e-9)
    );

    // Unload one method and reuse its region.
    let (a0, _) = deployed[0];
    drop(deployed);
    mgr.unload(a0).unwrap();
    println!("\nunloaded {a0}; occupancy now {} nodes", mgr.occupied());
}

//! Quickstart: assemble a Java method, deploy it to a JavaFlow DataFlow
//! fabric, and execute it with real data.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use javaflow_bytecode::{asm, Value};
use javaflow_core::Machine;
use javaflow_fabric::FabricConfig;

fn main() {
    // A small method in the javap-style assembly: iterative factorial.
    let program = asm::assemble(
        ".method factorial args=1 returns=true locals=2
           iconst_1
           istore 1
         top:
           iload 0
           iconst_1
           if_icmple @done
           iload 1
           iload 0
           imul
           istore 1
           iinc 0 -1
           goto @top
         done:
           iload 1
           ireturn
         .end",
    )
    .expect("valid assembly");

    println!("factorial(10) on each Table 15 machine configuration:\n");
    println!(
        "{:<11} {:>8} {:>12} {:>8} {:>10} {:>10}",
        "config", "result", "mesh cycles", "IPC", "coverage", "par(≥2)"
    );
    for config in FabricConfig::all_six() {
        let mut machine = Machine::new(&program, config);
        let run = machine.run_named("factorial", &[Value::Int(10)]).expect("executes");
        println!(
            "{:<11} {:>8} {:>12} {:>8.3} {:>9.0}% {:>9.0}%",
            machine.config().name,
            run.value.map(|v| v.to_string()).unwrap_or_default(),
            run.report.mesh_cycles,
            run.report.ipc,
            run.report.coverage * 100.0,
            run.report.frac_cycles_ge2 * 100.0,
        );
    }
    println!("\nThe collapsed Baseline is fastest; every distance-paying");
    println!("configuration trades cycles for realizable wiring — the");
    println!("dissertation's central measurement.");
}

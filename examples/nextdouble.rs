//! The dissertation's Appendix C case study (Figures 27–31):
//! `Random.nextDouble` — disassembly, dataflow resolution, and execution on
//! every machine configuration, with the fabric result checked bit-for-bit
//! against the interpreter.
//!
//! ```sh
//! cargo run --example nextdouble
//! ```

use javaflow_bytecode::{asm, Program, Value};
use javaflow_fabric::{execute, load, resolve, BranchMode, ExecParams, FabricConfig, Gpp, Outcome};
use javaflow_interp::Interp;
use javaflow_workloads::scimark;

fn main() {
    let mut program = Program::new();
    let (_class, make, next_double) = scimark::build_random(&mut program);
    let method = program.method(next_double).clone();

    // Figure 28 analog: the method's ByteCode.
    println!("=== Random.nextDouble — {} instructions ===", method.len());
    let text = asm::disassemble(&program);
    for line in text.lines().skip_while(|l| !l.contains("nextDouble")).take_while(|l| *l != ".end")
    {
        println!("{line}");
    }

    // Figure 29/30 analog: the resolved dataflow.
    let resolved = resolve(&method).expect("resolves");
    println!("\n=== DataFlow resolution ===");
    println!("arcs            : {}", resolved.stats.dflows);
    println!("merges          : {}", resolved.stats.merges);
    println!("back merges     : {} (must be 0)", resolved.stats.back_merges);
    println!("fanout avg/max  : {:.2} / {}", resolved.stats.fanout_avg, resolved.stats.fanout_max);
    println!("arc avg/max     : {:.2} / {}", resolved.stats.arc_avg, resolved.stats.arc_max);
    println!("max up-queue    : {}", resolved.stats.max_up_queue);
    println!("resolution ticks: {} (≈ 2× instructions)", resolved.stats.resolution_ticks);
    println!("\nfirst ten producer → consumer arcs:");
    for (p, c, side) in resolved.edges().into_iter().take(10) {
        println!(
            "  @{p:<3} {:<14} → side {side} of @{c:<3} {}",
            method.insn(p).to_string(),
            method.insn(c)
        );
    }

    // Figure 31 analog: simulation results per configuration, data-driven.
    println!("\n=== Execution (data mode, checked against the interpreter) ===");
    println!(
        "{:<11} {:>12} {:>8} {:>9} {:>10}",
        "config", "mesh cycles", "IPC", "executed", "value"
    );
    // Golden value from the interpreter.
    let mut golden = Interp::new(&program);
    let seed_ref = golden.run(make, &[Value::Int(42)]).unwrap().unwrap();
    let expect = golden.run(next_double, &[seed_ref]).unwrap().unwrap();

    for config in FabricConfig::all_six() {
        let loaded = load(&method, &config).expect("loads");
        let mut gpp = Interp::new(&program);
        let r = gpp.run(make, &[Value::Int(42)]).unwrap().unwrap();
        let report = execute(
            &loaded,
            &config,
            ExecParams {
                mode: BranchMode::Data,
                gpp: Gpp::Interp(&mut gpp),
                args: vec![r],
                ..ExecParams::default()
            },
        );
        let Outcome::Returned(Some(value)) = report.outcome else {
            panic!("{}: did not return", config.name);
        };
        assert!(value.bits_eq(&expect), "{}: {value} != {expect}", config.name);
        println!(
            "{:<11} {:>12} {:>8.3} {:>9} {:>10}",
            config.name, report.mesh_cycles, report.ipc, report.executed, value
        );
    }
    println!("\nall configurations returned the interpreter's exact value: {expect}");
}

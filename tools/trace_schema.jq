# Schema check for the Chrome-trace / Perfetto JSON that
# `tables --trace-out` writes. Run with `jq -e -f tools/trace_schema.jq
# trace.json`: -e makes jq exit nonzero when any predicate fails, so CI
# can gate on it.
#
# Checks:
#  * top level is {"traceEvents": [...], "displayTimeUnit": "ms"};
#  * every event is an "X" (complete span) or "M" (metadata) with numeric
#    pid/tid and a string name;
#  * every "X" span has non-negative numeric ts/dur;
#  * at least one span and one process_name metadata record exist (an
#    empty-but-valid document is a capture bug, not a pass).
(.traceEvents | type) == "array"
and .displayTimeUnit == "ms"
and ([.traceEvents[] | select(.ph == "X")] | length) > 0
and ([.traceEvents[] | select(.ph == "M" and .name == "process_name")] | length) > 0
and (.traceEvents | all(
      ((.ph == "X") or (.ph == "M"))
      and ((.pid | type) == "number")
      and ((.tid | type) == "number")
      and ((.name | type) == "string")
      and ((.ph != "X") or (((.ts | type) == "number") and ((.dur | type) == "number") and (.ts >= 0) and (.dur >= 0)))
    ))

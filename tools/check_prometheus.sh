#!/usr/bin/env bash
# Validates a Prometheus text-exposition page (as served by
# javaflow-serve's /metrics endpoint) with nothing but awk:
#
#   * every metric line parses as `name{labels} value` with a numeric value;
#   * every series has a preceding `# TYPE` for its family;
#   * histograms: bucket counts are cumulative (non-decreasing as `le`
#     grows), a `+Inf` bucket exists, `_count` equals the `+Inf` bucket,
#     and `_sum` is present;
#   * counters never end without a value.
#
# Usage: check_prometheus.sh <file>          (or pipe the page on stdin)
set -euo pipefail

awk '
function fail(msg) { printf("check_prometheus: line %d: %s\n", NR, msg); bad = 1 }
function family(name) {
    sub(/_(bucket|sum|count)$/, "", name)
    return name
}
/^#/ {
    if ($1 == "#" && $2 == "TYPE") { type[$3] = $4 }
    next
}
/^$/ { next }
{
    # name{labels} value  |  name value
    if (match($0, /^[a-zA-Z_:][a-zA-Z0-9_:]*/) == 0) { fail("unparseable metric name: " $0); next }
    name = substr($0, 1, RLENGTH)
    rest = substr($0, RLENGTH + 1)
    le = ""
    if (substr(rest, 1, 1) == "{") {
        close_idx = index(rest, "}")
        if (close_idx == 0) { fail("unterminated label set: " $0); next }
        labels = substr(rest, 2, close_idx - 2)
        rest = substr(rest, close_idx + 1)
        if (match(labels, /le="[^"]*"/)) { le = substr(labels, RSTART + 4, RLENGTH - 5) }
    }
    gsub(/^[ \t]+|[ \t]+$/, "", rest)
    if (rest !~ /^[+-]?([0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?|[0-9]+)$/ && rest != "+Inf" && rest != "NaN") {
        fail("non-numeric value `" rest "` for " name); next
    }
    fam = family(name)
    if (!(name in type) && !(fam in type)) { fail("no # TYPE for " name) }
    if (name ~ /_bucket$/ && (fam in type) && type[fam] == "histogram") {
        if (le == "") { fail("histogram bucket without le label: " $0); next }
        if (le == "+Inf") { inf[fam] = rest + 0; has_inf[fam] = 1 }
        else {
            if ((fam in prev_le) && rest + 0 < prev_ct[fam]) {
                fail("bucket counts not cumulative for " fam " at le=" le)
            }
            prev_le[fam] = le + 0
            prev_ct[fam] = rest + 0
        }
        seen_hist[fam] = 1
    }
    if (name ~ /_sum$/ && (fam in type) && type[fam] == "histogram") { has_sum[fam] = 1 }
    if (name ~ /_count$/ && (fam in type) && type[fam] == "histogram") { count[fam] = rest + 0; has_count[fam] = 1 }
    lines++
}
END {
    if (lines == 0) { print "check_prometheus: no metric lines"; bad = 1 }
    for (fam in seen_hist) {
        if (!(fam in has_inf)) { printf("check_prometheus: histogram %s has no +Inf bucket\n", fam); bad = 1 }
        if (!(fam in has_sum)) { printf("check_prometheus: histogram %s has no _sum\n", fam); bad = 1 }
        if (!(fam in has_count)) { printf("check_prometheus: histogram %s has no _count\n", fam); bad = 1 }
        else if ((fam in has_inf) && count[fam] != inf[fam]) {
            printf("check_prometheus: histogram %s _count %d != +Inf bucket %d\n", fam, count[fam], inf[fam]); bad = 1
        }
        if ((fam in has_inf) && (fam in prev_ct) && inf[fam] < prev_ct[fam]) {
            printf("check_prometheus: histogram %s +Inf bucket below last finite bucket\n", fam); bad = 1
        }
    }
    if (bad) { exit 1 }
    printf("check_prometheus: OK (%d metric lines, %d histograms)\n", lines, length(seen_hist))
}
' "${1:--}"

//! Umbrella crate for the JavaFlow workspace.
//!
//! Re-exports the public facade from [`javaflow_core`]. See the individual
//! crates for subsystem documentation:
//!
//! * [`javaflow_bytecode`] — the Java ByteCode instruction set and method IR
//! * [`javaflow_interp`] — the JVM-lite interpreter / GPP and profiler
//! * [`javaflow_analysis`] — static and dynamic analyses, statistics
//! * [`javaflow_fabric`] — the dataflow fabric simulator
//! * [`javaflow_workloads`] — the SPEC-like workload suite
//! * [`javaflow_core`] — the high-level machine API and evaluation harness

pub use javaflow_core::*;

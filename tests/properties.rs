//! Randomized property tests over generated programs (deterministic
//! seeded generation — the workspace builds offline, so these use the
//! in-repo [`javaflow_workloads::rng`] generator instead of proptest):
//!
//! * assembler/disassembler round-trips;
//! * resolver ≡ verifier on arbitrary structured methods;
//! * fabric data-mode execution ≡ interpreter on arbitrary *data-safe*
//!   integer programs (loops, branches, arithmetic), on every machine
//!   configuration.

use javaflow_bytecode::{asm, verify, Label, Method, MethodBuilder, Opcode, Program, Value};
use javaflow_fabric::{execute, load, resolve, BranchMode, ExecParams, FabricConfig, Gpp, Outcome};
use javaflow_interp::Interp;
use javaflow_workloads::rng::StdRng;

const CASES: u64 = 48;

/// A data-safe integer statement for generated programs.
#[derive(Debug, Clone)]
enum Stmt {
    /// `r_dst = r_a OP r_b` with a non-trapping operator.
    Bin { dst: u8, a: u8, b: u8, op: u8 },
    /// `r_dst = constant`.
    Set { dst: u8, value: i8 },
    /// `r += delta`.
    Inc { dst: u8, delta: i8 },
    /// `if (r_a cmp r_b) { then-stmts }`.
    If { a: u8, b: u8, cmp: u8, then: Vec<Stmt> },
    /// Bounded countdown loop over a fresh counter.
    Loop { times: u8, body: Vec<Stmt> },
}

const REGS: u16 = 4;

fn gen_stmt(rng: &mut StdRng, depth: u32) -> Stmt {
    // Leaves at depth 0; otherwise a 1-in-3 chance of a nested construct.
    if depth > 0 && rng.gen_bool(1.0 / 3.0) {
        if rng.gen_bool(0.5) {
            Stmt::If {
                a: rng.gen_range(0..4u8),
                b: rng.gen_range(0..4u8),
                cmp: rng.gen_range(0..4u8),
                then: gen_block(rng, depth - 1, 1..4),
            }
        } else {
            Stmt::Loop { times: rng.gen_range(1..5u8), body: gen_block(rng, depth - 1, 1..4) }
        }
    } else {
        match rng.gen_range(0..3u8) {
            0 => Stmt::Bin {
                dst: rng.gen_range(0..4u8),
                a: rng.gen_range(0..4u8),
                b: rng.gen_range(0..4u8),
                op: rng.gen_range(0..6u8),
            },
            1 => Stmt::Set { dst: rng.gen_range(0..4u8), value: rng.gen_range(-128..=127i8) },
            _ => Stmt::Inc { dst: rng.gen_range(0..4u8), delta: rng.gen_range(-128..=127i8) },
        }
    }
}

fn gen_block(rng: &mut StdRng, depth: u32, len: std::ops::Range<usize>) -> Vec<Stmt> {
    let n = rng.gen_range(len);
    (0..n).map(|_| gen_stmt(rng, depth)).collect()
}

/// Emits a statement list; returns the next free counter register.
fn emit(b: &mut MethodBuilder, stmts: &[Stmt], mut counter: u16) -> u16 {
    for s in stmts {
        match s {
            Stmt::Bin { dst, a, b: rb, op } => {
                b.iload(u16::from(*a));
                b.iload(u16::from(*rb));
                b.op(match op % 6 {
                    0 => Opcode::IAdd,
                    1 => Opcode::ISub,
                    2 => Opcode::IMul,
                    3 => Opcode::IAnd,
                    4 => Opcode::IOr,
                    _ => Opcode::IXor,
                });
                b.istore(u16::from(*dst));
            }
            Stmt::Set { dst, value } => {
                b.iconst(i32::from(*value));
                b.istore(u16::from(*dst));
            }
            Stmt::Inc { dst, delta } => {
                b.iinc(u16::from(*dst), i32::from(*delta));
            }
            Stmt::If { a, b: rb, cmp, then } => {
                b.iload(u16::from(*a));
                b.iload(u16::from(*rb));
                let skip = b.new_label();
                b.branch(
                    match cmp % 4 {
                        0 => Opcode::IfICmpEq,
                        1 => Opcode::IfICmpNe,
                        2 => Opcode::IfICmpLt,
                        _ => Opcode::IfICmpGe,
                    },
                    skip,
                );
                counter = emit(b, then, counter);
                b.bind(skip);
            }
            Stmt::Loop { times, body } => {
                let c = counter;
                counter += 1;
                b.iconst(i32::from(*times));
                b.istore(c);
                let top: Label = b.new_label();
                let exit: Label = b.new_label();
                b.bind(top);
                b.iload(c);
                b.branch(Opcode::IfLe, exit);
                counter = emit(b, body, counter);
                b.iinc(c, -1);
                b.branch(Opcode::Goto, top);
                b.bind(exit);
            }
        }
    }
    counter
}

fn build_method(stmts: &[Stmt]) -> Method {
    let mut b = MethodBuilder::new("prop.m", 2, true);
    // Initialize the non-argument working registers.
    for r in 2..REGS {
        b.iconst(i32::from(r as i16));
        b.istore(r);
    }
    emit(&mut b, stmts, REGS);
    // Return a digest of all working registers.
    b.iload(0);
    for r in 1..REGS {
        b.iload(r);
        b.op(Opcode::IXor);
    }
    b.op(Opcode::IReturn);
    b.finish().expect("generated program verifies")
}

#[test]
fn fabric_matches_interpreter_on_generated_programs() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5eed_0001 ^ case);
        let stmts = gen_block(&mut rng, 2, 1..6);
        let a = rng.gen_range(-128..=127i8);
        let bb = rng.gen_range(-128..=127i8);
        let method = build_method(&stmts);
        let program = Program::from(method.clone());
        let args = [Value::Int(i32::from(a)), Value::Int(i32::from(bb))];

        let mut interp = Interp::new(&program);
        let expect = interp.run(javaflow_bytecode::MethodId(0), &args).unwrap();

        for config in [FabricConfig::baseline(), FabricConfig::compact2(), FabricConfig::hetero2()]
        {
            let loaded = load(&method, &config).unwrap();
            let mut gpp = Interp::new(&program);
            let report = execute(
                &loaded,
                &config,
                ExecParams {
                    mode: BranchMode::Data,
                    gpp: Gpp::Interp(&mut gpp),
                    args: args.to_vec(),
                    max_mesh_cycles: 2_000_000,
                    fast_forward: true,
                    compiled: false,
                },
            );
            match &report.outcome {
                Outcome::Returned(got) => {
                    assert_eq!(got, &expect, "case {case}, {}", config.name);
                }
                other => panic!("case {case}, {}: {other:?}", config.name),
            }
        }
    }
}

#[test]
fn resolver_matches_verifier_on_generated_programs() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5eed_0002 ^ case);
        let stmts = gen_block(&mut rng, 3, 1..8);
        let method = build_method(&stmts);
        let v = verify(&method).unwrap();
        let r = resolve(&method).unwrap();
        let verifier_edges: Vec<(u32, u32, u16)> =
            v.edges.iter().map(|e| (e.producer, e.consumer, e.side)).collect();
        assert_eq!(r.edges(), verifier_edges, "case {case}");
        assert_eq!(r.stats.back_merges, 0, "case {case}");
    }
}

#[test]
fn assembler_round_trips_generated_programs() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5eed_0003 ^ case);
        let stmts = gen_block(&mut rng, 2, 1..6);
        let method = build_method(&stmts);
        let program = Program::from(method);
        let text = asm::disassemble(&program);
        let back = asm::assemble(&text).unwrap();
        assert_eq!(back.num_methods(), program.num_methods(), "case {case}");
        for ((_, x), (_, y)) in program.methods().zip(back.methods()) {
            assert_eq!(x, y, "case {case}");
        }
    }
}

#[test]
fn scripted_mode_always_terminates() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5eed_0004 ^ case);
        let stmts = gen_block(&mut rng, 2, 1..6);
        let bp1 = rng.gen::<bool>();
        // Scripted branch outcomes are data-independent; every generated
        // loop must still terminate by predictor schedule.
        let method = build_method(&stmts);
        let config = FabricConfig::compact2();
        let loaded = load(&method, &config).unwrap();
        let report = execute(
            &loaded,
            &config,
            ExecParams {
                mode: if bp1 { BranchMode::Bp1 } else { BranchMode::Bp2 },
                max_mesh_cycles: 2_000_000,
                ..ExecParams::default()
            },
        );
        assert!(
            matches!(report.outcome, Outcome::Returned(_)),
            "case {case}: {:?}",
            report.outcome
        );
    }
}

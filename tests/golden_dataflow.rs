//! Cross-crate golden-model tests: the fabric's distributed address
//! resolution must agree exactly with the verifier's abstract
//! interpretation on every method in the repository — suite kernels,
//! drivers, and the synthetic population.

use javaflow_bytecode::verify;
use javaflow_core::population;
use javaflow_fabric::resolve;

#[test]
fn resolver_matches_verifier_on_entire_population() {
    let pop = population(120);
    assert!(pop.len() > 150);
    for rec in &pop {
        let v = verify(&rec.method).unwrap_or_else(|e| panic!("{}: verify: {e}", rec.name));
        let r = resolve(&rec.method).unwrap_or_else(|e| panic!("{}: resolve: {e}", rec.name));
        let verifier_edges: Vec<(u32, u32, u16)> =
            v.edges.iter().map(|e| (e.producer, e.consumer, e.side)).collect();
        assert_eq!(
            r.edges(),
            verifier_edges,
            "{}: distributed resolution diverged from the verifier",
            rec.name
        );
        assert_eq!(r.stats.merges as usize, v.merges, "{}: merge count", rec.name);
        assert_eq!(r.stats.back_merges, 0, "{}: back merges must not exist", rec.name);
        assert_eq!(v.back_merges, 0, "{}: verifier found back merges", rec.name);
    }
}

#[test]
fn resolution_cost_tracks_method_size() {
    // Table 7's observation: resolution completes in ≈ 2× the instruction
    // count of the method.
    let pop = population(40);
    for rec in pop.iter().filter(|r| r.len() > 10) {
        let r = resolve(&rec.method).unwrap();
        let ratio = r.stats.resolution_ticks as f64 / rec.len() as f64;
        assert!(
            (1.5..=3.5).contains(&ratio),
            "{}: resolution ticks / insts = {ratio:.2}",
            rec.name
        );
    }
}

#[test]
fn fanout_and_arcs_match_chapter5_shape() {
    // Table 10: javac-style code has tiny fanout (mean ≈ 1.04) and short
    // arcs (mean ≈ 1.9).
    let pop = population(120);
    let mut fanouts = Vec::new();
    let mut arcs = Vec::new();
    for rec in pop.iter().filter(|r| r.len() > 10 && r.len() < 1000) {
        let r = resolve(&rec.method).unwrap();
        if r.stats.dflows > 0 {
            fanouts.push(r.stats.fanout_avg);
            arcs.push(r.stats.arc_avg);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let f = mean(&fanouts);
    let a = mean(&arcs);
    assert!((1.0..1.4).contains(&f), "mean fanout {f:.3} (paper: 1.04)");
    assert!((1.0..4.5).contains(&a), "mean arc length {a:.2} (paper: 1.88)");
}

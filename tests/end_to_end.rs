//! End-to-end integration: the whole benchmark suite runs on the
//! interpreter with correct results, hot kernels co-simulate on the fabric
//! in data mode against the interpreter golden model, and heavy drivers
//! execute fully on the machine.

use javaflow_bytecode::Value;
use javaflow_core::Machine;
use javaflow_fabric::{execute, load, BranchMode, ExecParams, FabricConfig, Gpp, Outcome};
use javaflow_interp::Interp;
use javaflow_workloads::{full_suite, scimark, SuiteKind};

#[test]
fn whole_suite_runs_on_the_interpreter() {
    for bench in full_suite() {
        bench.program.validate().unwrap_or_else(|e| panic!("{}: {e:?}", bench.name));
        let v = bench.run().unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert!(v.is_some(), "{} returned nothing", bench.name);
    }
}

#[test]
fn suite_correctness_invariants() {
    for bench in full_suite() {
        let v = bench.run().unwrap();
        match bench.name {
            // The compress drivers return the number of round-trip
            // mismatches: must be lossless.
            "compress" | "_201_compress" => assert_eq!(v, Some(Value::Int(0)), "{}", bench.name),
            // The FFT driver returns accumulated round-trip error.
            "scimark.fft" => {
                let err = v.unwrap().as_double().unwrap();
                assert!(err < 1e-6, "fft round-trip error {err}");
            }
            // The db driver returns sort violations.
            "_209_db" => assert_eq!(v, Some(Value::Int(0))),
            // Monte Carlo approximates π.
            "scimark.monte_carlo" => {
                let pi = v.unwrap().as_double().unwrap();
                assert!((pi - std::f64::consts::PI).abs() < 0.2, "π estimate {pi}");
            }
            _ => {}
        }
    }
}

#[test]
fn profiles_show_hot_method_dominance() {
    // Table 1's key finding: a small number of methods dominates.
    for bench in full_suite() {
        let (profiler, _) = bench.profile().unwrap();
        let top = javaflow_analysis::top_share(&profiler, 4);
        assert!(
            top > 0.3,
            "{}: top-4 methods only cover {:.0}% of dynamic instructions",
            bench.name,
            top * 100.0
        );
    }
}

#[test]
fn next_double_co_simulates_bit_exactly_on_all_configs() {
    let mut program = javaflow_bytecode::Program::new();
    let (_cls, make, next_double) = scimark::build_random(&mut program);
    let method = program.method(next_double).clone();

    // Golden sequence from the interpreter.
    let mut golden = Interp::new(&program);
    let r = golden.run(make, &[Value::Int(7)]).unwrap().unwrap();
    let expected: Vec<Value> =
        (0..5).map(|_| golden.run(next_double, &[r]).unwrap().unwrap()).collect();

    for config in FabricConfig::all_six() {
        let loaded = load(&method, &config).unwrap();
        let mut gpp = Interp::new(&program);
        let r = gpp.run(make, &[Value::Int(7)]).unwrap().unwrap();
        for (k, want) in expected.iter().enumerate() {
            let report = execute(
                &loaded,
                &config,
                ExecParams {
                    mode: BranchMode::Data,
                    gpp: Gpp::Interp(&mut gpp),
                    args: vec![r],
                    ..ExecParams::default()
                },
            );
            let Outcome::Returned(Some(got)) = report.outcome else {
                panic!("{} draw {k}: no return", config.name);
            };
            assert!(got.bits_eq(want), "{} draw {k}: fabric {got} != interp {want}", config.name);
        }
    }
}

#[test]
fn sha1_block_co_simulates_on_the_fabric() {
    // Run a SHA-1 block compression on the machine and on the GPP alone;
    // the state arrays must match word for word.
    let mut program = javaflow_bytecode::Program::new();
    let sha = javaflow_workloads::crypto::build_sha160(&mut program);
    let config = FabricConfig::compact2();

    let setup = |jvm: &mut Interp<'_>| -> (Value, Value) {
        let st = jvm.state.heap.alloc_array(javaflow_bytecode::ArrayKind::Int, 5).unwrap();
        for (i, v) in [0x6745_2301u32, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0]
            .into_iter()
            .enumerate()
        {
            jvm.state.heap.array_set(Some(st), i as i32, Value::Int(v as i32)).unwrap();
        }
        let w = jvm.state.heap.alloc_array(javaflow_bytecode::ArrayKind::Int, 80).unwrap();
        for i in 0..16 {
            jvm.state
                .heap
                .array_set(Some(w), i, Value::Int(i.wrapping_mul(0x3779_1237) ^ 5))
                .unwrap();
        }
        (Value::Ref(Some(st)), Value::Ref(Some(w)))
    };

    // GPP-only run.
    let mut gpp_only = Interp::new(&program);
    let (st_g, w_g) = setup(&mut gpp_only);
    gpp_only.run(sha, &[st_g, w_g]).unwrap();
    let expect: Vec<Value> = (0..5)
        .map(|i| gpp_only.state.heap.array_get(st_g.as_ref_handle().unwrap(), i).unwrap())
        .collect();

    // Fabric run.
    let method = program.method(sha).clone();
    let loaded = load(&method, &config).unwrap();
    let mut gpp = Interp::new(&program);
    let (st_f, w_f) = setup(&mut gpp);
    let report = execute(
        &loaded,
        &config,
        ExecParams {
            mode: BranchMode::Data,
            gpp: Gpp::Interp(&mut gpp),
            args: vec![st_f, w_f],
            max_mesh_cycles: 5_000_000,
            fast_forward: true,
            compiled: false,
        },
    );
    assert!(matches!(report.outcome, Outcome::Returned(None)), "{:?}", report.outcome);
    for (i, want) in expect.iter().enumerate() {
        let got = gpp.state.heap.array_get(st_f.as_ref_handle().unwrap(), i as i32).unwrap();
        assert!(got.bits_eq(want), "state[{i}]: fabric {got} != interp {want}");
    }
    // SHA-1 is ~1400 dynamic instructions of real work on the fabric.
    assert!(report.executed > 500, "only {} fired", report.executed);
}

#[test]
fn machine_runs_a_whole_benchmark_driver() {
    // The jess driver end-to-end on the machine (Figure 12's full system):
    // token-list construction, nested loops, and equals-call cascades.
    let bench = javaflow_workloads::misc98::jess_benchmark(14, 3);
    let gpp_result = bench.run().unwrap();
    let mut machine = Machine::new(&bench.program, FabricConfig::compact10());
    let run = machine.run_named("jess.driver", &bench.driver_args).unwrap();
    assert_eq!(run.value, gpp_result);
    assert_eq!(run.value, Some(Value::Int(12))); // 14 tokens, every 7th differs
}

#[test]
fn hot_methods_load_on_every_configuration() {
    for bench in full_suite() {
        for id in &bench.hot {
            let m = bench.program.method(*id);
            for config in FabricConfig::all_six() {
                load(m, &config).unwrap_or_else(|e| {
                    panic!("{}::{} fails to load on {}: {e}", bench.name, m.name, config.name)
                });
            }
        }
    }
}

#[test]
fn suite_matches_table_3_4_hot_sets() {
    // The hottest profiled method of each benchmark must be one of its
    // declared hot methods — the suite reproduces its own Tables 3/4.
    for bench in full_suite() {
        let (profiler, _) = bench.profile().unwrap();
        let ranked = profiler.ranked();
        let hottest_measured = ranked
            .iter()
            .map(|(id, _)| *id)
            .find(|id| *id != bench.driver)
            .expect("non-driver method executed");
        assert!(
            bench.hot.contains(&hottest_measured),
            "{}: hottest method {} not in declared hot set {:?}",
            bench.name,
            bench.program.method(hottest_measured).name,
            bench.hot_names()
        );
    }
}

#[test]
fn jvm98_and_jvm2008_both_represented() {
    let suite = full_suite();
    let n08 = suite.iter().filter(|b| b.suite == SuiteKind::Jvm2008).count();
    let n98 = suite.iter().filter(|b| b.suite == SuiteKind::Jvm98).count();
    assert_eq!(n08, 8);
    assert_eq!(n98, 6);
}

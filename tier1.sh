#!/bin/sh
# Tier-1 gate: full workspace build + test, then a smoke run of the tables
# binary (Table 22, the Figure-of-Merit headline) on a small population.
set -eu

cargo build --release --workspace
cargo test -q

cargo run --release -p javaflow-bench --bin tables -- --synthetic 50 --table 22

echo "tier1: OK"

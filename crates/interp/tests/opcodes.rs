//! Opcode-level behavior tests for the interpreter: Java semantics for
//! every conversion, comparison, shuffle, and service instruction family,
//! including the edge cases (NaN ordering, saturation, wrapping, narrowing
//! stores, subroutines, cast failures).

use javaflow_bytecode::asm::assemble;
use javaflow_bytecode::Value;
use javaflow_interp::{Interp, JvmErrorKind};

fn run1(body: &str, args: &[Value]) -> Result<Option<Value>, javaflow_interp::JvmError> {
    let p = assemble(body).unwrap();
    p.validate().unwrap();
    let (id, _) =
        p.methods().next().map(|(i, m)| (i, m.name.clone())).map(|(i, _)| (i, ())).unwrap();
    let mut jvm = Interp::new(&p);
    jvm.run(id, args)
}

fn eval(src: &str, args: &[Value]) -> Value {
    run1(src, args).unwrap().unwrap()
}

#[test]
fn long_arithmetic_and_shifts() {
    let src = ".method m args=2 returns=true locals=2
       lload 0
       lload 1
       lmul
       lload 0
       ladd
       bipush 63
       lshl
       lreturn
     .end";
    let got = eval(src, &[Value::Long(3), Value::Long(5)]).as_long().unwrap();
    assert_eq!(got, (3i64 * 5 + 3).wrapping_shl(63));
}

#[test]
fn lushr_is_logical() {
    let src = ".method m args=1 returns=true locals=1
       lload 0
       iconst_1
       lushr
       lreturn
     .end";
    assert_eq!(eval(src, &[Value::Long(-2)]), Value::Long(((-2i64) as u64 >> 1) as i64));
}

#[test]
fn lcmp_all_orderings() {
    let src = ".method m args=2 returns=true locals=2
       lload 0
       lload 1
       lcmp
       ireturn
     .end";
    assert_eq!(eval(src, &[Value::Long(1), Value::Long(2)]), Value::Int(-1));
    assert_eq!(eval(src, &[Value::Long(2), Value::Long(2)]), Value::Int(0));
    assert_eq!(eval(src, &[Value::Long(3), Value::Long(2)]), Value::Int(1));
}

#[test]
fn remainder_semantics() {
    // Java % keeps the dividend's sign.
    let src = ".method m args=2 returns=true locals=2
       iload 0
       iload 1
       irem
       ireturn
     .end";
    assert_eq!(eval(src, &[Value::Int(-7), Value::Int(3)]), Value::Int(-1));
    assert_eq!(eval(src, &[Value::Int(7), Value::Int(-3)]), Value::Int(1));
    let fsrc = ".method m args=2 returns=true locals=2
       dload 0
       dload 1
       drem
       dreturn
     .end";
    let r = eval(fsrc, &[Value::Double(-7.5), Value::Double(2.0)]).as_double().unwrap();
    assert_eq!(r, -1.5);
}

#[test]
fn conversion_matrix() {
    let cases: &[(&str, Value, Value)] = &[
        ("i2l", Value::Int(-5), Value::Long(-5)),
        ("i2f", Value::Int(3), Value::Float(3.0)),
        ("i2d", Value::Int(3), Value::Double(3.0)),
        ("i2b", Value::Int(0x1FF), Value::Int(-1)),
        ("i2c", Value::Int(-1), Value::Int(0xFFFF)),
        ("i2s", Value::Int(0x18000), Value::Int(-0x8000)),
        ("l2i", Value::Long(0x1_0000_0003), Value::Int(3)),
        ("l2f", Value::Long(1), Value::Float(1.0)),
        ("l2d", Value::Long(-2), Value::Double(-2.0)),
        ("f2i", Value::Float(-3.99), Value::Int(-3)),
        ("f2l", Value::Float(1e30), Value::Long(i64::MAX)),
        ("f2d", Value::Float(0.5), Value::Double(0.5)),
        ("d2i", Value::Double(f64::NEG_INFINITY), Value::Int(i32::MIN)),
        ("d2l", Value::Double(2.9), Value::Long(2)),
        ("d2f", Value::Double(0.25), Value::Float(0.25)),
    ];
    for (op, input, want) in cases {
        let load = match input {
            Value::Int(_) => "iload 0",
            Value::Long(_) => "lload 0",
            Value::Float(_) => "fload 0",
            Value::Double(_) => "dload 0",
            _ => unreachable!(),
        };
        let ret = match want {
            Value::Int(_) => "ireturn",
            Value::Long(_) => "lreturn",
            Value::Float(_) => "freturn",
            Value::Double(_) => "dreturn",
            _ => unreachable!(),
        };
        let src =
            format!(".method m args=1 returns=true locals=1\n  {load}\n  {op}\n  {ret}\n.end");
        let got = eval(&src, &[*input]);
        assert!(got.bits_eq(want), "{op}({input}) = {got}, want {want}");
    }
}

#[test]
fn dup_x_variants_route_correctly() {
    // dup_x1: a b → b a b ; summing with weights distinguishes orders.
    let src = ".method m args=2 returns=true locals=2
       iload 0
       iload 1
       dup_x1
       iadd
       iconst_3
       imul
       iadd
       ireturn
     .end";
    // stack: a b → (dup_x1) b a b → iadd: b (a+b) → *3 → b + 3(a+b)
    assert_eq!(eval(src, &[Value::Int(10), Value::Int(1)]), Value::Int(1 + 3 * 11));

    let src = ".method m args=3 returns=true locals=3
       iload 0
       iload 1
       iload 2
       dup_x2
       iadd
       iadd
       iadd
       ireturn
     .end";
    // a b c → c a b c → a+b+2c
    assert_eq!(eval(src, &[Value::Int(1), Value::Int(2), Value::Int(4)]), Value::Int(1 + 2 + 8));
}

#[test]
fn dup2_variants() {
    let src = ".method m args=2 returns=true locals=2
       iload 0
       iload 1
       dup2
       iadd
       iadd
       iadd
       ireturn
     .end";
    // a b → a b a b → 2a+2b
    assert_eq!(eval(src, &[Value::Int(3), Value::Int(5)]), Value::Int(16));

    let src = ".method m args=3 returns=true locals=3
       iload 0
       iload 1
       iload 2
       dup2_x1
       iadd
       iadd
       iadd
       iadd
       ireturn
     .end";
    // a b c → b c a b c → a+2b+2c
    assert_eq!(
        eval(src, &[Value::Int(1), Value::Int(10), Value::Int(100)]),
        Value::Int(1 + 20 + 200)
    );
}

#[test]
fn pop2_and_swap() {
    let src = ".method m args=0 returns=true locals=0
       iconst_1
       iconst_2
       iconst_3
       pop2
       ireturn
     .end";
    assert_eq!(eval(src, &[]), Value::Int(1));
}

#[test]
fn reference_comparisons() {
    let src = ".class C fields=0 statics=0
     .method m args=0 returns=true locals=2
       new C
       astore 0
       aload 0
       astore 1
       aload 0
       aload 1
       if_acmpeq @same
       iconst_0
       ireturn
     same:
       new C
       aload 0
       if_acmpne @diff
       iconst_m1
       ireturn
     diff:
       iconst_1
       ireturn
     .end";
    assert_eq!(eval(src, &[]), Value::Int(1));
}

#[test]
fn null_checks() {
    let src = ".method m args=1 returns=true locals=1
       aload 0
       ifnull @isnull
       iconst_0
       ireturn
     isnull:
       iconst_1
       ireturn
     .end";
    assert_eq!(eval(src, &[Value::NULL]), Value::Int(1));
    assert_eq!(eval(src, &[Value::Ref(Some(0))]), Value::Int(0));
}

#[test]
fn instanceof_and_checkcast() {
    let src = ".class A fields=0 statics=0
     .class B fields=0 statics=0
     .method m args=0 returns=true locals=1
       new A
       astore 0
       aload 0
       instanceof B
       ifne @bad
       aload 0
       instanceof A
       ifeq @bad
       aconst_null
       instanceof A
       ifne @bad
       aload 0
       checkcast A
       pop
       aconst_null
       checkcast B
       pop
       iconst_1
       ireturn
     bad:
       iconst_0
       ireturn
     .end";
    assert_eq!(eval(src, &[]), Value::Int(1));
}

#[test]
fn checkcast_failure_raises() {
    let src = ".class A fields=0 statics=0
     .class B fields=0 statics=0
     .method m args=0 returns=true locals=0
       new A
       checkcast B
       areturn
     .end";
    assert_eq!(run1(src, &[]).unwrap_err().kind, JvmErrorKind::ClassCast);
}

#[test]
fn monitor_null_raises() {
    let src = ".method m args=0 returns=false locals=0
       aconst_null
       monitorenter
       return
     .end";
    assert_eq!(run1(src, &[]).unwrap_err().kind, JvmErrorKind::NullPointer);
}

#[test]
fn athrow_raises() {
    let src = ".class E fields=0 statics=0
     .method m args=0 returns=false locals=0
       new E
       athrow
     .end";
    assert_eq!(run1(src, &[]).unwrap_err().kind, JvmErrorKind::Thrown);
}

#[test]
fn multianewarray_builds_nested() {
    let src = ".class Arr fields=0 statics=0
     .method m args=0 returns=true locals=1
       iconst_3
       iconst_4
       multianewarray Arr 2
       astore 0
       aload 0
       iconst_2
       aaload
       arraylength
       aload 0
       arraylength
       imul
       ireturn
     .end";
    assert_eq!(eval(src, &[]), Value::Int(12));
}

#[test]
fn narrowing_array_stores() {
    let src = ".method m args=0 returns=true locals=1
       iconst_2
       newarray byte
       astore 0
       aload 0
       iconst_0
       sipush 511
       bastore
       aload 0
       iconst_0
       baload
       ireturn
     .end";
    assert_eq!(eval(src, &[]), Value::Int(-1)); // 0x1FF as i8 = -1
}

#[test]
fn jsr_ret_subroutine() {
    // A finally-style subroutine entered from two call sites.
    let src = ".method m args=0 returns=true locals=2
       iconst_0
       istore 0
       jsr @sub
       jsr @sub
       iload 0
       ireturn
     sub:
       astore 1
       iinc 0 10
       ret 1
     .end";
    assert_eq!(eval(src, &[]), Value::Int(20));
}

#[test]
fn fneg_preserves_nan_and_zero_sign() {
    let src = ".method m args=1 returns=true locals=1
       fload 0
       fneg
       freturn
     .end";
    let r = eval(src, &[Value::Float(0.0)]).as_float().unwrap();
    assert!(r == 0.0 && r.is_sign_negative());
    let r = eval(src, &[Value::Float(f32::NAN)]).as_float().unwrap();
    assert!(r.is_nan());
}

#[test]
fn float_comparison_branching() {
    // if (a > b) 1 else 0 via fcmpl + ifle (javac's shape)
    let src = ".method m args=2 returns=true locals=2
       fload 0
       fload 1
       fcmpl
       ifle @no
       iconst_1
       ireturn
     no:
       iconst_0
       ireturn
     .end";
    assert_eq!(eval(src, &[Value::Float(2.0), Value::Float(1.0)]), Value::Int(1));
    assert_eq!(eval(src, &[Value::Float(1.0), Value::Float(2.0)]), Value::Int(0));
    // NaN must take the "not greater" path with fcmpl.
    assert_eq!(eval(src, &[Value::Float(f32::NAN), Value::Float(1.0)]), Value::Int(0));
}

#[test]
fn deep_call_chain_hits_depth_limit() {
    let src = ".method m args=1 returns=true locals=1
       iload 0
       iconst_1
       iadd
       invokestatic m
       ireturn
     .end";
    let p = assemble(src).unwrap();
    let (id, _) = p.method_by_name("m").unwrap();
    let mut jvm = Interp::new(&p);
    jvm.limits.max_depth = 64;
    assert_eq!(jvm.run(id, &[Value::Int(0)]).unwrap_err().kind, JvmErrorKind::StackDepthExceeded);
}

#[test]
fn profiler_counts_invocations_across_calls() {
    let src = ".method callee args=0 returns=true locals=0
       iconst_1
       ireturn
     .end
     .method m args=0 returns=true locals=0
       invokestatic callee
       invokestatic callee
       iadd
       ireturn
     .end";
    let p = assemble(src).unwrap();
    let (m, _) = p.method_by_name("m").unwrap();
    let (callee, _) = p.method_by_name("callee").unwrap();
    let mut jvm = Interp::new(&p).with_profiler();
    assert_eq!(jvm.run(m, &[]).unwrap(), Some(Value::Int(2)));
    let prof = jvm.profiler.take().unwrap();
    assert_eq!(prof.methods()[&callee].invocations, 2);
    assert_eq!(prof.methods()[&m].invocations, 1);
    // m executed 4 instructions, callee 2 each.
    assert_eq!(prof.methods()[&m].total(), 4);
    assert_eq!(prof.methods()[&callee].total(), 4);
}

#[test]
fn lookupswitch_sparse_keys() {
    let src = ".method m args=1 returns=true locals=1
       iload 0
       lookupswitch -100:@neg 0:@zero 1000:@big default:@other
     neg:
       iconst_1
       ireturn
     zero:
       iconst_2
       ireturn
     big:
       iconst_3
       ireturn
     other:
       iconst_4
       ireturn
     .end";
    assert_eq!(eval(src, &[Value::Int(-100)]), Value::Int(1));
    assert_eq!(eval(src, &[Value::Int(0)]), Value::Int(2));
    assert_eq!(eval(src, &[Value::Int(1000)]), Value::Int(3));
    assert_eq!(eval(src, &[Value::Int(7)]), Value::Int(4));
}

//! The ByteCode interpreter — JavaFlow's General Purpose Processor.
//!
//! The dissertation assumes a conventional GPP that (a) runs methods before
//! they are judged hot enough for fabric deployment, (b) services `Special`
//! and `Call` instructions on behalf of the fabric, and (c) was instrumented
//! (as JAMVM was) to produce the Chapter 5 dynamic-mix data. This
//! interpreter plays all three roles: it is a faithful value-semantics JVM
//! over [`javaflow_bytecode::Program`], it exposes [`Interp::run`] for
//! whole-method execution against a shared [`JvmState`], and it drives an
//! optional [`crate::Profiler`].

use javaflow_bytecode::{Insn, MethodId, Opcode, Operand, Program, Value};

use crate::{Heap, JvmError, JvmErrorKind, Profiler};

/// Mutable machine state shared between the interpreter and (during
/// fabric/GPP co-simulation) the DataFlow fabric: the heap plus the method
/// area's static class data (Figure 10).
#[derive(Debug)]
pub struct JvmState {
    /// The object heap.
    pub heap: Heap,
    /// Per-class static field slots.
    pub statics: Vec<Vec<Value>>,
}

impl JvmState {
    /// Fresh state for a program (statics zeroed).
    #[must_use]
    pub fn new(program: &Program) -> JvmState {
        JvmState {
            heap: Heap::new(),
            statics: program
                .classes()
                .iter()
                .map(|c| vec![Value::Int(0); usize::from(c.static_fields)])
                .collect(),
        }
    }

    /// Reads a static field.
    ///
    /// # Errors
    ///
    /// `StaticOutOfRange` when class or slot is unknown.
    pub fn get_static(&self, class: u16, slot: u16) -> Result<Value, JvmError> {
        self.statics
            .get(usize::from(class))
            .and_then(|c| c.get(usize::from(slot)))
            .copied()
            .ok_or_else(|| JvmError::bare(JvmErrorKind::StaticOutOfRange))
    }

    /// Writes a static field.
    ///
    /// # Errors
    ///
    /// `StaticOutOfRange` when class or slot is unknown.
    pub fn put_static(&mut self, class: u16, slot: u16, v: Value) -> Result<(), JvmError> {
        let f = self
            .statics
            .get_mut(usize::from(class))
            .and_then(|c| c.get_mut(usize::from(slot)))
            .ok_or_else(|| JvmError::bare(JvmErrorKind::StaticOutOfRange))?;
        *f = v;
        Ok(())
    }
}

/// Execution limits (runaway guards).
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum ByteCode instructions executed per [`Interp::run`].
    pub max_steps: u64,
    /// Maximum call-frame depth.
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits { max_steps: 500_000_000, max_depth: 1_024 }
    }
}

#[derive(Debug)]
struct Frame {
    method: MethodId,
    locals: Vec<Value>,
    stack: Vec<Value>,
    pc: u32,
}

/// The interpreter.
#[derive(Debug)]
pub struct Interp<'p> {
    program: &'p Program,
    /// Shared machine state.
    pub state: JvmState,
    /// Execution limits.
    pub limits: Limits,
    /// Optional dynamic-mix profiler.
    pub profiler: Option<Profiler>,
    steps: u64,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter with fresh state.
    #[must_use]
    pub fn new(program: &'p Program) -> Interp<'p> {
        Interp {
            program,
            state: JvmState::new(program),
            limits: Limits::default(),
            profiler: None,
            steps: 0,
        }
    }

    /// Enables profiling (dynamic mix, Tables 1–5).
    #[must_use]
    pub fn with_profiler(mut self) -> Interp<'p> {
        self.profiler = Some(Profiler::new());
        self
    }

    /// The program being executed.
    #[must_use]
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Total instructions executed so far across all `run` calls.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Runs `method` with `args`, returning its result value (if any).
    ///
    /// # Errors
    ///
    /// Any [`JvmError`] raised during execution, located at the failing
    /// instruction.
    pub fn run(&mut self, method: MethodId, args: &[Value]) -> Result<Option<Value>, JvmError> {
        let mut frames = vec![self.push_frame(method, args)?];
        loop {
            let outcome = self.step(frames.last_mut().expect("non-empty"))?;
            match outcome {
                Step::Continue => {}
                Step::Call { callee, argv } => {
                    if frames.len() >= self.limits.max_depth {
                        return Err(JvmError::bare(JvmErrorKind::StackDepthExceeded));
                    }
                    frames.push(self.push_frame(callee, &argv)?);
                }
                Step::Return(v) => {
                    let finished = frames.pop().expect("non-empty");
                    let returns = self.program.method(finished.method).returns;
                    match frames.last_mut() {
                        None => return Ok(if returns { v } else { None }),
                        Some(caller) => {
                            // Resume after the call instruction.
                            caller.pc += 1;
                            if returns {
                                caller.stack.push(v.expect("typed return"));
                            }
                        }
                    }
                }
            }
        }
    }

    fn push_frame(&mut self, method: MethodId, args: &[Value]) -> Result<Frame, JvmError> {
        let m = self.program.method(method);
        debug_assert_eq!(args.len(), usize::from(m.num_args), "arity for {}", m.name);
        let mut locals = vec![Value::Int(0); usize::from(m.max_locals)];
        locals[..args.len()].copy_from_slice(args);
        if let Some(p) = self.profiler.as_mut() {
            p.record_invocation(method);
        }
        Ok(Frame { method, locals, stack: Vec::with_capacity(8), pc: 0 })
    }
}

enum Step {
    Continue,
    Call { callee: MethodId, argv: Vec<Value> },
    Return(Option<Value>),
}

macro_rules! arith2 {
    ($f:expr, $insn:expr, $stack:expr, $pat:path, $out:path, $op:expr) => {{
        let b = pop($stack)?;
        let a = pop($stack)?;
        match (a, b) {
            ($pat(x), $pat(y)) => $stack.push($out($op(x, y))),
            _ => return Err(JvmError::bare(JvmErrorKind::TypeError)),
        }
    }};
}

fn pop(stack: &mut Vec<Value>) -> Result<Value, JvmError> {
    stack.pop().ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))
}

fn pop_int(stack: &mut Vec<Value>) -> Result<i32, JvmError> {
    pop(stack)?.as_int().ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))
}

fn pop_ref(stack: &mut Vec<Value>) -> Result<Option<u32>, JvmError> {
    pop(stack)?.as_ref_handle().ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))
}

impl Interp<'_> {
    #[allow(clippy::too_many_lines)]
    fn step(&mut self, fr: &mut Frame) -> Result<Step, JvmError> {
        self.steps += 1;
        if self.steps > self.limits.max_steps {
            return Err(JvmError::bare(JvmErrorKind::StepLimit));
        }
        let method = self.program.method(fr.method);
        let insn: &Insn = method.insn(fr.pc);
        if let Some(p) = self.profiler.as_mut() {
            p.record(fr.method, fr.pc, insn);
        }
        let r = self.exec_insn(fr, insn);
        match r {
            Err(e) => Err(e.at(fr.method, fr.pc, insn.op)),
            ok => ok,
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec_insn(&mut self, fr: &mut Frame, insn: &Insn) -> Result<Step, JvmError> {
        use Opcode as O;
        let stack = &mut fr.stack;
        let mut next_pc = fr.pc + 1;
        match insn.op {
            O::Nop => {}
            // ---- constants ------------------------------------------------
            O::AConstNull => stack.push(Value::NULL),
            O::IConstM1 => stack.push(Value::Int(-1)),
            O::IConst0 => stack.push(Value::Int(0)),
            O::IConst1 => stack.push(Value::Int(1)),
            O::IConst2 => stack.push(Value::Int(2)),
            O::IConst3 => stack.push(Value::Int(3)),
            O::IConst4 => stack.push(Value::Int(4)),
            O::IConst5 => stack.push(Value::Int(5)),
            O::LConst0 => stack.push(Value::Long(0)),
            O::LConst1 => stack.push(Value::Long(1)),
            O::FConst0 => stack.push(Value::Float(0.0)),
            O::FConst1 => stack.push(Value::Float(1.0)),
            O::FConst2 => stack.push(Value::Float(2.0)),
            O::DConst0 => stack.push(Value::Double(0.0)),
            O::DConst1 => stack.push(Value::Double(1.0)),
            O::BiPush | O::SiPush => match insn.operand {
                Operand::Imm(v) => stack.push(Value::Int(v)),
                _ => return Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::Ldc | O::LdcW | O::Ldc2W => match insn.operand {
                Operand::Cp(i) => {
                    let m = self.program.method(fr.method);
                    stack.push(m.cpool[usize::from(i)]);
                }
                _ => return Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            // ---- locals ---------------------------------------------------
            O::ILoad | O::LLoad | O::FLoad | O::DLoad | O::ALoad => match insn.operand {
                Operand::Local(r) => stack.push(fr.locals[usize::from(r)]),
                _ => return Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::ILoad0 | O::LLoad0 | O::FLoad0 | O::DLoad0 | O::ALoad0 => {
                stack.push(fr.locals[0]);
            }
            O::ILoad1 | O::LLoad1 | O::FLoad1 | O::DLoad1 | O::ALoad1 => {
                stack.push(fr.locals[1]);
            }
            O::ILoad2 | O::LLoad2 | O::FLoad2 | O::DLoad2 | O::ALoad2 => {
                stack.push(fr.locals[2]);
            }
            O::ILoad3 | O::LLoad3 | O::FLoad3 | O::DLoad3 | O::ALoad3 => {
                stack.push(fr.locals[3]);
            }
            O::IStore | O::LStore | O::FStore | O::DStore | O::AStore => match insn.operand {
                Operand::Local(r) => fr.locals[usize::from(r)] = pop(stack)?,
                _ => return Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::IStore0 | O::LStore0 | O::FStore0 | O::DStore0 | O::AStore0 => {
                fr.locals[0] = pop(stack)?;
            }
            O::IStore1 | O::LStore1 | O::FStore1 | O::DStore1 | O::AStore1 => {
                fr.locals[1] = pop(stack)?;
            }
            O::IStore2 | O::LStore2 | O::FStore2 | O::DStore2 | O::AStore2 => {
                fr.locals[2] = pop(stack)?;
            }
            O::IStore3 | O::LStore3 | O::FStore3 | O::DStore3 | O::AStore3 => {
                fr.locals[3] = pop(stack)?;
            }
            O::IInc => match insn.operand {
                Operand::Inc { local, delta } => {
                    let r = usize::from(local);
                    let v = fr.locals[r]
                        .as_int()
                        .ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                    fr.locals[r] = Value::Int(v.wrapping_add(delta));
                }
                _ => return Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            // ---- arrays ---------------------------------------------------
            O::IALoad
            | O::LALoad
            | O::FALoad
            | O::DALoad
            | O::AALoad
            | O::BALoad
            | O::CALoad
            | O::SALoad => {
                let idx = pop_int(stack)?;
                let arr = pop_ref(stack)?;
                stack.push(self.state.heap.array_get(arr, idx)?);
            }
            O::IAStore
            | O::LAStore
            | O::FAStore
            | O::DAStore
            | O::AAStore
            | O::BAStore
            | O::CAStore
            | O::SAStore => {
                let v = pop(stack)?;
                let idx = pop_int(stack)?;
                let arr = pop_ref(stack)?;
                let v = match insn.op {
                    // Narrowing stores truncate like the JVM.
                    O::BAStore => Value::Int(v.as_int().unwrap_or(0) as i8 as i32),
                    O::CAStore => Value::Int(v.as_int().unwrap_or(0) as u16 as i32),
                    O::SAStore => Value::Int(v.as_int().unwrap_or(0) as i16 as i32),
                    _ => v,
                };
                self.state.heap.array_set(arr, idx, v)?;
            }
            // ---- stack shuffles ------------------------------------------
            O::Pop => {
                pop(stack)?;
            }
            O::Pop2 => {
                pop(stack)?;
                pop(stack)?;
            }
            O::Dup => {
                let v = *stack.last().ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                stack.push(v);
            }
            O::DupX1 => {
                let v1 = pop(stack)?;
                let v2 = pop(stack)?;
                stack.extend([v1, v2, v1]);
            }
            O::DupX2 => {
                let v1 = pop(stack)?;
                let v2 = pop(stack)?;
                let v3 = pop(stack)?;
                stack.extend([v1, v3, v2, v1]);
            }
            O::Dup2 => {
                let v1 = pop(stack)?;
                let v2 = pop(stack)?;
                stack.extend([v2, v1, v2, v1]);
            }
            O::Dup2X1 => {
                let v1 = pop(stack)?;
                let v2 = pop(stack)?;
                let v3 = pop(stack)?;
                stack.extend([v2, v1, v3, v2, v1]);
            }
            O::Dup2X2 => {
                let v1 = pop(stack)?;
                let v2 = pop(stack)?;
                let v3 = pop(stack)?;
                let v4 = pop(stack)?;
                stack.extend([v2, v1, v4, v3, v2, v1]);
            }
            O::Swap => {
                let v1 = pop(stack)?;
                let v2 = pop(stack)?;
                stack.extend([v1, v2]);
            }
            // ---- integer arithmetic --------------------------------------
            O::IAdd => arith2!(f, insn, stack, Value::Int, Value::Int, i32::wrapping_add),
            O::ISub => arith2!(f, insn, stack, Value::Int, Value::Int, i32::wrapping_sub),
            O::IMul => arith2!(f, insn, stack, Value::Int, Value::Int, i32::wrapping_mul),
            O::IDiv => {
                let b = pop_int(stack)?;
                let a = pop_int(stack)?;
                if b == 0 {
                    return Err(JvmError::bare(JvmErrorKind::DivideByZero));
                }
                stack.push(Value::Int(a.wrapping_div(b)));
            }
            O::IRem => {
                let b = pop_int(stack)?;
                let a = pop_int(stack)?;
                if b == 0 {
                    return Err(JvmError::bare(JvmErrorKind::DivideByZero));
                }
                stack.push(Value::Int(a.wrapping_rem(b)));
            }
            O::INeg => {
                let a = pop_int(stack)?;
                stack.push(Value::Int(a.wrapping_neg()));
            }
            O::IShl => arith2!(f, insn, stack, Value::Int, Value::Int, |a: i32, b: i32| a
                .wrapping_shl(b as u32 & 0x1f)),
            O::IShr => arith2!(f, insn, stack, Value::Int, Value::Int, |a: i32, b: i32| a
                .wrapping_shr(b as u32 & 0x1f)),
            O::IUShr => arith2!(f, insn, stack, Value::Int, Value::Int, |a: i32, b: i32| {
                ((a as u32).wrapping_shr(b as u32 & 0x1f)) as i32
            }),
            O::IAnd => arith2!(f, insn, stack, Value::Int, Value::Int, |a, b| a & b),
            O::IOr => arith2!(f, insn, stack, Value::Int, Value::Int, |a, b| a | b),
            O::IXor => arith2!(f, insn, stack, Value::Int, Value::Int, |a, b| a ^ b),
            // ---- long arithmetic -----------------------------------------
            O::LAdd => arith2!(f, insn, stack, Value::Long, Value::Long, i64::wrapping_add),
            O::LSub => arith2!(f, insn, stack, Value::Long, Value::Long, i64::wrapping_sub),
            O::LMul => arith2!(f, insn, stack, Value::Long, Value::Long, i64::wrapping_mul),
            O::LDiv => {
                let b =
                    pop(stack)?.as_long().ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                let a =
                    pop(stack)?.as_long().ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                if b == 0 {
                    return Err(JvmError::bare(JvmErrorKind::DivideByZero));
                }
                stack.push(Value::Long(a.wrapping_div(b)));
            }
            O::LRem => {
                let b =
                    pop(stack)?.as_long().ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                let a =
                    pop(stack)?.as_long().ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                if b == 0 {
                    return Err(JvmError::bare(JvmErrorKind::DivideByZero));
                }
                stack.push(Value::Long(a.wrapping_rem(b)));
            }
            O::LNeg => {
                let a =
                    pop(stack)?.as_long().ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                stack.push(Value::Long(a.wrapping_neg()));
            }
            O::LShl | O::LShr | O::LUShr => {
                let b = pop_int(stack)?;
                let a =
                    pop(stack)?.as_long().ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                let s = b as u32 & 0x3f;
                let r = match insn.op {
                    O::LShl => a.wrapping_shl(s),
                    O::LShr => a.wrapping_shr(s),
                    _ => ((a as u64).wrapping_shr(s)) as i64,
                };
                stack.push(Value::Long(r));
            }
            O::LAnd => arith2!(f, insn, stack, Value::Long, Value::Long, |a, b| a & b),
            O::LOr => arith2!(f, insn, stack, Value::Long, Value::Long, |a, b| a | b),
            O::LXor => arith2!(f, insn, stack, Value::Long, Value::Long, |a, b| a ^ b),
            // ---- float/double arithmetic ---------------------------------
            O::FAdd => arith2!(f, insn, stack, Value::Float, Value::Float, |a, b| a + b),
            O::FSub => arith2!(f, insn, stack, Value::Float, Value::Float, |a, b| a - b),
            O::FMul => arith2!(f, insn, stack, Value::Float, Value::Float, |a, b| a * b),
            O::FDiv => arith2!(f, insn, stack, Value::Float, Value::Float, |a, b| a / b),
            O::FRem => arith2!(f, insn, stack, Value::Float, Value::Float, |a: f32, b: f32| a % b),
            O::FNeg => {
                let a = pop(stack)?
                    .as_float()
                    .ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                stack.push(Value::Float(-a));
            }
            O::DAdd => arith2!(f, insn, stack, Value::Double, Value::Double, |a, b| a + b),
            O::DSub => arith2!(f, insn, stack, Value::Double, Value::Double, |a, b| a - b),
            O::DMul => arith2!(f, insn, stack, Value::Double, Value::Double, |a, b| a * b),
            O::DDiv => arith2!(f, insn, stack, Value::Double, Value::Double, |a, b| a / b),
            O::DRem => {
                arith2!(f, insn, stack, Value::Double, Value::Double, |a: f64, b: f64| a % b)
            }
            O::DNeg => {
                let a = pop(stack)?
                    .as_double()
                    .ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                stack.push(Value::Double(-a));
            }
            // ---- conversions ---------------------------------------------
            O::I2L => conv(stack, |v| Some(Value::Long(i64::from(v.as_int()?))))?,
            O::I2F => conv(stack, |v| Some(Value::Float(v.as_int()? as f32)))?,
            O::I2D => conv(stack, |v| Some(Value::Double(f64::from(v.as_int()?))))?,
            O::L2I => conv(stack, |v| Some(Value::Int(v.as_long()? as i32)))?,
            O::L2F => conv(stack, |v| Some(Value::Float(v.as_long()? as f32)))?,
            O::L2D => conv(stack, |v| Some(Value::Double(v.as_long()? as f64)))?,
            O::F2I => conv(stack, |v| Some(Value::Int(java_f2i(v.as_float()?))))?,
            O::F2L => conv(stack, |v| Some(Value::Long(java_f2l(f64::from(v.as_float()?)))))?,
            O::F2D => conv(stack, |v| Some(Value::Double(f64::from(v.as_float()?))))?,
            O::D2I => conv(stack, |v| Some(Value::Int(java_f2i(v.as_double()? as f32))))?,
            O::D2L => conv(stack, |v| Some(Value::Long(java_f2l(v.as_double()?))))?,
            O::D2F => conv(stack, |v| Some(Value::Float(v.as_double()? as f32)))?,
            O::I2B => conv(stack, |v| Some(Value::Int(i32::from(v.as_int()? as i8))))?,
            O::I2C => conv(stack, |v| Some(Value::Int(i32::from(v.as_int()? as u16))))?,
            O::I2S => conv(stack, |v| Some(Value::Int(i32::from(v.as_int()? as i16))))?,
            // ---- comparisons ---------------------------------------------
            O::LCmp => {
                let b =
                    pop(stack)?.as_long().ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                let a =
                    pop(stack)?.as_long().ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                stack.push(Value::Int(match a.cmp(&b) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                }));
            }
            O::FCmpL | O::FCmpG => {
                let b = pop(stack)?
                    .as_float()
                    .ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                let a = pop(stack)?
                    .as_float()
                    .ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                stack.push(Value::Int(fcmp(f64::from(a), f64::from(b), insn.op == O::FCmpG)));
            }
            O::DCmpL | O::DCmpG => {
                let b = pop(stack)?
                    .as_double()
                    .ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                let a = pop(stack)?
                    .as_double()
                    .ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                stack.push(Value::Int(fcmp(a, b, insn.op == O::DCmpG)));
            }
            // ---- control flow --------------------------------------------
            O::IfEq | O::IfNe | O::IfLt | O::IfGe | O::IfGt | O::IfLe => {
                let v = pop_int(stack)?;
                let taken = match insn.op {
                    O::IfEq => v == 0,
                    O::IfNe => v != 0,
                    O::IfLt => v < 0,
                    O::IfGe => v >= 0,
                    O::IfGt => v > 0,
                    _ => v <= 0,
                };
                if taken {
                    next_pc = insn.branch_target().expect("validated");
                }
            }
            O::IfICmpEq | O::IfICmpNe | O::IfICmpLt | O::IfICmpGe | O::IfICmpGt | O::IfICmpLe => {
                let b = pop_int(stack)?;
                let a = pop_int(stack)?;
                let taken = match insn.op {
                    O::IfICmpEq => a == b,
                    O::IfICmpNe => a != b,
                    O::IfICmpLt => a < b,
                    O::IfICmpGe => a >= b,
                    O::IfICmpGt => a > b,
                    _ => a <= b,
                };
                if taken {
                    next_pc = insn.branch_target().expect("validated");
                }
            }
            O::IfACmpEq | O::IfACmpNe => {
                let b = pop_ref(stack)?;
                let a = pop_ref(stack)?;
                let taken = (a == b) == (insn.op == O::IfACmpEq);
                if taken {
                    next_pc = insn.branch_target().expect("validated");
                }
            }
            O::IfNull | O::IfNonNull => {
                let a = pop_ref(stack)?;
                let taken = a.is_none() == (insn.op == O::IfNull);
                if taken {
                    next_pc = insn.branch_target().expect("validated");
                }
            }
            O::Goto | O::GotoW => next_pc = insn.branch_target().expect("validated"),
            O::Jsr | O::JsrW => {
                stack.push(Value::RetAddr(fr.pc + 1));
                next_pc = insn.branch_target().expect("validated");
            }
            O::Ret => match insn.operand {
                Operand::Local(r) => match fr.locals[usize::from(r)] {
                    Value::RetAddr(a) => next_pc = a,
                    _ => return Err(JvmError::bare(JvmErrorKind::TypeError)),
                },
                _ => return Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::TableSwitch | O::LookupSwitch => {
                let key = pop_int(stack)?;
                match &insn.operand {
                    Operand::Switch(t) => {
                        next_pc = t
                            .arms
                            .iter()
                            .find(|(k, _)| *k == key)
                            .map_or(t.default, |(_, tgt)| *tgt);
                    }
                    _ => return Err(JvmError::bare(JvmErrorKind::Unsupported)),
                }
            }
            // ---- returns --------------------------------------------------
            O::IReturn | O::LReturn | O::FReturn | O::DReturn | O::AReturn => {
                let v = pop(stack)?;
                return Ok(Step::Return(Some(v)));
            }
            O::ReturnVoid => return Ok(Step::Return(None)),
            O::AThrow => {
                let _exc = pop_ref(stack)?;
                return Err(JvmError::bare(JvmErrorKind::Thrown));
            }
            // ---- fields ---------------------------------------------------
            O::GetStatic => match insn.operand {
                Operand::Field(f) => stack.push(self.state.get_static(f.class, f.slot)?),
                _ => return Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::PutStatic => match insn.operand {
                Operand::Field(f) => {
                    let v = pop(stack)?;
                    self.state.put_static(f.class, f.slot, v)?;
                }
                _ => return Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::GetField => match insn.operand {
                Operand::Field(f) => {
                    let obj = pop_ref(stack)?;
                    stack.push(self.state.heap.get_field(obj, f.slot)?);
                }
                _ => return Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::PutField => match insn.operand {
                Operand::Field(f) => {
                    let v = pop(stack)?;
                    let obj = pop_ref(stack)?;
                    self.state.heap.put_field(obj, f.slot, v)?;
                }
                _ => return Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            // ---- calls ----------------------------------------------------
            O::InvokeVirtual
            | O::InvokeSpecial
            | O::InvokeStatic
            | O::InvokeInterface
            | O::InvokeDynamic => match insn.operand {
                Operand::Call(c) => {
                    let n = usize::from(c.argc);
                    if stack.len() < n {
                        return Err(JvmError::bare(JvmErrorKind::TypeError));
                    }
                    let argv = stack.split_off(stack.len() - n);
                    // Do not advance the pc: `run` resumes at pc+1 when the
                    // callee returns.
                    return Ok(Step::Call { callee: c.method, argv });
                }
                _ => return Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            // ---- object services ------------------------------------------
            O::New => match insn.operand {
                Operand::ClassId(c) => {
                    let fields = self.program.class(c).instance_fields;
                    let h = self.state.heap.alloc_object(c, fields);
                    stack.push(Value::Ref(Some(h)));
                }
                _ => return Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::NewArray => match insn.operand {
                Operand::ArrayType(k) => {
                    let len = pop_int(stack)?;
                    let h = self.state.heap.alloc_array(k, len)?;
                    stack.push(Value::Ref(Some(h)));
                }
                _ => return Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::ANewArray => match insn.operand {
                Operand::ClassId(c) => {
                    let len = pop_int(stack)?;
                    let h = self.state.heap.alloc_ref_array(c, len)?;
                    stack.push(Value::Ref(Some(h)));
                }
                _ => return Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::ArrayLength => {
                let a = pop_ref(stack)?;
                stack.push(Value::Int(self.state.heap.array_len(a)?));
            }
            O::CheckCast => match insn.operand {
                Operand::ClassId(c) => {
                    let h = pop_ref(stack)?;
                    if let Some(handle) = h {
                        if self.state.heap.object_class(Some(handle))? != c {
                            return Err(JvmError::bare(JvmErrorKind::ClassCast));
                        }
                    }
                    stack.push(Value::Ref(h));
                }
                _ => return Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::InstanceOf => match insn.operand {
                Operand::ClassId(c) => {
                    let h = pop_ref(stack)?;
                    let yes = match h {
                        None => false,
                        Some(handle) => self.state.heap.object_class(Some(handle))? == c,
                    };
                    stack.push(Value::Int(i32::from(yes)));
                }
                _ => return Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::MonitorEnter | O::MonitorExit => {
                // Single-threaded simulation: the monitor op is a null-check.
                let h = pop_ref(stack)?;
                if h.is_none() {
                    return Err(JvmError::bare(JvmErrorKind::NullPointer));
                }
            }
            O::MultiANewArray => match insn.operand {
                Operand::Dims { class, dims } => {
                    let mut sizes = Vec::with_capacity(usize::from(dims));
                    for _ in 0..dims {
                        sizes.push(pop_int(stack)?);
                    }
                    sizes.reverse();
                    let h = self.alloc_multi(class, &sizes)?;
                    stack.push(Value::Ref(Some(h)));
                }
                _ => return Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::Wide => return Err(JvmError::bare(JvmErrorKind::Unsupported)),
        }
        fr.pc = next_pc;
        Ok(Step::Continue)
    }

    fn alloc_multi(&mut self, class: u16, sizes: &[i32]) -> Result<u32, JvmError> {
        let (first, rest) = sizes.split_first().expect("dims >= 1");
        if rest.is_empty() {
            return self.state.heap.alloc_ref_array(class, *first);
        }
        let outer = self.state.heap.alloc_ref_array(class, *first)?;
        for i in 0..*first {
            let inner = self.alloc_multi(class, rest)?;
            self.state.heap.array_set(Some(outer), i, Value::Ref(Some(inner)))?;
        }
        Ok(outer)
    }
}

fn conv(stack: &mut Vec<Value>, f: impl FnOnce(Value) -> Option<Value>) -> Result<(), JvmError> {
    let v = pop(stack)?;
    let out = f(v).ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
    stack.push(out);
    Ok(())
}

/// Java `f2i`/`d2i` saturating conversion.
fn java_f2i(v: f32) -> i32 {
    if v.is_nan() {
        0
    } else if v >= i32::MAX as f32 {
        i32::MAX
    } else if v <= i32::MIN as f32 {
        i32::MIN
    } else {
        v as i32
    }
}

/// Java `f2l`/`d2l` saturating conversion.
fn java_f2l(v: f64) -> i64 {
    if v.is_nan() {
        0
    } else if v >= i64::MAX as f64 {
        i64::MAX
    } else if v <= i64::MIN as f64 {
        i64::MIN
    } else {
        v as i64
    }
}

/// Java `fcmpl`/`fcmpg` semantics: NaN compares as +1 for `*cmpg`, −1 for
/// `*cmpl`.
fn fcmp(a: f64, b: f64, greater_on_nan: bool) -> i32 {
    if a.is_nan() || b.is_nan() {
        if greater_on_nan {
            1
        } else {
            -1
        }
    } else if a < b {
        -1
    } else if a > b {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use javaflow_bytecode::asm::assemble;

    fn run_src(src: &str, entry: &str, args: &[Value]) -> Result<Option<Value>, JvmError> {
        let p = assemble(src).unwrap();
        p.validate().unwrap();
        let (id, _) = p.method_by_name(entry).unwrap();
        let mut i = Interp::new(&p);
        i.run(id, args)
    }

    #[test]
    fn add_two_ints() {
        let r = run_src(
            ".method add args=2 returns=true locals=2
               iload 0
               iload 1
               iadd
               ireturn
             .end",
            "add",
            &[Value::Int(30), Value::Int(12)],
        );
        assert_eq!(r.unwrap(), Some(Value::Int(42)));
    }

    #[test]
    fn loop_sums() {
        // sum 1..=n via a back branch
        let r = run_src(
            ".method sum args=1 returns=true locals=3
               iconst_0
               istore 1
             top:
               iload 1
               iload 0
               iadd
               istore 1
               iinc 0 -1
               iload 0
               ifgt @top
               iload 1
               ireturn
             .end",
            "sum",
            &[Value::Int(10)],
        );
        assert_eq!(r.unwrap(), Some(Value::Int(55)));
    }

    #[test]
    fn calls_nest() {
        let r = run_src(
            ".method double args=1 returns=true locals=1
               iload 0
               iconst_2
               imul
               ireturn
             .end
             .method main args=1 returns=true locals=1
               iload 0
               invokestatic double
               invokestatic double
               ireturn
             .end",
            "main",
            &[Value::Int(5)],
        );
        assert_eq!(r.unwrap(), Some(Value::Int(20)));
    }

    #[test]
    fn divide_by_zero_raises() {
        let e = run_src(
            ".method d args=2 returns=true locals=2
               iload 0
               iload 1
               idiv
               ireturn
             .end",
            "d",
            &[Value::Int(1), Value::Int(0)],
        )
        .unwrap_err();
        assert_eq!(e.kind, JvmErrorKind::DivideByZero);
        assert_eq!(e.pc, Some(2));
    }

    #[test]
    fn overflow_wraps_like_java() {
        let r = run_src(
            ".method m args=2 returns=true locals=2
               iload 0
               iload 1
               iadd
               ireturn
             .end",
            "m",
            &[Value::Int(i32::MAX), Value::Int(1)],
        );
        assert_eq!(r.unwrap(), Some(Value::Int(i32::MIN)));
    }

    #[test]
    fn min_div_minus_one_wraps() {
        let r = run_src(
            ".method m args=2 returns=true locals=2
               iload 0
               iload 1
               idiv
               ireturn
             .end",
            "m",
            &[Value::Int(i32::MIN), Value::Int(-1)],
        );
        assert_eq!(r.unwrap(), Some(Value::Int(i32::MIN)));
    }

    #[test]
    fn nan_comparison_semantics() {
        // dcmpg with a NaN pushes +1 → ifle falls through
        let src = ".method m args=2 returns=true locals=2
               dload 0
               dload 1
               dcmpg
               ireturn
             .end";
        let r = run_src(src, "m", &[Value::Double(f64::NAN), Value::Double(1.0)]);
        assert_eq!(r.unwrap(), Some(Value::Int(1)));
        let p = assemble(&src.replace("dcmpg", "dcmpl")).unwrap();
        let (id, _) = p.method_by_name("m").unwrap();
        let mut i = Interp::new(&p);
        let r = i.run(id, &[Value::Double(f64::NAN), Value::Double(1.0)]);
        assert_eq!(r.unwrap(), Some(Value::Int(-1)));
    }

    #[test]
    fn saturating_d2i() {
        let r = run_src(
            ".method m args=1 returns=true locals=1
               dload 0
               d2i
               ireturn
             .end",
            "m",
            &[Value::Double(1e300)],
        );
        assert_eq!(r.unwrap(), Some(Value::Int(i32::MAX)));
    }

    #[test]
    fn arrays_and_fields() {
        let r = run_src(
            ".class Box fields=1 statics=1
             .method m args=0 returns=true locals=2
               new Box
               astore 0
               aload 0
               bipush 7
               putfield Box 0
               iconst_3
               newarray int
               astore 1
               aload 1
               iconst_1
               aload 0
               getfield Box 0
               iastore
               aload 1
               iconst_1
               iaload
               ireturn
             .end",
            "m",
            &[],
        );
        assert_eq!(r.unwrap(), Some(Value::Int(7)));
    }

    #[test]
    fn statics_round_trip() {
        let r = run_src(
            ".class G fields=0 statics=2
             .method m args=0 returns=true locals=0
               bipush 9
               putstatic G 1
               getstatic G 1
               ireturn
             .end",
            "m",
            &[],
        );
        assert_eq!(r.unwrap(), Some(Value::Int(9)));
    }

    #[test]
    fn switch_dispatch() {
        let src = ".method m args=1 returns=true locals=1
               iload 0
               tableswitch 0:@zero 5:@five default:@other
             zero:
               bipush 100
               ireturn
             five:
               bipush 105
               ireturn
             other:
               iconst_m1
               ireturn
             .end";
        assert_eq!(run_src(src, "m", &[Value::Int(0)]).unwrap(), Some(Value::Int(100)));
        assert_eq!(run_src(src, "m", &[Value::Int(5)]).unwrap(), Some(Value::Int(105)));
        assert_eq!(run_src(src, "m", &[Value::Int(3)]).unwrap(), Some(Value::Int(-1)));
    }

    #[test]
    fn step_limit_guards_infinite_loops() {
        let p = assemble(
            ".method m args=0 returns=false locals=0
             top:
               goto @top
             .end",
        )
        .unwrap();
        let (id, _) = p.method_by_name("m").unwrap();
        let mut i = Interp::new(&p);
        i.limits.max_steps = 1_000;
        assert_eq!(i.run(id, &[]).unwrap_err().kind, JvmErrorKind::StepLimit);
    }

    #[test]
    fn shift_masking() {
        let r = run_src(
            ".method m args=2 returns=true locals=2
               iload 0
               iload 1
               ishl
               ireturn
             .end",
            "m",
            &[Value::Int(1), Value::Int(33)], // 33 & 31 == 1
        );
        assert_eq!(r.unwrap(), Some(Value::Int(2)));
    }
}

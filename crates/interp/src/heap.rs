//! The Java heap: objects and arrays addressed by opaque handles.
//!
//! The dissertation's Figure 10 memory organization splits Java memory into
//! the constant pool (per method, read-only), the method area (class/static
//! data), and the heap (object instances and arrays). This module implements
//! the heap; the method area lives in [`crate::JvmState`].

use javaflow_bytecode::{ArrayKind, Value};

use crate::{JvmError, JvmErrorKind};

/// A heap cell: an object instance or an array.
#[derive(Debug, Clone, PartialEq)]
pub enum HeapCell {
    /// An object: its class id and instance field slots.
    Object {
        /// Class id in the program's class table.
        class: u16,
        /// Field slot values.
        fields: Vec<Value>,
    },
    /// A primitive or reference array.
    Array {
        /// Element kind (`ArrayKind::Long` etc.); reference arrays use
        /// [`Heap::alloc_ref_array`].
        kind: ArrayElem,
        /// Element values.
        data: Vec<Value>,
    },
}

/// Element kind of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayElem {
    /// Primitive elements.
    Prim(ArrayKind),
    /// Reference elements of the given class id.
    Ref(u16),
}

impl ArrayElem {
    /// The default (zero) element for this kind.
    #[must_use]
    pub fn default_value(self) -> Value {
        match self {
            ArrayElem::Prim(ArrayKind::Long) => Value::Long(0),
            ArrayElem::Prim(ArrayKind::Float) => Value::Float(0.0),
            ArrayElem::Prim(ArrayKind::Double) => Value::Double(0.0),
            ArrayElem::Prim(_) => Value::Int(0),
            ArrayElem::Ref(_) => Value::NULL,
        }
    }
}

/// The garbage-collected heap (allocation-only; collection is excluded from
/// the dissertation's scope and from ours).
#[derive(Debug, Default)]
pub struct Heap {
    cells: Vec<HeapCell>,
}

impl Heap {
    /// An empty heap.
    #[must_use]
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Number of live cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the heap is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    fn push(&mut self, cell: HeapCell) -> u32 {
        self.cells.push(cell);
        (self.cells.len() - 1) as u32
    }

    /// Allocates an object with `fields` zeroed slots.
    pub fn alloc_object(&mut self, class: u16, fields: u16) -> u32 {
        self.push(HeapCell::Object { class, fields: vec![Value::Int(0); usize::from(fields)] })
    }

    /// Allocates a primitive array.
    ///
    /// # Errors
    ///
    /// `NegativeArraySize` when `len < 0`.
    pub fn alloc_array(&mut self, kind: ArrayKind, len: i32) -> Result<u32, JvmError> {
        self.alloc_elem_array(ArrayElem::Prim(kind), len)
    }

    /// Allocates a reference array.
    ///
    /// # Errors
    ///
    /// `NegativeArraySize` when `len < 0`.
    pub fn alloc_ref_array(&mut self, class: u16, len: i32) -> Result<u32, JvmError> {
        self.alloc_elem_array(ArrayElem::Ref(class), len)
    }

    fn alloc_elem_array(&mut self, kind: ArrayElem, len: i32) -> Result<u32, JvmError> {
        if len < 0 {
            return Err(JvmError::bare(JvmErrorKind::NegativeArraySize));
        }
        let data = vec![kind.default_value(); len as usize];
        Ok(self.push(HeapCell::Array { kind, data }))
    }

    fn cell(&self, handle: Option<u32>) -> Result<&HeapCell, JvmError> {
        let h = handle.ok_or_else(|| JvmError::bare(JvmErrorKind::NullPointer))?;
        self.cells.get(h as usize).ok_or_else(|| JvmError::bare(JvmErrorKind::DanglingHandle))
    }

    fn cell_mut(&mut self, handle: Option<u32>) -> Result<&mut HeapCell, JvmError> {
        let h = handle.ok_or_else(|| JvmError::bare(JvmErrorKind::NullPointer))?;
        self.cells.get_mut(h as usize).ok_or_else(|| JvmError::bare(JvmErrorKind::DanglingHandle))
    }

    /// The class id of an object.
    ///
    /// # Errors
    ///
    /// `NullPointer` for null, `TypeError` for arrays.
    pub fn object_class(&self, handle: Option<u32>) -> Result<u16, JvmError> {
        match self.cell(handle)? {
            HeapCell::Object { class, .. } => Ok(*class),
            HeapCell::Array { .. } => Err(JvmError::bare(JvmErrorKind::TypeError)),
        }
    }

    /// Reads an instance field.
    ///
    /// # Errors
    ///
    /// `NullPointer`, `TypeError`, or `FieldOutOfRange`.
    pub fn get_field(&self, handle: Option<u32>, slot: u16) -> Result<Value, JvmError> {
        match self.cell(handle)? {
            HeapCell::Object { fields, .. } => fields
                .get(usize::from(slot))
                .copied()
                .ok_or_else(|| JvmError::bare(JvmErrorKind::FieldOutOfRange)),
            HeapCell::Array { .. } => Err(JvmError::bare(JvmErrorKind::TypeError)),
        }
    }

    /// Writes an instance field.
    ///
    /// # Errors
    ///
    /// `NullPointer`, `TypeError`, or `FieldOutOfRange`.
    pub fn put_field(&mut self, handle: Option<u32>, slot: u16, v: Value) -> Result<(), JvmError> {
        match self.cell_mut(handle)? {
            HeapCell::Object { fields, .. } => {
                let f = fields
                    .get_mut(usize::from(slot))
                    .ok_or_else(|| JvmError::bare(JvmErrorKind::FieldOutOfRange))?;
                *f = v;
                Ok(())
            }
            HeapCell::Array { .. } => Err(JvmError::bare(JvmErrorKind::TypeError)),
        }
    }

    /// The length of an array.
    ///
    /// # Errors
    ///
    /// `NullPointer` or `TypeError`.
    pub fn array_len(&self, handle: Option<u32>) -> Result<i32, JvmError> {
        match self.cell(handle)? {
            HeapCell::Array { data, .. } => Ok(data.len() as i32),
            HeapCell::Object { .. } => Err(JvmError::bare(JvmErrorKind::TypeError)),
        }
    }

    /// Reads an array element. Array bounds are checked exactly as the
    /// fabric's storage nodes check them (Section 6.3 exceptions).
    ///
    /// # Errors
    ///
    /// `NullPointer`, `TypeError`, or `IndexOutOfBounds`.
    pub fn array_get(&self, handle: Option<u32>, index: i32) -> Result<Value, JvmError> {
        match self.cell(handle)? {
            HeapCell::Array { data, .. } => {
                if index < 0 || index as usize >= data.len() {
                    Err(JvmError::bare(JvmErrorKind::IndexOutOfBounds))
                } else {
                    Ok(data[index as usize])
                }
            }
            HeapCell::Object { .. } => Err(JvmError::bare(JvmErrorKind::TypeError)),
        }
    }

    /// Writes an array element.
    ///
    /// # Errors
    ///
    /// `NullPointer`, `TypeError`, or `IndexOutOfBounds`.
    pub fn array_set(&mut self, handle: Option<u32>, index: i32, v: Value) -> Result<(), JvmError> {
        match self.cell_mut(handle)? {
            HeapCell::Array { data, .. } => {
                if index < 0 || index as usize >= data.len() {
                    Err(JvmError::bare(JvmErrorKind::IndexOutOfBounds))
                } else {
                    data[index as usize] = v;
                    Ok(())
                }
            }
            HeapCell::Object { .. } => Err(JvmError::bare(JvmErrorKind::TypeError)),
        }
    }

    /// Direct read-only access to a cell (used by tests and the workload
    /// drivers to inspect results).
    ///
    /// # Errors
    ///
    /// `NullPointer` or `DanglingHandle`.
    pub fn inspect(&self, handle: Option<u32>) -> Result<&HeapCell, JvmError> {
        self.cell(handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_fields_round_trip() {
        let mut h = Heap::new();
        let o = h.alloc_object(0, 3);
        h.put_field(Some(o), 1, Value::Double(2.5)).unwrap();
        assert_eq!(h.get_field(Some(o), 1).unwrap(), Value::Double(2.5));
        assert_eq!(h.get_field(Some(o), 0).unwrap(), Value::Int(0));
    }

    #[test]
    fn null_pointer_checked() {
        let h = Heap::new();
        let e = h.get_field(None, 0).unwrap_err();
        assert_eq!(e.kind, JvmErrorKind::NullPointer);
    }

    #[test]
    fn array_bounds_checked() {
        let mut h = Heap::new();
        let a = h.alloc_array(ArrayKind::Int, 4).unwrap();
        h.array_set(Some(a), 3, Value::Int(9)).unwrap();
        assert_eq!(h.array_get(Some(a), 3).unwrap(), Value::Int(9));
        assert_eq!(h.array_len(Some(a)).unwrap(), 4);
        assert_eq!(h.array_get(Some(a), 4).unwrap_err().kind, JvmErrorKind::IndexOutOfBounds);
        assert_eq!(h.array_get(Some(a), -1).unwrap_err().kind, JvmErrorKind::IndexOutOfBounds);
    }

    #[test]
    fn negative_array_size_rejected() {
        let mut h = Heap::new();
        assert_eq!(
            h.alloc_array(ArrayKind::Int, -1).unwrap_err().kind,
            JvmErrorKind::NegativeArraySize
        );
    }

    #[test]
    fn type_confusion_rejected() {
        let mut h = Heap::new();
        let o = h.alloc_object(0, 1);
        assert_eq!(h.array_len(Some(o)).unwrap_err().kind, JvmErrorKind::TypeError);
        let a = h.alloc_array(ArrayKind::Int, 1).unwrap();
        assert_eq!(h.get_field(Some(a), 0).unwrap_err().kind, JvmErrorKind::TypeError);
    }

    #[test]
    fn ref_arrays_default_null() {
        let mut h = Heap::new();
        let a = h.alloc_ref_array(2, 2).unwrap();
        assert_eq!(h.array_get(Some(a), 0).unwrap(), Value::NULL);
    }
}

//! JVM runtime errors (the exception conditions of Section 6.3).

use javaflow_bytecode::{MethodId, Opcode};

/// The kind of a runtime failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum JvmErrorKind {
    /// Integer division or remainder by zero (`ArithmeticException`).
    DivideByZero,
    /// Dereference of a null reference (`NullPointerException`).
    NullPointer,
    /// Array index outside bounds (`ArrayIndexOutOfBoundsException`).
    IndexOutOfBounds,
    /// Negative array allocation size.
    NegativeArraySize,
    /// A reference handle no longer names a heap cell (internal).
    DanglingHandle,
    /// Operand of the wrong runtime type (JavaFlow's typed-network check).
    TypeError,
    /// Field slot outside the object layout.
    FieldOutOfRange,
    /// `checkcast` failure (`ClassCastException`).
    ClassCast,
    /// `athrow` of a user throwable.
    Thrown,
    /// Static field slot outside the class layout.
    StaticOutOfRange,
    /// The opcode is not executable (e.g. `wide` in the IR).
    Unsupported,
    /// Step budget exhausted (runaway guard, mirrors the dissertation's
    /// simulation timeouts).
    StepLimit,
    /// Call stack exceeded its limit (recursion guard).
    StackDepthExceeded,
}

impl JvmErrorKind {
    /// Human-readable description.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            JvmErrorKind::DivideByZero => "division by zero",
            JvmErrorKind::NullPointer => "null pointer dereference",
            JvmErrorKind::IndexOutOfBounds => "array index out of bounds",
            JvmErrorKind::NegativeArraySize => "negative array size",
            JvmErrorKind::DanglingHandle => "dangling heap handle",
            JvmErrorKind::TypeError => "operand type error",
            JvmErrorKind::FieldOutOfRange => "field slot out of range",
            JvmErrorKind::ClassCast => "class cast failure",
            JvmErrorKind::Thrown => "user exception thrown",
            JvmErrorKind::StaticOutOfRange => "static slot out of range",
            JvmErrorKind::Unsupported => "unsupported instruction",
            JvmErrorKind::StepLimit => "step limit exhausted",
            JvmErrorKind::StackDepthExceeded => "call stack depth exceeded",
        }
    }
}

/// A runtime failure, with source location when known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JvmError {
    /// What failed.
    pub kind: JvmErrorKind,
    /// Method in which the failure occurred, when known.
    pub method: Option<MethodId>,
    /// Linear address of the failing instruction, when known.
    pub pc: Option<u32>,
    /// The failing opcode, when known.
    pub op: Option<Opcode>,
}

impl JvmError {
    /// An error without location context (heap-level failures).
    #[must_use]
    pub fn bare(kind: JvmErrorKind) -> JvmError {
        JvmError { kind, method: None, pc: None, op: None }
    }

    /// Attaches location context if not already present.
    #[must_use]
    pub fn at(mut self, method: MethodId, pc: u32, op: Opcode) -> JvmError {
        self.method.get_or_insert(method);
        self.pc.get_or_insert(pc);
        self.op.get_or_insert(op);
        self
    }
}

impl std::fmt::Display for JvmError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fm, "{}", self.kind.describe())?;
        if let (Some(m), Some(pc)) = (self.method, self.pc) {
            write!(fm, " in {m} at @{pc}")?;
        }
        if let Some(op) = self.op {
            write!(fm, " ({op})")?;
        }
        Ok(())
    }
}

impl std::error::Error for JvmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_attachment_is_idempotent() {
        let e = JvmError::bare(JvmErrorKind::DivideByZero).at(MethodId(1), 5, Opcode::IDiv).at(
            MethodId(9),
            99,
            Opcode::IAdd,
        );
        assert_eq!(e.method, Some(MethodId(1)));
        assert_eq!(e.pc, Some(5));
        assert_eq!(e.op, Some(Opcode::IDiv));
    }

    #[test]
    fn display_mentions_location() {
        let e = JvmError::bare(JvmErrorKind::NullPointer).at(MethodId(2), 7, Opcode::GetField);
        let s = e.to_string();
        assert!(s.contains("m2"));
        assert!(s.contains("@7"));
        assert!(s.contains("getfield"));
    }
}

//! A JVM-lite interpreter: JavaFlow's General Purpose Processor and the
//! instrumented-JVM substitute used for the Chapter 5 dynamic analysis.
//!
//! * [`Interp`] executes [`javaflow_bytecode::Program`]s with faithful Java
//!   semantics (wrapping integer arithmetic, saturating float→int
//!   conversions, NaN-aware comparisons, array bounds and null checks);
//! * [`JvmState`] holds the heap and static class data and can be shared
//!   with the fabric simulator during co-simulation (the fabric's `Service`
//!   and `Call` instructions are executed here, as in the dissertation);
//! * [`Profiler`] reproduces the per-method 256-counter dynamic-mix
//!   instrument.
//!
//! # Example
//!
//! ```
//! use javaflow_bytecode::asm;
//! use javaflow_interp::Interp;
//! use javaflow_bytecode::Value;
//!
//! let program = asm::assemble(
//!     ".method square args=1 returns=true locals=1
//!        iload 0
//!        iload 0
//!        imul
//!        ireturn
//!      .end",
//! )
//! .unwrap();
//! let (id, _) = program.method_by_name("square").unwrap();
//! let mut jvm = Interp::new(&program).with_profiler();
//! assert_eq!(jvm.run(id, &[Value::Int(12)]).unwrap(), Some(Value::Int(144)));
//! assert_eq!(jvm.profiler.unwrap().total_ops(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod exec;
mod heap;
mod profile;

pub use error::{JvmError, JvmErrorKind};
pub use exec::{Interp, JvmState, Limits};
pub use heap::{ArrayElem, Heap, HeapCell};
pub use profile::{MethodProfile, Profiler};

//! Dynamic-mix profiling — the instrumented-JAMVM substitute.
//!
//! Chapter 5's methodology: "establish a 256 element array for each method
//! signature which was executed. Each element in the array is a counter for
//! the corresponding ByteCode instruction." This module reproduces that
//! instrument, plus the `_Quick` storage-instruction accounting of Table 5:
//! the *first* execution of each storage site pays the constant-pool
//! resolution (the "base" instruction) and every subsequent execution runs
//! quickened.

use std::collections::{HashMap, HashSet};

use javaflow_bytecode::{Insn, InstructionGroup, MethodId, Opcode};

/// Per-method dynamic counters.
#[derive(Debug, Clone)]
pub struct MethodProfile {
    /// One counter per opcode byte (the dissertation's 256-element array).
    pub counts: Box<[u64; 256]>,
    /// Number of invocations of the method.
    pub invocations: u64,
}

impl Default for MethodProfile {
    fn default() -> MethodProfile {
        MethodProfile { counts: Box::new([0; 256]), invocations: 0 }
    }
}

impl MethodProfile {
    /// Total dynamic instructions executed in this method.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Dynamic count for one opcode.
    #[must_use]
    pub fn count(&self, op: Opcode) -> u64 {
        self.counts[usize::from(op.byte())]
    }

    /// Dynamic count aggregated by instruction group.
    #[must_use]
    pub fn by_group(&self) -> HashMap<InstructionGroup, u64> {
        let mut m = HashMap::new();
        for op in Opcode::ALL {
            let c = self.count(*op);
            if c > 0 {
                *m.entry(op.group()).or_insert(0) += c;
            }
        }
        m
    }
}

/// The dynamic-mix profiler.
#[derive(Debug, Default)]
pub struct Profiler {
    methods: HashMap<MethodId, MethodProfile>,
    /// Storage sites already resolved (quickened).
    quickened: HashSet<(MethodId, u32)>,
    /// Dynamic storage ops still carrying resolution work.
    pub base_storage: u64,
    /// Dynamic storage ops executed in `_Quick` form.
    pub quick_storage: u64,
}

impl Profiler {
    /// A fresh profiler.
    #[must_use]
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Records one executed instruction.
    pub fn record(&mut self, method: MethodId, pc: u32, insn: &Insn) {
        let p = self.methods.entry(method).or_default();
        p.counts[usize::from(insn.op.byte())] += 1;
        if insn.op.is_ordered_memory() {
            if self.quickened.insert((method, pc)) {
                self.base_storage += 1;
            } else {
                self.quick_storage += 1;
            }
        }
    }

    /// Records a method invocation.
    pub fn record_invocation(&mut self, method: MethodId) {
        self.methods.entry(method).or_default().invocations += 1;
    }

    /// Per-method profiles.
    #[must_use]
    pub fn methods(&self) -> &HashMap<MethodId, MethodProfile> {
        &self.methods
    }

    /// Total dynamic instructions across all methods.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.methods.values().map(MethodProfile::total).sum()
    }

    /// Number of distinct methods executed.
    #[must_use]
    pub fn methods_executed(&self) -> usize {
        self.methods.len()
    }

    /// Methods sorted by descending dynamic instruction count.
    #[must_use]
    pub fn ranked(&self) -> Vec<(MethodId, u64)> {
        let mut v: Vec<(MethodId, u64)> =
            self.methods.iter().map(|(id, p)| (*id, p.total())).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The smallest prefix of [`Profiler::ranked`] covering `fraction` of
    /// all dynamic instructions (the dissertation's "90% methods").
    #[must_use]
    pub fn top_fraction(&self, fraction: f64) -> Vec<(MethodId, u64)> {
        let total = self.total_ops() as f64;
        let mut acc = 0u64;
        let mut out = Vec::new();
        for (id, n) in self.ranked() {
            if total > 0.0 && acc as f64 / total >= fraction {
                break;
            }
            acc += n;
            out.push((id, n));
        }
        out
    }

    /// Fraction of dynamic storage accesses that ran quickened (Table 5).
    #[must_use]
    pub fn quick_fraction(&self) -> f64 {
        let total = self.base_storage + self.quick_storage;
        if total == 0 {
            0.0
        } else {
            self.quick_storage as f64 / total as f64
        }
    }

    /// Merges another profiler's counts into this one (used when several
    /// benchmark iterations run on separate interpreters).
    pub fn merge(&mut self, other: &Profiler) {
        for (id, p) in &other.methods {
            let dst = self.methods.entry(*id).or_default();
            for (d, s) in dst.counts.iter_mut().zip(p.counts.iter()) {
                *d += s;
            }
            dst.invocations += p.invocations;
        }
        self.base_storage += other.base_storage;
        self.quick_storage += other.quick_storage;
        self.quickened.extend(other.quickened.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use javaflow_bytecode::Operand;

    fn insn(op: Opcode) -> Insn {
        Insn::simple(op)
    }

    #[test]
    fn counts_by_opcode() {
        let mut p = Profiler::new();
        let m = MethodId(0);
        p.record(m, 0, &insn(Opcode::IAdd));
        p.record(m, 0, &insn(Opcode::IAdd));
        p.record(m, 1, &insn(Opcode::IMul));
        let mp = &p.methods()[&m];
        assert_eq!(mp.count(Opcode::IAdd), 2);
        assert_eq!(mp.count(Opcode::IMul), 1);
        assert_eq!(mp.total(), 3);
        assert_eq!(p.total_ops(), 3);
    }

    #[test]
    fn quick_fraction_matches_site_model() {
        let mut p = Profiler::new();
        let m = MethodId(0);
        let ld = Insn::new(
            Opcode::GetField,
            Operand::Field(javaflow_bytecode::FieldRef { class: 0, slot: 0 }),
        );
        for _ in 0..100 {
            p.record(m, 7, &ld);
        }
        // 1 base execution + 99 quick.
        assert_eq!(p.base_storage, 1);
        assert_eq!(p.quick_storage, 99);
        assert!((p.quick_fraction() - 0.99).abs() < 1e-9);
    }

    #[test]
    fn top_fraction_selects_hot_methods() {
        let mut p = Profiler::new();
        for _ in 0..90 {
            p.record(MethodId(0), 0, &insn(Opcode::IAdd));
        }
        for _ in 0..9 {
            p.record(MethodId(1), 0, &insn(Opcode::IAdd));
        }
        p.record(MethodId(2), 0, &insn(Opcode::IAdd));
        let top = p.top_fraction(0.9);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].0, MethodId(0));
        let all = p.top_fraction(1.0);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Profiler::new();
        let mut b = Profiler::new();
        a.record(MethodId(0), 0, &insn(Opcode::IAdd));
        b.record(MethodId(0), 0, &insn(Opcode::IAdd));
        b.record_invocation(MethodId(0));
        a.merge(&b);
        assert_eq!(a.methods()[&MethodId(0)].count(Opcode::IAdd), 2);
        assert_eq!(a.methods()[&MethodId(0)].invocations, 1);
    }

    #[test]
    fn group_aggregation() {
        let mut p = Profiler::new();
        p.record(MethodId(0), 0, &insn(Opcode::IAdd));
        p.record(MethodId(0), 1, &insn(Opcode::DMul));
        let g = p.methods()[&MethodId(0)].by_group();
        assert_eq!(g[&InstructionGroup::ArithInteger], 1);
        assert_eq!(g[&InstructionGroup::FloatArith], 1);
    }
}

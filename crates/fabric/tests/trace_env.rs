//! Per-run behaviour of the `JAVAFLOW_TRACE_REG` / `JAVAFLOW_TRACE_MEM`
//! stderr-sink aliases. These live alone in this binary: the tests mutate
//! process environment variables, which would race the parallel test
//! runner if any other test shared the process.

use javaflow_fabric::trace::env_stderr_sink;

/// The old implementation latched each toggle in a `OnceLock`, so a test
/// (or embedder) could never enable tracing after the first untraced run
/// of the process. The sink factory must observe the environment on
/// every call.
#[test]
fn env_sink_follows_the_environment_per_call() {
    std::env::remove_var("JAVAFLOW_TRACE_REG");
    std::env::remove_var("JAVAFLOW_TRACE_MEM");
    assert!(env_stderr_sink().is_none(), "no vars set ⇒ no sink");

    std::env::set_var("JAVAFLOW_TRACE_REG", "1");
    let sink = env_stderr_sink().expect("REG set ⇒ sink");
    assert!(sink.reg && !sink.mem);

    std::env::set_var("JAVAFLOW_TRACE_MEM", "1");
    let sink = env_stderr_sink().expect("both set ⇒ sink");
    assert!(sink.reg && sink.mem);

    std::env::remove_var("JAVAFLOW_TRACE_REG");
    let sink = env_stderr_sink().expect("MEM still set ⇒ sink");
    assert!(!sink.reg && sink.mem);

    // And back off again — the old OnceLock could never do this.
    std::env::remove_var("JAVAFLOW_TRACE_MEM");
    assert!(env_stderr_sink().is_none(), "vars cleared ⇒ no sink again");
}

//! Execution-engine edge cases: timeouts, configuration cost ordering,
//! memory-ordering stress, graph transformations under loops, and token
//! barrier behavior with service instructions.

use javaflow_bytecode::{asm::assemble, Program, Value};
use javaflow_fabric::{
    execute, load, BranchMode, ExecParams, FabricConfig, Gpp, NetKind, Outcome, Timing,
};
use javaflow_interp::Interp;

fn program(src: &str) -> Program {
    let p = assemble(src).unwrap();
    p.validate().unwrap();
    p
}

fn data_run(
    p: &Program,
    name: &str,
    args: &[Value],
    config: &FabricConfig,
) -> (Outcome, javaflow_fabric::ExecReport) {
    let (_, m) = p.method_by_name(name).unwrap();
    let loaded = load(m, config).unwrap();
    let mut gpp = Interp::new(p);
    let report = execute(
        &loaded,
        config,
        ExecParams {
            mode: BranchMode::Data,
            gpp: Gpp::Interp(&mut gpp),
            args: args.to_vec(),
            ..ExecParams::default()
        },
    );
    (report.outcome.clone(), report)
}

#[test]
fn timeout_is_reported() {
    // An infinite data-mode loop must hit the cycle budget.
    let p = program(
        ".method spin args=0 returns=false locals=0
         top:
           goto @top
         .end",
    );
    let (_, m) = p.method_by_name("spin").unwrap();
    let config = FabricConfig::compact2();
    let loaded = load(m, &config).unwrap();
    let mut gpp = Interp::new(&p);
    let report = execute(
        &loaded,
        &config,
        ExecParams {
            mode: BranchMode::Data,
            gpp: Gpp::Interp(&mut gpp),
            max_mesh_cycles: 2_000,
            ..ExecParams::default()
        },
    );
    assert_eq!(report.outcome, Outcome::Timeout);
    assert!(report.mesh_cycles <= 2_100);
}

#[test]
fn sparse_costs_more_cycles_than_compact() {
    let p = program(
        ".method sum args=1 returns=true locals=2
           iconst_0
           istore 1
         top:
           iload 1
           iload 0
           iadd
           istore 1
           iinc 0 -1
           iload 0
           ifgt @top
           iload 1
           ireturn
         .end",
    );
    let (_, compact) = data_run(&p, "sum", &[Value::Int(20)], &FabricConfig::compact2());
    let (_, sparse) = data_run(&p, "sum", &[Value::Int(20)], &FabricConfig::sparse2());
    assert!(
        sparse.mesh_cycles > compact.mesh_cycles,
        "sparse {} vs compact {}",
        sparse.mesh_cycles,
        compact.mesh_cycles
    );
}

#[test]
fn serial_ratio_is_monotone() {
    let p = program(
        ".method sum args=1 returns=true locals=2
           iconst_0
           istore 1
         top:
           iload 1
           iload 0
           iadd
           istore 1
           iinc 0 -1
           iload 0
           ifgt @top
           iload 1
           ireturn
         .end",
    );
    let mut last_ipc = 0.0;
    for ratio in [1u32, 2, 4, 8, 16] {
        let config = FabricConfig {
            name: "Sweep",
            serial_per_mesh: Some(ratio),
            collapsed: false,
            ..FabricConfig::baseline()
        };
        let (outcome, report) = data_run(&p, "sum", &[Value::Int(10)], &config);
        assert_eq!(outcome, Outcome::Returned(Some(Value::Int(55))));
        assert!(
            report.ipc >= last_ipc,
            "ratio {ratio}: IPC {} regressed below {last_ipc}",
            report.ipc
        );
        last_ipc = report.ipc;
    }
}

#[test]
fn memory_ordering_read_after_write_chain() {
    // Repeatedly increment a single array slot through memory: every read
    // must observe the previous write (MEMORY_TOKEN ordering).
    let p = program(
        ".method chain args=1 returns=true locals=2
           iconst_1
           newarray int
           astore 1
         top:
           aload 1
           iconst_0
           aload 1
           iconst_0
           iaload
           iconst_1
           iadd
           iastore
           iinc 0 -1
           iload 0
           ifgt @top
           aload 1
           iconst_0
           iaload
           ireturn
         .end",
    );
    for config in FabricConfig::all_six() {
        let (outcome, _) = data_run(&p, "chain", &[Value::Int(25)], &config);
        assert_eq!(outcome, Outcome::Returned(Some(Value::Int(25))), "{}", config.name);
    }
}

#[test]
fn write_after_write_last_wins() {
    let p = program(
        ".method waw args=0 returns=true locals=1
           iconst_1
           newarray int
           astore 0
           aload 0
           iconst_0
           bipush 11
           iastore
           aload 0
           iconst_0
           bipush 22
           iastore
           aload 0
           iconst_0
           iaload
           ireturn
         .end",
    );
    for config in FabricConfig::all_six() {
        let (outcome, _) = data_run(&p, "waw", &[], &config);
        assert_eq!(outcome, Outcome::Returned(Some(Value::Int(22))), "{}", config.name);
    }
}

#[test]
fn folding_preserves_loop_semantics() {
    // A loop whose body uses dup: folding must not change the result.
    let p = program(
        ".method m args=1 returns=true locals=2
           iconst_1
           istore 1
         top:
           iload 1
           dup
           iadd
           istore 1
           iinc 0 -1
           iload 0
           ifgt @top
           iload 1
           ireturn
         .end",
    );
    let (_, m) = p.method_by_name("m").unwrap();
    let config = FabricConfig::compact4();
    let mut folded = load(m, &config).unwrap();
    let n = folded.graph_mut().fold_moves(m);
    assert_eq!(n, 1);
    let mut gpp = Interp::new(&p);
    let report = execute(
        &folded,
        &config,
        ExecParams {
            mode: BranchMode::Data,
            gpp: Gpp::Interp(&mut gpp),
            args: vec![Value::Int(5)],
            ..ExecParams::default()
        },
    );
    // 1 doubled 5 times = 32.
    assert_eq!(report.outcome, Outcome::Returned(Some(Value::Int(32))));
}

#[test]
fn fanout_relays_preserve_semantics() {
    // After folding, a constant fans out to several consumers; limiting the
    // fanout must not change the value.
    let p = program(
        ".method m args=0 returns=true locals=0
           iconst_3
           dup
           dup2
           iadd
           iadd
           iadd
           ireturn
         .end",
    );
    let (_, m) = p.method_by_name("m").unwrap();
    let config = FabricConfig::compact2();
    let mut limited = load(m, &config).unwrap();
    limited.graph_mut().fold_moves(m);
    let placement = limited.placement.clone();
    let relays = limited.graph_mut().limit_fanout(2, &placement);
    assert!(relays > 0);
    let mut gpp = Interp::new(&p);
    let report = execute(
        &limited,
        &config,
        ExecParams { mode: BranchMode::Data, gpp: Gpp::Interp(&mut gpp), ..ExecParams::default() },
    );
    assert_eq!(report.outcome, Outcome::Returned(Some(Value::Int(12))));
    assert!(report.relay_fires > 0);
}

#[test]
fn backward_jump_reinjects_on_sparse2_and_hetero2() {
    // The buffer-until-TAIL / reverse-network re-inject path must survive
    // layouts where the loop body spans blank (Sparse2) or type-constrained
    // (Hetero2) nodes, not just the homogeneous meshes: distances and
    // token-arrival orders differ, but the bundle must reset the loop body
    // and converge to the same value.
    let p = program(
        ".method sum args=1 returns=true locals=2
           iconst_0
           istore 1
         top:
           iload 1
           iload 0
           iadd
           istore 1
           iinc 0 -1
           iload 0
           ifgt @top
           iload 1
           ireturn
         .end",
    );
    for config in [FabricConfig::sparse2(), FabricConfig::hetero2()] {
        let (outcome, report) = data_run(&p, "sum", &[Value::Int(12)], &config);
        assert_eq!(outcome, Outcome::Returned(Some(Value::Int(78))), "{}", config.name);
        // Every loop iteration re-fires the body: far more dynamic than
        // static instructions.
        assert!(report.executed > 40, "{}: executed {}", config.name, report.executed);
    }
}

#[test]
fn nested_backward_jumps_on_sparse2_and_hetero2() {
    // Two nested loops: the inner back-jump re-injects repeatedly inside
    // each outer iteration. 4 outer × 3 inner increments = 12.
    let p = program(
        ".method nest args=0 returns=true locals=3
           iconst_0
           istore 0
           iconst_4
           istore 1
         outer:
           iconst_3
           istore 2
         inner:
           iinc 0 1
           iinc 2 -1
           iload 2
           ifgt @inner
           iinc 1 -1
           iload 1
           ifgt @outer
           iload 0
           ireturn
         .end",
    );
    for config in [FabricConfig::sparse2(), FabricConfig::hetero2()] {
        let (outcome, _) = data_run(&p, "nest", &[], &config);
        assert_eq!(outcome, Outcome::Returned(Some(Value::Int(12))), "{}", config.name);
    }
}

#[test]
fn contended_net_preserves_results_and_costs_cycles() {
    // Same program, same data: the contended interconnect may only slow
    // runs down, never change outcomes; it must attach link statistics.
    let p = program(
        ".method chain args=1 returns=true locals=2
           iconst_1
           newarray int
           astore 1
         top:
           aload 1
           iconst_0
           aload 1
           iconst_0
           iaload
           iconst_1
           iadd
           iastore
           iinc 0 -1
           iload 0
           ifgt @top
           aload 1
           iconst_0
           iaload
           ireturn
         .end",
    );
    for ideal in FabricConfig::all_six() {
        let contended = ideal.clone().with_net(NetKind::Contended);
        let (o1, r1) = data_run(&p, "chain", &[Value::Int(10)], &ideal);
        let (o2, r2) = data_run(&p, "chain", &[Value::Int(10)], &contended);
        assert_eq!(o1, Outcome::Returned(Some(Value::Int(10))), "{}", ideal.name);
        assert_eq!(o1, o2, "{}", ideal.name);
        assert!(
            r2.mesh_cycles >= r1.mesh_cycles,
            "{}: contended {} < ideal {}",
            ideal.name,
            r2.mesh_cycles,
            r1.mesh_cycles
        );
        assert!(r1.net.is_none(), "{}: ideal run attached net stats", ideal.name);
        let net = r2.net.as_ref().expect("contended run attaches net stats");
        assert_eq!(net.mesh_flits, r2.mesh_msgs, "{}", ideal.name);
        assert!(net.mesh_hops >= net.mesh_flits, "{}", ideal.name);
        assert!(net.memory_ring.requests > 0, "{}", ideal.name);
        assert!(!net.hotspots.is_empty(), "{}", ideal.name);
    }
}

#[test]
fn contended_net_is_deterministic() {
    let p = program(
        ".method sum args=1 returns=true locals=2
           iconst_0
           istore 1
         top:
           iload 1
           iload 0
           iadd
           istore 1
           iinc 0 -1
           iload 0
           ifgt @top
           iload 1
           ireturn
         .end",
    );
    let config = FabricConfig::compact2().with_net(NetKind::Contended);
    let (o1, r1) = data_run(&p, "sum", &[Value::Int(20)], &config);
    let (o2, r2) = data_run(&p, "sum", &[Value::Int(20)], &config);
    assert_eq!(o1, o2);
    assert_eq!(r1, r2);
}

#[test]
fn call_at_method_tail_releases_tail_token() {
    // A call as the second-to-last instruction: the TAIL must wait for the
    // GPP service to finish, then reach the return.
    let p = program(
        ".method f args=1 returns=true locals=1
           iload 0
           iconst_1
           iadd
           ireturn
         .end
         .method m args=1 returns=true locals=1
           iload 0
           invokestatic f
           ireturn
         .end",
    );
    for config in FabricConfig::all_six() {
        let (outcome, _) = data_run(&p, "m", &[Value::Int(41)], &config);
        assert_eq!(outcome, Outcome::Returned(Some(Value::Int(42))), "{}", config.name);
    }
}

#[test]
fn coverage_reflects_untaken_paths() {
    // One branch arm never executes: coverage must be below 100%.
    let p = program(
        ".method m args=1 returns=true locals=1
           iload 0
           ifne @taken
           bipush 10
           ireturn
         taken:
           bipush 20
           bipush 30
           iadd
           ireturn
         .end",
    );
    let (_, report) = data_run(&p, "m", &[Value::Int(0)], &FabricConfig::compact2());
    assert!(report.coverage < 1.0);
    assert!(report.static_covered >= 4);
}

#[test]
fn custom_timing_scales_cycles() {
    // Doubling every latency must not change results and must slow the run.
    let p = program(
        ".method m args=2 returns=true locals=2
           dload 0
           dload 1
           dmul
           dload 0
           dadd
           dreturn
         .end",
    );
    let base = FabricConfig::compact2();
    let slow = FabricConfig {
        timing: Timing {
            move_cycles: 2,
            float_cycles: 20,
            convert_cycles: 10,
            other_cycles: 4,
            memory_service: 20,
            gpp_service: 40,
            mesh_hop_cycles: 2,
        },
        ..FabricConfig::compact2()
    };
    let args = [Value::Double(1.5), Value::Double(2.0)];
    let (o1, r1) = data_run(&p, "m", &args, &base);
    let (o2, r2) = data_run(&p, "m", &args, &slow);
    assert_eq!(o1, Outcome::Returned(Some(Value::Double(4.5))));
    assert_eq!(o1, o2);
    assert!(r2.mesh_cycles > r1.mesh_cycles);
}

#[test]
fn report_counters_are_consistent() {
    let p = program(
        ".method m args=1 returns=true locals=2
           iconst_0
           istore 1
         top:
           iload 1
           iload 0
           iadd
           istore 1
           iinc 0 -1
           iload 0
           ifgt @top
           iload 1
           ireturn
         .end",
    );
    let (_, report) = data_run(&p, "m", &[Value::Int(5)], &FabricConfig::compact10());
    // 5 iterations × 7 loop instructions + prologue 2 + epilogue 2.
    assert!(report.executed >= 30, "executed {}", report.executed);
    assert_eq!(report.static_covered, 11); // every instruction fired
    assert!(report.serial_msgs > report.executed, "tokens dominate traffic");
    assert!(report.mesh_msgs > 0);
    assert!(report.ipc > 0.0 && report.ipc < 16.0);
    assert!(report.frac_cycles_ge1 >= report.frac_cycles_ge2);
}

#[test]
fn load_with_resolved_equals_load() {
    // The per-record preparation cache must be invisible: stamping a
    // prepared method onto each configuration yields exactly the loaded
    // state (and execution reports) of a from-scratch `load`.
    let p = program(
        ".method m args=1 returns=true locals=2
           iconst_0
           istore 1
         top:
           iload 1
           iload 0
           iadd
           istore 1
           iinc 0 -1
           iload 0
           ifgt @top
           iload 1
           ireturn
         .end",
    );
    let (_, m) = p.method_by_name("m").unwrap();
    let prepared = javaflow_fabric::prepare(m).unwrap();
    for config in FabricConfig::all_six() {
        let direct = load(m, &config).unwrap();
        let cached = javaflow_fabric::load_with_resolved(&prepared, &config).unwrap();
        assert_eq!(format!("{direct:?}"), format!("{cached:?}"), "{}", config.name);
        let run = |lm: &javaflow_fabric::LoadedMethod<'_>| {
            execute(lm, &config, ExecParams { mode: BranchMode::Bp1, ..ExecParams::default() })
        };
        assert_eq!(run(&direct), run(&cached), "{}", config.name);
    }
}

#[test]
fn arena_reuse_is_invisible() {
    // Back-to-back runs in one arena (different modes, different methods)
    // must produce the same reports as fresh-allocation runs.
    let p = program(
        ".method m args=1 returns=true locals=2
           iconst_0
           istore 1
         top:
           iload 1
           iload 0
           iadd
           istore 1
           iinc 0 -1
           iload 0
           ifgt @top
           iload 1
           ireturn
         .end
         .method k args=2 returns=true locals=2
           iload 0
           iload 1
           ixor
           ireturn
         .end",
    );
    let (_, m1) = p.method_by_name("m").unwrap();
    let (_, m2) = p.method_by_name("k").unwrap();
    let config = FabricConfig::compact2();
    let l1 = load(m1, &config).unwrap();
    let l2 = load(m2, &config).unwrap();
    let mut arena = javaflow_fabric::SimArena::new();
    for mode in [BranchMode::Bp1, BranchMode::Bp2] {
        for lm in [&l1, &l2] {
            let fresh = execute(lm, &config, ExecParams { mode, ..ExecParams::default() });
            let reused = javaflow_fabric::execute_in(
                lm,
                &config,
                ExecParams { mode, ..ExecParams::default() },
                &mut arena,
            );
            assert_eq!(fresh, reused, "{mode:?}");
        }
    }
}

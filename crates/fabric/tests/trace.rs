//! Trace-recording properties: determinism of the recorded byte stream
//! (repeats, arena reuse, fast-forward on/off), zero-impact of an active
//! sink on the report's observable fields, and the Warn events emitted
//! when a requested fast-forward is declined for semantic reasons.

use javaflow_bytecode::{asm, Value};
use javaflow_fabric::net::NetKind;
use javaflow_fabric::trace::{
    WARN_COMPILE_DATA_MODE, WARN_COMPILE_GPP, WARN_COMPILE_NET_ORDER, WARN_FF_GPP,
    WARN_FF_NET_ORDER,
};
use javaflow_fabric::{
    execute, execute_with_sink, load, BranchMode, ExecParams, FabricConfig, Gpp, RingRecorder,
    SimArena, TraceKind,
};
use javaflow_interp::Interp;
use javaflow_workloads::synthetic::{generate, hotspot, GenConfig};

fn params(ff: bool) -> ExecParams<'static, 'static> {
    ExecParams {
        mode: BranchMode::Bp1,
        max_mesh_cycles: 50_000,
        fast_forward: ff,
        ..ExecParams::default()
    }
}

fn record(
    loaded: &javaflow_fabric::LoadedMethod<'_>,
    config: &FabricConfig,
    ff: bool,
    arena: &mut SimArena,
) -> Vec<u8> {
    let mut rec = RingRecorder::with_capacity(1 << 19);
    execute_with_sink(loaded, config, params(ff), arena, &mut rec);
    assert_eq!(rec.dropped(), 0, "recorder dropped events; raise the capacity");
    rec.to_bytes()
}

/// Same method + config ⇒ byte-identical recording, whether the arena is
/// fresh or reused and whether fast-forward was requested or not (an
/// active sink always takes the naive walk, and ideal-net runs emit no
/// Warn, so the streams must match to the byte).
#[test]
fn recording_is_byte_identical_across_repeats_arena_reuse_and_ff() {
    let (program, ids) = generate(&GenConfig { count: 8, ..GenConfig::default() });
    let mut reused = SimArena::new();
    for config in [FabricConfig::compact2(), FabricConfig::sparse2()] {
        for &id in &ids {
            let method = program.method(id);
            let Ok(loaded) = load(method, &config) else { continue };
            let baseline = record(&loaded, &config, true, &mut SimArena::new());
            let repeat = record(&loaded, &config, true, &mut SimArena::new());
            assert_eq!(baseline, repeat, "{}: repeat diverged", config.name);
            let on_reused = record(&loaded, &config, true, &mut reused);
            assert_eq!(baseline, on_reused, "{}: arena reuse diverged", config.name);
            let naive = record(&loaded, &config, false, &mut SimArena::new());
            assert_eq!(baseline, naive, "{}: ff on/off diverged", config.name);
        }
    }
}

/// An active sink forces the naive walk but must not change any
/// observable report field; the ff-exempt counters behave like a
/// `fast_forward: false` run.
#[test]
fn active_sink_leaves_the_report_unchanged() {
    let (program, id) = hotspot();
    let method = program.method(id);
    for config in [FabricConfig::compact2(), FabricConfig::sparse2()] {
        let loaded = load(method, &config).expect("hotspot loads");
        let plain = execute(&loaded, &config, params(false));
        let mut rec = RingRecorder::with_capacity(1 << 19);
        let traced =
            execute_with_sink(&loaded, &config, params(true), &mut SimArena::new(), &mut rec);
        assert_eq!(traced, plain, "{}: tracing changed the report", config.name);
        assert_eq!(traced.events_skipped, 0, "{}: traced run fast-forwarded", config.name);
        assert!(rec.events().len() as u64 > traced.executed, "{}: too few events", config.name);
    }
}

/// A contended net declines fast-forward; with a sink attached, the
/// recording must say so — exactly once, and only when it was requested.
#[test]
fn declined_fast_forward_warns_net_order() {
    let (program, id) = hotspot();
    let method = program.method(id);
    let config = FabricConfig::compact2().with_net(NetKind::Contended);
    let loaded = load(method, &config).expect("hotspot loads");
    let mut rec = RingRecorder::with_capacity(1 << 19);
    execute_with_sink(&loaded, &config, params(true), &mut SimArena::new(), &mut rec);
    let warns: Vec<u32> =
        rec.events().iter().filter(|e| e.kind == TraceKind::Warn).map(|e| e.arg).collect();
    assert_eq!(warns, [WARN_FF_NET_ORDER], "expected exactly one net-order warn");

    // Not requested ⇒ nothing to warn about.
    let mut quiet = RingRecorder::with_capacity(1 << 19);
    execute_with_sink(&loaded, &config, params(false), &mut SimArena::new(), &mut quiet);
    assert!(
        quiet.events().iter().all(|e| e.kind != TraceKind::Warn),
        "unrequested fast-forward must not warn"
    );
}

/// A non-stub GPP declines fast-forward; the recording names that reason.
#[test]
fn declined_fast_forward_warns_gpp() {
    let program = asm::assemble(
        ".method triple args=1 returns=true locals=1
           iload 0
           iconst_3
           imul
           ireturn
         .end",
    )
    .unwrap();
    let (_, method) = program.method_by_name("triple").unwrap();
    let config = FabricConfig::compact2();
    let loaded = load(method, &config).expect("triple loads");
    let mut gpp = Interp::new(&program);
    let mut rec = RingRecorder::with_capacity(1 << 16);
    let report = execute_with_sink(
        &loaded,
        &config,
        ExecParams {
            mode: BranchMode::Data,
            gpp: Gpp::Interp(&mut gpp),
            args: vec![Value::Int(14)],
            ..ExecParams::default()
        },
        &mut SimArena::new(),
        &mut rec,
    );
    assert_eq!(report.outcome, javaflow_fabric::Outcome::Returned(Some(Value::Int(42))));
    let warns: Vec<u32> =
        rec.events().iter().filter(|e| e.kind == TraceKind::Warn).map(|e| e.arg).collect();
    assert_eq!(warns, [WARN_FF_GPP], "expected exactly one gpp warn");
}

/// A declined block compilation names every reason, mirroring the
/// `WARN_FF_*` convention: a contended net warns net-order; a data-mode
/// run on a live interpreter warns both the GPP and the branch mode.
#[test]
fn declined_compilation_warns_each_reason() {
    let (program, id) = hotspot();
    let method = program.method(id);
    let config = FabricConfig::compact2().with_net(NetKind::Contended);
    let loaded = load(method, &config).expect("hotspot loads");
    let mut rec = RingRecorder::with_capacity(1 << 19);
    execute_with_sink(
        &loaded,
        &config,
        ExecParams { compiled: true, ..params(false) },
        &mut SimArena::new(),
        &mut rec,
    );
    let warns: Vec<u32> =
        rec.events().iter().filter(|e| e.kind == TraceKind::Warn).map(|e| e.arg).collect();
    assert_eq!(warns, [WARN_COMPILE_NET_ORDER], "expected exactly one compile net-order warn");

    let program = asm::assemble(
        ".method triple args=1 returns=true locals=1
           iload 0
           iconst_3
           imul
           ireturn
         .end",
    )
    .unwrap();
    let (_, method) = program.method_by_name("triple").unwrap();
    let config = FabricConfig::compact2();
    let loaded = load(method, &config).expect("triple loads");
    let mut gpp = Interp::new(&program);
    let mut rec = RingRecorder::with_capacity(1 << 16);
    execute_with_sink(
        &loaded,
        &config,
        ExecParams {
            mode: BranchMode::Data,
            gpp: Gpp::Interp(&mut gpp),
            args: vec![Value::Int(14)],
            compiled: true,
            fast_forward: false,
            ..ExecParams::default()
        },
        &mut SimArena::new(),
        &mut rec,
    );
    let warns: Vec<u32> =
        rec.events().iter().filter(|e| e.kind == TraceKind::Warn).map(|e| e.arg).collect();
    assert_eq!(
        warns,
        [WARN_COMPILE_GPP, WARN_COMPILE_DATA_MODE],
        "expected the gpp and data-mode compile warns"
    );

    // Not requested ⇒ nothing to warn about (an eligible traced run
    // declines silently: the sink forcing the naive walk is not semantic).
    let mut quiet = RingRecorder::with_capacity(1 << 19);
    let (program, id) = hotspot();
    let method = program.method(id);
    let ideal = FabricConfig::compact2();
    let loaded = load(method, &ideal).expect("hotspot loads");
    execute_with_sink(
        &loaded,
        &ideal,
        ExecParams { compiled: true, ..params(false) },
        &mut SimArena::new(),
        &mut quiet,
    );
    assert!(
        quiet.events().iter().all(|e| e.kind != TraceKind::Warn),
        "an eligible compiled run declined by the sink must not warn"
    );
}

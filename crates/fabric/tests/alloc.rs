//! Zero-allocation steady state: once a [`SimArena`] has been warmed up
//! on a method, re-executing it (scripted, ideal interconnect) must not
//! touch the heap at all — the timing wheel, the struct-of-arrays node
//! slabs, and the alloc-free compute path cover every event the loop
//! processes.
//!
//! A contended-interconnect run builds a fresh [`ContendedNet`] per
//! execution, so it cannot be literally zero-alloc — but because the
//! router slabs are sized from the config dimensions up front, its
//! per-run allocation count must be a small constant (the two slabs plus
//! the hotspot report), never traffic-dependent.
//!
//! The counting `#[global_allocator]` is process-wide, so every test in
//! this binary holds [`SERIAL`] for its whole body — a concurrent test's
//! allocations would otherwise show up in the measured window. The
//! contended phase lives inside the same `#[test]` for the same reason.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

use javaflow_bytecode::asm::assemble;
use javaflow_fabric::{
    execute_in, load, ArenaPool, BranchMode, ExecParams, FabricConfig, NetKind, Outcome, SimArena,
};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

static SERIAL: Mutex<()> = Mutex::new(());

const SUM_LOOP: &str = ".method sum args=1 returns=true locals=3
   iconst_0
   istore 1
 top:
   iload 1
   iload 0
   iadd
   istore 1
   iinc 0 -1
   iload 0
   ifgt @top
   iload 1
   ireturn
 .end";

#[test]
fn warm_scripted_run_does_not_allocate() {
    let _serial = SERIAL.lock().unwrap();
    let p = assemble(SUM_LOOP).unwrap();
    let (_, m) = p.method_by_name("sum").unwrap();
    let config = FabricConfig::compact2();
    let loaded = load(m, &config).unwrap();
    let mut arena = SimArena::new();

    let run = |arena: &mut SimArena| {
        execute_in(
            &loaded,
            &config,
            ExecParams { mode: BranchMode::Bp1, ..ExecParams::default() },
            arena,
        )
    };

    // Warm-up: sizes the arena slabs and wheel buckets for this method,
    // and initializes process-level lazy state (trace-env lookups).
    let warm = run(&mut arena);
    assert!(matches!(warm.outcome, Outcome::Returned(_)), "warm-up run: {:?}", warm.outcome);
    assert!(warm.executed > 20, "the loop should iterate (bp back jumps taken 9 of 10)");

    // Measured runs: the steady state must be allocation-free. (No
    // `format!` in this window — the checks themselves must not touch
    // the heap on the success path.)
    let before = ALLOCS.load(Relaxed);
    for _ in 0..3 {
        let report = run(&mut arena);
        assert!(report.outcome == warm.outcome);
        assert!(report.executed == warm.executed);
        assert!(report.events == warm.events);
    }
    let after = ALLOCS.load(Relaxed);
    assert_eq!(after - before, 0, "warm simulation runs must not allocate");

    // Contended phase: every run constructs a fresh `ContendedNet`, whose
    // link/node slabs are preallocated from the config dimensions, plus
    // one hotspot vector in the report. The count per warm run must be a
    // small constant — identical across runs and independent of traffic —
    // or the router state has regressed to resize-on-demand.
    let contended = config.clone().with_net(NetKind::Contended);
    let loaded_c = load(m, &contended).unwrap();
    let run_c = |arena: &mut SimArena| {
        execute_in(
            &loaded_c,
            &contended,
            ExecParams { mode: BranchMode::Bp1, ..ExecParams::default() },
            arena,
        )
    };
    let warm_c = run_c(&mut arena);
    assert!(
        matches!(warm_c.outcome, Outcome::Returned(_)),
        "contended warm-up: {:?}",
        warm_c.outcome
    );
    assert!(warm_c.net.is_some(), "contended run must carry a net report");

    let mut per_run = [0u64; 3];
    for slot in &mut per_run {
        let before = ALLOCS.load(Relaxed);
        let report = run_c(&mut arena);
        *slot = ALLOCS.load(Relaxed) - before;
        assert!(report.outcome == warm_c.outcome);
        assert!(report.events == warm_c.events);
    }
    assert!(per_run[0] == per_run[1] && per_run[1] == per_run[2]);
    assert!(
        per_run[0] <= 8,
        "contended run allocated {} times (want a small constant)",
        per_run[0]
    );

    // Arena-pool phase: the sweep scheduler's per-worker lifecycle is
    // checkout → run batches → checkin. Once the pool's free list has
    // capacity (one warm cycle), that whole loop must be allocation-free:
    // a warm checkout pops a parked arena, the run reuses its slabs, and
    // the checkin pushes within capacity.
    let pool = ArenaPool::new();
    pool.checkin(arena); // park the warmed arena; sizes the free list
    let warm_cycle = {
        let mut a = pool.checkout();
        let r = run(&mut a);
        pool.checkin(a);
        r
    };
    assert!(warm_cycle.outcome == warm.outcome);
    let before = ALLOCS.load(Relaxed);
    for _ in 0..3 {
        let mut a = pool.checkout();
        let report = run(&mut a);
        pool.checkin(a);
        assert!(report.outcome == warm.outcome);
        assert!(report.events == warm.events);
    }
    let after = ALLOCS.load(Relaxed);
    assert_eq!(after - before, 0, "warm pool checkout/run/checkin cycles must not allocate");
    assert_eq!(pool.warm_len(), 1, "every checkout must come back to the pool");
}

#[test]
fn pool_checkin_drops_arenas_above_the_retain_cap() {
    let _serial = SERIAL.lock().unwrap();
    // A long-lived server process absorbs bursts of wide concurrency;
    // every worker checks its arena back in when the burst drains. The
    // pool must not retain all of them forever — checkins above the
    // high-water mark drop the arena (freeing its slabs) instead of
    // parking it.
    let pool = ArenaPool::new();
    pool.set_retain_cap(3);
    assert_eq!(pool.retain_cap(), 3);
    let burst: Vec<SimArena> = (0..16).map(|_| pool.checkout()).collect();
    assert_eq!(pool.warm_len(), 0);
    for arena in burst {
        pool.checkin(arena);
    }
    assert_eq!(pool.warm_len(), 3, "checkin must cap retention at the high-water mark");

    // Lowering the cap sheds already-parked arenas too.
    pool.set_retain_cap(1);
    assert_eq!(pool.warm_len(), 1);

    // The cap bounds retention, not service: checkout still always
    // yields an arena, dry pool or not.
    let a = pool.checkout();
    let b = pool.checkout();
    assert_eq!(pool.warm_len(), 0);
    pool.checkin(a);
    pool.checkin(b);
    assert_eq!(pool.warm_len(), 1);

    // The default cap scales with the machine but never collapses.
    assert!(ArenaPool::default_retain_cap() >= 4);
    assert_eq!(ArenaPool::new().retain_cap(), ArenaPool::default_retain_cap());
}

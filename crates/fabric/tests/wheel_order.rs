//! Differential property test: the timing wheel must pop randomized
//! monotone event streams in exactly the order the old comparison-based
//! queue did — `(tick, seq)` ascending, including same-tick sequence ties
//! and events promoted out of the overflow level.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use javaflow_fabric::TimingWheel;
use javaflow_workloads::rng::StdRng;

/// Replays one randomized push/pop schedule against both queues.
///
/// Deltas are drawn from mixed magnitudes so the stream crosses level-0
/// buckets, level-1 pages, and the overflow list; zero deltas exercise
/// same-tick FIFO ties (the collapsed Baseline schedules serial hops at
/// delta 0). Interleaved pops drain mid-stream the way the simulator
/// does, so promotions happen while pushes continue.
fn run_schedule(seed: u64, ops: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut wheel: TimingWheel<u64> = TimingWheel::new();
    let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut now = 0u64;
    let mut seq = 0u64;

    for _ in 0..ops {
        let pushes = rng.gen_range(0..4u32);
        for _ in 0..pushes {
            // Mixed-magnitude deltas: mostly local, occasionally page- or
            // overflow-distance (the contended model's ring waits).
            let delta = match rng.gen_range(0..10u32) {
                0..=4 => u64::from(rng.gen_range(0..4u32)),
                5..=7 => u64::from(rng.gen_range(0..512u32)),
                8 => u64::from(rng.gen_range(0..20_000u32)),
                _ => u64::from(rng.gen_range(0..200_000u32)),
            };
            let at = now + delta;
            wheel.push(at, seq);
            heap.push(Reverse((at, seq)));
            seq += 1;
        }
        let pops = rng.gen_range(0..3u32);
        for _ in 0..pops {
            let expect = heap.pop().map(|Reverse((at, s))| (at, s));
            let got = wheel.pop();
            assert_eq!(got, expect, "divergence at seq {seq} (seed {seed})");
            if let Some((at, _)) = got {
                now = at; // pops advance the clock monotonically
            }
        }
        assert_eq!(wheel.len(), heap.len());
    }
    // Drain both completely: the tail order must match too.
    while let Some(Reverse((at, s))) = heap.pop() {
        assert_eq!(wheel.pop(), Some((at, s)), "tail divergence (seed {seed})");
    }
    assert!(wheel.pop().is_none());
    assert!(wheel.is_empty());
}

#[test]
fn wheel_matches_binary_heap_on_random_streams() {
    for seed in 0..32u64 {
        run_schedule(seed, 400);
    }
}

#[test]
fn wheel_matches_binary_heap_on_long_streams() {
    for seed in 100..104u64 {
        run_schedule(seed, 4_000);
    }
}

#[test]
fn wheel_matches_after_clear_and_reuse() {
    // `SimArena` reuses one wheel across runs; a cleared wheel must
    // replay a fresh schedule identically.
    let mut wheel: TimingWheel<u64> = TimingWheel::new();
    for round in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(round);
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut now = 0u64;
        for seq in 0..500u64 {
            let at = now + u64::from(rng.gen_range(0..70_000u32));
            wheel.push(at, seq);
            heap.push(Reverse((at, seq)));
            if rng.gen_bool(0.5) {
                let expect = heap.pop().map(|Reverse(p)| p);
                let got = wheel.pop();
                assert_eq!(got, expect);
                if let Some((at, _)) = got {
                    now = at;
                }
            }
        }
        while let Some(Reverse(p)) = heap.pop() {
            assert_eq!(wheel.pop(), Some(p));
        }
        wheel.clear();
    }
}

//! Differential tests: data-mode fabric execution must bit-match the
//! interpreter golden model, and the resolver must match the verifier, on
//! methods exercising loops, merges, memory, and calls.

use javaflow_bytecode::{asm::assemble, verify, Program, Value};
use javaflow_fabric::{execute, load, resolve, BranchMode, ExecParams, FabricConfig, Gpp, Outcome};
use javaflow_interp::Interp;

/// Runs `entry` on both engines and asserts identical results.
fn differential(program: &Program, entry: &str, args: &[Value], config: &FabricConfig) {
    let (id, method) = program.method_by_name(entry).unwrap();
    program.validate().unwrap();

    // Golden model.
    let mut golden = Interp::new(program);
    let expect = golden.run(id, args).unwrap();

    // Resolver vs verifier.
    let v = verify(method).unwrap();
    let r = resolve(method).unwrap();
    let verifier_edges: Vec<(u32, u32, u16)> =
        v.edges.iter().map(|e| (e.producer, e.consumer, e.side)).collect();
    assert_eq!(r.edges(), verifier_edges, "resolver/verifier divergence in {entry}");

    // Fabric execution with a fresh GPP state.
    let loaded = load(method, config).unwrap();
    let mut gpp = Interp::new(program);
    let report = execute(
        &loaded,
        config,
        ExecParams {
            mode: BranchMode::Data,
            gpp: Gpp::Interp(&mut gpp),
            args: args.to_vec(),
            ..ExecParams::default()
        },
    );
    match (&report.outcome, &expect) {
        (Outcome::Returned(got), want) => match (got, want) {
            (Some(g), Some(w)) => {
                assert!(g.bits_eq(w), "{entry} on {}: fabric {g:?} != interp {w:?}", config.name)
            }
            (None, None) => {}
            other => panic!("{entry} on {}: mismatch {other:?}", config.name),
        },
        other => panic!("{entry} on {}: unexpected outcome {other:?}", config.name),
    }
    assert!(report.mesh_cycles > 0);
    assert!(report.executed >= method.code.len() as u64 / 2);
}

fn all_configs() -> Vec<FabricConfig> {
    FabricConfig::all_six()
}

const SUM_LOOP: &str = ".method sum args=1 returns=true locals=3
   iconst_0
   istore 1
 top:
   iload 1
   iload 0
   iadd
   istore 1
   iinc 0 -1
   iload 0
   ifgt @top
   iload 1
   ireturn
 .end";

#[test]
fn loop_sum_matches_on_every_config() {
    let p = assemble(SUM_LOOP).unwrap();
    for config in all_configs() {
        differential(&p, "sum", &[Value::Int(10)], &config);
    }
}

#[test]
fn single_iteration_loop() {
    let p = assemble(SUM_LOOP).unwrap();
    differential(&p, "sum", &[Value::Int(1)], &FabricConfig::compact2());
}

#[test]
fn many_iterations_loop() {
    let p = assemble(SUM_LOOP).unwrap();
    differential(&p, "sum", &[Value::Int(100)], &FabricConfig::hetero2());
}

#[test]
fn branch_merge_dataflow() {
    // max(a, b) via a forward conditional and a dataflow merge at ireturn.
    let p = assemble(
        ".method max args=2 returns=true locals=2
           iload 0
           iload 1
           if_icmplt @second
           iload 0
           ireturn
         second:
           iload 1
           ireturn
         .end",
    )
    .unwrap();
    for config in all_configs() {
        differential(&p, "max", &[Value::Int(3), Value::Int(9)], &config);
        differential(&p, "max", &[Value::Int(9), Value::Int(3)], &config);
    }
}

#[test]
fn floating_point_kernel() {
    // Horner evaluation of a small polynomial with double arithmetic.
    let p = assemble(
        ".method horner args=1 returns=true locals=3
         .const double 1.5
         .const double -2.25
         .const double 0.5
           ldc2_w #0
           dload 0
           dmul
           ldc2_w #1
           dadd
           dload 0
           dmul
           ldc2_w #2
           dadd
           dreturn
         .end",
    )
    .unwrap();
    for config in all_configs() {
        differential(&p, "horner", &[Value::Double(3.75)], &config);
    }
}

#[test]
fn array_memory_ordering() {
    // Write then read the same array slot: MEMORY_TOKEN ordering must make
    // the read observe the write.
    let p = assemble(
        ".method rw args=0 returns=true locals=1
           iconst_4
           newarray int
           astore 0
           aload 0
           iconst_2
           bipush 77
           iastore
           aload 0
           iconst_2
           iaload
           ireturn
         .end",
    )
    .unwrap();
    for config in all_configs() {
        differential(&p, "rw", &[], &config);
    }
}

#[test]
fn fields_and_statics() {
    let p = assemble(
        ".class Acc fields=1 statics=1
         .method m args=1 returns=true locals=2
           new Acc
           astore 1
           aload 1
           iload 0
           putfield Acc 0
           aload 1
           getfield Acc 0
           iconst_2
           imul
           putstatic Acc 0
           getstatic Acc 0
           ireturn
         .end",
    )
    .unwrap();
    differential(&p, "m", &[Value::Int(21)], &FabricConfig::compact4());
    differential(&p, "m", &[Value::Int(21)], &FabricConfig::hetero2());
}

#[test]
fn nested_call_through_gpp() {
    let p = assemble(
        ".method helper args=2 returns=true locals=2
           iload 0
           iload 1
           imul
           ireturn
         .end
         .method m args=1 returns=true locals=1
           iload 0
           iconst_3
           invokestatic helper
           iload 0
           iadd
           ireturn
         .end",
    )
    .unwrap();
    for config in all_configs() {
        differential(&p, "m", &[Value::Int(5)], &config);
    }
}

#[test]
fn nested_loops() {
    // Multiplication by repeated addition: two nested back jumps.
    let p = assemble(
        ".method mul args=2 returns=true locals=5
           iconst_0
           istore 2
           iload 0
           istore 3
         outer:
           iload 3
           ifle @done
           iload 1
           istore 4
         inner:
           iload 4
           ifle @outer_step
           iinc 2 1
           iinc 4 -1
           goto @inner
         outer_step:
           iinc 3 -1
           goto @outer
         done:
           iload 2
           ireturn
         .end",
    )
    .unwrap();
    for config in [FabricConfig::baseline(), FabricConfig::compact2(), FabricConfig::hetero2()] {
        differential(&p, "mul", &[Value::Int(4), Value::Int(5)], &config);
    }
}

#[test]
fn loop_with_internal_branch() {
    // Sum of even numbers up to n: conditional inside a loop body.
    let p = assemble(
        ".method evens args=1 returns=true locals=2
           iconst_0
           istore 1
         top:
           iload 0
           ifle @done
           iload 0
           iconst_2
           irem
           ifne @skip
           iload 1
           iload 0
           iadd
           istore 1
         skip:
           iinc 0 -1
           goto @top
         done:
           iload 1
           ireturn
         .end",
    )
    .unwrap();
    for config in all_configs() {
        differential(&p, "evens", &[Value::Int(9)], &config);
    }
}

#[test]
fn exception_propagates_to_gpp() {
    let p = assemble(
        ".method div args=2 returns=true locals=2
           iload 0
           iload 1
           idiv
           ireturn
         .end",
    )
    .unwrap();
    let (_, m) = p.method_by_name("div").unwrap();
    let config = FabricConfig::compact2();
    let loaded = load(m, &config).unwrap();
    let mut gpp = Interp::new(&p);
    let report = execute(
        &loaded,
        &config,
        ExecParams {
            mode: BranchMode::Data,
            gpp: Gpp::Interp(&mut gpp),
            args: vec![Value::Int(1), Value::Int(0)],
            ..ExecParams::default()
        },
    );
    assert!(matches!(report.outcome, Outcome::Exception(_)), "got {:?}", report.outcome);
}

#[test]
fn scripted_mode_terminates_and_covers() {
    let p = assemble(SUM_LOOP).unwrap();
    let (_, m) = p.method_by_name("sum").unwrap();
    for config in all_configs() {
        let loaded = load(m, &config).unwrap();
        for mode in [BranchMode::Bp1, BranchMode::Bp2] {
            let report = execute(&loaded, &config, ExecParams { mode, ..ExecParams::default() });
            assert!(
                matches!(report.outcome, Outcome::Returned(_)),
                "{} {mode:?}: {:?}",
                config.name,
                report.outcome
            );
            assert!(report.coverage > 0.5, "{}: coverage {}", config.name, report.coverage);
            // Back jumps are taken 9 of 10 times, so the loop body fires
            // repeatedly.
            assert!(report.executed > m.code.len() as u64);
        }
    }
}

#[test]
fn baseline_is_fastest_config() {
    // The collapsed baseline must beat every distance-paying configuration
    // on the same method (the premise of the Figure-of-Merit normalization).
    let p = assemble(SUM_LOOP).unwrap();
    let (_, m) = p.method_by_name("sum").unwrap();
    let mut cycles = Vec::new();
    for config in all_configs() {
        let loaded = load(m, &config).unwrap();
        let report = execute(
            &loaded,
            &config,
            ExecParams { mode: BranchMode::Bp1, ..ExecParams::default() },
        );
        cycles.push((config.name, report.mesh_cycles, report.ipc));
    }
    let base = cycles[0];
    for c in &cycles[1..] {
        assert!(c.1 >= base.1, "{} ({} cycles) beat the baseline ({} cycles)", c.0, c.1, base.1);
    }
    // And the serial-clock ratio must order the compact configurations.
    let by_name: std::collections::HashMap<&str, f64> =
        cycles.iter().map(|(n, _, ipc)| (*n, *ipc)).collect();
    assert!(by_name["Compact10"] >= by_name["Compact4"]);
    assert!(by_name["Compact4"] >= by_name["Compact2"]);
    assert!(by_name["Compact2"] >= by_name["Sparse2"]);
}

#[test]
fn folding_reduces_executed_instructions() {
    let p = assemble(
        ".method sq args=1 returns=true locals=1
           iload 0
           dup
           imul
           ireturn
         .end",
    )
    .unwrap();
    let (_, m) = p.method_by_name("sq").unwrap();
    let config = FabricConfig::compact2();
    let plain = load(m, &config).unwrap();
    let mut folded = load(m, &config).unwrap();
    let n = folded.graph_mut().fold_moves(m);
    assert_eq!(n, 1);

    let run = |lm: &javaflow_fabric::LoadedMethod<'_>| {
        let mut gpp = Interp::new(&p);
        execute(
            lm,
            &config,
            ExecParams {
                mode: BranchMode::Data,
                gpp: Gpp::Interp(&mut gpp),
                args: vec![Value::Int(9)],
                ..ExecParams::default()
            },
        )
    };
    let r0 = run(&plain);
    let r1 = run(&folded);
    assert_eq!(r0.outcome, Outcome::Returned(Some(Value::Int(81))));
    assert_eq!(r1.outcome, Outcome::Returned(Some(Value::Int(81))));
    assert_eq!(r1.executed, r0.executed - 1, "folded dup must not fire");
}

//! Zero-allocation steady state for the block-compiled path: once a
//! method's schedule has been recorded (one cold run), every warm replay
//! is a table walk over the cached [`CompiledMethod`] — cache lookup,
//! arena reset, block-delta accumulation, and report assembly must not
//! touch the heap at all.
//!
//! Single-test file on purpose: the counting `#[global_allocator]` is
//! process-wide, and a concurrent test's allocations would show up in
//! the measured window (`fabric/tests/alloc.rs` covers the interpreted
//! walks under the same constraint).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use javaflow_bytecode::asm::assemble;
use javaflow_fabric::{execute_in, load, BranchMode, ExecParams, FabricConfig, Outcome, SimArena};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const SUM_LOOP: &str = ".method sum args=1 returns=true locals=3
   iconst_0
   istore 1
 top:
   iload 1
   iload 0
   iadd
   istore 1
   iinc 0 -1
   iload 0
   ifgt @top
   iload 1
   ireturn
 .end";

#[test]
fn warm_compiled_replay_does_not_allocate() {
    let p = assemble(SUM_LOOP).unwrap();
    let (_, m) = p.method_by_name("sum").unwrap();
    let config = FabricConfig::compact2();
    let loaded = load(m, &config).unwrap();
    let mut arena = SimArena::new();

    let run = |arena: &mut SimArena| {
        execute_in(
            &loaded,
            &config,
            ExecParams { mode: BranchMode::Bp1, compiled: true, ..ExecParams::default() },
            arena,
        )
    };

    // Cold run: rides the fast-forward walk, records the block schedule,
    // and inserts the compiled artifact. Allocates (blocks, schedule,
    // cache entry) by design — it happens once per (config, args) key.
    let cold = run(&mut arena);
    assert!(matches!(cold.outcome, Outcome::Returned(_)), "cold run: {:?}", cold.outcome);
    assert!(cold.executed > 20, "the loop should iterate (bp back jumps taken 9 of 10)");
    assert_eq!(loaded.compiled.len(), 1, "cold run must populate the cache");
    assert_eq!(loaded.compiled.misses(), 1);

    // Measured replays: the steady state must be allocation-free, and
    // each replay must reproduce the cold report bit for bit. (No
    // `format!` in this window — the checks themselves must not touch
    // the heap on the success path.)
    let before = ALLOCS.load(Relaxed);
    for _ in 0..3 {
        let report = run(&mut arena);
        assert!(report == cold);
    }
    let after = ALLOCS.load(Relaxed);
    assert_eq!(after - before, 0, "warm compiled replays must not allocate");
    assert_eq!(loaded.compiled.hits(), 3, "every warm run must be a cache hit");
}

//! Differential property tests for the optimized walks: on randomized
//! synthetic methods (the same generator the evaluation sweep runs), the
//! skip-index fast-forward and the block-compiled replay must report
//! exactly the cycle counts, stats, and outcome of the naive per-node
//! walk, across every configuration and scripted branch mode.
//!
//! Two counter families are exempt from strict equality by design:
//!
//! * `events` / `events_skipped` — the point of the optimizations; the
//!   naive walk must pop at least as many events as the fast walk, and the
//!   fast walk must actually skip some.
//! * `serial_msgs` / `mesh_msgs` / `relay_fires` — the fast walk commits a
//!   whole token route (or relay fan-out) at send time, while the naive
//!   walk books each hop as its event is processed; a run that terminates
//!   with tokens in flight therefore counts a few trailing hops only under
//!   fast-forward. The fast counters can never be *smaller*.
//!
//! The compiled path has a stronger contract than the naive one: the
//! recording rides whatever walk the caller requested, so a compiled run
//! (cold record or warm replay) must be *fully* byte-identical to the
//! plain run with the same `fast_forward` setting — every counter, not
//! just the observable ones.

use javaflow_fabric::{
    execute, load, BranchMode, ExecParams, ExecReport, FabricConfig, Gpp, SimArena,
};
use javaflow_workloads::synthetic::{generate, GenConfig};

fn run(
    loaded: &javaflow_fabric::LoadedMethod<'_>,
    fc: &FabricConfig,
    bp: BranchMode,
    ff: bool,
    compiled: bool,
) -> ExecReport {
    execute(
        loaded,
        fc,
        ExecParams {
            mode: bp,
            max_mesh_cycles: 250_000,
            gpp: Gpp::Stub,
            args: Vec::new(),
            fast_forward: ff,
            compiled,
        },
    )
}

/// Asserts the observable parts of two reports are identical, and the
/// event/in-flight counters satisfy the fast-forward contract.
#[allow(clippy::float_cmp)] // both sides compute the same exact division
fn assert_equivalent(fast: &ExecReport, naive: &ExecReport, ctx: &str) {
    assert_eq!(fast.outcome, naive.outcome, "{ctx}: outcome");
    assert_eq!(fast.mesh_cycles, naive.mesh_cycles, "{ctx}: mesh_cycles");
    assert_eq!(fast.executed, naive.executed, "{ctx}: executed");
    assert_eq!(fast.static_covered, naive.static_covered, "{ctx}: static_covered");
    assert_eq!(fast.coverage, naive.coverage, "{ctx}: coverage");
    assert_eq!(fast.ipc, naive.ipc, "{ctx}: ipc");
    assert_eq!(fast.frac_cycles_ge1, naive.frac_cycles_ge1, "{ctx}: frac_cycles_ge1");
    assert_eq!(fast.frac_cycles_ge2, naive.frac_cycles_ge2, "{ctx}: frac_cycles_ge2");
    assert_eq!(fast.net, naive.net, "{ctx}: net report");
    assert!(fast.events <= naive.events, "{ctx}: fast walk popped more events");
    assert!(
        fast.serial_msgs >= naive.serial_msgs,
        "{ctx}: fast walk lost serial sends ({} < {})",
        fast.serial_msgs,
        naive.serial_msgs
    );
    assert!(fast.mesh_msgs >= naive.mesh_msgs, "{ctx}: fast walk lost mesh sends");
    assert!(fast.relay_fires >= naive.relay_fires, "{ctx}: fast walk lost relay fires");
    assert_eq!(naive.events_skipped, 0, "{ctx}: naive walk must not skip");
}

#[test]
fn compiled_and_fast_forward_match_naive_walk_on_random_methods() {
    let mut total_skipped = 0u64;
    let mut total_replays = 0u64;
    for seed in [0x4a56_4d46u64, 0xdead_beef, 0x0ddba11] {
        let (program, ids) = generate(&GenConfig { seed, count: 24, ..GenConfig::default() });
        for config in FabricConfig::all_six() {
            for &id in &ids {
                let method = program.method(id);
                let Ok(loaded) = load(method, &config) else { continue };
                for bp in [BranchMode::Bp1, BranchMode::Bp2] {
                    let fast = run(&loaded, &config, bp, true, false);
                    let naive = run(&loaded, &config, bp, false, false);
                    let ctx = format!("seed {seed:#x} method {id:?} {} {bp:?}", config.name);
                    assert_equivalent(&fast, &naive, &ctx);
                    // Cold compiled run: records while riding the
                    // fast-forward walk, so the report is the FF report.
                    let cold = run(&loaded, &config, bp, true, true);
                    assert_eq!(cold, fast, "{ctx}: cold compiled run diverged from fast");
                    // Warm compiled run: pure schedule replay.
                    let warm = run(&loaded, &config, bp, true, true);
                    assert_eq!(warm, fast, "{ctx}: compiled replay diverged from fast");
                    assert_equivalent(&warm, &naive, &ctx);
                    total_skipped += fast.events_skipped;
                    total_replays += loaded.compiled.hits();
                }
            }
        }
    }
    assert!(total_skipped > 0, "fast-forward never skipped a single event");
    assert!(total_replays > 0, "the compiled cache never replayed a schedule");
}

/// The compiled replay must also be bit-identical to the *naive* walk
/// when the recording rode a `fast_forward: false` run — the schedule
/// captures whichever walk was requested, counters and all.
#[test]
fn compiled_replay_matches_the_walk_it_recorded() {
    let (program, ids) = generate(&GenConfig { seed: 0xb10c, count: 12, ..GenConfig::default() });
    let config = FabricConfig::compact2();
    for &id in &ids {
        let method = program.method(id);
        let Ok(loaded) = load(method, &config) else { continue };
        for ff in [false, true] {
            let plain = run(&loaded, &config, BranchMode::Bp2, ff, false);
            let cold = run(&loaded, &config, BranchMode::Bp2, ff, true);
            let warm = run(&loaded, &config, BranchMode::Bp2, ff, true);
            assert_eq!(cold, plain, "method {id:?} ff={ff}: cold run diverged");
            assert_eq!(warm, plain, "method {id:?} ff={ff}: replay diverged");
        }
    }
}

/// The arena-reusing entry point (the sweep's hot path) must behave the
/// same as the fresh-arena one under fast-forward and compiled replay.
#[test]
fn fast_forward_is_stable_under_arena_reuse() {
    let (program, ids) = generate(&GenConfig { count: 6, ..GenConfig::default() });
    let config = FabricConfig::compact2();
    let mut arena = SimArena::new();
    for &id in &ids {
        let method = program.method(id);
        let Ok(loaded) = load(method, &config) else { continue };
        let fresh = run(&loaded, &config, BranchMode::Bp1, true, false);
        for compiled in [false, true, true] {
            let reused = javaflow_fabric::execute_in(
                &loaded,
                &config,
                ExecParams {
                    mode: BranchMode::Bp1,
                    max_mesh_cycles: 250_000,
                    compiled,
                    ..ExecParams::default()
                },
                &mut arena,
            );
            assert_eq!(fresh, reused, "arena reuse changed a report (compiled={compiled})");
        }
    }
}

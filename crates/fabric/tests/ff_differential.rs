//! Differential property test for the skip-index fast-forward: on
//! randomized synthetic methods (the same generator the evaluation sweep
//! runs), the fast-forwarded walk must report exactly the cycle counts,
//! stats, and outcome of the naive per-node walk, across every
//! configuration and scripted branch mode.
//!
//! Two counter families are exempt from strict equality by design:
//!
//! * `events` / `events_skipped` — the point of the optimization; the
//!   naive walk must pop at least as many events as the fast walk, and the
//!   fast walk must actually skip some.
//! * `serial_msgs` / `mesh_msgs` / `relay_fires` — the fast walk commits a
//!   whole token route (or relay fan-out) at send time, while the naive
//!   walk books each hop as its event is processed; a run that terminates
//!   with tokens in flight therefore counts a few trailing hops only under
//!   fast-forward. The fast counters can never be *smaller*.

use javaflow_fabric::{
    execute, load, BranchMode, ExecParams, ExecReport, FabricConfig, Gpp, SimArena,
};
use javaflow_workloads::synthetic::{generate, GenConfig};

fn run(
    loaded: &javaflow_fabric::LoadedMethod<'_>,
    fc: &FabricConfig,
    bp: BranchMode,
    ff: bool,
) -> ExecReport {
    execute(
        loaded,
        fc,
        ExecParams {
            mode: bp,
            max_mesh_cycles: 250_000,
            gpp: Gpp::Stub,
            args: Vec::new(),
            fast_forward: ff,
        },
    )
}

/// Asserts the observable parts of two reports are identical, and the
/// event/in-flight counters satisfy the fast-forward contract.
#[allow(clippy::float_cmp)] // both sides compute the same exact division
fn assert_equivalent(fast: &ExecReport, naive: &ExecReport, ctx: &str) {
    assert_eq!(fast.outcome, naive.outcome, "{ctx}: outcome");
    assert_eq!(fast.mesh_cycles, naive.mesh_cycles, "{ctx}: mesh_cycles");
    assert_eq!(fast.executed, naive.executed, "{ctx}: executed");
    assert_eq!(fast.static_covered, naive.static_covered, "{ctx}: static_covered");
    assert_eq!(fast.coverage, naive.coverage, "{ctx}: coverage");
    assert_eq!(fast.ipc, naive.ipc, "{ctx}: ipc");
    assert_eq!(fast.frac_cycles_ge1, naive.frac_cycles_ge1, "{ctx}: frac_cycles_ge1");
    assert_eq!(fast.frac_cycles_ge2, naive.frac_cycles_ge2, "{ctx}: frac_cycles_ge2");
    assert_eq!(fast.net, naive.net, "{ctx}: net report");
    assert!(fast.events <= naive.events, "{ctx}: fast walk popped more events");
    assert!(
        fast.serial_msgs >= naive.serial_msgs,
        "{ctx}: fast walk lost serial sends ({} < {})",
        fast.serial_msgs,
        naive.serial_msgs
    );
    assert!(fast.mesh_msgs >= naive.mesh_msgs, "{ctx}: fast walk lost mesh sends");
    assert!(fast.relay_fires >= naive.relay_fires, "{ctx}: fast walk lost relay fires");
    assert_eq!(naive.events_skipped, 0, "{ctx}: naive walk must not skip");
}

#[test]
fn fast_forward_matches_naive_walk_on_random_methods() {
    let mut total_skipped = 0u64;
    for seed in [0x4a56_4d46u64, 0xdead_beef, 0x0ddba11] {
        let (program, ids) = generate(&GenConfig { seed, count: 24, ..GenConfig::default() });
        for config in FabricConfig::all_six() {
            for &id in &ids {
                let method = program.method(id);
                let Ok(loaded) = load(method, &config) else { continue };
                for bp in [BranchMode::Bp1, BranchMode::Bp2] {
                    let fast = run(&loaded, &config, bp, true);
                    let naive = run(&loaded, &config, bp, false);
                    let ctx = format!("seed {seed:#x} method {id:?} {} {bp:?}", config.name);
                    assert_equivalent(&fast, &naive, &ctx);
                    total_skipped += fast.events_skipped;
                }
            }
        }
    }
    assert!(total_skipped > 0, "fast-forward never skipped a single event");
}

/// The arena-reusing entry point (the sweep's hot path) must behave the
/// same as the fresh-arena one under fast-forward.
#[test]
fn fast_forward_is_stable_under_arena_reuse() {
    let (program, ids) = generate(&GenConfig { count: 6, ..GenConfig::default() });
    let config = FabricConfig::compact2();
    let mut arena = SimArena::new();
    for &id in &ids {
        let method = program.method(id);
        let Ok(loaded) = load(method, &config) else { continue };
        let fresh = run(&loaded, &config, BranchMode::Bp1, true);
        let reused = javaflow_fabric::execute_in(
            &loaded,
            &config,
            ExecParams { mode: BranchMode::Bp1, max_mesh_cycles: 250_000, ..ExecParams::default() },
            &mut arena,
        );
        assert_eq!(fresh, reused, "arena reuse changed a fast-forwarded report");
    }
}

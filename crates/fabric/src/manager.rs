//! Fabric management: multiple resident methods, anchor state, and
//! unloading (Section 6.2 "Management and Cleanup").
//!
//! The GPP "is not involved in the actual assignment of instructions to
//! specific nodes, but obviously has to have some idea about how many
//! methods are deployed and how they are being utilized". The
//! [`FabricManager`] models that bookkeeping: each deployed method gets an
//! Anchor and a contiguous serial-chain region; anchors expose the
//! busy/available signal that enforces the one-thread-per-method rule
//! (Section 4.3: methods execute atomically, no recursion); unloading
//! (`CMD_UNLOAD_INSTRUCTION`) frees the region for reuse.
//!
//! Because each resident method's serial and mesh traffic is confined to
//! its own region, concurrently resident methods execute independently —
//! the dissertation's superposition argument ("the overall Instructions
//! per Cycle for the system would be the sum of the individual
//! Instructions per Cycle for each method", Chapter 8) — which
//! [`FabricManager::run_all_scripted`] makes measurable.

use std::sync::Arc;

use javaflow_bytecode::Method;

use crate::{
    execute, execute_with_sink, resolve, trace::TraceSink, BranchMode, DataflowGraph,
    DecodedMethod, ExecParams, ExecReport, FabricConfig, LoadedMethod, Outcome, PlaceError,
    Placement, ResolveError, SimArena,
};

/// Handle to a deployed method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AnchorId(u32);

impl std::fmt::Display for AnchorId {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fm, "anchor{}", self.0)
    }
}

#[derive(Debug)]
struct Deployment {
    /// First serial-chain slot of the region.
    start: u32,
    /// One past the last slot.
    end: u32,
    /// Whether a thread currently executes the method.
    busy: bool,
    /// Method name, for diagnostics.
    name: String,
}

/// Management failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum ManageError {
    /// No free region large enough.
    FabricFull {
        /// Nodes requested (after layout skips).
        needed: u32,
        /// Largest contiguous free region.
        largest_free: u32,
    },
    /// Placement failed inside the candidate region.
    Place(PlaceError),
    /// Address resolution failed.
    Resolve(ResolveError),
    /// The anchor is unknown (already unloaded?).
    UnknownAnchor(AnchorId),
    /// The method is executing; the anchor returned its busy signal.
    Busy(AnchorId),
}

impl std::fmt::Display for ManageError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManageError::FabricFull { needed, largest_free } => {
                write!(fm, "fabric full: need {needed} nodes, largest free region {largest_free}")
            }
            ManageError::Place(e) => write!(fm, "placement: {e}"),
            ManageError::Resolve(e) => write!(fm, "resolution: {e}"),
            ManageError::UnknownAnchor(a) => write!(fm, "unknown {a}"),
            ManageError::Busy(a) => write!(fm, "{a} is busy"),
        }
    }
}

impl std::error::Error for ManageError {}

/// The fabric-residency manager.
#[derive(Debug)]
pub struct FabricManager {
    config: FabricConfig,
    deployments: Vec<Option<Deployment>>,
}

impl FabricManager {
    /// A manager over an empty fabric.
    #[must_use]
    pub fn new(config: FabricConfig) -> FabricManager {
        FabricManager { config, deployments: Vec::new() }
    }

    /// The managed configuration.
    #[must_use]
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Occupied node count.
    #[must_use]
    pub fn occupied(&self) -> u32 {
        self.deployments.iter().flatten().map(|d| d.end - d.start).sum()
    }

    /// Live deployments as `(anchor, name, region)` tuples.
    pub fn resident(&self) -> impl Iterator<Item = (AnchorId, &str, (u32, u32))> {
        self.deployments.iter().enumerate().filter_map(|(i, d)| {
            d.as_ref().map(|d| (AnchorId(i as u32), d.name.as_str(), (d.start, d.end)))
        })
    }

    /// Contiguous free regions as `(start, end)` pairs, ascending.
    fn free_regions(&self) -> Vec<(u32, u32)> {
        let mut used: Vec<(u32, u32)> =
            self.deployments.iter().flatten().map(|d| (d.start, d.end)).collect();
        used.sort_unstable();
        let mut free = Vec::new();
        let mut cursor = 0u32;
        for (s, e) in used {
            if s > cursor {
                free.push((cursor, s));
            }
            cursor = cursor.max(e);
        }
        if cursor < self.config.max_nodes {
            free.push((cursor, self.config.max_nodes));
        }
        free
    }

    /// Deploys a method into the first free region that fits (the GPP's
    /// only decision: which Anchor to use — Section 6.2).
    ///
    /// # Errors
    ///
    /// See [`ManageError`].
    pub fn deploy<'m>(
        &mut self,
        method: &'m Method,
    ) -> Result<(AnchorId, LoadedMethod<'m>), ManageError> {
        let resolved = resolve(method).map_err(ManageError::Resolve)?;
        let mut largest = 0u32;
        for (start, end) in self.free_regions() {
            largest = largest.max(end - start);
            let capacity = end - start;
            match place_in_region(method, &self.config, start, capacity) {
                Ok(placement) => {
                    let span = placement.max_node - start;
                    let dep = Deployment {
                        start,
                        end: start + span,
                        busy: false,
                        name: method.name.clone(),
                    };
                    let id = self.insert(dep);
                    let graph = DataflowGraph::from_resolved(&resolved);
                    return Ok((
                        id,
                        LoadedMethod {
                            method,
                            placement,
                            resolved: Arc::new(resolved),
                            graph: Arc::new(graph),
                            decoded: Arc::new(DecodedMethod::decode(method)),
                            compiled: Arc::new(crate::CompiledCache::new()),
                        },
                    ));
                }
                Err(_) => continue,
            }
        }
        Err(ManageError::FabricFull { needed: method.len() as u32, largest_free: largest })
    }

    fn insert(&mut self, dep: Deployment) -> AnchorId {
        for (i, slot) in self.deployments.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(dep);
                return AnchorId(i as u32);
            }
        }
        self.deployments.push(Some(dep));
        AnchorId((self.deployments.len() - 1) as u32)
    }

    /// Marks the method's anchor busy (a thread enters). The anchor
    /// "maintains the status of a deployed method so that if a different
    /// thread attempted to execute the method, the proper busy/available
    /// signal could be returned".
    ///
    /// # Errors
    ///
    /// [`ManageError::Busy`] if already executing; `UnknownAnchor` if
    /// unloaded.
    pub fn begin_run(&mut self, anchor: AnchorId) -> Result<(), ManageError> {
        let d = self
            .deployments
            .get_mut(anchor.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(ManageError::UnknownAnchor(anchor))?;
        if d.busy {
            return Err(ManageError::Busy(anchor));
        }
        d.busy = true;
        Ok(())
    }

    /// Marks the anchor available again (the thread exited).
    ///
    /// # Errors
    ///
    /// `UnknownAnchor` if unloaded.
    pub fn end_run(&mut self, anchor: AnchorId) -> Result<(), ManageError> {
        let d = self
            .deployments
            .get_mut(anchor.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(ManageError::UnknownAnchor(anchor))?;
        d.busy = false;
        Ok(())
    }

    /// Unloads a method (`CMD_UNLOAD_INSTRUCTION`), freeing its region.
    ///
    /// # Errors
    ///
    /// `Busy` while executing; `UnknownAnchor` if already unloaded.
    pub fn unload(&mut self, anchor: AnchorId) -> Result<(), ManageError> {
        let slot = self
            .deployments
            .get_mut(anchor.0 as usize)
            .ok_or(ManageError::UnknownAnchor(anchor))?;
        match slot {
            Some(d) if d.busy => Err(ManageError::Busy(anchor)),
            Some(_) => {
                *slot = None;
                Ok(())
            }
            None => Err(ManageError::UnknownAnchor(anchor)),
        }
    }

    /// Runs every resident method once (scripted), returning per-method
    /// reports plus the superposed system IPC — resident methods' traffic
    /// is confined to their own regions, so system throughput is the sum
    /// of the independent IPCs (Chapter 8).
    pub fn run_all_scripted(
        &mut self,
        loaded: &[(AnchorId, &LoadedMethod<'_>)],
        mode: BranchMode,
    ) -> Result<(Vec<ExecReport>, f64), ManageError> {
        for (a, _) in loaded {
            self.begin_run(*a)?;
        }
        let mut reports = Vec::with_capacity(loaded.len());
        for (_, lm) in loaded {
            let report = execute(lm, &self.config, ExecParams { mode, ..ExecParams::default() });
            reports.push(report);
        }
        for (a, _) in loaded {
            self.end_run(*a)?;
        }
        let system_ipc = reports
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Returned(_)))
            .map(|r| r.ipc)
            .sum();
        Ok((reports, system_ipc))
    }

    /// [`run_all_scripted`](Self::run_all_scripted), but with every run
    /// recorded into `sink` back to back. One arena is reused across the
    /// resident methods, so a recorded multi-method trace concatenates the
    /// per-method event streams in deployment order (each delimited by its
    /// `End` event).
    pub fn run_all_scripted_traced<S: TraceSink>(
        &mut self,
        loaded: &[(AnchorId, &LoadedMethod<'_>)],
        mode: BranchMode,
        sink: &mut S,
    ) -> Result<(Vec<ExecReport>, f64), ManageError> {
        for (a, _) in loaded {
            self.begin_run(*a)?;
        }
        let mut arena = SimArena::default();
        let mut reports = Vec::with_capacity(loaded.len());
        for (_, lm) in loaded {
            let report = execute_with_sink(
                lm,
                &self.config,
                ExecParams { mode, ..ExecParams::default() },
                &mut arena,
                sink,
            );
            reports.push(report);
        }
        for (a, _) in loaded {
            self.end_run(*a)?;
        }
        let system_ipc = reports
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Returned(_)))
            .map(|r| r.ipc)
            .sum();
        Ok((reports, system_ipc))
    }
}

/// Places a method starting at `start` with at most `capacity` nodes.
fn place_in_region(
    method: &Method,
    config: &FabricConfig,
    start: u32,
    capacity: u32,
) -> Result<Placement, PlaceError> {
    let mut slots = Vec::with_capacity(method.code.len());
    let mut coords = Vec::with_capacity(method.code.len());
    let limit = start.saturating_add(capacity).min(config.max_nodes);
    let mut pos = start;
    for (i, insn) in method.code.iter().enumerate() {
        let kind = insn.group().node_kind();
        while pos < limit && !crate::slot_kind(config.layout, pos).accepts(kind) {
            pos += 1;
        }
        if pos >= limit {
            return Err(PlaceError::FabricFull { placed: i as u32, capacity });
        }
        slots.push(pos);
        coords.push(crate::snake_coords(pos, config.width));
        pos += 1;
    }
    let max_node = slots.last().map_or(start, |s| s + 1);
    let load_ticks = method.code.len() as u64 + u64::from(max_node - start);
    Ok(Placement { slots, coords, max_node, load_ticks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use javaflow_bytecode::asm::assemble;

    fn small_method(name: &str) -> Method {
        let p = assemble(&format!(
            ".method {name} args=1 returns=true locals=2
             top:
               iinc 0 -1
               iload 0
               ifgt @top
               iload 0
               ireturn
             .end"
        ))
        .unwrap();
        let method = p.methods().next().map(|(_, m)| m.clone()).unwrap();
        method
    }

    #[test]
    fn deploys_into_disjoint_regions() {
        let mut mgr = FabricManager::new(FabricConfig::compact2());
        let m1 = small_method("a");
        let m2 = small_method("b");
        let (a1, l1) = mgr.deploy(&m1).unwrap();
        let (a2, l2) = mgr.deploy(&m2).unwrap();
        assert_ne!(a1, a2);
        let r1: Vec<u32> = l1.placement.slots.clone();
        let r2: Vec<u32> = l2.placement.slots.clone();
        assert!(r1.iter().all(|s| !r2.contains(s)), "regions overlap");
        assert_eq!(mgr.occupied(), (m1.len() + m2.len()) as u32);
        assert_eq!(mgr.resident().count(), 2);
    }

    #[test]
    fn anchor_busy_signal_blocks_reentry() {
        let mut mgr = FabricManager::new(FabricConfig::compact2());
        let m = small_method("a");
        let (a, _l) = mgr.deploy(&m).unwrap();
        mgr.begin_run(a).unwrap();
        assert!(matches!(mgr.begin_run(a), Err(ManageError::Busy(_))));
        assert!(matches!(mgr.unload(a), Err(ManageError::Busy(_))));
        mgr.end_run(a).unwrap();
        mgr.begin_run(a).unwrap();
        mgr.end_run(a).unwrap();
    }

    #[test]
    fn unload_frees_region_for_reuse() {
        let mut mgr = FabricManager::new(FabricConfig::compact2());
        let m1 = small_method("a");
        let m2 = small_method("b");
        let (a1, l1) = mgr.deploy(&m1).unwrap();
        let first_start = l1.placement.slots[0];
        mgr.unload(a1).unwrap();
        assert!(matches!(mgr.unload(a1), Err(ManageError::UnknownAnchor(_))));
        let (_a2, l2) = mgr.deploy(&m2).unwrap();
        assert_eq!(l2.placement.slots[0], first_start, "freed region reused");
    }

    #[test]
    fn superposition_sums_resident_ipcs() {
        let mut mgr = FabricManager::new(FabricConfig::compact2());
        let m1 = small_method("a");
        let m2 = small_method("b");
        let m3 = small_method("c");
        let (a1, l1) = mgr.deploy(&m1).unwrap();
        let (a2, l2) = mgr.deploy(&m2).unwrap();
        let (a3, l3) = mgr.deploy(&m3).unwrap();
        let (reports, system_ipc) =
            mgr.run_all_scripted(&[(a1, &l1), (a2, &l2), (a3, &l3)], BranchMode::Bp1).unwrap();
        assert_eq!(reports.len(), 3);
        let sum: f64 = reports.iter().map(|r| r.ipc).sum();
        assert!((system_ipc - sum).abs() < 1e-12);
        assert!(system_ipc > reports[0].ipc, "superposition beats one method");
    }

    #[test]
    fn fabric_full_reports_largest_region() {
        let mut cfg = FabricConfig::compact2();
        cfg.max_nodes = 8;
        let mut mgr = FabricManager::new(cfg);
        let m = small_method("a"); // 5 instructions
        let (_a, _l) = mgr.deploy(&m).unwrap();
        let err = mgr.deploy(&m).unwrap_err();
        assert!(matches!(err, ManageError::FabricFull { largest_free: 3, .. }), "{err}");
    }

    #[test]
    fn deployed_methods_execute_correctly_from_offset_regions() {
        // A method placed at a non-zero region start must still execute
        // (all distances are relative).
        let mut mgr = FabricManager::new(FabricConfig::compact2());
        let m1 = small_method("a");
        let m2 = small_method("b");
        let (_a1, _l1) = mgr.deploy(&m1).unwrap();
        let (_a2, l2) = mgr.deploy(&m2).unwrap();
        assert!(l2.placement.slots[0] > 0);
        let report = execute(
            &l2,
            mgr.config(),
            ExecParams { mode: BranchMode::Bp1, ..ExecParams::default() },
        );
        assert!(matches!(report.outcome, Outcome::Returned(_)), "{:?}", report.outcome);
    }
}

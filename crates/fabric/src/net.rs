//! The contended interconnect model: X-Y mesh routers and memory/GPP rings.
//!
//! The dissertation's machine has three networks (Figure 12): the ordered
//! serial network, the X-Y routed operand mesh, and high-speed rings to the
//! memory subsystem and the GPP. The execution engine historically charged
//! mesh transfers an ideal `Manhattan-distance × hop-latency` delay and
//! memory/GPP requests the flat Figure 25 service constants, so no
//! configuration could ever observe congestion.
//!
//! This module puts that choice behind the [`NetModel`] trait:
//!
//! * [`IdealNet`] — the closed-form model, still the default. Bit-for-bit
//!   identical to the historical behaviour (Tables 15/21/22 reproduce
//!   unchanged).
//! * [`ContendedNet`] — dimension-order (X first, then Y) routers with
//!   **per-link single-flit-per-mesh-cycle arbitration**, bounded input
//!   FIFOs modeled as credit backpressure, and the memory/GPP rings as
//!   slotted rings whose stations queue requests in front of the existing
//!   service latencies.
//!
//! # Determinism rules
//!
//! The simulator is single-threaded per run and processes events in a
//! unique total order — `(tick, sequence)`, where the sequence number is
//! assigned at send time. Link and ring reservations are made in exactly
//! that order, so two flits contending for the same link at the same tick
//! are arbitrated by their position in the global event order: the message
//! sent first (by the node whose firing event was scheduled first, i.e. the
//! lowest `(tick, seq)` — for simultaneous firings this is coordinate/
//! address order, since consumer lists are resolved in address order) wins
//! the link. No wall-clock, RNG, or thread interleaving feeds the model, so
//! any thread count sweeping a population reproduces identical reports.
//!
//! # Observability
//!
//! [`ContendedNet`] counts per-link occupancy, per-router stall ticks, and
//! queue depths, and surfaces them as a [`NetReport`] attached to the run's
//! `ExecReport` ([`IdealNet`] attaches nothing). `javaflow-analysis`
//! aggregates reports into a `NetSummary` and renders the mesh hotspot
//! heatmap; `tables --bench-net` writes the ideal-vs-contended comparison
//! to `BENCH_net.json`.

use crate::trace::{TraceEvent, TraceKind, TraceSink};
use crate::FabricConfig;

/// Ring identifier in [`TraceKind::RingBoard`] events: the memory ring.
pub const RING_MEMORY: u32 = 0;
/// Ring identifier in [`TraceKind::RingBoard`] events: the GPP ring.
pub const RING_GPP: u32 = 1;

/// Which interconnect model a [`FabricConfig`] executes transfers under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetKind {
    /// Closed-form delays (the historical model; bit-identical tables).
    #[default]
    Ideal,
    /// Routed mesh + slotted rings with link-level contention.
    Contended,
}

/// Parameters of the contended model (ignored by [`IdealNet`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetParams {
    /// Router input-FIFO capacity in flits; a full FIFO backpressures the
    /// upstream hop (credit flow control).
    pub mesh_fifo_capacity: u32,
    /// Mesh cycles between ring slots passing a station (one request may
    /// board per slot).
    pub ring_slot_cycles: u64,
    /// Mesh cycles a boarded request spends transiting the ring to its
    /// subsystem (added on top of the Figure 25 service latency).
    pub ring_latency_cycles: u64,
}

impl Default for NetParams {
    fn default() -> NetParams {
        NetParams { mesh_fifo_capacity: 4, ring_slot_cycles: 1, ring_latency_cycles: 2 }
    }
}

/// Per-ring usage counters of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RingReport {
    /// Requests that boarded the ring (reads, writes, calls, specials).
    pub requests: u64,
    /// Total ticks requests waited at stations for a free slot.
    pub wait_ticks: u64,
    /// Maximum requests ever queued at a station (including the boarder).
    pub max_queue: u64,
}

/// Traffic through one mesh router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeNetStat {
    /// Router X coordinate.
    pub x: u32,
    /// Router Y coordinate.
    pub y: u32,
    /// Flits that traversed any of this router's output links.
    pub flits: u64,
    /// Total ticks flits stalled in this router's FIFOs.
    pub stall_ticks: u64,
}

/// Link-level observability of one contended run.
#[derive(Debug, Clone, PartialEq)]
pub struct NetReport {
    /// Mesh messages routed.
    pub mesh_flits: u64,
    /// Link traversals (sum of per-message hop counts).
    pub mesh_hops: u64,
    /// Total ticks flits spent stalled behind busy links or full FIFOs.
    pub stall_ticks: u64,
    /// Maximum flits ever queued on one link (including the one granted).
    pub max_queue_depth: u64,
    /// Mean queue depth observed over all link traversals.
    pub mean_queue_depth: f64,
    /// Per-router traffic, address-ordered, routers with traffic only —
    /// the mesh hotspot heatmap.
    pub hotspots: Vec<NodeNetStat>,
    /// Memory-ring usage.
    pub memory_ring: RingReport,
    /// GPP-ring usage.
    pub gpp_ring: RingReport,
}

/// The interconnect seam of the execution engine.
///
/// All times are **ticks** (serial clocks; `FabricConfig::mesh_cycle_ticks`
/// per mesh cycle), matching the simulator's base unit. Implementations may
/// keep mutable reservation state; one value models one run.
pub trait NetModel {
    /// Whether every delay is a pure function of the endpoints — no
    /// arrival-order reservation state. Only such models may let the
    /// kernel fast-forward token walks: skipping events reorders
    /// deliveries *within* a tick, which an order-free model cannot
    /// observe but a link-booking model would.
    const ORDER_FREE: bool = false;

    /// Ticks from `now` until a mesh operand sent from `from` arrives at
    /// `to`. May reserve links (contention) and emit
    /// [`TraceKind::LinkHop`] events on `sink`.
    fn mesh_delay<S: TraceSink>(
        &mut self,
        cfg: &FabricConfig,
        now: u64,
        from: (u32, u32),
        to: (u32, u32),
        sink: &mut S,
    ) -> u64;

    /// Ticks from `now` until an ordered memory read's response is back at
    /// the requesting node.
    fn memory_delay<S: TraceSink>(&mut self, cfg: &FabricConfig, now: u64, sink: &mut S) -> u64;

    /// Accounts an ordered memory write (posted: the writer does not wait,
    /// but the request still occupies ring bandwidth).
    fn memory_write<S: TraceSink>(&mut self, cfg: &FabricConfig, now: u64, sink: &mut S);

    /// Ticks from `now` until a GPP call/special service completes.
    fn gpp_delay<S: TraceSink>(&mut self, cfg: &FabricConfig, now: u64, sink: &mut S) -> u64;

    /// Consumes the accumulated observability data, if the model collects
    /// any.
    fn take_report(&mut self) -> Option<NetReport>;
}

/// The historical closed-form model: Manhattan distance × hop latency for
/// the mesh, flat Figure 25 constants for the rings. Stateless.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealNet;

impl NetModel for IdealNet {
    const ORDER_FREE: bool = true;

    fn mesh_delay<S: TraceSink>(
        &mut self,
        cfg: &FabricConfig,
        _now: u64,
        from: (u32, u32),
        to: (u32, u32),
        _sink: &mut S,
    ) -> u64 {
        let dist = if cfg.collapsed {
            1
        } else {
            (u64::from(from.0.abs_diff(to.0)) + u64::from(from.1.abs_diff(to.1))).max(1)
        };
        dist * cfg.timing.mesh_hop_cycles * cfg.mesh_cycle_ticks()
    }

    fn memory_delay<S: TraceSink>(&mut self, cfg: &FabricConfig, _now: u64, _sink: &mut S) -> u64 {
        cfg.timing.memory_service * cfg.mesh_cycle_ticks()
    }

    fn memory_write<S: TraceSink>(&mut self, _cfg: &FabricConfig, _now: u64, _sink: &mut S) {}

    fn gpp_delay<S: TraceSink>(&mut self, cfg: &FabricConfig, _now: u64, _sink: &mut S) -> u64 {
        cfg.timing.gpp_service * cfg.mesh_cycle_ticks()
    }

    fn take_report(&mut self) -> Option<NetReport> {
        None
    }
}

/// Output-link directions of a router. `Local` is the ejection port into
/// the destination node's input FIFO (every message crosses it, so even
/// same-node and collapsed-mesh transfers arbitrate).
const DIR_EAST: usize = 0;
const DIR_WEST: usize = 1;
const DIR_SOUTH: usize = 2;
const DIR_NORTH: usize = 3;
const DIR_LOCAL: usize = 4;
const DIRS: usize = 5;

#[derive(Debug, Clone, Copy, Default)]
struct Link {
    /// First tick at which the link can accept the next flit.
    next_free: u64,
    flits: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct NodeStat {
    flits: u64,
    stall_ticks: u64,
}

/// A slotted ring: one request boards per `slot_ticks`; boarded requests
/// transit for `transit_ticks` before reaching their subsystem.
#[derive(Debug, Clone, Copy, Default)]
struct Ring {
    slot_ticks: u64,
    transit_ticks: u64,
    next_free: u64,
    requests: u64,
    wait_ticks: u64,
    max_queue: u64,
}

/// One ring boarding, as seen by the boarding request (and the
/// [`TraceKind::RingBoard`] event the caller emits).
#[derive(Debug, Clone, Copy)]
struct Boarding {
    /// Ticks until the request reaches the subsystem (wait + transit).
    delay: u64,
    /// Ticks spent waiting at the station for a free slot.
    wait: u64,
    /// Requests queued at the station (including this one).
    queued: u64,
}

impl Ring {
    /// Boards a request arriving at `now`.
    fn board(&mut self, now: u64) -> Boarding {
        let start = now.max(self.next_free);
        let wait = start - now;
        let queued = wait / self.slot_ticks.max(1) + 1;
        self.max_queue = self.max_queue.max(queued);
        self.requests += 1;
        self.wait_ticks += wait;
        self.next_free = start + self.slot_ticks;
        Boarding { delay: wait + self.transit_ticks, wait, queued }
    }

    fn report(&self) -> RingReport {
        RingReport {
            requests: self.requests,
            wait_ticks: self.wait_ticks,
            max_queue: self.max_queue,
        }
    }
}

/// The contended model: dimension-order routed mesh with per-link
/// reservation and slotted memory/GPP rings.
///
/// Links carry one flit per mesh cycle. A flit arriving at a router whose
/// wanted output link is busy waits in that router's input FIFO; a FIFO
/// holding `mesh_fifo_capacity` flits backpressures the upstream hop
/// (modeled as credit flow control: entry into the FIFO is delayed until a
/// credit frees, and the delay propagates to the flit's onward schedule).
#[derive(Debug, Clone)]
pub struct ContendedNet {
    width: u32,
    /// Per-link state, indexed `node * DIRS + dir` with `node = y*width+x`;
    /// sized for the full fabric up front (placement never exceeds
    /// `max_nodes`, so no route can touch a router beyond it).
    links: Vec<Link>,
    nodes: Vec<NodeStat>,
    mem_ring: Ring,
    gpp_ring: Ring,
    mesh_flits: u64,
    mesh_hops: u64,
    stall_ticks: u64,
    depth_sum: u64,
    max_queue_depth: u64,
}

impl ContendedNet {
    /// A fresh model for one run under `cfg`.
    #[must_use]
    pub fn new(cfg: &FabricConfig) -> ContendedNet {
        let ticks = cfg.mesh_cycle_ticks();
        let slot = cfg.net_params.ring_slot_cycles * ticks;
        let transit = cfg.net_params.ring_latency_cycles * ticks;
        let ring = Ring { slot_ticks: slot, transit_ticks: transit, ..Ring::default() };
        let width = cfg.width.max(1);
        let rows = cfg.max_nodes.div_ceil(width).max(1);
        let routers = width as usize * rows as usize;
        ContendedNet {
            width,
            links: vec![Link::default(); routers * DIRS],
            nodes: vec![NodeStat::default(); routers],
            mem_ring: ring,
            gpp_ring: ring,
            mesh_flits: 0,
            mesh_hops: 0,
            stall_ticks: 0,
            depth_sum: 0,
            max_queue_depth: 0,
        }
    }

    fn node_index(&self, (x, y): (u32, u32)) -> usize {
        y as usize * self.width as usize + x as usize
    }

    /// One hop: arbitrate for the `dir` output link of the router at
    /// `node`, entering at `entry`. Returns the tick the flit arrives at
    /// the next router. Emits one [`TraceKind::LinkHop`] per traversal,
    /// mirroring the counter updates exactly (the replay in
    /// `analysis::trace` reconstructs the `NetReport` from them).
    #[allow(clippy::too_many_arguments)]
    fn traverse<S: TraceSink>(
        &mut self,
        node: (u32, u32),
        dir: usize,
        entry: u64,
        slot: u64,
        hop: u64,
        fifo_ticks: u64,
        sink: &mut S,
    ) -> u64 {
        let ni = self.node_index(node);
        let li = ni * DIRS + dir;
        debug_assert!(li < self.links.len(), "router {node:?} beyond the preallocated fabric");
        let link = &mut self.links[li];
        // Credit backpressure: the flit cannot enter a full FIFO.
        let hold = entry.max(link.next_free.saturating_sub(fifo_ticks));
        // Single flit per mesh cycle per link.
        let grant = hold.max(link.next_free);
        link.next_free = grant + slot;
        link.flits += 1;
        let depth = (grant - hold) / slot.max(1) + 1;
        self.depth_sum += depth;
        self.max_queue_depth = self.max_queue_depth.max(depth);
        self.mesh_hops += 1;
        let stall = grant - entry;
        self.stall_ticks += stall;
        let ns = &mut self.nodes[ni];
        ns.flits += 1;
        ns.stall_ticks += stall;
        if S::ACTIVE {
            sink.record(&TraceEvent {
                tick: entry,
                kind: TraceKind::LinkHop,
                node: node.0,
                arg: node.1,
                data: stall,
                aux: depth,
            });
        }
        grant + hop
    }
}

/// Emits the [`TraceKind::RingBoard`] event for one boarding.
fn trace_boarding<S: TraceSink>(sink: &mut S, now: u64, ring: u32, b: Boarding) {
    if S::ACTIVE {
        sink.record(&TraceEvent {
            tick: now,
            kind: TraceKind::RingBoard,
            node: u32::MAX,
            arg: ring,
            data: b.wait,
            aux: b.queued,
        });
    }
}

impl NetModel for ContendedNet {
    fn mesh_delay<S: TraceSink>(
        &mut self,
        cfg: &FabricConfig,
        now: u64,
        from: (u32, u32),
        to: (u32, u32),
        sink: &mut S,
    ) -> u64 {
        let slot = cfg.mesh_cycle_ticks();
        let hop = cfg.timing.mesh_hop_cycles * slot;
        let fifo_ticks = u64::from(cfg.net_params.mesh_fifo_capacity) * slot;
        self.mesh_flits += 1;
        let mut cursor = now;
        if !cfg.collapsed {
            // Dimension-order route: X first, then Y.
            let (mut x, mut y) = from;
            while x != to.0 {
                let dir = if x < to.0 { DIR_EAST } else { DIR_WEST };
                cursor = self.traverse((x, y), dir, cursor, slot, hop, fifo_ticks, sink);
                x = if x < to.0 { x + 1 } else { x - 1 };
            }
            while y != to.1 {
                let dir = if y < to.1 { DIR_SOUTH } else { DIR_NORTH };
                cursor = self.traverse((x, y), dir, cursor, slot, hop, fifo_ticks, sink);
                y = if y < to.1 { y + 1 } else { y - 1 };
            }
        }
        // Ejection into the destination's input FIFO (the collapsed
        // Baseline keeps exactly this single arbitrated hop, mirroring the
        // ideal model's distance-1 floor).
        cursor = self.traverse(to, DIR_LOCAL, cursor, slot, hop, fifo_ticks, sink);
        cursor - now
    }

    fn memory_delay<S: TraceSink>(&mut self, cfg: &FabricConfig, now: u64, sink: &mut S) -> u64 {
        let b = self.mem_ring.board(now);
        trace_boarding(sink, now, RING_MEMORY, b);
        b.delay + cfg.timing.memory_service * cfg.mesh_cycle_ticks()
    }

    fn memory_write<S: TraceSink>(&mut self, _cfg: &FabricConfig, now: u64, sink: &mut S) {
        // Posted write: occupies a ring slot, the writer does not wait.
        let b = self.mem_ring.board(now);
        trace_boarding(sink, now, RING_MEMORY, b);
    }

    fn gpp_delay<S: TraceSink>(&mut self, cfg: &FabricConfig, now: u64, sink: &mut S) -> u64 {
        let b = self.gpp_ring.board(now);
        trace_boarding(sink, now, RING_GPP, b);
        b.delay + cfg.timing.gpp_service * cfg.mesh_cycle_ticks()
    }

    fn take_report(&mut self) -> Option<NetReport> {
        let hotspots = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.flits > 0 || s.stall_ticks > 0)
            .map(|(i, s)| NodeNetStat {
                x: (i as u32) % self.width,
                y: (i as u32) / self.width,
                flits: s.flits,
                stall_ticks: s.stall_ticks,
            })
            .collect();
        let mean =
            if self.mesh_hops == 0 { 0.0 } else { self.depth_sum as f64 / self.mesh_hops as f64 };
        Some(NetReport {
            mesh_flits: self.mesh_flits,
            mesh_hops: self.mesh_hops,
            stall_ticks: self.stall_ticks,
            max_queue_depth: self.max_queue_depth,
            mean_queue_depth: mean,
            hotspots,
            memory_ring: self.mem_ring.report(),
            gpp_ring: self.gpp_ring.report(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::NoopSink;

    fn contended_cfg() -> FabricConfig {
        FabricConfig { net: NetKind::Contended, ..FabricConfig::compact2() }
    }

    #[test]
    fn ideal_matches_closed_form() {
        let cfg = FabricConfig::compact2();
        let mut net = IdealNet;
        // Distance 3+2 at hop latency 1, 2 ticks per mesh cycle.
        assert_eq!(net.mesh_delay(&cfg, 0, (0, 0), (3, 2), &mut NoopSink), 10);
        // Same-node transfers still pay one hop.
        assert_eq!(net.mesh_delay(&cfg, 0, (4, 4), (4, 4), &mut NoopSink), 2);
        assert_eq!(net.memory_delay(&cfg, 0, &mut NoopSink), 20);
        assert_eq!(net.gpp_delay(&cfg, 0, &mut NoopSink), 40);
        assert!(net.take_report().is_none());
    }

    #[test]
    fn ideal_collapsed_is_distance_one() {
        let cfg = FabricConfig::baseline();
        let mut net = IdealNet;
        assert_eq!(net.mesh_delay(&cfg, 0, (0, 0), (9, 9), &mut NoopSink), 1);
    }

    #[test]
    fn uncontended_transfer_matches_ideal_distance() {
        let cfg = contended_cfg();
        let mut net = ContendedNet::new(&cfg);
        // 5 hops + ejection, each hop 2 ticks, no contention.
        let d = net.mesh_delay(&cfg, 0, (0, 0), (3, 2), &mut NoopSink);
        assert_eq!(d, 12);
        let r = net.take_report().unwrap();
        assert_eq!(r.mesh_flits, 1);
        assert_eq!(r.mesh_hops, 6);
        assert_eq!(r.stall_ticks, 0);
        assert_eq!(r.max_queue_depth, 1);
    }

    #[test]
    fn same_link_same_tick_serializes() {
        let cfg = contended_cfg();
        let mut net = ContendedNet::new(&cfg);
        let first = net.mesh_delay(&cfg, 0, (0, 0), (5, 0), &mut NoopSink);
        let second = net.mesh_delay(&cfg, 0, (0, 0), (5, 0), &mut NoopSink);
        // The second flit waits one mesh cycle (2 ticks) on the first link;
        // the gap persists down the path.
        assert_eq!(second, first + 2);
        let r = net.take_report().unwrap();
        assert!(r.stall_ticks > 0);
        assert!(r.max_queue_depth >= 2);
    }

    #[test]
    fn disjoint_paths_do_not_interact() {
        let cfg = contended_cfg();
        let mut net = ContendedNet::new(&cfg);
        let a = net.mesh_delay(&cfg, 0, (0, 0), (2, 0), &mut NoopSink);
        let b = net.mesh_delay(&cfg, 0, (0, 5), (2, 5), &mut NoopSink);
        assert_eq!(a, b);
        assert_eq!(net.take_report().unwrap().stall_ticks, 0);
    }

    #[test]
    fn fifo_backpressure_bounds_queue_depth() {
        let cfg = contended_cfg();
        let cap = u64::from(cfg.net_params.mesh_fifo_capacity);
        let mut net = ContendedNet::new(&cfg);
        for _ in 0..64 {
            let _ = net.mesh_delay(&cfg, 0, (0, 0), (1, 0), &mut NoopSink);
        }
        let r = net.take_report().unwrap();
        // Credit flow control: at most capacity flits wait per link (+1 for
        // the flit being granted).
        assert!(r.max_queue_depth <= cap + 1, "depth {}", r.max_queue_depth);
    }

    #[test]
    fn ring_queues_in_front_of_service() {
        let cfg = contended_cfg();
        let ticks = cfg.mesh_cycle_ticks();
        let service = cfg.timing.memory_service * ticks;
        let transit = cfg.net_params.ring_latency_cycles * ticks;
        let mut net = ContendedNet::new(&cfg);
        let first = net.memory_delay(&cfg, 0, &mut NoopSink);
        assert_eq!(first, transit + service);
        let second = net.memory_delay(&cfg, 0, &mut NoopSink);
        // One slot of wait before boarding.
        assert_eq!(second, first + cfg.net_params.ring_slot_cycles * ticks);
        let r = net.take_report().unwrap();
        assert_eq!(r.memory_ring.requests, 2);
        assert!(r.memory_ring.wait_ticks > 0);
        assert!(r.memory_ring.max_queue >= 2);
    }

    #[test]
    fn posted_writes_consume_ring_bandwidth() {
        let cfg = contended_cfg();
        let mut net = ContendedNet::new(&cfg);
        let idle = net.memory_delay(&cfg, 0, &mut NoopSink);
        net.memory_write(&cfg, 100, &mut NoopSink);
        let behind_write = net.memory_delay(&cfg, 100, &mut NoopSink);
        assert!(behind_write > idle);
        assert_eq!(net.take_report().unwrap().memory_ring.requests, 3);
    }

    #[test]
    fn gpp_and_memory_rings_are_independent() {
        let cfg = contended_cfg();
        let mut net = ContendedNet::new(&cfg);
        let m0 = net.memory_delay(&cfg, 0, &mut NoopSink);
        let g0 = net.gpp_delay(&cfg, 0, &mut NoopSink);
        // Neither boarded behind the other.
        assert_eq!(net.memory_delay(&cfg, m0 + 100, &mut NoopSink), m0);
        assert_eq!(net.gpp_delay(&cfg, g0 + 100, &mut NoopSink), g0);
    }
}

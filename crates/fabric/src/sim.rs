//! The token-bundle execution engine (Section 6.3).
//!
//! Execution of a loaded method starts a bundle of serial tokens —
//! `HEAD`, `MEMORY`, one `REGISTER` per local, `TAIL` (Figure 23) — down
//! the serial network from the Anchor. Instruction Nodes fire under the
//! dataflow rule (*HEAD received ∧ popsReceived == pops*, plus
//! group-specific conditions), results travel the mesh to the resolved
//! consumers, and control-flow nodes translate taken branches back into
//! token routing: forward jumps route the bundle with explicit addresses;
//! backward jumps buffer everything until `TAIL`, then re-inject the bundle
//! at the loop head through the reverse network, resetting the loop body.
//!
//! The simulator is event-driven over **serial ticks**; one mesh cycle is
//! `FabricConfig::mesh_cycle_ticks` ticks, reproducing the Table 15 clock
//! ratios (the collapsed Baseline drains serial traffic for free).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use javaflow_bytecode::{InstructionGroup, Method, Opcode, Operand, Value};
use javaflow_interp::{Interp, JvmError, JvmErrorKind};

use crate::{
    compute::{eval_condition, eval_pure},
    net::{ContendedNet, IdealNet, NetModel},
    place, resolve, BranchMode, BranchOracle, DataflowGraph, FabricConfig, NetKind, NetReport,
    PlaceError, Placement, ResolveError, Resolved, Token,
};

/// A method loaded into the fabric: placement plus resolved dataflow.
#[derive(Debug)]
pub struct LoadedMethod<'m> {
    /// The method.
    pub method: &'m Method,
    /// Node placement (Figure 20).
    pub placement: Placement,
    /// Address-resolution result (Section 6.2).
    pub resolved: Resolved,
    /// The routing graph the engine follows (possibly transformed by the
    /// Section 6.4 enhancements).
    pub graph: DataflowGraph,
}

/// Loading failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum LoadError {
    /// Placement failed.
    Place(PlaceError),
    /// Resolution failed.
    Resolve(ResolveError),
    /// The method uses instructions the fabric does not execute
    /// (`jsr`/`ret`/switches — delegated to the GPP in the dissertation
    /// and excluded from its simulation).
    Unsupported {
        /// The offending opcode.
        op: Opcode,
        /// Its linear address.
        addr: u32,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Place(e) => write!(fm, "placement: {e}"),
            LoadError::Resolve(e) => write!(fm, "resolution: {e}"),
            LoadError::Unsupported { op, addr } => {
                write!(fm, "fabric cannot execute `{op}` at @{addr}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// The configuration-independent part of loading a method: the
/// executability check, Section 6.2 address resolution, and the routing
/// graph. Placement is the only per-[`FabricConfig`] step, so a method
/// swept across many configurations should be [`prepare`]d once and then
/// stamped onto each configuration with [`load_with_resolved`].
#[derive(Debug)]
pub struct PreparedMethod<'m> {
    /// The method.
    pub method: &'m Method,
    /// Address-resolution result (Section 6.2).
    pub resolved: Resolved,
    /// The routing graph derived from the resolution.
    pub graph: DataflowGraph,
}

impl<'m> PreparedMethod<'m> {
    /// Combines the prepared parts with an externally computed placement
    /// into a runnable [`LoadedMethod`].
    #[must_use]
    pub fn with_placement(&self, placement: Placement) -> LoadedMethod<'m> {
        LoadedMethod {
            method: self.method,
            placement,
            resolved: self.resolved.clone(),
            graph: self.graph.clone(),
        }
    }
}

/// Runs the configuration-independent loading steps once: checks
/// fabric-executability and resolves dataflow addresses.
///
/// # Errors
///
/// See [`LoadError`].
pub fn prepare(method: &Method) -> Result<PreparedMethod<'_>, LoadError> {
    for (addr, insn) in method.iter() {
        if matches!(
            insn.op,
            Opcode::Jsr | Opcode::JsrW | Opcode::Ret | Opcode::TableSwitch | Opcode::LookupSwitch
        ) {
            return Err(LoadError::Unsupported { op: insn.op, addr });
        }
    }
    let resolved = resolve(method).map_err(LoadError::Resolve)?;
    let graph = DataflowGraph::from_resolved(&resolved);
    Ok(PreparedMethod { method, resolved, graph })
}

/// Places an already-[`prepare`]d method on one configuration, reusing
/// its resolution and routing graph instead of recomputing them.
///
/// # Errors
///
/// See [`LoadError`] (only placement can fail at this point).
pub fn load_with_resolved<'m>(
    prepared: &PreparedMethod<'m>,
    config: &FabricConfig,
) -> Result<LoadedMethod<'m>, LoadError> {
    let placement = place(prepared.method, config).map_err(LoadError::Place)?;
    Ok(prepared.with_placement(placement))
}

/// Loads a method: checks fabric-executability, places it, and resolves
/// dataflow addresses.
///
/// # Errors
///
/// See [`LoadError`].
pub fn load<'m>(method: &'m Method, config: &FabricConfig) -> Result<LoadedMethod<'m>, LoadError> {
    let prepared = prepare(method)?;
    load_with_resolved(&prepared, config)
}

/// How the method run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A return instruction fired; the value (if the method returns one)
    /// was passed back to the GPP.
    Returned(Option<Value>),
    /// The mesh-cycle budget was exhausted (the dissertation's timeout
    /// filter).
    Timeout,
    /// No event remained but no return fired (an invalid dataflow).
    Deadlock,
    /// A Section 6.3 exception was raised and delegated to the GPP.
    Exception(JvmError),
}

/// Execution measurements for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// How the run ended.
    pub outcome: Outcome,
    /// Elapsed mesh cycles.
    pub mesh_cycles: u64,
    /// Dynamic instructions fired (loop iterations re-fire).
    pub executed: u64,
    /// Relay (inserted move) firings, counted separately.
    pub relay_fires: u64,
    /// Distinct static instructions that fired at least once.
    pub static_covered: usize,
    /// `static_covered / method length` (Table 18).
    pub coverage: f64,
    /// Instructions per mesh cycle (Table 21).
    pub ipc: f64,
    /// Fraction of busy time with ≥ 2 instructions executing (Table 26).
    pub frac_cycles_ge2: f64,
    /// Fraction of elapsed time with ≥ 1 instruction executing.
    pub frac_cycles_ge1: f64,
    /// Serial messages delivered.
    pub serial_msgs: u64,
    /// Mesh messages delivered.
    pub mesh_msgs: u64,
    /// Link-level interconnect statistics ([`NetKind::Contended`] runs
    /// only; the ideal model collects none).
    pub net: Option<NetReport>,
}

/// Execution parameters.
#[derive(Debug)]
pub struct ExecParams<'g, 'p> {
    /// Branch decision source.
    pub mode: BranchMode,
    /// Mesh-cycle budget before declaring [`Outcome::Timeout`].
    pub max_mesh_cycles: u64,
    /// The GPP servicing calls, specials, and real memory (data mode).
    pub gpp: Gpp<'g, 'p>,
    /// Argument values placed in the initial register tokens.
    pub args: Vec<Value>,
}

impl Default for ExecParams<'_, '_> {
    fn default() -> Self {
        ExecParams {
            mode: BranchMode::Bp1,
            max_mesh_cycles: 1_000_000,
            gpp: Gpp::Stub,
            args: Vec::new(),
        }
    }
}

/// The General Purpose Processor attachment.
#[derive(Debug)]
pub enum Gpp<'g, 'p> {
    /// Real co-simulation: calls run on the interpreter, memory operations
    /// hit the shared heap/method area.
    Interp(&'g mut Interp<'p>),
    /// Scripted runs: constant service times, dummy results.
    Stub,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    Serial,
    Mesh,
    ExecDone,
    ServiceDone,
}

#[derive(Debug)]
struct Ev {
    at: u64,
    seq: u64,
    kind: EvKind,
    node: u32,
    token: Option<Token>,
    side: u16,
    value: Option<Value>,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[derive(Debug, Default, Clone)]
struct NState {
    head: bool,
    fired: bool,
    completed: bool,
    tail_buffered: bool,
    operands: Vec<Option<Value>>,
    reg_captured: Option<Value>,
    mem_token: Option<u64>,
    /// Tokens buffered at control-flow nodes (in arrival order).
    buffer: Vec<Token>,
    /// After a taken forward jump: explicit-route subsequent tokens here.
    redirect: Option<u32>,
    /// Decided back-jump target awaiting TAIL.
    pending_back: Option<u32>,
    /// Cached conditional decision (the oracle must be consulted once).
    decision: Option<bool>,
    /// Values to dispatch when execution/service completes.
    outputs: Vec<Value>,
    /// Memory-token order number to forward at fire time.
    mem_forward: Option<u64>,
}

impl NState {
    /// Clears the node back to `stateReady` in place, keeping the vector
    /// allocations for reuse.
    fn reset(&mut self, pops: usize) {
        self.head = false;
        self.fired = false;
        self.completed = false;
        self.tail_buffered = false;
        self.operands.clear();
        self.operands.resize(pops, None);
        self.reg_captured = None;
        self.mem_token = None;
        self.buffer.clear();
        self.redirect = None;
        self.pending_back = None;
        self.decision = None;
        self.outputs.clear();
        self.mem_forward = None;
    }
}

/// Reusable simulation buffers (node states, coverage bits, event queue).
///
/// [`Sim`] needs one `NState` per instruction plus an event heap; creating
/// them fresh for every run dominates allocation in population sweeps. An
/// arena keeps the buffers across runs — [`execute_in`] resets them to the
/// method's shape and reuses the capacity, so the BP1/BP2 runs and every
/// configuration of the same record share one set of allocations.
#[derive(Debug, Default)]
pub struct SimArena {
    nodes: Vec<NState>,
    covered: Vec<bool>,
    queue: BinaryHeap<Reverse<Ev>>,
}

impl SimArena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> SimArena {
        SimArena::default()
    }

    /// Resets the buffers to `method`'s shape, reusing allocations.
    fn reset_for(&mut self, method: &Method) {
        let n = method.code.len();
        self.nodes.truncate(n);
        for (i, st) in self.nodes.iter_mut().enumerate() {
            st.reset(usize::from(method.code[i].pops()));
        }
        for i in self.nodes.len()..n {
            let mut st = NState::default();
            st.operands.resize(usize::from(method.code[i].pops()), None);
            self.nodes.push(st);
        }
        self.covered.clear();
        self.covered.resize(n, false);
        self.queue.clear();
    }
}

/// Runs a loaded method on a fabric configuration.
pub fn execute(
    lm: &LoadedMethod<'_>,
    config: &FabricConfig,
    params: ExecParams<'_, '_>,
) -> ExecReport {
    let mut arena = SimArena::new();
    execute_in(lm, config, params, &mut arena)
}

/// Runs a loaded method on a fabric configuration, reusing `arena`'s
/// buffers instead of allocating fresh simulation state.
///
/// Behaves identically to [`execute`]; the arena only recycles capacity.
/// The interconnect model is selected by [`FabricConfig::net`] — the
/// default [`NetKind::Ideal`] charges closed-form delays, while
/// [`NetKind::Contended`] routes every mesh operand through X-Y routers
/// and every memory/GPP request through slotted rings, attaching a
/// [`NetReport`] to the result.
///
/// # Panics
///
/// Panics if `config` fails [`FabricConfig::validate`] (zero latencies
/// would livelock the event loop).
pub fn execute_in(
    lm: &LoadedMethod<'_>,
    config: &FabricConfig,
    params: ExecParams<'_, '_>,
    arena: &mut SimArena,
) -> ExecReport {
    config.validate().expect("invalid FabricConfig");
    match config.net {
        NetKind::Ideal => Sim::new(lm, config, params, arena, IdealNet).run(),
        NetKind::Contended => {
            let net = ContendedNet::new(config);
            Sim::new(lm, config, params, arena, net).run()
        }
    }
}

struct Sim<'a, 'm, 'g, 'p, N: NetModel> {
    lm: &'a LoadedMethod<'m>,
    cfg: &'a FabricConfig,
    oracle: BranchOracle,
    gpp: Gpp<'g, 'p>,
    args: Vec<Value>,
    lenient: bool,
    n: usize,
    /// Owner of the buffers below; they are taken in `new` and returned
    /// at the end of `run` so the next run reuses the capacity.
    arena: &'a mut SimArena,
    nodes: Vec<NState>,
    queue: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    now: u64,
    max_ticks: u64,
    // stats
    executed: u64,
    relay_fires: u64,
    covered: Vec<bool>,
    serial_msgs: u64,
    mesh_msgs: u64,
    busy: u32,
    last_busy_change: u64,
    acc_ge1: u64,
    acc_ge2: u64,
    outcome: Option<Outcome>,
    net: N,
}

impl<'a, 'm, 'g, 'p, N: NetModel> Sim<'a, 'm, 'g, 'p, N> {
    fn new(
        lm: &'a LoadedMethod<'m>,
        cfg: &'a FabricConfig,
        params: ExecParams<'g, 'p>,
        arena: &'a mut SimArena,
        net: N,
    ) -> Self {
        let n = lm.method.code.len();
        arena.reset_for(lm.method);
        let nodes = std::mem::take(&mut arena.nodes);
        let covered = std::mem::take(&mut arena.covered);
        let queue = std::mem::take(&mut arena.queue);
        let max_ticks = params.max_mesh_cycles.saturating_mul(cfg.mesh_cycle_ticks());
        Sim {
            lm,
            cfg,
            oracle: BranchOracle::new(params.mode),
            gpp: params.gpp,
            args: params.args,
            lenient: params.mode.is_scripted(),
            n,
            arena,
            nodes,
            queue,
            seq: 0,
            now: 0,
            max_ticks,
            executed: 0,
            relay_fires: 0,
            covered,
            serial_msgs: 0,
            mesh_msgs: 0,
            busy: 0,
            last_busy_change: 0,
            acc_ge1: 0,
            acc_ge2: 0,
            outcome: None,
            net,
        }
    }

    fn mesh_ticks(&self) -> u64 {
        self.cfg.mesh_cycle_ticks()
    }

    fn serial_hop(&self) -> u64 {
        self.cfg.serial_hop_ticks()
    }

    /// Serial transit ticks between two instructions (chain distance).
    fn serial_transit(&self, from: u32, to: u32) -> u64 {
        self.lm.placement.serial_distance(from, to) * self.serial_hop()
    }

    fn coords_of(&self, id: u32) -> (u32, u32) {
        if (id as usize) < self.n {
            self.lm.placement.coords[id as usize]
        } else {
            self.lm.graph.relays[id as usize - self.n].coords
        }
    }

    fn push_ev(
        &mut self,
        at: u64,
        kind: EvKind,
        node: u32,
        token: Option<Token>,
        side: u16,
        value: Option<Value>,
    ) {
        self.seq += 1;
        self.queue.push(Reverse(Ev { at, seq: self.seq, kind, node, token, side, value }));
    }

    fn send_serial(&mut self, from: u32, to: u32, token: Token) {
        let delay = self.serial_transit(from, to).max(self.serial_hop());
        self.serial_msgs += 1;
        self.push_ev(self.now + delay, EvKind::Serial, to, Some(token), 0, None);
    }

    fn send_mesh(&mut self, from_coords: (u32, u32), sink: crate::Sink, value: Value) {
        let to = self.coords_of(sink.consumer);
        let delay = self.net.mesh_delay(self.cfg, self.now, from_coords, to);
        self.mesh_msgs += 1;
        self.push_ev(self.now + delay, EvKind::Mesh, sink.consumer, None, sink.side, Some(value));
    }

    fn set_busy(&mut self, delta: i32) {
        let dt = self.now - self.last_busy_change;
        if self.busy >= 1 {
            self.acc_ge1 += dt;
        }
        if self.busy >= 2 {
            self.acc_ge2 += dt;
        }
        self.last_busy_change = self.now;
        self.busy = self.busy.wrapping_add_signed(delta);
    }

    fn fail(&mut self, e: JvmError) {
        if self.outcome.is_none() {
            self.outcome = Some(Outcome::Exception(e));
        }
    }

    fn run(mut self) -> ExecReport {
        self.inject_bundle();
        while self.outcome.is_none() {
            let Some(Reverse(ev)) = self.queue.pop() else {
                self.outcome = Some(Outcome::Deadlock);
                break;
            };
            if ev.at > self.max_ticks {
                self.outcome = Some(Outcome::Timeout);
                break;
            }
            self.now = ev.at;
            match ev.kind {
                EvKind::Serial => {
                    if let Some(t) = ev.token {
                        self.on_serial(ev.node, t);
                    }
                }
                EvKind::Mesh => {
                    if let Some(v) = ev.value {
                        self.on_mesh(ev.node, ev.side, v);
                    }
                }
                EvKind::ExecDone => self.on_exec_done(ev.node),
                EvKind::ServiceDone => self.on_service_done(ev.node),
            }
        }
        let end = self.now.max(1);
        let mesh_cycles = end.div_ceil(self.mesh_ticks());
        let static_covered = self.covered.iter().filter(|c| **c).count();
        let active_static = self.lm.graph.active.iter().filter(|a| **a).count().max(1);
        // Hand the buffers back so the next run in this arena reuses them.
        self.arena.nodes = std::mem::take(&mut self.nodes);
        self.arena.covered = std::mem::take(&mut self.covered);
        self.arena.queue = std::mem::take(&mut self.queue);
        ExecReport {
            outcome: self.outcome.clone().unwrap_or(Outcome::Deadlock),
            mesh_cycles,
            executed: self.executed,
            relay_fires: self.relay_fires,
            static_covered,
            coverage: static_covered as f64 / active_static as f64,
            ipc: self.executed as f64 / mesh_cycles as f64,
            frac_cycles_ge2: self.acc_ge2 as f64 / end as f64,
            frac_cycles_ge1: self.acc_ge1 as f64 / end as f64,
            serial_msgs: self.serial_msgs,
            mesh_msgs: self.mesh_msgs,
            net: self.net.take_report(),
        }
    }

    /// The Anchor injects the token bundle at instruction 0.
    fn inject_bundle(&mut self) {
        let mut tokens = vec![Token::Head, Token::Memory(0)];
        let locals = usize::from(self.lm.method.max_locals);
        for r in 0..locals {
            let value = self.args.get(r).copied().unwrap_or(Value::Int(0));
            tokens.push(Token::Register { reg: r as u16, value });
        }
        tokens.push(Token::Tail);
        let hop = self.serial_hop();
        for (i, t) in tokens.into_iter().enumerate() {
            self.serial_msgs += 1;
            self.push_ev((i as u64 + 1) * hop, EvKind::Serial, 0, Some(t), 0, None);
        }
    }

    /// Forwards a token from node `i` to its successor in the bundle's
    /// current route (next linear instruction, or the redirect target).
    fn forward(&mut self, i: u32, token: Token) {
        let to = match self.nodes[i as usize].redirect {
            Some(t) => t,
            None => i + 1,
        };
        if (to as usize) < self.n {
            self.send_serial(i, to, token);
        }
        // Tokens running past the last instruction return to the Anchor.
    }

    fn on_serial(&mut self, i: u32, token: Token) {
        let insn = &self.lm.method.code[i as usize];
        let group = insn.group();
        let st = &mut self.nodes[i as usize];

        // Folded nodes are inert pass-throughs.
        if !self.lm.graph.active[i as usize] {
            match token {
                Token::Tail => {
                    self.forward(i, Token::Tail);
                }
                t => self.forward(i, t),
            }
            return;
        }

        // Control-flow nodes buffer every token until they fire
        // (returns and gotos too).
        let buffers_all = matches!(group, InstructionGroup::ControlFlow | InstructionGroup::Return);

        match token {
            Token::Head => {
                st.head = true;
                if buffers_all && !st.completed {
                    st.buffer.push(Token::Head);
                } else if !buffers_all {
                    self.forward(i, Token::Head);
                } else {
                    // completed control node: pass through along its route.
                    self.forward(i, Token::Head);
                }
                self.try_fire(i);
            }
            Token::Memory(order) => {
                if buffers_all && !st.completed {
                    st.buffer.push(Token::Memory(order));
                } else if insn.op.is_ordered_memory() && !st.fired {
                    // Ordered storage holds the memory token until it fires.
                    st.mem_token = Some(order);
                    self.try_fire(i);
                } else {
                    self.forward(i, Token::Memory(order));
                }
            }
            Token::Register { reg, value } => {
                if trace_enabled("JAVAFLOW_TRACE_REG") {
                    eprintln!(
                        "[reg] t={} @{i} {} sees r{reg}={value} (fired={} completed={})",
                        self.now, insn.op, st.fired, st.completed
                    );
                }
                let interested = match (&insn.operand, group) {
                    (
                        Operand::Local(r),
                        InstructionGroup::LocalRead | InstructionGroup::LocalWrite,
                    ) => *r == reg,
                    (Operand::Inc { local, .. }, InstructionGroup::LocalInc) => *local == reg,
                    _ => match (insn.op, group) {
                        // Compact register forms encode the register in the opcode.
                        (op, InstructionGroup::LocalRead | InstructionGroup::LocalWrite) => {
                            compact_register(op) == Some(reg)
                        }
                        _ => false,
                    },
                };
                if buffers_all && !st.completed {
                    st.buffer.push(Token::Register { reg, value });
                } else if interested && group == InstructionGroup::LocalWrite {
                    // The write kills the register: absorb the stale token
                    // unconditionally. The write may already have fired and
                    // emitted the fresh token — "this can result in the
                    // re-ordering of the REGISTER_TOKEN messages"
                    // (Section 6.3) — but the killed value must never pass.
                    self.try_fire(i);
                } else if interested && !st.fired {
                    match group {
                        InstructionGroup::LocalRead | InstructionGroup::LocalInc => {
                            st.reg_captured = Some(value);
                            self.try_fire(i);
                        }
                        _ => self.forward(i, Token::Register { reg, value }),
                    }
                } else {
                    self.forward(i, Token::Register { reg, value });
                }
            }
            Token::Tail => {
                if buffers_all && !st.completed {
                    st.tail_buffered = true;
                    st.buffer.push(Token::Tail);
                    self.try_fire(i);
                    self.maybe_reinject(i);
                } else if st.completed || !st.head {
                    // Pass: the node has finished (or was bypassed and the
                    // tail is explicitly routed past it — cannot happen on
                    // the ordered network; completed is the normal case).
                    self.forward(i, Token::Tail);
                } else {
                    st.tail_buffered = true;
                    self.try_fire(i);
                }
            }
        }
    }

    fn on_mesh(&mut self, id: u32, side: u16, value: Value) {
        if (id as usize) >= self.n {
            // Relay: one move-latency hop, then fan out.
            let ri = id as usize - self.n;
            let coords = self.lm.graph.relays[ri].coords;
            self.relay_fires += 1;
            let move_ticks = self.cfg.timing.move_cycles * self.mesh_ticks();
            let saved_now = self.now;
            self.now += move_ticks;
            for k in 0..self.lm.graph.relays[ri].sinks.len() {
                let s = self.lm.graph.relays[ri].sinks[k];
                self.send_mesh(coords, s, value);
            }
            self.now = saved_now;
            return;
        }
        let st = &mut self.nodes[id as usize];
        let k = usize::from(side).saturating_sub(1);
        if k < st.operands.len() {
            st.operands[k] = Some(value);
        }
        self.try_fire(id);
    }

    /// Fire-condition check and firing (Section 6.3 per-group rules).
    #[allow(clippy::too_many_lines)]
    fn try_fire(&mut self, i: u32) {
        // Early-outs on a borrow only — most calls return here, and the
        // instruction clone below would otherwise run per delivered token.
        {
            let insn = &self.lm.method.code[i as usize];
            let group = insn.group();
            let st = &self.nodes[i as usize];
            if st.fired || !st.head || self.outcome.is_some() {
                return;
            }
            if st.operands.iter().any(Option::is_none) {
                return;
            }
            match group {
                InstructionGroup::LocalRead | InstructionGroup::LocalInc
                    if st.reg_captured.is_none() => {
                        return;
                    }
                InstructionGroup::MemRead | InstructionGroup::MemWrite
                    if st.mem_token.is_none() => {
                        return;
                    }
                InstructionGroup::Return
                    if !st.tail_buffered => {
                        return;
                    }
                InstructionGroup::ControlFlow
                    // Unconditional backward goto needs the tail.
                    if insn.op.is_goto()
                        && self.lm.method.is_back_branch(i)
                        && !st.tail_buffered
                    => {
                        return;
                    }
                _ => {}
            }
        }

        // All conditions met: fire.
        let insn = self.lm.method.code[i as usize].clone();
        let group = insn.group();
        let operands: Vec<Value> =
            self.nodes[i as usize].operands.iter().map(|o| o.expect("checked")).collect();
        self.nodes[i as usize].fired = true;
        self.covered[i as usize] = true;
        self.executed += 1;
        self.set_busy(1);

        let exec_ticks = self.cfg.timing.exec_cycles(group) * self.mesh_ticks();

        match group {
            InstructionGroup::ControlFlow => {
                let taken = if insn.op.is_goto() {
                    true
                } else {
                    let data =
                        eval_condition(insn.op, &operands, self.lenient).unwrap_or_else(|e| {
                            self.fail(e.at(javaflow_bytecode::MethodId(0), i, insn.op));
                            false
                        });
                    let is_back = self.lm.method.is_back_branch(i);
                    self.oracle.decide(i, is_back, data)
                };
                self.nodes[i as usize].decision = Some(taken);
                self.push_ev(self.now + exec_ticks, EvKind::ExecDone, i, None, 0, None);
            }
            InstructionGroup::Return => {
                self.push_ev(self.now + exec_ticks, EvKind::ExecDone, i, None, 0, None);
            }
            InstructionGroup::LocalRead => {
                let v = self.nodes[i as usize].reg_captured.expect("checked");
                self.nodes[i as usize].outputs = vec![v];
                self.push_ev(self.now + exec_ticks, EvKind::ExecDone, i, None, 0, None);
            }
            InstructionGroup::LocalInc => {
                let v = self.nodes[i as usize].reg_captured.expect("checked");
                let delta = match insn.operand {
                    Operand::Inc { delta, .. } => delta,
                    _ => 0,
                };
                let new = match v {
                    Value::Int(x) => Value::Int(x.wrapping_add(delta)),
                    other if self.lenient => other,
                    _ => {
                        self.fail(JvmError::bare(JvmErrorKind::TypeError).at(
                            javaflow_bytecode::MethodId(0),
                            i,
                            insn.op,
                        ));
                        return;
                    }
                };
                self.nodes[i as usize].outputs = vec![new];
                self.push_ev(self.now + exec_ticks, EvKind::ExecDone, i, None, 0, None);
            }
            InstructionGroup::LocalWrite => {
                self.nodes[i as usize].outputs = operands;
                self.push_ev(self.now + exec_ticks, EvKind::ExecDone, i, None, 0, None);
            }
            InstructionGroup::MemRead | InstructionGroup::MemWrite => {
                let order = self.nodes[i as usize].mem_token.take().expect("checked");
                self.nodes[i as usize].mem_forward = Some(order + 1);
                let result = self.memory_op(&insn, &operands, i);
                match result {
                    Ok(vals) => self.nodes[i as usize].outputs = vals,
                    Err(e) => {
                        self.fail(e.at(javaflow_bytecode::MethodId(0), i, insn.op));
                        return;
                    }
                }
                self.push_ev(self.now + exec_ticks, EvKind::ExecDone, i, None, 0, None);
            }
            InstructionGroup::Call | InstructionGroup::Special => {
                let result = self.gpp_service(&insn, &operands, i);
                match result {
                    Ok(vals) => self.nodes[i as usize].outputs = vals,
                    Err(e) => {
                        self.fail(e.at(javaflow_bytecode::MethodId(0), i, insn.op));
                        return;
                    }
                }
                self.push_ev(self.now + exec_ticks, EvKind::ExecDone, i, None, 0, None);
            }
            InstructionGroup::MemConst => {
                let v = match insn.operand {
                    Operand::Cp(idx) => self.lm.method.cpool[usize::from(idx)],
                    _ => Value::Int(0),
                };
                self.nodes[i as usize].outputs = vec![v];
                self.push_ev(self.now + exec_ticks, EvKind::ExecDone, i, None, 0, None);
            }
            _ => {
                // Pure arithmetic / logic / move / conversion.
                match eval_pure(&insn, &operands, self.lenient) {
                    Ok(vals) => self.nodes[i as usize].outputs = vals,
                    Err(e) => {
                        self.fail(e.at(javaflow_bytecode::MethodId(0), i, insn.op));
                        return;
                    }
                }
                self.push_ev(self.now + exec_ticks, EvKind::ExecDone, i, None, 0, None);
            }
        }
    }

    /// Completion of the execution stage.
    #[allow(clippy::too_many_lines)]
    fn on_exec_done(&mut self, i: u32) {
        self.set_busy(-1);
        let insn = self.lm.method.code[i as usize].clone();
        let group = insn.group();

        match group {
            InstructionGroup::ControlFlow => {
                let taken = self.nodes[i as usize].decision.unwrap_or(false);
                let target = insn.branch_target().unwrap_or(i + 1);
                if !taken {
                    // Release the bundle to the next instruction.
                    self.release_buffer(i, i + 1);
                    self.nodes[i as usize].completed = true;
                } else if target > i {
                    // Forward jump: explicit routing to the target.
                    self.nodes[i as usize].redirect = Some(target);
                    self.release_buffer(i, target);
                    self.nodes[i as usize].completed = true;
                } else {
                    // Backward jump: hold everything until TAIL, then
                    // re-inject the bundle at the loop head.
                    self.nodes[i as usize].pending_back = Some(target);
                    self.maybe_reinject(i);
                }
                return;
            }
            InstructionGroup::Return => {
                let method_returns = self.lm.method.returns;
                let value = if method_returns {
                    self.nodes[i as usize].operands.first().copied().flatten()
                } else {
                    None
                };
                if insn.op == Opcode::AThrow && !self.lenient {
                    self.fail(JvmError::bare(JvmErrorKind::Thrown).at(
                        javaflow_bytecode::MethodId(0),
                        i,
                        insn.op,
                    ));
                } else {
                    self.outcome = Some(Outcome::Returned(value));
                }
                return;
            }
            InstructionGroup::MemRead => {
                // Request sent; results arrive after the ring transit (if
                // contended) and the memory service.
                if let Some(order) = self.nodes[i as usize].mem_forward.take() {
                    self.forward(i, Token::Memory(order));
                }
                let service = self.net.memory_delay(self.cfg, self.now);
                self.push_ev(self.now + service, EvKind::ServiceDone, i, None, 0, None);
                return;
            }
            InstructionGroup::Call | InstructionGroup::Special => {
                let service = self.net.gpp_delay(self.cfg, self.now);
                self.push_ev(self.now + service, EvKind::ServiceDone, i, None, 0, None);
                return;
            }
            InstructionGroup::MemWrite => {
                if let Some(order) = self.nodes[i as usize].mem_forward.take() {
                    self.forward(i, Token::Memory(order));
                }
                // Writes proceed without waiting for the service, but still
                // occupy memory-ring bandwidth under the contended model.
                self.net.memory_write(self.cfg, self.now);
            }
            InstructionGroup::LocalWrite => {
                // Emit the updated register token.
                let reg = register_of(&insn).unwrap_or(0);
                let value =
                    self.nodes[i as usize].outputs.first().copied().unwrap_or(Value::Int(0));
                self.forward(i, Token::Register { reg, value });
                self.finish_node(i);
                return;
            }
            InstructionGroup::LocalRead => {
                // Re-send the register token, then results to the mesh.
                let reg = register_of(&insn).unwrap_or(0);
                let value = self.nodes[i as usize].reg_captured.unwrap_or(Value::Int(0));
                self.forward(i, Token::Register { reg, value });
            }
            InstructionGroup::LocalInc => {
                let reg = register_of(&insn).unwrap_or(0);
                let value =
                    self.nodes[i as usize].outputs.first().copied().unwrap_or(Value::Int(0));
                self.forward(i, Token::Register { reg, value });
                self.finish_node(i);
                return;
            }
            _ => {}
        }
        self.dispatch_outputs(i);
        self.finish_node(i);
    }

    /// Completion of a memory/GPP service: outputs go to the mesh.
    fn on_service_done(&mut self, i: u32) {
        self.dispatch_outputs(i);
        self.finish_node(i);
    }

    /// Sends the node's computed outputs to its resolved consumers.
    fn dispatch_outputs(&mut self, i: u32) {
        let outputs = std::mem::take(&mut self.nodes[i as usize].outputs);
        let coords = self.lm.placement.coords[i as usize];
        // Indexed walk: `Sink` is `Copy`, so this avoids cloning the sink
        // list on every fire.
        for k in 0..self.lm.graph.consumers[i as usize].len() {
            let s = self.lm.graph.consumers[i as usize][k];
            let v = outputs.get(usize::from(s.out)).copied().unwrap_or(Value::Int(0));
            self.send_mesh(coords, s, v);
        }
    }

    /// Marks a node complete and forwards a buffered TAIL.
    fn finish_node(&mut self, i: u32) {
        self.nodes[i as usize].completed = true;
        if self.nodes[i as usize].tail_buffered {
            self.nodes[i as usize].tail_buffered = false;
            self.forward(i, Token::Tail);
        }
    }

    /// Releases a control-flow node's buffered tokens toward `to`.
    fn release_buffer(&mut self, i: u32, to: u32) {
        let tokens = std::mem::take(&mut self.nodes[i as usize].buffer);
        self.nodes[i as usize].tail_buffered = false;
        if (to as usize) >= self.n {
            return;
        }
        let base = self.serial_transit(i, to).max(self.serial_hop());
        for (k, t) in tokens.into_iter().enumerate() {
            self.serial_msgs += 1;
            self.push_ev(
                self.now + base + k as u64 * self.serial_hop(),
                EvKind::Serial,
                to,
                Some(t),
                0,
                None,
            );
        }
    }

    /// If a decided backward jump has executed and holds the TAIL,
    /// re-inject the bundle at the loop head and reset the loop body.
    fn maybe_reinject(&mut self, i: u32) {
        let Some(target) = self.nodes[i as usize].pending_back else {
            return;
        };
        if !self.nodes[i as usize].tail_buffered {
            return;
        }
        let tokens = std::mem::take(&mut self.nodes[i as usize].buffer);
        // Reset the loop body [target ..= i] — "each instruction from the
        // same thread/class/method must also reset to the stateReady".
        for a in target..=i {
            let pops = usize::from(self.lm.method.code[a as usize].pops());
            self.nodes[a as usize].reset(pops);
        }
        // Reverse-network transit to the loop head.
        let base = self.serial_transit(i, target).max(self.serial_hop());
        for (k, t) in tokens.into_iter().enumerate() {
            self.serial_msgs += 1;
            self.push_ev(
                self.now + base + k as u64 * self.serial_hop(),
                EvKind::Serial,
                target,
                Some(t),
                0,
                None,
            );
        }
    }

    /// Ordered memory operations against the shared JVM state (or dummy
    /// values for scripted runs).
    fn memory_op(
        &mut self,
        insn: &javaflow_bytecode::Insn,
        operands: &[Value],
        _i: u32,
    ) -> Result<Vec<Value>, JvmError> {
        let Gpp::Interp(gpp) = &mut self.gpp else {
            // Scripted: reads produce a dummy; writes produce nothing.
            return Ok(if insn.pushes() > 0 { vec![Value::Int(0)] } else { Vec::new() });
        };
        use Opcode as O;
        let get_ref = |v: &Value| -> Result<Option<u32>, JvmError> {
            v.as_ref_handle().ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))
        };
        let get_int = |v: &Value| -> Result<i32, JvmError> {
            v.as_int().ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))
        };
        match insn.op {
            O::IALoad
            | O::LALoad
            | O::FALoad
            | O::DALoad
            | O::AALoad
            | O::BALoad
            | O::CALoad
            | O::SALoad => {
                let arr = get_ref(&operands[0])?;
                let idx = get_int(&operands[1])?;
                Ok(vec![gpp.state.heap.array_get(arr, idx)?])
            }
            O::IAStore
            | O::LAStore
            | O::FAStore
            | O::DAStore
            | O::AAStore
            | O::BAStore
            | O::CAStore
            | O::SAStore => {
                if trace_enabled("JAVAFLOW_TRACE_MEM") {
                    eprintln!("[mem] @{_i} {} operands {:?}", insn.op, operands);
                }
                let arr = get_ref(&operands[0])?;
                let idx = get_int(&operands[1])?;
                let v = match insn.op {
                    O::BAStore => Value::Int(get_int(&operands[2])? as i8 as i32),
                    O::CAStore => Value::Int(get_int(&operands[2])? as u16 as i32),
                    O::SAStore => Value::Int(get_int(&operands[2])? as i16 as i32),
                    _ => operands[2],
                };
                gpp.state.heap.array_set(arr, idx, v)?;
                Ok(Vec::new())
            }
            O::GetField => match insn.operand {
                Operand::Field(f) => {
                    let obj = get_ref(&operands[0])?;
                    Ok(vec![gpp.state.heap.get_field(obj, f.slot)?])
                }
                _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::PutField => match insn.operand {
                Operand::Field(f) => {
                    let obj = get_ref(&operands[0])?;
                    gpp.state.heap.put_field(obj, f.slot, operands[1])?;
                    Ok(Vec::new())
                }
                _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::GetStatic => match insn.operand {
                Operand::Field(f) => Ok(vec![gpp.state.get_static(f.class, f.slot)?]),
                _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::PutStatic => match insn.operand {
                Operand::Field(f) => {
                    gpp.state.put_static(f.class, f.slot, operands[0])?;
                    Ok(Vec::new())
                }
                _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
        }
    }

    /// Call and `Special` service on the GPP.
    fn gpp_service(
        &mut self,
        insn: &javaflow_bytecode::Insn,
        operands: &[Value],
        _i: u32,
    ) -> Result<Vec<Value>, JvmError> {
        let Gpp::Interp(gpp) = &mut self.gpp else {
            return Ok(if insn.pushes() > 0 { vec![Value::Int(0)] } else { Vec::new() });
        };
        use Opcode as O;
        match insn.op {
            O::InvokeVirtual
            | O::InvokeSpecial
            | O::InvokeStatic
            | O::InvokeInterface
            | O::InvokeDynamic => match insn.operand {
                Operand::Call(c) => {
                    let r = gpp.run(c.method, operands)?;
                    Ok(r.map(|v| vec![v]).unwrap_or_default())
                }
                _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::New => match insn.operand {
                Operand::ClassId(cid) => {
                    let fields = gpp.program().class(cid).instance_fields;
                    let h = gpp.state.heap.alloc_object(cid, fields);
                    Ok(vec![Value::Ref(Some(h))])
                }
                _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::NewArray => match insn.operand {
                Operand::ArrayType(k) => {
                    let len = operands[0]
                        .as_int()
                        .ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                    let h = gpp.state.heap.alloc_array(k, len)?;
                    Ok(vec![Value::Ref(Some(h))])
                }
                _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::ANewArray => match insn.operand {
                Operand::ClassId(cid) => {
                    let len = operands[0]
                        .as_int()
                        .ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                    let h = gpp.state.heap.alloc_ref_array(cid, len)?;
                    Ok(vec![Value::Ref(Some(h))])
                }
                _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::ArrayLength => {
                let arr = operands[0]
                    .as_ref_handle()
                    .ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                Ok(vec![Value::Int(gpp.state.heap.array_len(arr)?)])
            }
            O::InstanceOf => match insn.operand {
                Operand::ClassId(cid) => {
                    let h = operands[0]
                        .as_ref_handle()
                        .ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                    let yes = match h {
                        None => false,
                        Some(hh) => gpp.state.heap.object_class(Some(hh))? == cid,
                    };
                    Ok(vec![Value::Int(i32::from(yes))])
                }
                _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::CheckCast => match insn.operand {
                Operand::ClassId(cid) => {
                    let h = operands[0]
                        .as_ref_handle()
                        .ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                    if let Some(hh) = h {
                        if gpp.state.heap.object_class(Some(hh))? != cid {
                            return Err(JvmError::bare(JvmErrorKind::ClassCast));
                        }
                    }
                    Ok(vec![Value::Ref(h)])
                }
                _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::MonitorEnter | O::MonitorExit => {
                let h = operands[0]
                    .as_ref_handle()
                    .ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                if h.is_none() {
                    return Err(JvmError::bare(JvmErrorKind::NullPointer));
                }
                Ok(Vec::new())
            }
            O::Nop => Ok(Vec::new()),
            _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
        }
    }
}

/// Whether a trace environment toggle is set, checked once per process —
/// `env::var_os` walks the environment under a lock and these sit on the
/// per-token hot path.
fn trace_enabled(name: &'static str) -> bool {
    use std::sync::OnceLock;
    static REG: OnceLock<bool> = OnceLock::new();
    static MEM: OnceLock<bool> = OnceLock::new();
    let cell = if name == "JAVAFLOW_TRACE_REG" { &REG } else { &MEM };
    *cell.get_or_init(|| std::env::var_os(name).is_some())
}

/// Register index encoded in the compact `*load_N`/`*store_N` forms.
fn compact_register(op: Opcode) -> Option<u16> {
    use Opcode as O;
    Some(match op {
        O::ILoad0
        | O::LLoad0
        | O::FLoad0
        | O::DLoad0
        | O::ALoad0
        | O::IStore0
        | O::LStore0
        | O::FStore0
        | O::DStore0
        | O::AStore0 => 0,
        O::ILoad1
        | O::LLoad1
        | O::FLoad1
        | O::DLoad1
        | O::ALoad1
        | O::IStore1
        | O::LStore1
        | O::FStore1
        | O::DStore1
        | O::AStore1 => 1,
        O::ILoad2
        | O::LLoad2
        | O::FLoad2
        | O::DLoad2
        | O::ALoad2
        | O::IStore2
        | O::LStore2
        | O::FStore2
        | O::DStore2
        | O::AStore2 => 2,
        O::ILoad3
        | O::LLoad3
        | O::FLoad3
        | O::DLoad3
        | O::ALoad3
        | O::IStore3
        | O::LStore3
        | O::FStore3
        | O::DStore3
        | O::AStore3 => 3,
        _ => return None,
    })
}

/// Register operand of a local read/write/inc instruction.
fn register_of(insn: &javaflow_bytecode::Insn) -> Option<u16> {
    match insn.operand {
        Operand::Local(r) => Some(r),
        Operand::Inc { local, .. } => Some(local),
        _ => compact_register(insn.op),
    }
}

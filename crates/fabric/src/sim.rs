//! The token-bundle execution engine (Section 6.3).
//!
//! Execution of a loaded method starts a bundle of serial tokens —
//! `HEAD`, `MEMORY`, one `REGISTER` per local, `TAIL` (Figure 23) — down
//! the serial network from the Anchor. Instruction Nodes fire under the
//! dataflow rule (*HEAD received ∧ popsReceived == pops*, plus
//! group-specific conditions), results travel the mesh to the resolved
//! consumers, and control-flow nodes translate taken branches back into
//! token routing: forward jumps route the bundle with explicit addresses;
//! backward jumps buffer everything until `TAIL`, then re-inject the bundle
//! at the loop head through the reverse network, resetting the loop body.
//!
//! The simulator is event-driven over **serial ticks**; one mesh cycle is
//! `FabricConfig::mesh_cycle_ticks` ticks, reproducing the Table 15 clock
//! ratios (the collapsed Baseline drains serial traffic for free).
//!
//! # Kernel layout
//!
//! The event loop is built for zero steady-state allocation and O(1)
//! scheduling (see DESIGN.md, "Timing-wheel kernel"):
//!
//! * events live in a [`TimingWheel`] instead of a comparison heap —
//!   pushes are monotone and bucket FIFO order reproduces the
//!   `(tick, seq)` total order the determinism suite pins down;
//! * per-node execution state is struct-of-arrays slabs owned by
//!   [`SimArena`] (flag bytes, operand/output value slabs with per-method
//!   prefix-summed offsets), not per-node structs of `Vec`s;
//! * each method is pre-decoded once into a [`DecodedMethod`] dispatch
//!   table, so firing an instruction reads a `Copy` record instead of
//!   cloning the `Insn` and re-matching its opcode group.

use std::sync::Arc;

use javaflow_bytecode::{InstructionGroup, Method, Opcode, Operand, Value};
use javaflow_interp::{Interp, JvmError, JvmErrorKind};

use crate::{
    compile::{BlockRecorder, CompiledCache, CompiledMethod, Snapshot},
    compute::{eval_condition, eval_into, OutVals},
    net::{ContendedNet, IdealNet, NetModel},
    place, resolve,
    trace::{
        encode_token, encode_value, env_stderr_sink, pack_coords, NoopSink, TraceEvent, TraceKind,
        TraceSink, WARN_COMPILE_DATA_MODE, WARN_COMPILE_GPP, WARN_COMPILE_NET_ORDER, WARN_FF_GPP,
        WARN_FF_NET_ORDER,
    },
    BranchMode, BranchOracle, DataflowGraph, FabricConfig, NetKind, NetReport, PlaceError,
    Placement, ResolveError, Resolved, TimingWheel, Token,
};

/// A method loaded into the fabric: placement plus resolved dataflow.
///
/// The resolution, routing graph, and decode table are shared with the
/// [`PreparedMethod`] they came from (and with every other placement of
/// it) — stamping a prepared method onto a configuration is two `Arc`
/// bumps, not a deep copy.
#[derive(Debug)]
pub struct LoadedMethod<'m> {
    /// The method.
    pub method: &'m Method,
    /// Node placement (Figure 20).
    pub placement: Placement,
    /// Address-resolution result (Section 6.2).
    pub resolved: Arc<Resolved>,
    /// The routing graph the engine follows (possibly transformed by the
    /// Section 6.4 enhancements).
    pub graph: Arc<DataflowGraph>,
    /// The pre-decoded per-instruction dispatch table.
    pub decoded: Arc<DecodedMethod>,
    /// Block-compiled schedules keyed by `(config, mode, budget, args)`,
    /// shared with the [`PreparedMethod`] so every placement and sweep
    /// over the method reuses one artifact per key.
    pub compiled: Arc<CompiledCache>,
}

impl LoadedMethod<'_> {
    /// Mutable access to the routing graph for the Section 6.4
    /// enhancement passes (folding, fanout limiting). Unshares the graph
    /// from sibling placements first if needed — and detaches the
    /// compiled-schedule cache, whose recorded timings assume the
    /// untransformed graph.
    pub fn graph_mut(&mut self) -> &mut DataflowGraph {
        self.compiled = Arc::new(CompiledCache::new());
        Arc::make_mut(&mut self.graph)
    }
}

/// Loading failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum LoadError {
    /// Placement failed.
    Place(PlaceError),
    /// Resolution failed.
    Resolve(ResolveError),
    /// The method uses instructions the fabric does not execute
    /// (`jsr`/`ret`/switches — delegated to the GPP in the dissertation
    /// and excluded from its simulation).
    Unsupported {
        /// The offending opcode.
        op: Opcode,
        /// Its linear address.
        addr: u32,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Place(e) => write!(fm, "placement: {e}"),
            LoadError::Resolve(e) => write!(fm, "resolution: {e}"),
            LoadError::Unsupported { op, addr } => {
                write!(fm, "fabric cannot execute `{op}` at @{addr}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// One instruction's pre-decoded execution record: everything the event
/// loop needs to fire it, flattened out of [`Method`] so the hot path
/// never clones an `Insn` or re-matches its opcode group.
#[derive(Debug, Clone, Copy)]
pub struct DecodedInsn {
    /// The opcode (error reporting, condition evaluation).
    pub op: Opcode,
    /// The Section 5 instruction group driving the firing rule.
    pub group: InstructionGroup,
    /// Mesh operands consumed.
    pub pops: u16,
    /// Values pushed.
    pub pushes: u16,
    /// Offset of this node's operand slots in the arena's operand slab.
    pub operand_off: u32,
    /// Offset of this node's output slots in the arena's output slab.
    pub output_off: u32,
    /// Output slots reserved (≥ `pushes`; local writes park their
    /// operands here, increments their updated register value).
    pub output_cap: u16,
    /// Index into the per-configuration execution-latency table
    /// (0 = move, 1 = float, 2 = convert, 3 = other — Table 17 classes).
    pub timing_class: u8,
    /// Register a local read/write/inc watches (`u16::MAX` = none).
    pub reg: u16,
    /// `iinc` delta.
    pub inc_delta: i32,
    /// Branch target (`u32::MAX` = none).
    pub branch_target: u32,
    /// Whether the branch target is at or before this address.
    pub is_back: bool,
    /// Unconditional jump.
    pub is_goto: bool,
    /// Holds the MEMORY token until it fires (ordered memory access).
    pub ordered_mem: bool,
    /// Buffers every serial token until completion (control flow and
    /// returns).
    pub buffers_all: bool,
    /// Pre-resolved constant value (`MemConst` pool loads).
    pub const_val: Value,
}

/// A method's pre-decoded dispatch table plus the slab sizes its
/// execution state needs ([`SimArena`] sizes its operand and output
/// value slabs from these).
#[derive(Debug, Clone)]
pub struct DecodedMethod {
    /// Per-instruction records, indexed by linear address.
    pub insns: Vec<DecodedInsn>,
    /// Total operand slots across the method.
    pub operand_total: usize,
    /// Total output slots across the method.
    pub output_total: usize,
}

impl DecodedMethod {
    /// Decodes `method` into the flat dispatch table.
    #[must_use]
    pub fn decode(method: &Method) -> DecodedMethod {
        let mut insns = Vec::with_capacity(method.code.len());
        let mut operand_off = 0u32;
        let mut output_off = 0u32;
        for (i, insn) in method.code.iter().enumerate() {
            let group = insn.group();
            let pops = insn.pops();
            let pushes = insn.pushes();
            let output_cap = match group {
                // A local write's "outputs" are its parked operands; an
                // increment always produces one register value.
                InstructionGroup::LocalWrite => pops.max(pushes),
                InstructionGroup::LocalInc => pushes.max(1),
                _ => pushes,
            };
            let timing_class = match group {
                InstructionGroup::ArithMove => 0,
                InstructionGroup::FloatArith => 1,
                InstructionGroup::FloatConversion => 2,
                _ => 3,
            };
            let reg = match group {
                InstructionGroup::LocalRead
                | InstructionGroup::LocalWrite
                | InstructionGroup::LocalInc => register_of(insn).unwrap_or(u16::MAX),
                _ => u16::MAX,
            };
            let inc_delta = match insn.operand {
                Operand::Inc { delta, .. } => delta,
                _ => 0,
            };
            let const_val = match (group, &insn.operand) {
                (InstructionGroup::MemConst, Operand::Cp(idx)) => method.cpool[usize::from(*idx)],
                _ => Value::Int(0),
            };
            insns.push(DecodedInsn {
                op: insn.op,
                group,
                pops,
                pushes,
                operand_off,
                output_off,
                output_cap,
                timing_class,
                reg,
                inc_delta,
                branch_target: insn.branch_target().unwrap_or(u32::MAX),
                is_back: method.is_back_branch(i as u32),
                is_goto: insn.op.is_goto(),
                ordered_mem: insn.op.is_ordered_memory(),
                buffers_all: matches!(
                    group,
                    InstructionGroup::ControlFlow | InstructionGroup::Return
                ),
                const_val,
            });
            operand_off += u32::from(pops);
            output_off += u32::from(output_cap);
        }
        DecodedMethod {
            insns,
            operand_total: operand_off as usize,
            output_total: output_off as usize,
        }
    }
}

/// The configuration-independent part of loading a method: the
/// executability check, Section 6.2 address resolution, the routing
/// graph, and the decoded dispatch table. Placement is the only
/// per-[`FabricConfig`] step, so a method swept across many
/// configurations should be [`prepare`]d once and then stamped onto each
/// configuration with [`load_with_resolved`].
#[derive(Debug)]
pub struct PreparedMethod<'m> {
    /// The method.
    pub method: &'m Method,
    /// Address-resolution result (Section 6.2).
    pub resolved: Arc<Resolved>,
    /// The routing graph derived from the resolution.
    pub graph: Arc<DataflowGraph>,
    /// The pre-decoded per-instruction dispatch table.
    pub decoded: Arc<DecodedMethod>,
    /// Block-compiled schedule cache (`ExecParams::compiled`), shared by
    /// every placement of this method: the first eligible run per
    /// `(config, mode, budget, args)` key records an AOT schedule, all
    /// later runs replay it.
    pub compiled: Arc<CompiledCache>,
}

impl<'m> PreparedMethod<'m> {
    /// Combines the prepared parts with an externally computed placement
    /// into a runnable [`LoadedMethod`]. Shares (rather than deep-copies)
    /// the resolution, graph, decode table, and compiled-schedule cache.
    #[must_use]
    pub fn with_placement(&self, placement: Placement) -> LoadedMethod<'m> {
        LoadedMethod {
            method: self.method,
            placement,
            resolved: Arc::clone(&self.resolved),
            graph: Arc::clone(&self.graph),
            decoded: Arc::clone(&self.decoded),
            compiled: Arc::clone(&self.compiled),
        }
    }
}

/// Runs the configuration-independent loading steps once: checks
/// fabric-executability, resolves dataflow addresses, and decodes the
/// dispatch table.
///
/// # Errors
///
/// See [`LoadError`].
pub fn prepare(method: &Method) -> Result<PreparedMethod<'_>, LoadError> {
    for (addr, insn) in method.iter() {
        if matches!(
            insn.op,
            Opcode::Jsr | Opcode::JsrW | Opcode::Ret | Opcode::TableSwitch | Opcode::LookupSwitch
        ) {
            return Err(LoadError::Unsupported { op: insn.op, addr });
        }
    }
    let resolved = resolve(method).map_err(LoadError::Resolve)?;
    let graph = DataflowGraph::from_resolved(&resolved);
    Ok(PreparedMethod {
        method,
        resolved: Arc::new(resolved),
        graph: Arc::new(graph),
        decoded: Arc::new(DecodedMethod::decode(method)),
        compiled: Arc::new(CompiledCache::new()),
    })
}

/// Places an already-[`prepare`]d method on one configuration, reusing
/// its resolution and routing graph instead of recomputing them.
///
/// # Errors
///
/// See [`LoadError`] (only placement can fail at this point).
pub fn load_with_resolved<'m>(
    prepared: &PreparedMethod<'m>,
    config: &FabricConfig,
) -> Result<LoadedMethod<'m>, LoadError> {
    let placement = place(prepared.method, config).map_err(LoadError::Place)?;
    Ok(prepared.with_placement(placement))
}

/// Loads a method: checks fabric-executability, places it, and resolves
/// dataflow addresses.
///
/// # Errors
///
/// See [`LoadError`].
pub fn load<'m>(method: &'m Method, config: &FabricConfig) -> Result<LoadedMethod<'m>, LoadError> {
    let prepared = prepare(method)?;
    load_with_resolved(&prepared, config)
}

/// How the method run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A return instruction fired; the value (if the method returns one)
    /// was passed back to the GPP.
    Returned(Option<Value>),
    /// The mesh-cycle budget was exhausted (the dissertation's timeout
    /// filter).
    Timeout,
    /// No event remained but no return fired (an invalid dataflow).
    Deadlock,
    /// A Section 6.3 exception was raised and delegated to the GPP.
    Exception(JvmError),
}

/// Execution measurements for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// How the run ended.
    pub outcome: Outcome,
    /// Elapsed mesh cycles.
    pub mesh_cycles: u64,
    /// Dynamic instructions fired (loop iterations re-fire).
    pub executed: u64,
    /// Relay (inserted move) firings, counted separately.
    pub relay_fires: u64,
    /// Distinct static instructions that fired at least once.
    pub static_covered: usize,
    /// `static_covered / method length` (Table 18).
    pub coverage: f64,
    /// Instructions per mesh cycle (Table 21).
    pub ipc: f64,
    /// Fraction of busy time with ≥ 2 instructions executing (Table 26).
    pub frac_cycles_ge2: f64,
    /// Fraction of elapsed time with ≥ 1 instruction executing.
    pub frac_cycles_ge1: f64,
    /// Serial messages delivered.
    pub serial_msgs: u64,
    /// Mesh messages delivered.
    pub mesh_msgs: u64,
    /// Scheduler events processed (`tables --bench-kernel` throughput).
    pub events: u64,
    /// Serial-walk deliveries proven no-ops and fast-forwarded over
    /// (plus fused relay hops) instead of being simulated as events.
    pub events_skipped: u64,
    /// Dynamic fires per timing class (0 move, 1 float, 2 convert,
    /// 3 other — the Table 17 classes), for the instrumentation
    /// registry's per-class counters and tick histograms.
    pub class_fires: [u64; 4],
    /// Timing-wheel high-water mark: the most events simultaneously
    /// scheduled at any point of the run.
    pub wheel_high_water: u64,
    /// Total events pushed into the timing wheel.
    pub wheel_pushes: u64,
    /// Bitmask of *semantic* fast-forward / compile declines: bit
    /// `1 << WARN_*` is set when the caller asked for the fast path but
    /// the gate picked the naive walk for that reason. Only the semantic
    /// reasons are recorded — an active trace sink forcing the naive
    /// walk sets no bit, so reports stay identical traced vs untraced.
    /// [`MetricsRegistry::observe_report`](crate::MetricsRegistry::observe_report)
    /// folds the bits into `warn_*` counters.
    pub declined: u8,
    /// Link-level interconnect statistics ([`NetKind::Contended`] runs
    /// only; the ideal model collects none).
    pub net: Option<NetReport>,
}

/// Execution parameters.
#[derive(Debug)]
pub struct ExecParams<'g, 'p> {
    /// Branch decision source.
    pub mode: BranchMode,
    /// Mesh-cycle budget before declaring [`Outcome::Timeout`].
    pub max_mesh_cycles: u64,
    /// The GPP servicing calls, specials, and real memory (data mode).
    pub gpp: Gpp<'g, 'p>,
    /// Argument values placed in the initial register tokens.
    pub args: Vec<Value>,
    /// Fast-forward deterministic no-op stretches of the serial token
    /// walk (and fuse relay event chains) instead of simulating each hop
    /// as its own event. Tick-exact, so every report field except
    /// `events`/`events_skipped` is unchanged; the engine only honours it
    /// where tick-exactness implies full equivalence (ideal interconnect,
    /// stub GPP — see DESIGN.md "Skip-index fast-forwarding"). `false`
    /// forces the naive per-node walk everywhere (differential testing).
    pub fast_forward: bool,
    /// Execute from a block-compiled AOT schedule (`fabric::compile`)
    /// instead of the event loop. Eligibility is fast-forward's gate plus
    /// the scripted-mode requirement (ideal interconnect, stub GPP,
    /// `BranchMode::Bp1`/`Bp2`, no active trace sink); ineligible runs
    /// fall back to the interpreted walk and an active sink gets a
    /// `WARN_COMPILE_*` event. The first eligible run per `(config,
    /// mode, budget, args)` key pays one recorded interpreted run to
    /// build the schedule; later runs replay it allocation-free with a
    /// bit-identical report. Off by default: one-shot sweeps never
    /// re-execute a key, so recording would be pure overhead — resident
    /// processes (the sweep server) and repeated-run harnesses opt in.
    pub compiled: bool,
}

impl Default for ExecParams<'_, '_> {
    fn default() -> Self {
        ExecParams {
            mode: BranchMode::Bp1,
            max_mesh_cycles: 1_000_000,
            gpp: Gpp::Stub,
            args: Vec::new(),
            fast_forward: true,
            compiled: false,
        }
    }
}

/// The General Purpose Processor attachment.
#[derive(Debug)]
pub enum Gpp<'g, 'p> {
    /// Real co-simulation: calls run on the interpreter, memory operations
    /// hit the shared heap/method area.
    Interp(&'g mut Interp<'p>),
    /// Scripted runs: constant service times, dummy results.
    Stub,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    Serial,
    Mesh,
    ExecDone,
    ServiceDone,
}

/// A scheduled event. `Copy` so timing-wheel buckets drain by index;
/// the event's tick lives in the wheel, and FIFO bucket order replaces
/// the old explicit sequence number.
#[derive(Debug, Clone, Copy)]
struct Ev {
    kind: EvKind,
    node: u32,
    token: Option<Token>,
    side: u16,
    value: Option<Value>,
    /// The tick at which the *naive* walk would have pushed this event —
    /// `now` for directly scheduled events, the virtual tick of the last
    /// skipped hop for fast-forwarded deliveries. Buckets are stable-
    /// sorted by this key before dispatch under fast-forward, restoring
    /// the naive intra-tick FIFO order that early pushes would otherwise
    /// scramble (push ticks are nondecreasing within a naive bucket, so
    /// for naive streams the sort is the identity).
    order: u64,
    /// True for deliveries scheduled *ahead* of their naive push tick
    /// (fast-forward chain deliveries and fused relay fan-outs). Among
    /// events with equal `order`, the naive walk pushes these last: the
    /// elided hop that would have made the push sits at the very end of
    /// its own bucket (its key, `order - hop`, is that bucket's maximum
    /// possible push tick), while a directly scheduled event's trigger
    /// was pushed earlier. The sort key therefore orders real pushes
    /// before chain deliveries at the same `order`.
    chain: bool,
}

// Per-node state flags (struct-of-arrays replacement for the old
// per-node bool/Option fields).
/// HEAD token received.
const F_HEAD: u8 = 1 << 0;
/// The node fired this bundle pass.
const F_FIRED: u8 = 1 << 1;
/// The node completed (tokens pass through).
const F_COMPLETED: u8 = 1 << 2;
/// TAIL is buffered at this node.
const F_TAIL_BUF: u8 = 1 << 3;
/// Cached conditional decision (set = taken).
const F_DECISION: u8 = 1 << 4;
/// A register value was captured.
const F_REG_SET: u8 = 1 << 5;
/// A memory token is held.
const F_MEM_SET: u8 = 1 << 6;
/// A memory-token order number awaits forwarding.
const F_FWD_SET: u8 = 1 << 7;

/// Reusable simulation state: the timing wheel plus the
/// struct-of-arrays node slabs.
///
/// [`Sim`] stores per-node execution state in flat vectors indexed by
/// instruction address — one flag byte, operand/output value slots at
/// prefix-summed offsets from the [`DecodedMethod`] — and events in a
/// [`TimingWheel`]. Creating these fresh for every run dominated
/// allocation in population sweeps; the arena keeps the capacity across
/// runs, so a warmed-up arena executes a scripted method with **zero**
/// heap allocations (enforced by the counting-allocator test in
/// `crates/fabric/tests/alloc.rs`).
#[derive(Debug)]
pub struct SimArena {
    queue: TimingWheel<Ev>,
    flags: Vec<u8>,
    /// Operands still missing before the dataflow rule is satisfied.
    missing: Vec<u16>,
    reg_captured: Vec<Value>,
    mem_token: Vec<u64>,
    mem_forward: Vec<u64>,
    /// Explicit route after a taken forward jump (`u32::MAX` = linear).
    redirect: Vec<u32>,
    /// Decided back-jump target awaiting TAIL (`u32::MAX` = none).
    pending_back: Vec<u32>,
    operand_vals: Vec<Value>,
    operand_set: Vec<bool>,
    output_vals: Vec<Value>,
    output_len: Vec<u16>,
    /// Tokens buffered at control-flow nodes (in arrival order).
    buffers: Vec<Vec<Token>>,
    covered: Vec<bool>,
    /// Staging for re-injected bundles (the reset clears the source
    /// node's own buffer mid-flight).
    scratch: Vec<Token>,
    /// Staging for the batch drain of one timing-wheel bucket.
    batch: Vec<Ev>,
    oracle: BranchOracle,
}

impl Default for SimArena {
    fn default() -> Self {
        SimArena::new()
    }
}

impl SimArena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> SimArena {
        SimArena {
            queue: TimingWheel::new(),
            flags: Vec::new(),
            missing: Vec::new(),
            reg_captured: Vec::new(),
            mem_token: Vec::new(),
            mem_forward: Vec::new(),
            redirect: Vec::new(),
            pending_back: Vec::new(),
            operand_vals: Vec::new(),
            operand_set: Vec::new(),
            output_vals: Vec::new(),
            output_len: Vec::new(),
            buffers: Vec::new(),
            covered: Vec::new(),
            scratch: Vec::new(),
            batch: Vec::new(),
            oracle: BranchOracle::new(BranchMode::Bp1),
        }
    }

    /// Resets the slabs to `dm`'s shape, reusing allocations.
    fn reset_for(&mut self, dm: &DecodedMethod) {
        let n = dm.insns.len();
        self.flags.clear();
        self.flags.resize(n, 0);
        self.missing.clear();
        self.missing.extend(dm.insns.iter().map(|d| d.pops));
        self.reg_captured.clear();
        self.reg_captured.resize(n, Value::Int(0));
        self.mem_token.clear();
        self.mem_token.resize(n, 0);
        self.mem_forward.clear();
        self.mem_forward.resize(n, 0);
        self.redirect.clear();
        self.redirect.resize(n, u32::MAX);
        self.pending_back.clear();
        self.pending_back.resize(n, u32::MAX);
        self.operand_vals.clear();
        self.operand_vals.resize(dm.operand_total, Value::Int(0));
        self.operand_set.clear();
        self.operand_set.resize(dm.operand_total, false);
        self.output_vals.clear();
        self.output_vals.resize(dm.output_total, Value::Int(0));
        self.output_len.clear();
        self.output_len.resize(n, 0);
        // Never truncate `buffers`: higher-index entries keep their
        // capacity for the next method that needs them.
        if self.buffers.len() < n {
            self.buffers.resize_with(n, Vec::new);
        }
        for b in &mut self.buffers[..n] {
            b.clear();
        }
        self.covered.clear();
        self.covered.resize(n, false);
        self.queue.clear();
    }

    /// Clears one node back to `stateReady` (loop-body reset).
    fn reset_node(&mut self, a: usize, d: &DecodedInsn) {
        self.flags[a] = 0;
        self.missing[a] = d.pops;
        let off = d.operand_off as usize;
        for s in &mut self.operand_set[off..off + usize::from(d.pops)] {
            *s = false;
        }
        self.redirect[a] = u32::MAX;
        self.pending_back[a] = u32::MAX;
        self.output_len[a] = 0;
        self.buffers[a].clear();
    }
}

/// A warm pool of [`SimArena`]s shared across sweep workers.
///
/// A fresh arena pays its slab and timing-wheel allocations on first use;
/// a pooled one keeps that capacity across whole sweeps, so repeated
/// sweeps (server mode) skip warm-up entirely. Checking a warm arena out
/// or in touches only a mutex-guarded `Vec` — no allocation in the steady
/// state (enforced by the counting-allocator test in
/// `crates/fabric/tests/alloc.rs`).
///
/// Retention is capped: a long-lived process that absorbs a burst of wide
/// concurrent sweeps would otherwise park one fully-grown arena per peak
/// worker forever. [`ArenaPool::checkin`] drops arenas above the
/// high-water mark ([`ArenaPool::set_retain_cap`]) instead of retaining
/// them, so peak memory decays back to the steady-state working set.
#[derive(Debug)]
pub struct ArenaPool {
    free: std::sync::Mutex<Vec<SimArena>>,
    retain_cap: std::sync::atomic::AtomicUsize,
}

impl Default for ArenaPool {
    fn default() -> ArenaPool {
        ArenaPool {
            free: std::sync::Mutex::new(Vec::new()),
            retain_cap: std::sync::atomic::AtomicUsize::new(ArenaPool::default_retain_cap()),
        }
    }
}

impl ArenaPool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> ArenaPool {
        ArenaPool::default()
    }

    /// The default retention high-water mark: twice the machine's
    /// available parallelism (a sweep checks in one arena per worker;
    /// headroom for one sweep draining while the next one starts), never
    /// below 4.
    #[must_use]
    pub fn default_retain_cap() -> usize {
        std::thread::available_parallelism().map_or(4, |n| (n.get() * 2).max(4))
    }

    /// The process-wide pool the evaluation harness draws from: arenas
    /// warmed by one sweep are reused by every later sweep in the same
    /// process.
    #[must_use]
    pub fn global() -> &'static ArenaPool {
        static GLOBAL: std::sync::OnceLock<ArenaPool> = std::sync::OnceLock::new();
        GLOBAL.get_or_init(ArenaPool::new)
    }

    /// Takes a warm arena out of the pool, or builds a fresh one when the
    /// pool is dry.
    #[must_use]
    pub fn checkout(&self) -> SimArena {
        self.free.lock().map_or_else(|_| SimArena::new(), |mut v| v.pop().unwrap_or_default())
    }

    /// Returns an arena to the pool for the next checkout. Arenas above
    /// the retention high-water mark are dropped (slabs freed) instead of
    /// parked, so a burst of wide concurrency cannot pin peak memory for
    /// the life of the process.
    pub fn checkin(&self, arena: SimArena) {
        let cap = self.retain_cap.load(std::sync::atomic::Ordering::Relaxed);
        if let Ok(mut v) = self.free.lock() {
            if v.len() < cap {
                v.push(arena);
            }
        }
    }

    /// Sets the retention high-water mark and drops any arenas already
    /// parked above it.
    pub fn set_retain_cap(&self, cap: usize) {
        self.retain_cap.store(cap, std::sync::atomic::Ordering::Relaxed);
        if let Ok(mut v) = self.free.lock() {
            v.truncate(cap);
        }
    }

    /// The current retention high-water mark.
    #[must_use]
    pub fn retain_cap(&self) -> usize {
        self.retain_cap.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// How many warm arenas are currently parked in the pool.
    #[must_use]
    pub fn warm_len(&self) -> usize {
        self.free.lock().map_or(0, |v| v.len())
    }
}

/// Runs a loaded method on a fabric configuration.
pub fn execute(
    lm: &LoadedMethod<'_>,
    config: &FabricConfig,
    params: ExecParams<'_, '_>,
) -> ExecReport {
    let mut arena = SimArena::new();
    execute_in(lm, config, params, &mut arena)
}

/// Runs a loaded method on a fabric configuration, reusing `arena`'s
/// buffers instead of allocating fresh simulation state.
///
/// Behaves identically to [`execute`]; the arena only recycles capacity.
/// The interconnect model is selected by [`FabricConfig::net`] — the
/// default [`NetKind::Ideal`] charges closed-form delays, while
/// [`NetKind::Contended`] routes every mesh operand through X-Y routers
/// and every memory/GPP request through slotted rings, attaching a
/// [`NetReport`] to the result.
///
/// # Panics
///
/// Panics if `config` fails [`FabricConfig::validate`] (zero latencies
/// would livelock the event loop).
pub fn execute_in(
    lm: &LoadedMethod<'_>,
    config: &FabricConfig,
    params: ExecParams<'_, '_>,
    arena: &mut SimArena,
) -> ExecReport {
    // The historical `JAVAFLOW_TRACE_*` environment toggles select a
    // stderr sink; checked per run (not once per process), so tests can
    // flip them between executions. With the variables unset this is the
    // `NoopSink` instantiation: the traced seam compiles out entirely.
    match env_stderr_sink() {
        Some(mut sink) => execute_with_sink(lm, config, params, arena, &mut sink),
        None => execute_with_sink(lm, config, params, arena, &mut NoopSink),
    }
}

/// Runs a loaded method with a caller-provided [`TraceSink`] observing
/// every structured event the engine emits.
///
/// An *active* sink (`S::ACTIVE`) forces the naive per-node walk —
/// fast-forwarding elides exactly the token deliveries a trace exists to
/// show — so the recording carries every hop at its naive tick. The
/// tick-exactness contract of [`ExecParams::fast_forward`] means the
/// returned report differs from an untraced run only in the
/// `events`/`events_skipped`/`wheel_*` scheduler counters.
///
/// # Panics
///
/// Panics if `config` fails [`FabricConfig::validate`] (zero latencies
/// would livelock the event loop).
pub fn execute_with_sink<S: TraceSink>(
    lm: &LoadedMethod<'_>,
    config: &FabricConfig,
    params: ExecParams<'_, '_>,
    arena: &mut SimArena,
    sink: &mut S,
) -> ExecReport {
    config.validate().expect("invalid FabricConfig");
    // The block-compiled gate: fast-forward's eligibility (order-free
    // interconnect, stub GPP, no active sink) plus scripted branches —
    // only then is the whole run independent of data values and a
    // recorded schedule exact. Declines fall through to the event loop,
    // which emits the `WARN_COMPILE_*` trace events.
    if params.compiled
        && matches!(config.net, NetKind::Ideal)
        && matches!(params.gpp, Gpp::Stub)
        && params.mode.is_scripted()
        && !S::ACTIVE
    {
        return run_compiled(lm, config, params, arena, sink);
    }
    match config.net {
        NetKind::Ideal => Sim::new(lm, config, params, arena, IdealNet, sink, None).run(),
        NetKind::Contended => {
            let net = ContendedNet::new(config);
            Sim::new(lm, config, params, arena, net, sink, None).run()
        }
    }
}

/// The compiled execution entry: replay the cached AOT schedule for this
/// `(config, mode, budget, fast-forward, args)` key, or record one with
/// an instrumented run on a cache miss. The recording run *is* the
/// requested execution — its report is returned directly, so a cold
/// compile costs one interpreted run plus the recorder's bookkeeping.
fn run_compiled<S: TraceSink>(
    lm: &LoadedMethod<'_>,
    config: &FabricConfig,
    params: ExecParams<'_, '_>,
    arena: &mut SimArena,
    sink: &mut S,
) -> ExecReport {
    let (mode, max, ff) = (params.mode, params.max_mesh_cycles, params.fast_forward);
    if let Some(cm) = lm.compiled.lookup(config, mode, max, ff, &params.args) {
        return replay_schedule(&cm, lm, arena);
    }
    let args = params.args.clone();
    let mut rec = BlockRecorder::new();
    let report = Sim::new(lm, config, params, arena, IdealNet, sink, Some(&mut rec)).run();
    let active_static = lm.graph.active.iter().filter(|a| **a).count().max(1);
    let cm = rec.finish_from_report(&report, active_static, config.mesh_cycle_ticks());
    lm.compiled.insert(config, mode, max, ff, &args, Arc::new(cm));
    report
}

/// Executes a [`CompiledMethod`]: walk the run-length-encoded block
/// schedule, fold each block's precomputed counter and delay offsets in
/// (scaled by the repeat count), and mark its firing order in the
/// coverage slab. Allocation-free on a warmed arena; the report is
/// bit-identical to the interpreted run the schedule was recorded from.
fn replay_schedule(cm: &CompiledMethod, lm: &LoadedMethod<'_>, arena: &mut SimArena) -> ExecReport {
    arena.reset_for(&lm.decoded);
    let mut end = 0u64;
    let mut events = 0u64;
    let mut events_skipped = 0u64;
    let mut executed = 0u64;
    let mut relay_fires = 0u64;
    let mut serial_msgs = 0u64;
    let mut mesh_msgs = 0u64;
    let mut wheel_pushes = 0u64;
    let mut acc_ge1 = 0u64;
    let mut acc_ge2 = 0u64;
    let mut class_fires = [0u64; 4];
    let mut static_covered = 0usize;
    for &(bid, count) in &cm.schedule {
        let b = &cm.blocks[bid as usize];
        let k = u64::from(count);
        end += b.ticks * k;
        events += b.events * k;
        events_skipped += b.events_skipped * k;
        executed += b.executed * k;
        relay_fires += b.relay_fires * k;
        serial_msgs += b.serial_msgs * k;
        mesh_msgs += b.mesh_msgs * k;
        wheel_pushes += b.wheel_pushes * k;
        acc_ge1 += b.acc_ge1 * k;
        acc_ge2 += b.acc_ge2 * k;
        for (acc, d) in class_fires.iter_mut().zip(&b.class_fires) {
            *acc += d * k;
        }
        for &f in &b.fired {
            let ix = f as usize;
            if !arena.covered[ix] {
                arena.covered[ix] = true;
                static_covered += 1;
            }
        }
    }
    let end = end.max(1);
    let mesh_cycles = end.div_ceil(cm.mesh_ticks);
    ExecReport {
        outcome: cm.outcome.clone(),
        mesh_cycles,
        executed,
        relay_fires,
        static_covered,
        coverage: static_covered as f64 / cm.active_static as f64,
        ipc: executed as f64 / mesh_cycles as f64,
        frac_cycles_ge2: acc_ge2 as f64 / end as f64,
        frac_cycles_ge1: acc_ge1 as f64 / end as f64,
        serial_msgs,
        mesh_msgs,
        events,
        events_skipped,
        class_fires,
        wheel_high_water: cm.wheel_high_water,
        wheel_pushes,
        // Replay only happens when the whole compile gate passed, which
        // subsumes the fast-forward gate: nothing was declined.
        declined: 0,
        net: None,
    }
}

struct Sim<'a, 'm, 'g, 'p, N: NetModel, S: TraceSink> {
    lm: &'a LoadedMethod<'m>,
    dm: &'a DecodedMethod,
    cfg: &'a FabricConfig,
    gpp: Gpp<'g, 'p>,
    args: Vec<Value>,
    lenient: bool,
    n: usize,
    arena: &'a mut SimArena,
    /// Execution ticks per [`DecodedInsn::timing_class`].
    class_ticks: [u64; 4],
    now: u64,
    max_ticks: u64,
    /// Whether the skip-index fast-forward path is active for this run
    /// (see [`ExecParams::fast_forward`] for the gating conditions).
    ff: bool,
    /// What the caller asked for — when the gate declines it, an active
    /// sink gets a [`TraceKind::Warn`] naming the reason.
    wanted_ff: bool,
    /// Whether the caller asked for block-compiled execution — when the
    /// gate declined it (this event loop is running instead), an active
    /// sink gets a [`TraceKind::Warn`] naming the reason.
    wanted_compiled: bool,
    /// Block-schedule recorder riding this run (`fabric::compile` cache
    /// misses only); observes fires, backward-jump re-injections, and
    /// the final counter snapshot.
    rec: Option<&'a mut BlockRecorder>,
    // stats
    events: u64,
    events_skipped: u64,
    executed: u64,
    relay_fires: u64,
    serial_msgs: u64,
    mesh_msgs: u64,
    class_fires: [u64; 4],
    busy: u32,
    last_busy_change: u64,
    acc_ge1: u64,
    acc_ge2: u64,
    outcome: Option<Outcome>,
    net: N,
    tracer: &'a mut S,
}

impl<'a, 'm, 'g, 'p, N: NetModel, S: TraceSink> Sim<'a, 'm, 'g, 'p, N, S> {
    fn new(
        lm: &'a LoadedMethod<'m>,
        cfg: &'a FabricConfig,
        params: ExecParams<'g, 'p>,
        arena: &'a mut SimArena,
        net: N,
        tracer: &'a mut S,
        rec: Option<&'a mut BlockRecorder>,
    ) -> Self {
        let n = lm.method.code.len();
        let dm: &'a DecodedMethod = &lm.decoded;
        arena.reset_for(dm);
        arena.oracle.reset(params.mode);
        let max_ticks = params.max_mesh_cycles.saturating_mul(cfg.mesh_cycle_ticks());
        let class_ticks = cfg.class_ticks();
        // Fast-forwarding is tick-exact but not intra-tick-order-exact:
        // skipped hops collapse an event chain into one push, so within a
        // bucket the delivery pops at a different FIFO position. That is
        // invisible exactly when every delay is a pure function of the
        // endpoints (ideal interconnect: no arrival-order link booking)
        // and firing has no shared mutable service (stub GPP: no heap the
        // same-tick call order could interleave differently on). An
        // active sink also forces the naive walk: skipped deliveries are
        // precisely what a trace must show.
        let ff =
            params.fast_forward && N::ORDER_FREE && matches!(params.gpp, Gpp::Stub) && !S::ACTIVE;
        Sim {
            lm,
            dm,
            cfg,
            gpp: params.gpp,
            args: params.args,
            lenient: params.mode.is_scripted(),
            n,
            arena,
            class_ticks,
            now: 0,
            max_ticks,
            ff,
            wanted_ff: params.fast_forward,
            wanted_compiled: params.compiled,
            rec,
            events: 0,
            events_skipped: 0,
            executed: 0,
            relay_fires: 0,
            serial_msgs: 0,
            mesh_msgs: 0,
            class_fires: [0; 4],
            busy: 0,
            last_busy_change: 0,
            acc_ge1: 0,
            acc_ge2: 0,
            outcome: None,
            net,
            tracer,
        }
    }

    fn mesh_ticks(&self) -> u64 {
        self.cfg.mesh_cycle_ticks()
    }

    /// Cumulative counter snapshot for the block recorder; two snapshots
    /// bracket a block and their difference is the block's delta.
    fn snapshot(&self) -> Snapshot {
        Snapshot {
            now: self.now,
            events: self.events,
            events_skipped: self.events_skipped,
            executed: self.executed,
            relay_fires: self.relay_fires,
            serial_msgs: self.serial_msgs,
            mesh_msgs: self.mesh_msgs,
            wheel_pushes: self.arena.queue.pushes(),
            acc_ge1: self.acc_ge1,
            acc_ge2: self.acc_ge2,
            class_fires: self.class_fires,
        }
    }

    fn serial_hop(&self) -> u64 {
        self.cfg.serial_hop_ticks()
    }

    /// Serial transit ticks between two instructions (chain distance).
    fn serial_transit(&self, from: u32, to: u32) -> u64 {
        self.lm.placement.serial_distance(from, to) * self.serial_hop()
    }

    fn coords_of(&self, id: u32) -> (u32, u32) {
        if (id as usize) < self.n {
            self.lm.placement.coords[id as usize]
        } else {
            self.lm.graph.relays[id as usize - self.n].coords
        }
    }

    fn push_ev(
        &mut self,
        at: u64,
        kind: EvKind,
        node: u32,
        token: Option<Token>,
        side: u16,
        value: Option<Value>,
    ) {
        let order = self.now;
        self.arena.queue.push(at, Ev { kind, node, token, side, value, order, chain: false });
    }

    /// Like [`Self::push_ev`], but with an explicit bucket-order key (the
    /// tick the naive walk would have made this push at).
    #[allow(clippy::too_many_arguments)]
    fn push_ev_ordered(
        &mut self,
        at: u64,
        order: u64,
        kind: EvKind,
        node: u32,
        token: Option<Token>,
        side: u16,
        value: Option<Value>,
    ) {
        // `order == now` means the naive walk pushes this event at this
        // very moment too — a real push, not an early chain delivery.
        let chain = order != self.now;
        self.arena.queue.push(at, Ev { kind, node, token, side, value, order, chain });
    }

    fn send_serial(&mut self, from: u32, to: u32, token: Token) {
        let delay = self.serial_transit(from, to).max(self.serial_hop());
        self.serial_msgs += 1;
        if S::ACTIVE {
            self.tracer.record(&TraceEvent {
                tick: self.now,
                kind: TraceKind::TokenSend,
                node: from,
                arg: to,
                data: encode_token(&token),
                aux: self.now + delay,
            });
        }
        self.push_ev(self.now + delay, EvKind::Serial, to, Some(token), 0, None);
    }

    /// Sends one mesh message, booking the bucket-order key `order` (the
    /// tick the naive walk pushes it at: `now`, except inside a fused
    /// relay fan-out, where it is the relay's arrival tick). Returns
    /// whether the send (or, for a fused relay, any delivery in its
    /// fan-out subtree) lands within the tick budget — the caller uses
    /// that to decide if a relay's own arrival tick still needs a ghost
    /// event to stand in for it.
    fn send_mesh(
        &mut self,
        from_coords: (u32, u32),
        sink: crate::Sink,
        value: Value,
        order: u64,
    ) -> bool {
        let to = self.coords_of(sink.consumer);
        let delay = self.net.mesh_delay(self.cfg, self.now, from_coords, to, &mut *self.tracer);
        self.mesh_msgs += 1;
        let at = self.now + delay;
        if S::ACTIVE {
            self.tracer.record(&TraceEvent {
                tick: self.now,
                kind: TraceKind::MeshSend,
                node: sink.consumer,
                arg: u32::from(sink.side),
                data: pack_coords(from_coords),
                aux: at,
            });
        }
        if self.ff && (sink.consumer as usize) >= self.n {
            // Fused relay hop: under an order-free net every fan-out delay
            // is a pure function of the endpoints, so the sink deliveries
            // can be scheduled directly instead of round-tripping a Mesh
            // event through the wheel at the relay. Tick-exact: each sink
            // still arrives at relay_arrival + move + transit, and keeps
            // the arrival tick as its order key (the naive walk pushes
            // sink sends while processing the relay event).
            let ri = sink.consumer as usize - self.n;
            let coords = self.lm.graph.relays[ri].coords;
            self.relay_fires += 1;
            let move_ticks = self.cfg.timing.move_cycles * self.mesh_ticks();
            let saved_now = self.now;
            self.now = at + move_ticks;
            let mut any = false;
            for k in 0..self.lm.graph.relays[ri].sinks.len() {
                let s = self.lm.graph.relays[ri].sinks[k];
                any |= self.send_mesh(coords, s, value, at);
            }
            self.now = saved_now;
            if any {
                // Some delivery at a strictly later tick stays in budget;
                // it dominates the relay arrival for both the final-`now`
                // value and Timeout detection, so the relay event itself
                // is elided entirely.
                self.events_skipped += 1;
            } else {
                // Keep the relay's arrival visible to the clock / budget
                // check exactly where the naive walk would have seen it.
                self.push_ghost(at);
            }
            return any || at <= self.max_ticks;
        }
        self.push_ev_ordered(at, order, EvKind::Mesh, sink.consumer, None, sink.side, Some(value));
        at <= self.max_ticks
    }

    fn set_busy(&mut self, delta: i32) {
        let dt = self.now - self.last_busy_change;
        if self.busy >= 1 {
            self.acc_ge1 += dt;
        }
        if self.busy >= 2 {
            self.acc_ge2 += dt;
        }
        self.last_busy_change = self.now;
        self.busy = self.busy.wrapping_add_signed(delta);
    }

    fn fail(&mut self, e: JvmError) {
        if self.outcome.is_none() {
            self.outcome = Some(Outcome::Exception(e));
        }
    }

    fn run(mut self) -> ExecReport {
        // Surface a silent fast-forward / compile downgrade: the caller
        // asked for the fast kernel but the gate picked the naive walk.
        // Only the *semantic* reasons count — an active sink forcing the
        // naive walk is not one, so a recording (and the `declined`
        // report mask) is byte-identical whether tracing is on or not.
        let mut declined = 0u8;
        if self.wanted_ff {
            if !N::ORDER_FREE {
                declined |= 1 << WARN_FF_NET_ORDER;
            }
            if !matches!(self.gpp, Gpp::Stub) {
                declined |= 1 << WARN_FF_GPP;
            }
        }
        if self.wanted_compiled {
            for (cond, code) in [
                (!N::ORDER_FREE, WARN_COMPILE_NET_ORDER),
                (!matches!(self.gpp, Gpp::Stub), WARN_COMPILE_GPP),
                (!self.lenient, WARN_COMPILE_DATA_MODE),
            ] {
                if cond {
                    declined |= 1 << code;
                }
            }
        }
        if S::ACTIVE {
            for code in [
                WARN_FF_NET_ORDER,
                WARN_FF_GPP,
                WARN_COMPILE_NET_ORDER,
                WARN_COMPILE_GPP,
                WARN_COMPILE_DATA_MODE,
            ] {
                if declined & (1 << code) != 0 {
                    self.tracer.record(&TraceEvent {
                        tick: 0,
                        kind: TraceKind::Warn,
                        node: u32::MAX,
                        arg: code,
                        data: 0,
                        aux: 0,
                    });
                }
            }
        }
        self.inject_bundle();
        // Drain the wheel one bucket at a time: all events of a bucket
        // share one tick, so the budget check and `now` update hoist out
        // of the per-event dispatch. Same-tick pushes made *while* the
        // batch is processed land in the (now empty) bucket and are
        // picked up by the next `pop_tick` of the same tick, preserving
        // the FIFO total order the naive pop loop had.
        let mut batch = std::mem::take(&mut self.arena.batch);
        'sim: while self.outcome.is_none() {
            batch.clear();
            let Some(at) = self.arena.queue.pop_tick(&mut batch) else {
                self.outcome = Some(Outcome::Deadlock);
                break;
            };
            if at > self.max_ticks {
                self.outcome = Some(Outcome::Timeout);
                break;
            }
            self.now = at;
            if self.ff {
                // Restore the naive intra-tick FIFO order: fast-forwarded
                // deliveries were pushed early, so sort the bucket by the
                // tick the naive walk would have pushed each event at
                // (stable: equal keys keep push order, which is the naive
                // order for directly scheduled events). Chain deliveries
                // sort after real pushes with the same key — see `Ev::chain`.
                batch.sort_by_key(|e| (e.order, e.chain));
            }
            for &ev in &batch {
                self.events += 1;
                match ev.kind {
                    EvKind::Serial => {
                        if let Some(t) = ev.token {
                            self.on_serial(ev.node, t);
                        }
                    }
                    EvKind::Mesh => {
                        if let Some(v) = ev.value {
                            self.on_mesh(ev.node, ev.side, v);
                        }
                    }
                    EvKind::ExecDone => self.on_exec_done(ev.node),
                    EvKind::ServiceDone => self.on_service_done(ev.node),
                }
                if self.outcome.is_some() {
                    // Mirror the naive loop: the event *after* the one
                    // that settled the outcome is never processed.
                    break 'sim;
                }
            }
        }
        self.arena.batch = batch;
        // Close the final (fall-through) block: everything fired since
        // the last backward-jump re-injection up to the settled outcome.
        if self.rec.is_some() {
            let snap = self.snapshot();
            if let Some(r) = self.rec.as_deref_mut() {
                r.boundary(snap);
            }
        }
        let end = self.now.max(1);
        let mesh_cycles = end.div_ceil(self.mesh_ticks());
        let static_covered = self.arena.covered.iter().filter(|c| **c).count();
        let active_static = self.lm.graph.active.iter().filter(|a| **a).count().max(1);
        let net_report = self.net.take_report();
        if S::ACTIVE {
            // Close the recording with everything a replay needs that no
            // other event carries: the raw final tick, the outcome, the
            // tick/mesh-cycle ratio, whether a net report exists, and the
            // coverage denominator.
            let outcome_code = match &self.outcome {
                Some(Outcome::Returned(_)) => 0,
                Some(Outcome::Timeout) => 1,
                None | Some(Outcome::Deadlock) => 2,
                Some(Outcome::Exception(_)) => 3,
            };
            self.tracer.record(&TraceEvent {
                tick: self.now,
                kind: TraceKind::End,
                node: u32::MAX,
                arg: outcome_code,
                data: self.mesh_ticks(),
                aux: u64::from(net_report.is_some()) | ((active_static as u64) << 1),
            });
        }
        ExecReport {
            outcome: self.outcome.clone().unwrap_or(Outcome::Deadlock),
            mesh_cycles,
            executed: self.executed,
            relay_fires: self.relay_fires,
            static_covered,
            coverage: static_covered as f64 / active_static as f64,
            ipc: self.executed as f64 / mesh_cycles as f64,
            frac_cycles_ge2: self.acc_ge2 as f64 / end as f64,
            frac_cycles_ge1: self.acc_ge1 as f64 / end as f64,
            serial_msgs: self.serial_msgs,
            mesh_msgs: self.mesh_msgs,
            events: self.events,
            events_skipped: self.events_skipped,
            class_fires: self.class_fires,
            wheel_high_water: self.arena.queue.high_water() as u64,
            wheel_pushes: self.arena.queue.pushes(),
            declined,
            net: net_report,
        }
    }

    /// Schedules the `seq`-th injected token at the Anchor.
    fn inject(&mut self, seq: u64, token: Token) {
        let hop = self.serial_hop();
        self.serial_msgs += 1;
        if S::ACTIVE {
            self.tracer.record(&TraceEvent {
                tick: self.now,
                kind: TraceKind::TokenSend,
                node: u32::MAX,
                arg: 0,
                data: encode_token(&token),
                aux: (seq + 1) * hop,
            });
        }
        self.push_ev((seq + 1) * hop, EvKind::Serial, 0, Some(token), 0, None);
    }

    /// The Anchor injects the token bundle at instruction 0.
    fn inject_bundle(&mut self) {
        self.inject(0, Token::Head);
        self.inject(1, Token::Memory(0));
        let locals = usize::from(self.lm.method.max_locals);
        for r in 0..locals {
            let value = self.args.get(r).copied().unwrap_or(Value::Int(0));
            self.inject(2 + r as u64, Token::Register { reg: r as u16, value });
        }
        self.inject(2 + locals as u64, Token::Tail);
    }

    /// Forwards a token from node `i` to its successor in the bundle's
    /// current route (next linear instruction, or the redirect target).
    fn forward(&mut self, i: u32, token: Token) {
        if self.ff {
            self.forward_ff(i, token);
            return;
        }
        let r = self.arena.redirect[i as usize];
        let to = if r == u32::MAX { i + 1 } else { r };
        if (to as usize) < self.n {
            self.send_serial(i, to, token);
        }
        // Tokens running past the last instruction return to the Anchor.
    }

    /// Whether node `ix` terminates a fast-forward chain — the *armed*
    /// predicate of the skip index. Deliberately **token-independent**:
    /// tokens walking the route in lockstep (same node, same tick) have
    /// their relative order frozen into every downstream buffer, and that
    /// order is only reproducible if lockstep tokens always stop at the
    /// same nodes — a per-token predicate would let one token of a pair
    /// skip a node the other stops at, and their rejoined deliveries
    /// would tie with no record of the original merge order.
    ///
    /// Armed: any live (active, not completed) node — it may fire at
    /// exactly the pass tick, and the bucket decides the order of its
    /// emission relative to the passing token — and any completed node
    /// that watches a register (a completed write must still absorb
    /// stale tokens of its register; reads merely cost a real event).
    /// Skipped: folded nodes (inert for every token) and completed
    /// non-watchers, where every token type is a pure forward — the
    /// HEAD latch a skipped node misses is dead state there (`try_fire`
    /// bails on `F_FIRED`, the TAIL path short-circuits on completed,
    /// and a loop-body reset clears the flags wholesale).
    ///
    /// A `false` here must be absorbing until the next loop-body reset
    /// (`active` is static and `F_COMPLETED` set-only within a pass, and
    /// no chain is in flight across a region being reset: the reinject
    /// only runs once the TAIL — behind every other bundle token — has
    /// been buffered at the back-jump node).
    fn serial_armed(&self, ix: usize) -> bool {
        if !self.lm.graph.active[ix] {
            return false;
        }
        self.arena.flags[ix] & F_COMPLETED == 0 || self.dm.insns[ix].reg != u16::MAX
    }

    /// A ghost event: a tick the naive walk would have visited, kept so
    /// the run's final `now` (and the Timeout/Deadlock distinction) stays
    /// bit-identical when the deliveries around it were skipped. Carries
    /// no token, so dispatch ignores it.
    fn push_ghost(&mut self, at: u64) {
        self.push_ev(at, EvKind::Serial, 0, None, 0, None);
    }

    /// Fast-forwarded forwarding: scan the bundle route from `i` through
    /// the skip index, jumping directly to the next armed node. The
    /// accumulated delay is closed-form — placement slots increase
    /// strictly along the route (redirects only jump forward), so the
    /// per-hop `max(transit, hop)` delays telescope to
    /// `serial_transit(i, to).max(hop)` — and the skipped per-node
    /// statistics reduce to one `serial_msgs` increment per hop.
    fn forward_ff(&mut self, i: u32, token: Token) {
        let hop = self.serial_hop();
        let mut cur = i;
        // Timing residue of skipped deliveries, for the ghosts: the
        // largest virtual tick within the budget, and the first beyond it
        // (0 = none; tick 0 deliveries cannot exist, injection is ≥ 0 and
        // a zero value is only ever compared against `now` / pushed when
        // a later delivery proved it nonzero).
        let mut last_in_budget = 0u64;
        let mut first_over = 0u64;
        let mut hops = 0u64;
        // The virtual tick of the walk's previous node: the naive walk
        // pushes each delivery while processing the one before it, so this
        // is the delivery's bucket-order key.
        let mut prev = self.now;
        loop {
            let r = self.arena.redirect[cur as usize];
            let to = if r == u32::MAX { cur + 1 } else { r };
            if (to as usize) >= self.n {
                // The token runs off the end of the serial network and
                // returns to the Anchor. The naive walk still visited
                // every node along the way; replay what of that remains
                // observable — the last within-budget tick (final `now`
                // on a deadlocked drain) and, if the walk crossed the
                // budget, one over-budget event (Timeout, not Deadlock).
                self.events_skipped += hops;
                if last_in_budget > self.now {
                    self.events_skipped -= 1;
                    self.push_ghost(last_in_budget);
                }
                if first_over != 0 {
                    self.push_ghost(first_over);
                }
                return;
            }
            self.serial_msgs += 1;
            hops += 1;
            let at = self.now + self.serial_transit(i, to).max(hop);
            if self.serial_armed(to as usize) {
                self.events_skipped += hops - 1;
                self.push_ev_ordered(at, prev, EvKind::Serial, to, Some(token), 0, None);
                if at > self.max_ticks && last_in_budget > self.now {
                    // The delivery itself is over budget: the naive walk's
                    // last within-budget visit decides the final `now`.
                    self.events_skipped -= 1;
                    self.push_ghost(last_in_budget);
                }
                return;
            }
            if at <= self.max_ticks {
                last_in_budget = at;
            } else if first_over == 0 {
                first_over = at;
            }
            prev = at;
            cur = to;
        }
    }

    fn on_serial(&mut self, i: u32, token: Token) {
        let ix = i as usize;
        let d = self.dm.insns[ix];

        // Folded nodes are inert pass-throughs.
        if !self.lm.graph.active[ix] {
            self.forward(i, token);
            return;
        }

        // Control-flow nodes buffer every token until they fire
        // (returns and gotos too).
        let flags = self.arena.flags[ix];
        let completed = flags & F_COMPLETED != 0;

        match token {
            Token::Head => {
                self.arena.flags[ix] |= F_HEAD;
                if d.buffers_all && !completed {
                    self.arena.buffers[ix].push(Token::Head);
                } else {
                    self.forward(i, Token::Head);
                }
                self.try_fire(i);
            }
            Token::Memory(order) => {
                if d.buffers_all && !completed {
                    self.arena.buffers[ix].push(Token::Memory(order));
                } else if d.ordered_mem && flags & F_FIRED == 0 {
                    // Ordered storage holds the memory token until it fires.
                    self.arena.mem_token[ix] = order;
                    self.arena.flags[ix] |= F_MEM_SET;
                    self.try_fire(i);
                } else {
                    self.forward(i, Token::Memory(order));
                }
            }
            Token::Register { reg, value } => {
                if S::ACTIVE {
                    let (tag, bits) = encode_value(&value);
                    let status =
                        (u32::from(flags & F_FIRED != 0) << 16) | (u32::from(completed) << 17);
                    self.tracer.record(&TraceEvent {
                        tick: self.now,
                        kind: TraceKind::RegObserve,
                        node: i,
                        arg: u32::from(reg) | status,
                        data: bits,
                        aux: tag,
                    });
                }
                let interested = d.reg != u16::MAX && d.reg == reg;
                if d.buffers_all && !completed {
                    self.arena.buffers[ix].push(Token::Register { reg, value });
                } else if interested && d.group == InstructionGroup::LocalWrite {
                    // The write kills the register: absorb the stale token
                    // unconditionally. The write may already have fired and
                    // emitted the fresh token — "this can result in the
                    // re-ordering of the REGISTER_TOKEN messages"
                    // (Section 6.3) — but the killed value must never pass.
                    self.try_fire(i);
                } else if interested && flags & F_FIRED == 0 {
                    match d.group {
                        InstructionGroup::LocalRead | InstructionGroup::LocalInc => {
                            self.arena.reg_captured[ix] = value;
                            self.arena.flags[ix] |= F_REG_SET;
                            self.try_fire(i);
                        }
                        _ => self.forward(i, Token::Register { reg, value }),
                    }
                } else {
                    self.forward(i, Token::Register { reg, value });
                }
            }
            Token::Tail => {
                if d.buffers_all && !completed {
                    self.arena.flags[ix] |= F_TAIL_BUF;
                    self.arena.buffers[ix].push(Token::Tail);
                    self.try_fire(i);
                    self.maybe_reinject(i);
                } else if completed || flags & F_HEAD == 0 {
                    // Pass: the node has finished (or was bypassed and the
                    // tail is explicitly routed past it — cannot happen on
                    // the ordered network; completed is the normal case).
                    self.forward(i, Token::Tail);
                } else {
                    self.arena.flags[ix] |= F_TAIL_BUF;
                    self.try_fire(i);
                }
            }
        }
    }

    fn on_mesh(&mut self, id: u32, side: u16, value: Value) {
        if (id as usize) >= self.n {
            // Relay: one move-latency hop, then fan out.
            let ri = id as usize - self.n;
            let coords = self.lm.graph.relays[ri].coords;
            self.relay_fires += 1;
            if S::ACTIVE {
                self.tracer.record(&TraceEvent {
                    tick: self.now,
                    kind: TraceKind::RelayFire,
                    node: id,
                    arg: ri as u32,
                    data: pack_coords(coords),
                    aux: self.lm.graph.relays[ri].sinks.len() as u64,
                });
            }
            let move_ticks = self.cfg.timing.move_cycles * self.mesh_ticks();
            let saved_now = self.now;
            self.now += move_ticks;
            for k in 0..self.lm.graph.relays[ri].sinks.len() {
                let s = self.lm.graph.relays[ri].sinks[k];
                self.send_mesh(coords, s, value, saved_now);
            }
            self.now = saved_now;
            return;
        }
        let ix = id as usize;
        let d = self.dm.insns[ix];
        let k = usize::from(side).saturating_sub(1);
        if k < usize::from(d.pops) {
            let off = d.operand_off as usize + k;
            if !self.arena.operand_set[off] {
                self.arena.operand_set[off] = true;
                self.arena.missing[ix] -= 1;
            }
            self.arena.operand_vals[off] = value;
        }
        self.try_fire(id);
    }

    /// Fire-condition check and firing (Section 6.3 per-group rules).
    #[allow(clippy::too_many_lines)]
    fn try_fire(&mut self, i: u32) {
        let ix = i as usize;
        let d = self.dm.insns[ix];
        let flags = self.arena.flags[ix];
        if flags & F_FIRED != 0 || flags & F_HEAD == 0 || self.outcome.is_some() {
            return;
        }
        if self.arena.missing[ix] != 0 {
            return;
        }
        match d.group {
            InstructionGroup::LocalRead | InstructionGroup::LocalInc if flags & F_REG_SET == 0 => {
                return;
            }
            InstructionGroup::MemRead | InstructionGroup::MemWrite if flags & F_MEM_SET == 0 => {
                return;
            }
            InstructionGroup::Return if flags & F_TAIL_BUF == 0 => {
                return;
            }
            // Unconditional backward goto needs the tail.
            InstructionGroup::ControlFlow if d.is_goto && d.is_back && flags & F_TAIL_BUF == 0 => {
                return;
            }
            _ => {}
        }

        // All conditions met: fire.
        self.arena.flags[ix] |= F_FIRED;
        self.arena.covered[ix] = true;
        self.executed += 1;
        self.class_fires[usize::from(d.timing_class)] += 1;
        self.set_busy(1);
        if let Some(r) = self.rec.as_deref_mut() {
            r.on_fire(i);
        }

        let exec_ticks = self.class_ticks[usize::from(d.timing_class)];
        if S::ACTIVE {
            self.tracer.record(&TraceEvent {
                tick: self.now,
                kind: TraceKind::Fire,
                node: i,
                arg: u32::from(d.timing_class),
                data: exec_ticks,
                aux: pack_coords(self.lm.placement.coords[ix]),
            });
        }
        let off = d.operand_off as usize;
        let cnt = usize::from(d.pops);
        let out_off = d.output_off as usize;

        match d.group {
            InstructionGroup::ControlFlow => {
                let taken = if d.is_goto {
                    true
                } else {
                    let cond = eval_condition(
                        d.op,
                        &self.arena.operand_vals[off..off + cnt],
                        self.lenient,
                    );
                    let data = match cond {
                        Ok(b) => b,
                        Err(e) => {
                            self.fail(e.at(javaflow_bytecode::MethodId(0), i, d.op));
                            false
                        }
                    };
                    self.arena.oracle.decide(i, d.is_back, data)
                };
                if taken {
                    self.arena.flags[ix] |= F_DECISION;
                }
            }
            InstructionGroup::Return => {}
            InstructionGroup::LocalRead => {
                self.arena.output_vals[out_off] = self.arena.reg_captured[ix];
                self.arena.output_len[ix] = 1;
            }
            InstructionGroup::LocalInc => {
                let v = self.arena.reg_captured[ix];
                let new = match v {
                    Value::Int(x) => Value::Int(x.wrapping_add(d.inc_delta)),
                    other if self.lenient => other,
                    _ => {
                        self.fail(JvmError::bare(JvmErrorKind::TypeError).at(
                            javaflow_bytecode::MethodId(0),
                            i,
                            d.op,
                        ));
                        return;
                    }
                };
                self.arena.output_vals[out_off] = new;
                self.arena.output_len[ix] = 1;
            }
            InstructionGroup::LocalWrite => {
                // Park the operands: the register token re-emission reads
                // them back at completion.
                for k in 0..cnt {
                    self.arena.output_vals[out_off + k] = self.arena.operand_vals[off + k];
                }
                self.arena.output_len[ix] = d.pops;
            }
            InstructionGroup::MemRead | InstructionGroup::MemWrite => {
                let order = self.arena.mem_token[ix];
                self.arena.flags[ix] &= !F_MEM_SET;
                self.arena.mem_forward[ix] = order + 1;
                self.arena.flags[ix] |= F_FWD_SET;
                match self.memory_op(&d, i, off, cnt) {
                    Ok(Some(v)) => {
                        self.arena.output_vals[out_off] = v;
                        self.arena.output_len[ix] = 1;
                    }
                    Ok(None) => self.arena.output_len[ix] = 0,
                    Err(e) => {
                        self.fail(e.at(javaflow_bytecode::MethodId(0), i, d.op));
                        return;
                    }
                }
            }
            InstructionGroup::Call | InstructionGroup::Special => {
                match self.gpp_service(&d, i, off, cnt) {
                    Ok(Some(v)) => {
                        self.arena.output_vals[out_off] = v;
                        self.arena.output_len[ix] = 1;
                    }
                    Ok(None) => self.arena.output_len[ix] = 0,
                    Err(e) => {
                        self.fail(e.at(javaflow_bytecode::MethodId(0), i, d.op));
                        return;
                    }
                }
            }
            InstructionGroup::MemConst => {
                self.arena.output_vals[out_off] = d.const_val;
                self.arena.output_len[ix] = 1;
            }
            _ => {
                // Pure arithmetic / logic / move / conversion.
                let lm = self.lm;
                let mut out = OutVals::new();
                let r = eval_into(
                    &lm.method.code[ix],
                    &self.arena.operand_vals[off..off + cnt],
                    self.lenient,
                    &mut out,
                );
                match r {
                    Ok(()) => {
                        let vs = out.as_slice();
                        self.arena.output_vals[out_off..out_off + vs.len()].copy_from_slice(vs);
                        self.arena.output_len[ix] = vs.len() as u16;
                    }
                    Err(e) => {
                        self.fail(e.at(javaflow_bytecode::MethodId(0), i, d.op));
                        return;
                    }
                }
            }
        }
        self.push_ev(self.now + exec_ticks, EvKind::ExecDone, i, None, 0, None);
    }

    /// Completion of the execution stage.
    #[allow(clippy::too_many_lines)]
    fn on_exec_done(&mut self, i: u32) {
        self.set_busy(-1);
        if S::ACTIVE {
            self.tracer.record(&TraceEvent {
                tick: self.now,
                kind: TraceKind::Retire,
                node: i,
                arg: 0,
                data: 0,
                aux: 0,
            });
        }
        let ix = i as usize;
        let d = self.dm.insns[ix];

        match d.group {
            InstructionGroup::ControlFlow => {
                let taken = self.arena.flags[ix] & F_DECISION != 0;
                let target = if d.branch_target == u32::MAX { i + 1 } else { d.branch_target };
                if !taken {
                    // Release the bundle to the next instruction.
                    self.release_buffer(i, i + 1);
                    self.arena.flags[ix] |= F_COMPLETED;
                } else if target > i {
                    // Forward jump: explicit routing to the target.
                    self.arena.redirect[ix] = target;
                    self.release_buffer(i, target);
                    self.arena.flags[ix] |= F_COMPLETED;
                } else {
                    // Backward jump: hold everything until TAIL, then
                    // re-inject the bundle at the loop head.
                    self.arena.pending_back[ix] = target;
                    self.maybe_reinject(i);
                }
                return;
            }
            InstructionGroup::Return => {
                let value = if self.lm.method.returns && d.pops > 0 {
                    Some(self.arena.operand_vals[d.operand_off as usize])
                } else {
                    None
                };
                if d.op == Opcode::AThrow && !self.lenient {
                    self.fail(JvmError::bare(JvmErrorKind::Thrown).at(
                        javaflow_bytecode::MethodId(0),
                        i,
                        d.op,
                    ));
                } else {
                    self.outcome = Some(Outcome::Returned(value));
                }
                return;
            }
            InstructionGroup::MemRead => {
                // Request sent; results arrive after the ring transit (if
                // contended) and the memory service.
                if self.arena.flags[ix] & F_FWD_SET != 0 {
                    self.arena.flags[ix] &= !F_FWD_SET;
                    let order = self.arena.mem_forward[ix];
                    self.forward(i, Token::Memory(order));
                }
                let service = self.net.memory_delay(self.cfg, self.now, &mut *self.tracer);
                self.push_ev(self.now + service, EvKind::ServiceDone, i, None, 0, None);
                return;
            }
            InstructionGroup::Call | InstructionGroup::Special => {
                let service = self.net.gpp_delay(self.cfg, self.now, &mut *self.tracer);
                self.push_ev(self.now + service, EvKind::ServiceDone, i, None, 0, None);
                return;
            }
            InstructionGroup::MemWrite => {
                if self.arena.flags[ix] & F_FWD_SET != 0 {
                    self.arena.flags[ix] &= !F_FWD_SET;
                    let order = self.arena.mem_forward[ix];
                    self.forward(i, Token::Memory(order));
                }
                // Writes proceed without waiting for the service, but still
                // occupy memory-ring bandwidth under the contended model.
                self.net.memory_write(self.cfg, self.now, &mut *self.tracer);
            }
            InstructionGroup::LocalWrite => {
                // Emit the updated register token.
                let reg = if d.reg == u16::MAX { 0 } else { d.reg };
                let value = if self.arena.output_len[ix] > 0 {
                    self.arena.output_vals[d.output_off as usize]
                } else {
                    Value::Int(0)
                };
                self.forward(i, Token::Register { reg, value });
                self.finish_node(i);
                return;
            }
            InstructionGroup::LocalRead => {
                // Re-send the register token, then results to the mesh.
                let reg = if d.reg == u16::MAX { 0 } else { d.reg };
                let value = if self.arena.flags[ix] & F_REG_SET != 0 {
                    self.arena.reg_captured[ix]
                } else {
                    Value::Int(0)
                };
                self.forward(i, Token::Register { reg, value });
            }
            InstructionGroup::LocalInc => {
                let reg = if d.reg == u16::MAX { 0 } else { d.reg };
                let value = if self.arena.output_len[ix] > 0 {
                    self.arena.output_vals[d.output_off as usize]
                } else {
                    Value::Int(0)
                };
                self.forward(i, Token::Register { reg, value });
                self.finish_node(i);
                return;
            }
            _ => {}
        }
        self.dispatch_outputs(i);
        self.finish_node(i);
    }

    /// Completion of a memory/GPP service: outputs go to the mesh.
    fn on_service_done(&mut self, i: u32) {
        if S::ACTIVE {
            self.tracer.record(&TraceEvent {
                tick: self.now,
                kind: TraceKind::ServiceDone,
                node: i,
                arg: 0,
                data: 0,
                aux: 0,
            });
        }
        self.dispatch_outputs(i);
        self.finish_node(i);
    }

    /// Sends the node's computed outputs to its resolved consumers.
    fn dispatch_outputs(&mut self, i: u32) {
        let ix = i as usize;
        let d = self.dm.insns[ix];
        let len = usize::from(self.arena.output_len[ix]);
        let out_off = d.output_off as usize;
        self.arena.output_len[ix] = 0;
        let coords = self.lm.placement.coords[ix];
        let lm = self.lm;
        // Indexed walk: `Sink` is `Copy`, so this avoids cloning the sink
        // list on every fire.
        for k in 0..lm.graph.consumers[ix].len() {
            let s = lm.graph.consumers[ix][k];
            let o = usize::from(s.out);
            let v = if o < len { self.arena.output_vals[out_off + o] } else { Value::Int(0) };
            self.send_mesh(coords, s, v, self.now);
        }
    }

    /// Marks a node complete and forwards a buffered TAIL.
    fn finish_node(&mut self, i: u32) {
        let ix = i as usize;
        self.arena.flags[ix] |= F_COMPLETED;
        if self.arena.flags[ix] & F_TAIL_BUF != 0 {
            self.arena.flags[ix] &= !F_TAIL_BUF;
            self.forward(i, Token::Tail);
        }
    }

    /// Releases a control-flow node's buffered tokens toward `to`.
    fn release_buffer(&mut self, i: u32, to: u32) {
        let ix = i as usize;
        self.arena.flags[ix] &= !F_TAIL_BUF;
        if (to as usize) >= self.n {
            self.arena.buffers[ix].clear();
            return;
        }
        let base = self.serial_transit(i, to).max(self.serial_hop());
        let hop = self.serial_hop();
        for k in 0..self.arena.buffers[ix].len() {
            let t = self.arena.buffers[ix][k];
            self.serial_msgs += 1;
            if S::ACTIVE {
                self.tracer.record(&TraceEvent {
                    tick: self.now,
                    kind: TraceKind::TokenSend,
                    node: i,
                    arg: to,
                    data: encode_token(&t),
                    aux: self.now + base + k as u64 * hop,
                });
            }
            self.push_ev(self.now + base + k as u64 * hop, EvKind::Serial, to, Some(t), 0, None);
        }
        self.arena.buffers[ix].clear();
    }

    /// If a decided backward jump has executed and holds the TAIL,
    /// re-inject the bundle at the loop head and reset the loop body.
    fn maybe_reinject(&mut self, i: u32) {
        let ix = i as usize;
        let target = self.arena.pending_back[ix];
        if target == u32::MAX {
            return;
        }
        if self.arena.flags[ix] & F_TAIL_BUF == 0 {
            return;
        }
        // Stage the bundle first: resetting the loop body clears node
        // `i`'s own buffer.
        {
            let arena = &mut *self.arena;
            arena.scratch.clear();
            let (scratch, buffers) = (&mut arena.scratch, &arena.buffers);
            scratch.extend_from_slice(&buffers[ix]);
        }
        // Reset the loop body [target ..= i] — "each instruction from the
        // same thread/class/method must also reset to the stateReady".
        for a in target..=i {
            let d = self.dm.insns[a as usize];
            self.arena.reset_node(a as usize, &d);
        }
        // Reverse-network transit to the loop head.
        let base = self.serial_transit(i, target).max(self.serial_hop());
        let hop = self.serial_hop();
        for k in 0..self.arena.scratch.len() {
            let t = self.arena.scratch[k];
            self.serial_msgs += 1;
            if S::ACTIVE {
                self.tracer.record(&TraceEvent {
                    tick: self.now,
                    kind: TraceKind::TokenSend,
                    node: i,
                    arg: target,
                    data: encode_token(&t),
                    aux: self.now + base + k as u64 * hop,
                });
            }
            self.push_ev(
                self.now + base + k as u64 * hop,
                EvKind::Serial,
                target,
                Some(t),
                0,
                None,
            );
        }
        self.arena.scratch.clear();
        // A completed re-injection is a block boundary: the loop body is
        // back in its ready state, so the firings since the previous
        // boundary form one repeatable schedule unit.
        if self.rec.is_some() {
            let snap = self.snapshot();
            if let Some(r) = self.rec.as_deref_mut() {
                r.boundary(snap);
            }
        }
    }

    /// Ordered memory operations against the shared JVM state (or dummy
    /// values for scripted runs). Memory operations push at most one
    /// value.
    fn memory_op(
        &mut self,
        d: &DecodedInsn,
        i: u32,
        off: usize,
        cnt: usize,
    ) -> Result<Option<Value>, JvmError> {
        let lm = self.lm;
        let operands: &[Value] = &self.arena.operand_vals[off..off + cnt];
        let Gpp::Interp(gpp) = &mut self.gpp else {
            // Scripted: reads produce a dummy; writes produce nothing.
            return Ok(if d.pushes > 0 { Some(Value::Int(0)) } else { None });
        };
        let insn = &lm.method.code[i as usize];
        use Opcode as O;
        let get_ref = |v: &Value| -> Result<Option<u32>, JvmError> {
            v.as_ref_handle().ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))
        };
        let get_int = |v: &Value| -> Result<i32, JvmError> {
            v.as_int().ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))
        };
        match insn.op {
            O::IALoad
            | O::LALoad
            | O::FALoad
            | O::DALoad
            | O::AALoad
            | O::BALoad
            | O::CALoad
            | O::SALoad => {
                let arr = get_ref(&operands[0])?;
                let idx = get_int(&operands[1])?;
                Ok(Some(gpp.state.heap.array_get(arr, idx)?))
            }
            O::IAStore
            | O::LAStore
            | O::FAStore
            | O::DAStore
            | O::AAStore
            | O::BAStore
            | O::CAStore
            | O::SAStore => {
                if S::ACTIVE {
                    let stored = operands.get(2).copied().unwrap_or(Value::Int(0));
                    let (tag, bits) = encode_value(&stored);
                    self.tracer.record(&TraceEvent {
                        tick: self.now,
                        kind: TraceKind::MemObserve,
                        node: i,
                        arg: cnt as u32,
                        data: bits,
                        aux: tag,
                    });
                }
                let arr = get_ref(&operands[0])?;
                let idx = get_int(&operands[1])?;
                let v = match insn.op {
                    O::BAStore => Value::Int(get_int(&operands[2])? as i8 as i32),
                    O::CAStore => Value::Int(get_int(&operands[2])? as u16 as i32),
                    O::SAStore => Value::Int(get_int(&operands[2])? as i16 as i32),
                    _ => operands[2],
                };
                gpp.state.heap.array_set(arr, idx, v)?;
                Ok(None)
            }
            O::GetField => match insn.operand {
                Operand::Field(f) => {
                    let obj = get_ref(&operands[0])?;
                    Ok(Some(gpp.state.heap.get_field(obj, f.slot)?))
                }
                _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::PutField => match insn.operand {
                Operand::Field(f) => {
                    let obj = get_ref(&operands[0])?;
                    gpp.state.heap.put_field(obj, f.slot, operands[1])?;
                    Ok(None)
                }
                _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::GetStatic => match insn.operand {
                Operand::Field(f) => Ok(Some(gpp.state.get_static(f.class, f.slot)?)),
                _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::PutStatic => match insn.operand {
                Operand::Field(f) => {
                    gpp.state.put_static(f.class, f.slot, operands[0])?;
                    Ok(None)
                }
                _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
        }
    }

    /// Call and `Special` service on the GPP. Pushes at most one value.
    fn gpp_service(
        &mut self,
        d: &DecodedInsn,
        i: u32,
        off: usize,
        cnt: usize,
    ) -> Result<Option<Value>, JvmError> {
        let lm = self.lm;
        let operands: &[Value] = &self.arena.operand_vals[off..off + cnt];
        let Gpp::Interp(gpp) = &mut self.gpp else {
            return Ok(if d.pushes > 0 { Some(Value::Int(0)) } else { None });
        };
        let insn = &lm.method.code[i as usize];
        use Opcode as O;
        match insn.op {
            O::InvokeVirtual
            | O::InvokeSpecial
            | O::InvokeStatic
            | O::InvokeInterface
            | O::InvokeDynamic => match insn.operand {
                Operand::Call(c) => Ok(gpp.run(c.method, operands)?),
                _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::New => match insn.operand {
                Operand::ClassId(cid) => {
                    let fields = gpp.program().class(cid).instance_fields;
                    let h = gpp.state.heap.alloc_object(cid, fields);
                    Ok(Some(Value::Ref(Some(h))))
                }
                _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::NewArray => match insn.operand {
                Operand::ArrayType(k) => {
                    let len = operands[0]
                        .as_int()
                        .ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                    let h = gpp.state.heap.alloc_array(k, len)?;
                    Ok(Some(Value::Ref(Some(h))))
                }
                _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::ANewArray => match insn.operand {
                Operand::ClassId(cid) => {
                    let len = operands[0]
                        .as_int()
                        .ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                    let h = gpp.state.heap.alloc_ref_array(cid, len)?;
                    Ok(Some(Value::Ref(Some(h))))
                }
                _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::ArrayLength => {
                let arr = operands[0]
                    .as_ref_handle()
                    .ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                Ok(Some(Value::Int(gpp.state.heap.array_len(arr)?)))
            }
            O::InstanceOf => match insn.operand {
                Operand::ClassId(cid) => {
                    let h = operands[0]
                        .as_ref_handle()
                        .ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                    let yes = match h {
                        None => false,
                        Some(hh) => gpp.state.heap.object_class(Some(hh))? == cid,
                    };
                    Ok(Some(Value::Int(i32::from(yes))))
                }
                _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::CheckCast => match insn.operand {
                Operand::ClassId(cid) => {
                    let h = operands[0]
                        .as_ref_handle()
                        .ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                    if let Some(hh) = h {
                        if gpp.state.heap.object_class(Some(hh))? != cid {
                            return Err(JvmError::bare(JvmErrorKind::ClassCast));
                        }
                    }
                    Ok(Some(Value::Ref(h)))
                }
                _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
            },
            O::MonitorEnter | O::MonitorExit => {
                let h = operands[0]
                    .as_ref_handle()
                    .ok_or_else(|| JvmError::bare(JvmErrorKind::TypeError))?;
                if h.is_none() {
                    return Err(JvmError::bare(JvmErrorKind::NullPointer));
                }
                Ok(None)
            }
            O::Nop => Ok(None),
            _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
        }
    }
}

/// Register index encoded in the compact `*load_N`/`*store_N` forms.
fn compact_register(op: Opcode) -> Option<u16> {
    use Opcode as O;
    Some(match op {
        O::ILoad0
        | O::LLoad0
        | O::FLoad0
        | O::DLoad0
        | O::ALoad0
        | O::IStore0
        | O::LStore0
        | O::FStore0
        | O::DStore0
        | O::AStore0 => 0,
        O::ILoad1
        | O::LLoad1
        | O::FLoad1
        | O::DLoad1
        | O::ALoad1
        | O::IStore1
        | O::LStore1
        | O::FStore1
        | O::DStore1
        | O::AStore1 => 1,
        O::ILoad2
        | O::LLoad2
        | O::FLoad2
        | O::DLoad2
        | O::ALoad2
        | O::IStore2
        | O::LStore2
        | O::FStore2
        | O::DStore2
        | O::AStore2 => 2,
        O::ILoad3
        | O::LLoad3
        | O::FLoad3
        | O::DLoad3
        | O::ALoad3
        | O::IStore3
        | O::LStore3
        | O::FStore3
        | O::DStore3
        | O::AStore3 => 3,
        _ => return None,
    })
}

/// Register operand of a local read/write/inc instruction.
fn register_of(insn: &javaflow_bytecode::Insn) -> Option<u16> {
    match insn.operand {
        Operand::Local(r) => Some(r),
        Operand::Inc { local, .. } => Some(local),
        _ => compact_register(insn.op),
    }
}

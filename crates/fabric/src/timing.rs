//! Timing model: execution latencies (Table 17) and network transit times
//! (Figure 25).
//!
//! The simulator's base time unit is one **serial clock tick**. One mesh
//! cycle spans `serial_per_mesh` ticks ("up to N serial clocks between each
//! mesh clock", Table 15). The collapsed Baseline uses zero-cost serial hops
//! and one tick per mesh cycle, reproducing the dissertation's "allow all
//! serial clocks to proceed until there are no more serial messages queued".

use javaflow_bytecode::InstructionGroup;

/// Execution and transit latencies, all in *mesh cycles* unless noted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Move instructions (Table 17: 1).
    pub move_cycles: u64,
    /// Floating-point arithmetic (Table 17: 10).
    pub float_cycles: u64,
    /// Integer↔float conversion (Table 17: 5).
    pub convert_cycles: u64,
    /// Special, logical, register, memory instructions (Table 17: 2).
    pub other_cycles: u64,
    /// Memory subsystem service time for ordered accesses (Figure 25).
    pub memory_service: u64,
    /// GPP service time for calls and `Special` operations (Figure 25).
    pub gpp_service: u64,
    /// Mesh cycles per Manhattan-distance hop.
    pub mesh_hop_cycles: u64,
}

impl Default for Timing {
    fn default() -> Timing {
        Timing {
            move_cycles: 1,
            float_cycles: 10,
            convert_cycles: 5,
            other_cycles: 2,
            memory_service: 10,
            gpp_service: 20,
            mesh_hop_cycles: 1,
        }
    }
}

impl Timing {
    /// Execution latency in mesh cycles for an instruction group
    /// (Table 17).
    #[must_use]
    pub fn exec_cycles(&self, group: InstructionGroup) -> u64 {
        match group {
            InstructionGroup::ArithMove => self.move_cycles,
            InstructionGroup::FloatArith => self.float_cycles,
            InstructionGroup::FloatConversion => self.convert_cycles,
            _ => self.other_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_17_values() {
        let t = Timing::default();
        assert_eq!(t.exec_cycles(InstructionGroup::ArithMove), 1);
        assert_eq!(t.exec_cycles(InstructionGroup::FloatArith), 10);
        assert_eq!(t.exec_cycles(InstructionGroup::FloatConversion), 5);
        assert_eq!(t.exec_cycles(InstructionGroup::ArithInteger), 2);
        assert_eq!(t.exec_cycles(InstructionGroup::MemRead), 2);
        assert_eq!(t.exec_cycles(InstructionGroup::LocalRead), 2);
        assert_eq!(t.exec_cycles(InstructionGroup::ControlFlow), 2);
    }
}

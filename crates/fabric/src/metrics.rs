//! The instrumentation registry: named monotonic counters, high-water
//! maxima, and log₂-bucketed histograms.
//!
//! [`ExecReport`] carries per-run numbers; the registry folds a whole
//! sweep of them into one place ([`MetricsRegistry::observe_report`]),
//! merges across threads ([`MetricsRegistry::merge`]), and serializes
//! into the `BENCH_*.json` artifacts ([`MetricsRegistry::to_json`]) and
//! the "Table 30 — Instrumentation Summary" text
//! ([`MetricsRegistry::render`]). Names are `&'static str` so the
//! registry itself never allocates per observation — only per distinct
//! metric name.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{ExecReport, Outcome};

/// A log₂-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Samples observed.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Bucket `b` counts samples with `bit_width == b` (bucket 0 holds
    /// the zeros, bucket 1 holds 1, bucket 2 holds 2–3, …).
    pub buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0, min: 0, max: 0, buckets: [0; 65] }
    }
}

impl Histogram {
    /// Adds one sample.
    pub fn observe(&mut self, v: u64) {
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        self.max = self.max.max(v);
        self.count += 1;
        // Saturate: a pair of near-u64::MAX samples must not wrap the
        // running sum (the mean degrades gracefully instead).
        self.sum = self.sum.saturating_add(v);
        self.buckets[64 - v.leading_zeros() as usize] += 1;
    }

    /// Folds another histogram in.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Arithmetic mean of the samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Inclusive value range of bucket `b`: `b == 0` → `{0}`,
    /// `b >= 1` → `[2^(b-1), 2^b - 1]` (bucket 64 tops out at
    /// `u64::MAX`).
    #[must_use]
    pub fn bucket_range(b: usize) -> (u64, u64) {
        if b == 0 {
            (0, 0)
        } else {
            let lo = 1u64 << (b - 1);
            (lo, lo - 1 + lo)
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) from the log₂ buckets.
    ///
    /// Finds the bucket holding the rank-`⌈q·count⌉` sample and
    /// interpolates linearly inside its value range, treating the `n`
    /// samples of the bucket as sitting at the midpoints of `n` equal
    /// sub-ranges (so a single-sample bucket reads back its midpoint,
    /// not its upper bound), clamped to the observed `[min, max]`.
    /// Exact for the extremes (`q == 0` → `min`, `q == 1` → `max`);
    /// within a factor of 2 everywhere else — the resolution a log₂
    /// histogram buys. This is what the server's p50/p95/p99 latency
    /// rows are computed from.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        // 1-based rank of the selected sample.
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = Histogram::bucket_range(b);
                // Midpoint rule: sample k of n (1-based) sits at the
                // centre of the k-th of n equal slices of [lo, hi].
                let into = ((rank - seen) as f64 - 0.5) / n as f64;
                let est = lo as f64 + (hi - lo) as f64 * into;
                // `as u64` saturates, which is what we want for bucket
                // 64 where `hi as f64` rounds up past u64::MAX.
                return (est.round() as u64).clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Appends this histogram in Prometheus text exposition format:
    /// `# TYPE` header, cumulative `{le="..."}` buckets (the log₂ bucket
    /// `b` maps to the upper bound `2^b - 1`), `+Inf`, `_sum`, `_count`.
    /// Empty buckets are elided — cumulative counts stay valid and the
    /// page stays small.
    pub fn render_prometheus(&self, out: &mut String, name: &str, help: &str) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n;
            let le = Histogram::bucket_range(b).1;
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", self.count);
        let _ = writeln!(out, "{name}_sum {}", self.sum);
        let _ = writeln!(out, "{name}_count {}", self.count);
    }
}

/// Named monotonic counters, maxima, and histograms for one sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    maxima: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

/// The per-timing-class metric names, index-aligned with
/// `DecodedInsn::timing_class`.
const CLASS_NAMES: [(&str, &str); 4] = [
    ("fires_class_move", "exec_ticks_class_move"),
    ("fires_class_float", "exec_ticks_class_float"),
    ("fires_class_convert", "exec_ticks_class_convert"),
    ("fires_class_other", "exec_ticks_class_other"),
];

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `v` to the monotonic counter `name`.
    pub fn add(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_insert(0) += v;
    }

    /// Raises the high-water mark `name` to at least `v`.
    pub fn observe_max(&mut self, name: &'static str, v: u64) {
        let slot = self.maxima.entry(name).or_insert(0);
        *slot = (*slot).max(v);
    }

    /// Adds one sample to the histogram `name`.
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.hists.entry(name).or_default().observe(v);
    }

    /// Reads a counter back (0 when never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a high-water mark back (0 when never touched).
    #[must_use]
    pub fn max(&self, name: &str) -> u64 {
        self.maxima.get(name).copied().unwrap_or(0)
    }

    /// Reads a histogram back.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Folds another registry in (cross-thread / cross-shard merge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in &other.maxima {
            let slot = self.maxima.entry(name).or_insert(0);
            *slot = (*slot).max(*v);
        }
        for (name, h) in &other.hists {
            self.hists.entry(name).or_default().merge(h);
        }
    }

    /// Folds one run's [`ExecReport`] into the registry. `class_ticks`
    /// is the configuration's per-timing-class execution latency (from
    /// `FabricConfig::class_ticks`), used to histogram the execution
    /// ticks each class consumed.
    pub fn observe_report(&mut self, r: &ExecReport, class_ticks: [u64; 4]) {
        self.add("runs", 1);
        let outcome = match r.outcome {
            Outcome::Returned(_) => "runs_returned",
            Outcome::Timeout => "runs_timeout",
            Outcome::Deadlock => "runs_deadlock",
            Outcome::Exception(_) => "runs_exception",
        };
        self.add(outcome, 1);
        // Semantic fast-forward / compile declines, visible without an
        // active trace sink (satellite of the observability PR).
        for (code, name) in crate::trace::WARN_COUNTERS {
            if r.declined & (1 << code) != 0 {
                self.add(name, 1);
            }
        }
        self.add("instructions_executed", r.executed);
        self.add("relay_fires", r.relay_fires);
        self.add("serial_msgs", r.serial_msgs);
        self.add("mesh_msgs", r.mesh_msgs);
        self.add("events_popped", r.events);
        self.add("events_skipped", r.events_skipped);
        self.add("mesh_cycles", r.mesh_cycles);
        self.add("wheel_pushes", r.wheel_pushes);
        self.observe_max("wheel_high_water", r.wheel_high_water);
        self.observe("events_per_run", r.events);
        self.observe("executed_per_run", r.executed);
        for (k, (fires, ticks)) in CLASS_NAMES.iter().enumerate() {
            self.add(fires, r.class_fires[k]);
            self.observe(ticks, r.class_fires[k] * class_ticks[k]);
        }
        if let Some(net) = &r.net {
            self.add("net_runs", 1);
            self.add("net_mesh_flits", net.mesh_flits);
            self.add("net_mesh_hops", net.mesh_hops);
            self.add("net_stall_ticks", net.stall_ticks);
            self.observe_max("net_max_queue_depth", net.max_queue_depth);
            self.add("net_mem_ring_requests", net.memory_ring.requests);
            self.add("net_mem_ring_wait_ticks", net.memory_ring.wait_ticks);
            self.add("net_gpp_ring_requests", net.gpp_ring.requests);
            self.add("net_gpp_ring_wait_ticks", net.gpp_ring.wait_ticks);
        }
    }

    /// Serializes the registry as one JSON object (counters, maxima,
    /// histogram summaries), for embedding in the `BENCH_*.json` files.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"maxima\":{");
        for (i, (name, v)) in self.maxima.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{name}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3}}}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean()
            );
        }
        out.push_str("}}");
        out
    }

    /// Appends the whole registry in Prometheus text exposition format.
    /// Counters become `{prefix}{name}_total`, maxima become
    /// `{prefix}{name}_max` gauges, histograms render through
    /// [`Histogram::render_prometheus`] as `{prefix}{name}`.
    pub fn render_prometheus(&self, out: &mut String, prefix: &str) {
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {prefix}{name}_total counter");
            let _ = writeln!(out, "{prefix}{name}_total {v}");
        }
        for (name, v) in &self.maxima {
            let _ = writeln!(out, "# TYPE {prefix}{name}_max gauge");
            let _ = writeln!(out, "{prefix}{name}_max {v}");
        }
        for (name, h) in &self.hists {
            h.render_prometheus(out, &format!("{prefix}{name}"), "log2-bucketed histogram");
        }
    }

    /// Renders the registry as the "Table 30" text block.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.counters.is_empty() && self.maxima.is_empty() && self.hists.is_empty() {
            let _ = writeln!(out, "(no instrumentation collected)");
            return out;
        }
        let _ = writeln!(out, "{:<28} {:>14}", "counter", "total");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name:<28} {v:>14}");
        }
        if !self.maxima.is_empty() {
            let _ = writeln!(out, "{:<28} {:>14}", "high-water", "max");
            for (name, v) in &self.maxima {
                let _ = writeln!(out, "{name:<28} {v:>14}");
            }
        }
        if !self.hists.is_empty() {
            let _ = writeln!(
                out,
                "{:<28} {:>10} {:>12} {:>8} {:>10} {:>12}",
                "histogram", "count", "sum", "min", "max", "mean"
            );
            for (name, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "{name:<28} {:>10} {:>12} {:>8} {:>10} {:>12.3}",
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    h.mean()
                );
            }
        }
        out
    }
}

/// A persisted run-cost predictor: mean observed `events_per_run` keyed
/// by the method's static-length log₂ bucket.
///
/// The sweep scheduler dispatches records in descending predicted cost so
/// the long tail of the `events_per_run` histogram (max ≈ 548k events vs
/// a mean of ≈ 3.8k) starts first instead of holding the join. Static
/// instruction count is the predictor's key — it is known before any
/// simulation — and a profile learned from a previous sweep's reports
/// refines the raw length heuristic into actual event counts.
///
/// The profile serializes to a tiny line-oriented text format
/// (`bucket count sum` per non-empty bucket) so a sweep can persist it
/// (`JAVAFLOW_COST_PROFILE=path`) and the next sweep — or the next
/// process, in server mode — schedules from measured history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostProfile {
    /// Per-bucket sample counts; bucket = `bit_width(static_len)`.
    counts: [u64; 33],
    /// Per-bucket `events` sums.
    sums: [u64; 33],
}

impl Default for CostProfile {
    fn default() -> Self {
        CostProfile { counts: [0; 33], sums: [0; 33] }
    }
}

impl CostProfile {
    /// An empty profile (every prediction falls back to the static
    /// length itself).
    #[must_use]
    pub fn new() -> CostProfile {
        CostProfile::default()
    }

    fn bucket(static_len: usize) -> usize {
        (usize::BITS - static_len.leading_zeros()).min(32) as usize
    }

    /// Records one run: a method of `static_len` instructions processed
    /// `events` scheduler events.
    pub fn observe(&mut self, static_len: usize, events: u64) {
        let b = CostProfile::bucket(static_len);
        self.counts[b] += 1;
        self.sums[b] += events;
    }

    /// Whether the profile holds any observations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Predicted events per run for a method of `static_len`
    /// instructions: the mean of its bucket, else the nearest non-empty
    /// bucket's mean, else `static_len` itself (so an empty profile
    /// degrades to the proportional-to-size heuristic).
    #[must_use]
    pub fn predict(&self, static_len: usize) -> u64 {
        let b = CostProfile::bucket(static_len);
        if let Some(mean) = self.sums[b].checked_div(self.counts[b]) {
            return mean;
        }
        for d in 1..=32usize {
            // Prefer the larger neighbour: overestimating a record's cost
            // only schedules it earlier, which is the safe direction.
            for n in [b.checked_add(d).filter(|&n| n <= 32), b.checked_sub(d)].into_iter().flatten()
            {
                if let Some(mean) = self.sums[n].checked_div(self.counts[n]) {
                    return mean;
                }
            }
        }
        static_len as u64
    }

    /// Folds another profile in.
    pub fn merge(&mut self, other: &CostProfile) {
        for b in 0..33 {
            self.counts[b] += other.counts[b];
            self.sums[b] += other.sums[b];
        }
    }

    /// Serializes the profile: one `bucket count sum` line per non-empty
    /// bucket, preceded by a format tag.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from("javaflow-cost-profile v1\n");
        for b in 0..33 {
            if self.counts[b] > 0 {
                let _ = writeln!(out, "{b} {} {}", self.counts[b], self.sums[b]);
            }
        }
        out
    }

    /// Parses [`CostProfile::to_text`] output. Returns `None` on any
    /// malformed line — a corrupt profile must not silently skew the
    /// schedule.
    #[must_use]
    pub fn from_text(text: &str) -> Option<CostProfile> {
        let mut lines = text.lines();
        if lines.next()?.trim() != "javaflow-cost-profile v1" {
            return None;
        }
        let mut p = CostProfile::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let b: usize = parts.next()?.parse().ok()?;
            let count: u64 = parts.next()?.parse().ok()?;
            let sum: u64 = parts.next()?.parse().ok()?;
            if b > 32 || parts.next().is_some() {
                return None;
            }
            p.counts[b] += count;
            p.sums[b] += sum;
        }
        Some(p)
    }

    /// Loads a persisted profile, or `None` when the file is absent or
    /// malformed.
    #[must_use]
    pub fn load(path: &std::path::Path) -> Option<CostProfile> {
        CostProfile::from_text(&std::fs::read_to_string(path).ok()?)
    }

    /// Persists the profile.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_width() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 1); // 4
        assert_eq!(h.buckets[11], 1); // 1024
    }

    #[test]
    fn quantiles_come_from_the_buckets() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        // 100 samples of 10, one of 1000: the p99 sits in the tail bucket.
        for _ in 0..100 {
            h.observe(10);
        }
        h.observe(1000);
        assert_eq!(h.quantile(0.0), 10);
        assert_eq!(h.quantile(1.0), 1000);
        let p50 = h.quantile(0.5);
        assert!((8..=15).contains(&p50), "p50 {p50} should sit in the 8..=15 bucket");
        let p999 = h.quantile(0.999);
        assert!((512..=1000).contains(&p999), "p99.9 {p999} should reach the tail bucket");
        // Quantiles never leave the observed range.
        let mut single = Histogram::default();
        single.observe(7);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(single.quantile(q), 7);
        }
    }

    #[test]
    fn quantile_interpolates_inside_the_bucket() {
        // 4 samples spread across one bucket (32..=63): the midpoint rule
        // places ranks 1..4 at 1/8, 3/8, 5/8, 7/8 of the range instead of
        // snapping every one to the upper bound.
        let mut h = Histogram::default();
        for v in [32, 40, 50, 63] {
            h.observe(v);
        }
        let p25 = h.quantile(0.25);
        let p75 = h.quantile(0.75);
        assert!(p25 < p75, "interpolation must order ranks: p25 {p25} vs p75 {p75}");
        assert!((32..=63).contains(&p25) && (32..=63).contains(&p75));
        // A single-sample bucket reads back its midpoint, not `hi`.
        let mut one = Histogram::default();
        for _ in 0..99 {
            one.observe(1);
        }
        one.observe(600); // bucket 10 = 512..=1023, midpoint ≈ 767
        assert_eq!(one.quantile(0.995), 600, "clamped to max, not the 1023 bucket roof");
    }

    #[test]
    fn quantile_edge_cases_zero_powers_of_two_and_max() {
        // All zeros: bucket 0 has lo == hi == 0.
        let mut z = Histogram::default();
        for _ in 0..10 {
            z.observe(0);
        }
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(z.quantile(q), 0);
        }
        // Exact powers of two land in the bucket they open.
        for p in [1u64, 2, 1024, 1 << 40, 1 << 63] {
            let mut h = Histogram::default();
            h.observe(p);
            assert_eq!(h.buckets[64 - p.leading_zeros() as usize], 1);
            for q in [0.01, 0.5, 0.99] {
                assert_eq!(h.quantile(q), p, "single sample {p} must read back exactly");
            }
        }
        // u64::MAX: bucket 64's roof; the f64 round-trip saturates
        // instead of wrapping.
        let mut m = Histogram::default();
        m.observe(u64::MAX);
        m.observe(u64::MAX - 1);
        assert_eq!(m.buckets[64], 2);
        assert_eq!(m.quantile(1.0), u64::MAX);
        let p50 = m.quantile(0.5);
        assert!(p50 >= u64::MAX - 1, "bucket-64 estimate clamps into [min, max], got {p50}");
        assert_eq!(Histogram::bucket_range(64), (1 << 63, u64::MAX));
    }

    #[test]
    fn prometheus_exposition_is_cumulative() {
        let mut h = Histogram::default();
        for v in [0, 1, 3, 1000] {
            h.observe(v);
        }
        let mut out = String::new();
        h.render_prometheus(&mut out, "t_us", "test");
        let want = "# HELP t_us test\n# TYPE t_us histogram\n\
                    t_us_bucket{le=\"0\"} 1\nt_us_bucket{le=\"1\"} 2\n\
                    t_us_bucket{le=\"3\"} 3\nt_us_bucket{le=\"1023\"} 4\n\
                    t_us_bucket{le=\"+Inf\"} 4\nt_us_sum 1004\nt_us_count 4\n";
        assert_eq!(out, want);

        let mut r = MetricsRegistry::new();
        r.add("runs", 3);
        r.observe_max("wheel_high_water", 9);
        r.observe("events_per_run", 5);
        let mut page = String::new();
        r.render_prometheus(&mut page, "javaflow_sim_");
        assert!(page.contains("# TYPE javaflow_sim_runs_total counter\njavaflow_sim_runs_total 3"));
        assert!(page.contains("javaflow_sim_wheel_high_water_max 9"));
        assert!(page.contains("javaflow_sim_events_per_run_bucket{le=\"7\"} 1"));
        assert!(page.contains("javaflow_sim_events_per_run_count 1"));
    }

    #[test]
    fn declined_reports_count_warn_reasons() {
        use crate::trace::{WARN_COMPILE_DATA_MODE, WARN_FF_NET_ORDER};
        let mut reg = MetricsRegistry::new();
        let r = ExecReport {
            outcome: Outcome::Deadlock,
            mesh_cycles: 1,
            executed: 0,
            relay_fires: 0,
            static_covered: 0,
            coverage: 0.0,
            ipc: 0.0,
            frac_cycles_ge2: 0.0,
            frac_cycles_ge1: 0.0,
            serial_msgs: 0,
            mesh_msgs: 0,
            events: 0,
            events_skipped: 0,
            class_fires: [0; 4],
            wheel_high_water: 0,
            wheel_pushes: 0,
            declined: (1 << WARN_FF_NET_ORDER) | (1 << WARN_COMPILE_DATA_MODE),
            net: None,
        };
        reg.observe_report(&r, [1; 4]);
        assert_eq!(reg.counter("warn_ff_net_order"), 1);
        assert_eq!(reg.counter("warn_compile_data_mode"), 1);
        assert_eq!(reg.counter("warn_ff_gpp"), 0);
        reg.observe_report(&r, [1; 4]);
        assert_eq!(reg.counter("warn_ff_net_order"), 2);
    }

    #[test]
    fn merge_is_a_fold() {
        let mut a = MetricsRegistry::new();
        a.add("x", 2);
        a.observe_max("m", 5);
        a.observe("h", 3);
        let mut b = MetricsRegistry::new();
        b.add("x", 3);
        b.observe_max("m", 4);
        b.observe("h", 7);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.max("m"), 5);
        let h = a.histogram("h").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 10, 3, 7));
    }

    #[test]
    fn cost_profile_predicts_bucket_means() {
        let mut p = CostProfile::new();
        assert!(p.is_empty());
        // Empty profile: proportional-to-length heuristic.
        assert_eq!(p.predict(100), 100);
        p.observe(100, 5000);
        p.observe(120, 7000);
        // 100 and 120 share bucket bit_width(100)=7: mean 6000.
        assert_eq!(p.predict(100), 6000);
        // A length with no bucket borrows the nearest, preferring larger.
        assert_eq!(p.predict(3), 6000);
        p.observe(3, 40);
        assert_eq!(p.predict(3), 40);
    }

    #[test]
    fn cost_profile_round_trips_and_rejects_garbage() {
        let mut p = CostProfile::new();
        p.observe(10, 400);
        p.observe(2000, 1_000_000);
        p.observe(2000, 2_000_000);
        let text = p.to_text();
        assert_eq!(CostProfile::from_text(&text), Some(p.clone()));
        let mut q = CostProfile::from_text(&text).unwrap();
        q.merge(&p);
        assert_eq!(q.predict(2000), p.predict(2000), "merge doubles counts and sums alike");
        assert_eq!(CostProfile::from_text("nonsense"), None);
        assert_eq!(CostProfile::from_text("javaflow-cost-profile v1\n99 1 1\n"), None);
        assert_eq!(CostProfile::from_text("javaflow-cost-profile v1\n1 x 1\n"), None);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut r = MetricsRegistry::new();
        r.add("b", 1);
        r.add("a", 2);
        r.observe("h", 4);
        let j = r.to_json();
        // BTreeMap order: keys sorted, so the artifact diffs cleanly.
        assert!(j.starts_with("{\"counters\":{\"a\":2,\"b\":1}"), "{j}");
        assert!(j.contains("\"h\":{\"count\":1,\"sum\":4,\"min\":4,\"max\":4,\"mean\":4.000"));
    }
}

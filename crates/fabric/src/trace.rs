//! Structured execution tracing: the [`TraceSink`] seam of the simulator.
//!
//! The engine emits one [`TraceEvent`] per observable action — token hops
//! on the serial network, node firings and retirements, mesh operand
//! sends, link traversals and ring boardings of the contended
//! interconnect — through a sink chosen at monomorphization time. The
//! default [`NoopSink`] carries `ACTIVE = false`, so every emission site
//! (`if S::ACTIVE { … }`) folds to nothing and the traced kernel is the
//! untraced kernel, instruction for instruction: the zero-allocation and
//! throughput floors in `tests/alloc.rs` and the bench-smoke job hold
//! with the seam in place.
//!
//! Concrete sinks:
//!
//! * [`RingRecorder`] — a bounded in-memory ring buffer of raw events.
//!   `analysis::trace` replays a recording into Table 21/29-style
//!   numbers and cross-checks them against the live counters, and the
//!   Chrome-trace exporter turns one into a Perfetto-loadable JSON.
//! * [`StderrSink`] — the line-per-event debugging aliases behind the
//!   historical `JAVAFLOW_TRACE_REG` / `JAVAFLOW_TRACE_MEM` environment
//!   toggles (re-read per run, so tests can flip them between runs).
//!
//! # Tick semantics
//!
//! Events carry the simulator's **serial tick** clock. An active sink
//! forces the naive per-node walk — fast-forwarding elides exactly the
//! deliveries a trace exists to show — so recorded ticks are the naive
//! schedule, and a recording is byte-identical whether the caller asked
//! for fast-forward or not (the tick-exactness contract of
//! `ExecParams::fast_forward` guarantees the same end state either way).

use javaflow_bytecode::Value;

use crate::Token;

/// Why a [`TraceKind::Warn`] event fired: `ExecParams::fast_forward` was
/// requested but auto-disabled because the interconnect model books
/// link/ring state in arrival order (`NetModel::ORDER_FREE` is false).
pub const WARN_FF_NET_ORDER: u32 = 1;
/// Why a [`TraceKind::Warn`] event fired: `ExecParams::fast_forward` was
/// requested but auto-disabled because a non-stub GPP is attached (the
/// interpreter's heap observes same-tick service order).
pub const WARN_FF_GPP: u32 = 2;
/// Why a [`TraceKind::Warn`] event fired: `ExecParams::compiled` was
/// requested but declined because the interconnect model books link/ring
/// state in arrival order (`NetModel::ORDER_FREE` is false), so a
/// recorded schedule would not be tick-exact.
pub const WARN_COMPILE_NET_ORDER: u32 = 3;
/// Why a [`TraceKind::Warn`] event fired: `ExecParams::compiled` was
/// requested but declined because a non-stub GPP is attached — real
/// heap/interpreter state makes timing value-dependent.
pub const WARN_COMPILE_GPP: u32 = 4;
/// Why a [`TraceKind::Warn`] event fired: `ExecParams::compiled` was
/// requested but declined because the run uses data-driven branches
/// (`BranchMode::Data`); only the scripted oracle modes make control
/// flow independent of argument values.
pub const WARN_COMPILE_DATA_MODE: u32 = 5;

/// Every warn code paired with the `MetricsRegistry` counter name it is
/// folded into by `observe_report` (via the `ExecReport::declined`
/// bitmask — bit `1 << code`). Keeping the table here, next to the
/// codes, is what lets declines be counted without an active sink.
pub const WARN_COUNTERS: [(u32, &str); 5] = [
    (WARN_FF_NET_ORDER, "warn_ff_net_order"),
    (WARN_FF_GPP, "warn_ff_gpp"),
    (WARN_COMPILE_NET_ORDER, "warn_compile_net_order"),
    (WARN_COMPILE_GPP, "warn_compile_gpp"),
    (WARN_COMPILE_DATA_MODE, "warn_compile_data_mode"),
];

/// The `MetricsRegistry` counter name for a warn `arg` code, or `None`
/// for an unknown code.
#[must_use]
pub fn warn_counter_name(code: u32) -> Option<&'static str> {
    WARN_COUNTERS.iter().find(|(c, _)| *c == code).map(|&(_, n)| n)
}

/// What a [`TraceEvent`] describes. Discriminants are the first byte of
/// the binary record format and must stay stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// A serial-network token send. `node` = sending instruction
    /// (`u32::MAX` = the Anchor's injection), `arg` = receiving
    /// instruction, `data` = [`encode_token`], `aux` = arrival tick.
    TokenSend = 0,
    /// An instruction node fired. `arg` = timing class, `data` =
    /// execution ticks, `aux` = packed placement coordinates
    /// (`x << 32 | y`).
    Fire = 1,
    /// The execution stage of a fired node completed.
    Retire = 2,
    /// A memory/GPP service completed and outputs dispatched.
    ServiceDone = 3,
    /// A mesh operand send. `node` = consumer (relays included), `arg` =
    /// operand side, `data` = packed source coordinates, `aux` = arrival
    /// tick.
    MeshSend = 4,
    /// A relay (inserted move) node fired its fan-out. `data` = packed
    /// relay coordinates, `aux` = fan-out width.
    RelayFire = 5,
    /// One link traversal in the contended mesh. `tick` = entry tick,
    /// `node` = router x, `arg` = router y, `data` = stall ticks,
    /// `aux` = observed queue depth.
    LinkHop = 6,
    /// A request boarded a slotted ring. `arg` = ring (0 = memory,
    /// 1 = GPP), `data` = station wait ticks, `aux` = queued depth.
    RingBoard = 7,
    /// A register token passed a watching node (the `JAVAFLOW_TRACE_REG`
    /// observation). `arg` = register | fired-bit 16 | completed-bit 17,
    /// `data`/`aux` = [`encode_value`] bits/tag of the carried value.
    RegObserve = 8,
    /// An ordered array store reached real memory (the
    /// `JAVAFLOW_TRACE_MEM` observation). `arg` = operand count,
    /// `data`/`aux` = bits/tag of the stored value.
    MemObserve = 9,
    /// A diagnostic: see [`WARN_FF_NET_ORDER`] / [`WARN_FF_GPP`] /
    /// [`WARN_COMPILE_NET_ORDER`] / [`WARN_COMPILE_GPP`] /
    /// [`WARN_COMPILE_DATA_MODE`] for the `arg` codes.
    Warn = 10,
    /// The run ended. `tick` = final raw tick, `arg` = outcome code
    /// (0 returned / 1 timeout / 2 deadlock / 3 exception), `data` =
    /// ticks per mesh cycle, `aux` = net-report-present bit 0 |
    /// `active_static << 1` (the replay's coverage denominator).
    End = 11,
}

/// One structured trace record. Compact and `Copy`: recording an event
/// is a bounds check and a 33-byte store, never an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Serial tick the event happened at.
    pub tick: u64,
    /// Event kind; fixes the meaning of the payload fields.
    pub kind: TraceKind,
    /// Primary subject (instruction address, router x, …).
    pub node: u32,
    /// Secondary subject (target address, side, ring id, …).
    pub arg: u32,
    /// Kind-specific payload.
    pub data: u64,
    /// Kind-specific payload.
    pub aux: u64,
}

/// Size of one serialized event record.
pub const EVENT_BYTES: usize = 33;

impl TraceEvent {
    /// Serializes the event into the stable little-endian record format
    /// (`kind`, `tick`, `node`, `arg`, `data`, `aux`).
    #[must_use]
    pub fn to_bytes(&self) -> [u8; EVENT_BYTES] {
        let mut b = [0u8; EVENT_BYTES];
        b[0] = self.kind as u8;
        b[1..9].copy_from_slice(&self.tick.to_le_bytes());
        b[9..13].copy_from_slice(&self.node.to_le_bytes());
        b[13..17].copy_from_slice(&self.arg.to_le_bytes());
        b[17..25].copy_from_slice(&self.data.to_le_bytes());
        b[25..33].copy_from_slice(&self.aux.to_le_bytes());
        b
    }
}

/// Where the simulator sends structured events.
///
/// The sink is a **monomorphization-time** choice: `ACTIVE` is an
/// associated constant, every emission site in the engine is guarded by
/// `if S::ACTIVE`, and the [`NoopSink`] instantiation therefore contains
/// no tracing code at all — not even dead branches.
pub trait TraceSink {
    /// Whether this sink observes events. `false` compiles every
    /// emission site out of the engine.
    const ACTIVE: bool = true;

    /// Receives one event. Must be cheap; the engine calls it from the
    /// event-dispatch hot path.
    fn record(&mut self, ev: &TraceEvent);
}

/// The default sink: records nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn record(&mut self, _ev: &TraceEvent) {}
}

/// A bounded in-memory recorder: keeps the most recent `capacity`
/// events, counting (rather than failing on) overflow.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Oldest slot once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl RingRecorder {
    /// A recorder holding at most `capacity` events (at least 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> RingRecorder {
        let cap = capacity.max(1);
        RingRecorder { buf: Vec::with_capacity(cap), cap, head: 0, dropped: 0 }
    }

    /// Events recorded and still held, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Events that overflowed the buffer and were discarded (oldest
    /// first discipline).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The whole recording in the stable binary record format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.buf.len() * EVENT_BYTES);
        for ev in self.events() {
            out.extend_from_slice(&ev.to_bytes());
        }
        out
    }

    /// Forgets all recorded events, keeping the buffer capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, ev: &TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(*ev);
        } else {
            self.buf[self.head] = *ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }
}

/// The debugging sink behind the `JAVAFLOW_TRACE_REG` /
/// `JAVAFLOW_TRACE_MEM` environment aliases: prints the selected
/// observation lines (and every warning) to stderr.
#[derive(Debug, Clone, Copy)]
pub struct StderrSink {
    /// Print [`TraceKind::RegObserve`] lines.
    pub reg: bool,
    /// Print [`TraceKind::MemObserve`] lines.
    pub mem: bool,
}

impl TraceSink for StderrSink {
    fn record(&mut self, ev: &TraceEvent) {
        match ev.kind {
            TraceKind::RegObserve if self.reg => {
                let reg = ev.arg & 0xffff;
                let fired = ev.arg & (1 << 16) != 0;
                let completed = ev.arg & (1 << 17) != 0;
                let value = decode_value(ev.aux, ev.data);
                eprintln!(
                    "[reg] t={} @{} sees r{reg}={value} (fired={fired} completed={completed})",
                    ev.tick, ev.node
                );
            }
            TraceKind::MemObserve if self.mem => {
                let value = decode_value(ev.aux, ev.data);
                eprintln!(
                    "[mem] t={} @{} ordered store ({} operands, value {value})",
                    ev.tick, ev.node, ev.arg
                );
            }
            TraceKind::Warn => {
                let (what, why) = match ev.arg {
                    WARN_FF_NET_ORDER => ("fast-forward", "interconnect model is not order-free"),
                    WARN_FF_GPP => ("fast-forward", "a non-stub GPP is attached"),
                    WARN_COMPILE_NET_ORDER => {
                        ("block compilation", "interconnect model is not order-free")
                    }
                    WARN_COMPILE_GPP => ("block compilation", "a non-stub GPP is attached"),
                    WARN_COMPILE_DATA_MODE => {
                        ("block compilation", "branches are data-driven, not scripted")
                    }
                    _ => ("fast-forward", "unknown reason"),
                };
                eprintln!("[warn] {what} requested but disabled: {why}");
            }
            _ => {}
        }
    }
}

/// Builds the [`StderrSink`] selected by the historical environment
/// toggles, or `None` when neither is set. Reads the environment on
/// every call — per-run, not per-process, so a test can flip the
/// variables between executions.
#[must_use]
pub fn env_stderr_sink() -> Option<StderrSink> {
    let reg = std::env::var_os("JAVAFLOW_TRACE_REG").is_some();
    let mem = std::env::var_os("JAVAFLOW_TRACE_MEM").is_some();
    (reg || mem).then_some(StderrSink { reg, mem })
}

/// Packs mesh coordinates into one event payload field.
#[must_use]
pub fn pack_coords((x, y): (u32, u32)) -> u64 {
    (u64::from(x) << 32) | u64::from(y)
}

/// Reverses [`pack_coords`].
#[must_use]
pub fn unpack_coords(packed: u64) -> (u32, u32) {
    ((packed >> 32) as u32, packed as u32)
}

/// Packs a serial token into the `data` field of a
/// [`TraceKind::TokenSend`] event: low 3 bits are the token kind
/// (0 HEAD, 1 TAIL, 2 MEMORY, 3 REGISTER), the rest the memory order
/// number or register index. Register *values* are not packed — the
/// [`TraceKind::RegObserve`] events carry them.
#[must_use]
pub fn encode_token(t: &Token) -> u64 {
    match t {
        Token::Head => 0,
        Token::Tail => 1,
        Token::Memory(order) => 2 | (order << 3),
        Token::Register { reg, .. } => 3 | (u64::from(*reg) << 3),
    }
}

/// Packs a [`Value`] into `(tag, bits)` for an event payload.
#[must_use]
pub fn encode_value(v: &Value) -> (u64, u64) {
    match v {
        Value::Int(x) => (0, u64::from(*x as u32)),
        Value::Long(x) => (1, *x as u64),
        Value::Float(x) => (2, u64::from(x.to_bits())),
        Value::Double(x) => (3, x.to_bits()),
        Value::Ref(None) => (4, 0),
        Value::Ref(Some(h)) => (5, u64::from(*h)),
        Value::RetAddr(a) => (6, u64::from(*a)),
    }
}

/// Reverses [`encode_value`]. Unknown tags decode to `Int(0)`.
#[must_use]
pub fn decode_value(tag: u64, bits: u64) -> Value {
    match tag {
        0 => Value::Int(bits as u32 as i32),
        1 => Value::Long(bits as i64),
        2 => Value::Float(f32::from_bits(bits as u32)),
        3 => Value::Double(f64::from_bits(bits)),
        4 => Value::NULL,
        5 => Value::Ref(Some(bits as u32)),
        6 => Value::RetAddr(bits as u32),
        _ => Value::Int(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_codec_round_trips() {
        for v in [
            Value::Int(-7),
            Value::Long(1 << 40),
            Value::Float(f32::NAN),
            Value::Double(-0.0),
            Value::NULL,
            Value::Ref(Some(9)),
            Value::RetAddr(3),
        ] {
            let (tag, bits) = encode_value(&v);
            assert!(decode_value(tag, bits).bits_eq(&v), "{v:?}");
        }
    }

    #[test]
    fn token_codes_are_distinct() {
        let codes = [
            encode_token(&Token::Head),
            encode_token(&Token::Tail),
            encode_token(&Token::Memory(0)),
            encode_token(&Token::Register { reg: 0, value: Value::Int(0) }),
        ];
        for (i, a) in codes.iter().enumerate() {
            for b in &codes[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(encode_token(&Token::Memory(5)) & 0b111, 2);
    }

    #[test]
    fn recorder_keeps_most_recent_events() {
        let mut r = RingRecorder::with_capacity(2);
        let ev =
            |tick| TraceEvent { tick, kind: TraceKind::Fire, node: 0, arg: 0, data: 0, aux: 0 };
        for t in 0..5 {
            r.record(&ev(t));
        }
        assert_eq!(r.dropped(), 3);
        let kept: Vec<u64> = r.events().iter().map(|e| e.tick).collect();
        assert_eq!(kept, [3, 4]);
        assert_eq!(r.to_bytes().len(), 2 * EVENT_BYTES);
    }

    #[test]
    fn event_bytes_are_stable() {
        let ev =
            TraceEvent { tick: 0x0102, kind: TraceKind::End, node: 3, arg: 4, data: 5, aux: 6 };
        let b = ev.to_bytes();
        assert_eq!(b[0], 11);
        assert_eq!(b[1], 0x02);
        assert_eq!(b[2], 0x01);
        assert_eq!(b[9], 3);
        assert_eq!(b[13], 4);
        assert_eq!(b[17], 5);
        assert_eq!(b[25], 6);
    }
}

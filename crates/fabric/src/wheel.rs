//! A hierarchical timing wheel for the event-driven simulator.
//!
//! The kernel's event stream is *monotone* — every push schedules at
//! `now + d` with `d ≥ 0` — and overwhelmingly *short-delta*: serial hops,
//! mesh flits, and the Table 17 execution latencies are all within a few
//! hundred ticks, while only the ring service round-trips reach further
//! out. A comparison-based heap pays `O(log n)` per event for ordering
//! power that this stream never uses. The wheel replaces it with bucket
//! scheduling:
//!
//! * **Level 0** — 256 single-tick buckets covering the current 256-tick
//!   *page* (`tick >> 8`). Push and pop are array indexing; a 256-bit
//!   occupancy bitmap finds the next non-empty bucket with a couple of
//!   `trailing_zeros`.
//! * **Level 1** — 64 page slots covering the next 64 pages (16384 ticks).
//!   Events land in the slot of their page (`page & 63`) tagged with their
//!   full tick; when the cursor enters a page, its slot is refiled into
//!   level 0 in push order.
//! * **Overflow** — everything beyond the level-1 horizon, kept in a push
//!   -ordered `Vec` with a tracked minimum. Overflow events for a page are
//!   promoted when the cursor reaches it — *before* that page's level-1
//!   slot is refiled, which preserves global insertion order (see below).
//!
//! # Ordering invariant
//!
//! The simulator's determinism contract is a total order on events by
//! `(tick, push sequence)`. The wheel preserves it *structurally*, without
//! storing sequence numbers: within a bucket events pop in push (FIFO)
//! order, and the promotion rules keep earlier pushes ahead of later ones
//! when levels merge. The key case is a page `P` whose events arrived
//! partly through overflow and partly through level 1: an overflow push
//! requires the cursor's page `p0 ≤ P − 64`, while a level-1 push requires
//! `p0 > P − 64`. The cursor only advances, so *every* overflow push for
//! `P` happened before *every* level-1 push for `P`; promoting overflow
//! first is exactly insertion order. The property test in
//! `crates/fabric/tests/wheel_order.rs` drives this against a
//! `(tick, seq)` binary heap on randomized monotone streams.
//!
//! Same-tick pushes *during* the drain of that tick's bucket are appended
//! behind the in-flight bucket cursor and popped in order — a case the
//! collapsed Baseline configuration (zero-tick serial hops) hits on every
//! token.

/// Level-0 span: one page of single-tick buckets.
const L0_SLOTS: usize = 256;
/// Level-1 span in pages.
const L1_SLOTS: usize = 64;

/// A two-level + overflow timing wheel with O(1) push and amortized O(1)
/// pop for monotone, mostly-short-delta event streams.
///
/// `T` must be `Copy`: buckets are drained by index so that same-tick
/// pushes can append behind the cursor without invalidating it.
#[derive(Debug)]
pub struct TimingWheel<T> {
    /// The current tick. No event below `cursor` remains in the wheel.
    cursor: u64,
    /// Total events stored across all levels.
    len: usize,
    /// Level 0: single-tick buckets for the cursor's page.
    l0: Vec<Vec<T>>,
    /// Occupancy bitmap over `l0` (bit = slot has events).
    l0_occ: [u64; 4],
    /// Drain position inside the active level-0 bucket (the cursor's
    /// slot); entries before it have already been popped.
    l0_pos: usize,
    /// Level 1: per-page slots of `(tick, event)` in push order.
    l1: Vec<Vec<(u64, T)>>,
    /// Occupancy bitmap over `l1`.
    l1_occ: u64,
    /// Events beyond the level-1 horizon, in push order.
    overflow: Vec<(u64, T)>,
    /// Minimum tick present in `overflow` (`u64::MAX` when empty).
    overflow_min: u64,
    /// Largest `len` seen since the last [`TimingWheel::clear`] — the
    /// FIFO high-water mark the instrumentation registry reports.
    high_water: usize,
    /// Pushes since the last [`TimingWheel::clear`].
    pushes: u64,
}

impl<T: Copy> Default for TimingWheel<T> {
    fn default() -> Self {
        TimingWheel::new()
    }
}

impl<T: Copy> TimingWheel<T> {
    /// An empty wheel positioned at tick 0.
    #[must_use]
    pub fn new() -> TimingWheel<T> {
        TimingWheel {
            cursor: 0,
            len: 0,
            l0: (0..L0_SLOTS).map(|_| Vec::new()).collect(),
            l0_occ: [0; 4],
            l0_pos: 0,
            l1: (0..L1_SLOTS).map(|_| Vec::new()).collect(),
            l1_occ: 0,
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            high_water: 0,
            pushes: 0,
        }
    }

    /// Number of events stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wheel holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest number of events simultaneously stored since the last
    /// [`TimingWheel::clear`].
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Pushes accepted since the last [`TimingWheel::clear`].
    #[must_use]
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Empties the wheel and rewinds the cursor to tick 0, keeping every
    /// bucket's capacity for reuse.
    pub fn clear(&mut self) {
        for w in 0..4 {
            let mut bits = self.l0_occ[w];
            while bits != 0 {
                let s = (w << 6) + bits.trailing_zeros() as usize;
                self.l0[s].clear();
                bits &= bits - 1;
            }
            self.l0_occ[w] = 0;
        }
        let mut bits = self.l1_occ;
        while bits != 0 {
            self.l1[bits.trailing_zeros() as usize].clear();
            bits &= bits - 1;
        }
        self.l1_occ = 0;
        self.overflow.clear();
        self.overflow_min = u64::MAX;
        self.cursor = 0;
        self.l0_pos = 0;
        self.len = 0;
        self.high_water = 0;
        self.pushes = 0;
    }

    /// Schedules `item` at tick `at`. Pushes must be monotone: `at` must
    /// not precede the tick of the last pop.
    pub fn push(&mut self, at: u64, item: T) {
        debug_assert!(at >= self.cursor, "non-monotone push: {at} < {}", self.cursor);
        let page = at >> 8;
        let p0 = self.cursor >> 8;
        if page == p0 {
            let slot = (at & 0xff) as usize;
            self.l0[slot].push(item);
            self.l0_occ[slot >> 6] |= 1 << (slot & 63);
        } else if page - p0 < L1_SLOTS as u64 {
            let slot = (page & 63) as usize;
            self.l1[slot].push((at, item));
            self.l1_occ |= 1 << slot;
        } else {
            self.overflow.push((at, item));
            self.overflow_min = self.overflow_min.min(at);
        }
        self.len += 1;
        self.pushes += 1;
        if self.len > self.high_water {
            self.high_water = self.len;
        }
    }

    /// Removes and returns the earliest event as `(tick, item)`. Ties pop
    /// in push order.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        if self.len == 0 {
            return None;
        }
        loop {
            if let Some(slot) = self.first_occupied_l0() {
                let at = (self.cursor & !0xff) | slot as u64;
                self.cursor = at;
                let bucket = &mut self.l0[slot];
                let item = bucket[self.l0_pos];
                self.l0_pos += 1;
                if self.l0_pos == bucket.len() {
                    bucket.clear();
                    self.l0_pos = 0;
                    self.l0_occ[slot >> 6] &= !(1 << (slot & 63));
                }
                self.len -= 1;
                return Some((at, item));
            }
            // The current page is drained: jump to the next page holding
            // events (level 1 or overflow) and refile it into level 0.
            let next = self.next_page_with_events();
            self.advance_to_page(next);
        }
    }

    /// Drains the entire earliest non-empty bucket into `out` (appending)
    /// and returns its tick, or `None` when the wheel is empty. Events are
    /// appended in push (FIFO) order, so `pop_tick` + an in-order scan of
    /// `out` observes exactly the sequence the one-at-a-time [`Self::pop`]
    /// would have produced. Same-tick pushes made *while* the batch is
    /// processed land in the (now empty) bucket and are returned by the
    /// next `pop_tick`, which reports the same tick again — mirroring the
    /// mid-drain append behaviour of `pop`.
    pub fn pop_tick(&mut self, out: &mut Vec<T>) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        loop {
            if let Some(slot) = self.first_occupied_l0() {
                let at = (self.cursor & !0xff) | slot as u64;
                self.cursor = at;
                let bucket = &mut self.l0[slot];
                out.extend_from_slice(&bucket[self.l0_pos..]);
                self.len -= bucket.len() - self.l0_pos;
                bucket.clear();
                self.l0_pos = 0;
                self.l0_occ[slot >> 6] &= !(1 << (slot & 63));
                return Some(at);
            }
            let next = self.next_page_with_events();
            self.advance_to_page(next);
        }
    }

    /// First occupied level-0 slot at or after the cursor's slot.
    fn first_occupied_l0(&self) -> Option<usize> {
        let from = (self.cursor & 0xff) as usize;
        let mut w = from >> 6;
        let mut bits = self.l0_occ[w] & (u64::MAX << (from & 63));
        loop {
            if bits != 0 {
                return Some((w << 6) + bits.trailing_zeros() as usize);
            }
            w += 1;
            if w == 4 {
                return None;
            }
            bits = self.l0_occ[w];
        }
    }

    /// Earliest page beyond the cursor's with events in level 1 or
    /// overflow. Only called when `len > 0` and level 0 is drained, so a
    /// candidate always exists.
    fn next_page_with_events(&self) -> u64 {
        let p0 = self.cursor >> 8;
        let mut best = u64::MAX;
        let mut bits = self.l1_occ;
        while bits != 0 {
            let s = u64::from(bits.trailing_zeros());
            // Smallest page > p0 whose level-1 slot is `s`.
            let page = p0 + 1 + (s.wrapping_sub(p0 + 1) & 63);
            best = best.min(page);
            bits &= bits - 1;
        }
        if !self.overflow.is_empty() {
            best = best.min(self.overflow_min >> 8);
        }
        debug_assert!(best != u64::MAX, "no events beyond page {p0} but len = {}", self.len);
        best
    }

    /// Moves the cursor to the start of page `p` and refiles that page's
    /// events into level 0 — overflow first (earlier pushes), then the
    /// level-1 slot (later pushes), each in its own push order.
    fn advance_to_page(&mut self, p: u64) {
        self.cursor = p << 8;
        self.l0_pos = 0;
        if self.overflow_min >> 8 <= p {
            let (l0, occ) = (&mut self.l0, &mut self.l0_occ);
            let mut new_min = u64::MAX;
            self.overflow.retain(|&(at, item)| {
                if at >> 8 == p {
                    let slot = (at & 0xff) as usize;
                    l0[slot].push(item);
                    occ[slot >> 6] |= 1 << (slot & 63);
                    false
                } else {
                    new_min = new_min.min(at);
                    true
                }
            });
            self.overflow_min = new_min;
        }
        let slot = (p & 63) as usize;
        if self.l1_occ >> slot & 1 == 1 {
            for k in 0..self.l1[slot].len() {
                let (at, item) = self.l1[slot][k];
                debug_assert_eq!(at >> 8, p, "level-1 slot holds a foreign page");
                let s0 = (at & 0xff) as usize;
                self.l0[s0].push(item);
                self.l0_occ[s0 >> 6] |= 1 << (s0 & 63);
            }
            self.l1[slot].clear();
            self.l1_occ &= !(1 << slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_a_tick() {
        let mut w = TimingWheel::new();
        w.push(5, 'a');
        w.push(5, 'b');
        w.push(5, 'c');
        assert_eq!(w.pop(), Some((5, 'a')));
        assert_eq!(w.pop(), Some((5, 'b')));
        assert_eq!(w.pop(), Some((5, 'c')));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn same_tick_push_during_drain() {
        let mut w = TimingWheel::new();
        w.push(0, 1);
        w.push(0, 2);
        assert_eq!(w.pop(), Some((0, 1)));
        // Zero-delta reschedule while the bucket is mid-drain — the
        // collapsed Baseline does this on every serial token.
        w.push(0, 3);
        assert_eq!(w.pop(), Some((0, 2)));
        assert_eq!(w.pop(), Some((0, 3)));
        assert!(w.is_empty());
    }

    #[test]
    fn cross_page_and_level1() {
        let mut w = TimingWheel::new();
        w.push(300, 'x'); // page 1 → level 1
        w.push(10, 'y'); // page 0 → level 0
        assert_eq!(w.pop(), Some((10, 'y')));
        assert_eq!(w.pop(), Some((300, 'x')));
    }

    #[test]
    fn overflow_promotes_ahead_of_level1() {
        let mut w = TimingWheel::new();
        let far = 256 * 100 + 7;
        w.push(far, 'o'); // beyond the horizon → overflow
        w.push(0, 's');
        assert_eq!(w.pop(), Some((0, 's')));
        // Cursor at 0; page 100 is now within the level-1 horizon.
        w.push(far, 'l'); // → level 1
        assert_eq!(w.pop(), Some((far, 'o')), "overflow pushes precede level-1 pushes");
        assert_eq!(w.pop(), Some((far, 'l')));
    }

    #[test]
    fn jump_over_empty_pages() {
        let mut w = TimingWheel::new();
        w.push(1_000_000, 9);
        assert_eq!(w.pop(), Some((1_000_000, 9)));
        w.push(1_000_000, 10); // same tick, after the jump
        assert_eq!(w.pop(), Some((1_000_000, 10)));
    }

    #[test]
    fn clear_rewinds_and_reuses() {
        let mut w = TimingWheel::new();
        w.push(3, 1);
        w.push(70_000, 2);
        w.clear();
        assert!(w.is_empty());
        w.push(0, 5);
        assert_eq!(w.pop(), Some((0, 5)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn pop_tick_drains_whole_bucket() {
        let mut w = TimingWheel::new();
        w.push(5, 'a');
        w.push(5, 'b');
        w.push(9, 'c');
        let mut out = Vec::new();
        assert_eq!(w.pop_tick(&mut out), Some(5));
        assert_eq!(out, ['a', 'b']);
        out.clear();
        assert_eq!(w.pop_tick(&mut out), Some(9));
        assert_eq!(out, ['c']);
        out.clear();
        assert_eq!(w.pop_tick(&mut out), None);
        assert!(w.is_empty());
    }

    #[test]
    fn pop_tick_same_tick_push_during_batch() {
        let mut w = TimingWheel::new();
        w.push(0, 1);
        let mut out = Vec::new();
        assert_eq!(w.pop_tick(&mut out), Some(0));
        assert_eq!(out, [1]);
        // Zero-delta reschedule mid-batch: the next pop_tick must report
        // tick 0 again with the late event.
        w.push(0, 2);
        out.clear();
        assert_eq!(w.pop_tick(&mut out), Some(0));
        assert_eq!(out, [2]);
    }

    #[test]
    fn pop_tick_after_partial_pop() {
        let mut w = TimingWheel::new();
        w.push(7, 'x');
        w.push(7, 'y');
        w.push(7, 'z');
        assert_eq!(w.pop(), Some((7, 'x')));
        // A batch drain mid-bucket must only yield the unpopped tail.
        let mut out = Vec::new();
        assert_eq!(w.pop_tick(&mut out), Some(7));
        assert_eq!(out, ['y', 'z']);
        assert!(w.is_empty());
    }

    #[test]
    fn pop_tick_crosses_levels() {
        let mut w = TimingWheel::new();
        let far = 256 * 100 + 7;
        w.push(far, 'o'); // overflow
        w.push(3, 's');
        let mut out = Vec::new();
        assert_eq!(w.pop_tick(&mut out), Some(3));
        w.push(far, 'l'); // level 1, later push
        out.clear();
        assert_eq!(w.pop_tick(&mut out), Some(far));
        assert_eq!(out, ['o', 'l'], "overflow pushes precede level-1 pushes");
    }

    #[test]
    fn interleaved_pages_in_order() {
        let mut w = TimingWheel::new();
        let ticks = [0u64, 255, 256, 257, 511, 512, 16_500, 70_000, 70_000];
        for (i, &t) in ticks.iter().enumerate() {
            w.push(t, i);
        }
        let mut got = Vec::new();
        while let Some((at, i)) = w.pop() {
            got.push((at, i));
        }
        let mut want: Vec<(u64, usize)> = ticks.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        want.sort_by_key(|&(t, i)| (t, i));
        assert_eq!(got, want);
    }
}

//! The Instruction Execution Unit: evaluates a fired instruction's
//! operation on its gathered mesh operands.
//!
//! Two evaluation modes mirror the dissertation's two uses of the
//! simulator:
//!
//! * **Data mode** — full Java semantics; type mismatches and arithmetic
//!   faults raise the Section 6.3 exceptions (the fabric halts and defers
//!   to the GPP). Used when co-simulating real workloads against the
//!   interpreter golden model.
//! * **Scripted mode** — the Chapter 7 measurement methodology, where
//!   branch outcomes come from a predictor script and operand *values* are
//!   irrelevant; evaluation is lenient (division by zero yields zero, type
//!   mismatches yield the zero of the producing opcode) so every
//!   instruction path can be exercised.

use javaflow_bytecode::{Insn, Opcode, Value};
use javaflow_interp::{JvmError, JvmErrorKind};

/// Pure evaluation of a non-memory, non-call instruction.
///
/// `operands[k]` is side `k+1` (side 1 = deepest). Returns the pushed
/// values in push order (all pushes of one instruction carry the same
/// producer; shuffles return multiple).
///
/// # Errors
///
/// Data-mode type and arithmetic errors ([`JvmErrorKind::TypeError`],
/// [`JvmErrorKind::DivideByZero`]).
#[allow(clippy::too_many_lines)]
pub fn eval_pure(insn: &Insn, operands: &[Value], lenient: bool) -> Result<Vec<Value>, JvmError> {
    use Opcode as O;
    let int = |k: usize| -> Result<i32, JvmError> {
        match operands.get(k) {
            Some(Value::Int(v)) => Ok(*v),
            _ if lenient => Ok(coerce_int(operands.get(k))),
            _ => Err(JvmError::bare(JvmErrorKind::TypeError)),
        }
    };
    let long = |k: usize| -> Result<i64, JvmError> {
        match operands.get(k) {
            Some(Value::Long(v)) => Ok(*v),
            _ if lenient => Ok(i64::from(coerce_int(operands.get(k)))),
            _ => Err(JvmError::bare(JvmErrorKind::TypeError)),
        }
    };
    let float = |k: usize| -> Result<f32, JvmError> {
        match operands.get(k) {
            Some(Value::Float(v)) => Ok(*v),
            _ if lenient => Ok(coerce_int(operands.get(k)) as f32),
            _ => Err(JvmError::bare(JvmErrorKind::TypeError)),
        }
    };
    let double = |k: usize| -> Result<f64, JvmError> {
        match operands.get(k) {
            Some(Value::Double(v)) => Ok(*v),
            _ if lenient => Ok(f64::from(coerce_int(operands.get(k)))),
            _ => Err(JvmError::bare(JvmErrorKind::TypeError)),
        }
    };
    let one = |v: Value| Ok(vec![v]);
    match insn.op {
        // Constants.
        O::AConstNull => one(Value::NULL),
        O::IConstM1 => one(Value::Int(-1)),
        O::IConst0 => one(Value::Int(0)),
        O::IConst1 => one(Value::Int(1)),
        O::IConst2 => one(Value::Int(2)),
        O::IConst3 => one(Value::Int(3)),
        O::IConst4 => one(Value::Int(4)),
        O::IConst5 => one(Value::Int(5)),
        O::LConst0 => one(Value::Long(0)),
        O::LConst1 => one(Value::Long(1)),
        O::FConst0 => one(Value::Float(0.0)),
        O::FConst1 => one(Value::Float(1.0)),
        O::FConst2 => one(Value::Float(2.0)),
        O::DConst0 => one(Value::Double(0.0)),
        O::DConst1 => one(Value::Double(1.0)),
        O::BiPush | O::SiPush => match insn.operand {
            javaflow_bytecode::Operand::Imm(v) => one(Value::Int(v)),
            _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
        },
        // Stack shuffles: route inputs to outputs.
        O::Pop | O::Pop2 => Ok(Vec::new()),
        O::Dup => Ok(vec![operands[0], operands[0]]),
        O::DupX1 => Ok(vec![operands[1], operands[0], operands[1]]),
        O::DupX2 => Ok(vec![operands[2], operands[0], operands[1], operands[2]]),
        O::Dup2 => Ok(vec![operands[0], operands[1], operands[0], operands[1]]),
        O::Dup2X1 => Ok(vec![operands[1], operands[2], operands[0], operands[1], operands[2]]),
        O::Dup2X2 => {
            Ok(vec![operands[2], operands[3], operands[0], operands[1], operands[2], operands[3]])
        }
        O::Swap => Ok(vec![operands[1], operands[0]]),
        // Integer arithmetic.
        O::IAdd => one(Value::Int(int(0)?.wrapping_add(int(1)?))),
        O::ISub => one(Value::Int(int(0)?.wrapping_sub(int(1)?))),
        O::IMul => one(Value::Int(int(0)?.wrapping_mul(int(1)?))),
        O::IDiv => {
            let (a, b) = (int(0)?, int(1)?);
            if b == 0 {
                if lenient {
                    return one(Value::Int(0));
                }
                return Err(JvmError::bare(JvmErrorKind::DivideByZero));
            }
            one(Value::Int(a.wrapping_div(b)))
        }
        O::IRem => {
            let (a, b) = (int(0)?, int(1)?);
            if b == 0 {
                if lenient {
                    return one(Value::Int(0));
                }
                return Err(JvmError::bare(JvmErrorKind::DivideByZero));
            }
            one(Value::Int(a.wrapping_rem(b)))
        }
        O::INeg => one(Value::Int(int(0)?.wrapping_neg())),
        O::IShl => one(Value::Int(int(0)?.wrapping_shl(int(1)? as u32 & 0x1f))),
        O::IShr => one(Value::Int(int(0)?.wrapping_shr(int(1)? as u32 & 0x1f))),
        O::IUShr => one(Value::Int(((int(0)? as u32).wrapping_shr(int(1)? as u32 & 0x1f)) as i32)),
        O::IAnd => one(Value::Int(int(0)? & int(1)?)),
        O::IOr => one(Value::Int(int(0)? | int(1)?)),
        O::IXor => one(Value::Int(int(0)? ^ int(1)?)),
        // Long arithmetic.
        O::LAdd => one(Value::Long(long(0)?.wrapping_add(long(1)?))),
        O::LSub => one(Value::Long(long(0)?.wrapping_sub(long(1)?))),
        O::LMul => one(Value::Long(long(0)?.wrapping_mul(long(1)?))),
        O::LDiv => {
            let (a, b) = (long(0)?, long(1)?);
            if b == 0 {
                if lenient {
                    return one(Value::Long(0));
                }
                return Err(JvmError::bare(JvmErrorKind::DivideByZero));
            }
            one(Value::Long(a.wrapping_div(b)))
        }
        O::LRem => {
            let (a, b) = (long(0)?, long(1)?);
            if b == 0 {
                if lenient {
                    return one(Value::Long(0));
                }
                return Err(JvmError::bare(JvmErrorKind::DivideByZero));
            }
            one(Value::Long(a.wrapping_rem(b)))
        }
        O::LNeg => one(Value::Long(long(0)?.wrapping_neg())),
        O::LShl => one(Value::Long(long(0)?.wrapping_shl(int(1)? as u32 & 0x3f))),
        O::LShr => one(Value::Long(long(0)?.wrapping_shr(int(1)? as u32 & 0x3f))),
        O::LUShr => {
            one(Value::Long(((long(0)? as u64).wrapping_shr(int(1)? as u32 & 0x3f)) as i64))
        }
        O::LAnd => one(Value::Long(long(0)? & long(1)?)),
        O::LOr => one(Value::Long(long(0)? | long(1)?)),
        O::LXor => one(Value::Long(long(0)? ^ long(1)?)),
        // Float/double arithmetic.
        O::FAdd => one(Value::Float(float(0)? + float(1)?)),
        O::FSub => one(Value::Float(float(0)? - float(1)?)),
        O::FMul => one(Value::Float(float(0)? * float(1)?)),
        O::FDiv => one(Value::Float(float(0)? / float(1)?)),
        O::FRem => one(Value::Float(float(0)? % float(1)?)),
        O::FNeg => one(Value::Float(-float(0)?)),
        O::DAdd => one(Value::Double(double(0)? + double(1)?)),
        O::DSub => one(Value::Double(double(0)? - double(1)?)),
        O::DMul => one(Value::Double(double(0)? * double(1)?)),
        O::DDiv => one(Value::Double(double(0)? / double(1)?)),
        O::DRem => one(Value::Double(double(0)? % double(1)?)),
        O::DNeg => one(Value::Double(-double(0)?)),
        // Conversions.
        O::I2L => one(Value::Long(i64::from(int(0)?))),
        O::I2F => one(Value::Float(int(0)? as f32)),
        O::I2D => one(Value::Double(f64::from(int(0)?))),
        O::L2I => one(Value::Int(long(0)? as i32)),
        O::L2F => one(Value::Float(long(0)? as f32)),
        O::L2D => one(Value::Double(long(0)? as f64)),
        O::F2I => one(Value::Int(saturate_i32(f64::from(float(0)?)))),
        O::F2L => one(Value::Long(saturate_i64(f64::from(float(0)?)))),
        O::F2D => one(Value::Double(f64::from(float(0)?))),
        O::D2I => one(Value::Int(saturate_i32(double(0)?))),
        O::D2L => one(Value::Long(saturate_i64(double(0)?))),
        O::D2F => one(Value::Float(double(0)? as f32)),
        O::I2B => one(Value::Int(i32::from(int(0)? as i8))),
        O::I2C => one(Value::Int(i32::from(int(0)? as u16))),
        O::I2S => one(Value::Int(i32::from(int(0)? as i16))),
        // Comparisons.
        O::LCmp => {
            let (a, b) = (long(0)?, long(1)?);
            one(Value::Int(match a.cmp(&b) {
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => 1,
            }))
        }
        O::FCmpL | O::FCmpG => {
            let (a, b) = (f64::from(float(0)?), f64::from(float(1)?));
            one(Value::Int(fcmp(a, b, insn.op == O::FCmpG)))
        }
        O::DCmpL | O::DCmpG => one(Value::Int(fcmp(double(0)?, double(1)?, insn.op == O::DCmpG))),
        other => Err(JvmError::bare(JvmErrorKind::Unsupported).at(
            javaflow_bytecode::MethodId(u32::MAX),
            0,
            other,
        )),
    }
}

/// Evaluates a conditional jump's taken/not-taken decision from its data
/// operands.
///
/// # Errors
///
/// `TypeError` when operands have the wrong type (never in lenient mode).
pub fn eval_condition(op: Opcode, operands: &[Value], lenient: bool) -> Result<bool, JvmError> {
    use Opcode as O;
    let int = |k: usize| -> Result<i32, JvmError> {
        match operands.get(k) {
            Some(Value::Int(v)) => Ok(*v),
            _ if lenient => Ok(coerce_int(operands.get(k))),
            _ => Err(JvmError::bare(JvmErrorKind::TypeError)),
        }
    };
    let href = |k: usize| -> Result<Option<u32>, JvmError> {
        match operands.get(k) {
            Some(Value::Ref(h)) => Ok(*h),
            _ if lenient => Ok(None),
            _ => Err(JvmError::bare(JvmErrorKind::TypeError)),
        }
    };
    Ok(match op {
        O::IfEq => int(0)? == 0,
        O::IfNe => int(0)? != 0,
        O::IfLt => int(0)? < 0,
        O::IfGe => int(0)? >= 0,
        O::IfGt => int(0)? > 0,
        O::IfLe => int(0)? <= 0,
        O::IfICmpEq => int(0)? == int(1)?,
        O::IfICmpNe => int(0)? != int(1)?,
        O::IfICmpLt => int(0)? < int(1)?,
        O::IfICmpGe => int(0)? >= int(1)?,
        O::IfICmpGt => int(0)? > int(1)?,
        O::IfICmpLe => int(0)? <= int(1)?,
        O::IfACmpEq => href(0)? == href(1)?,
        O::IfACmpNe => href(0)? != href(1)?,
        O::IfNull => href(0)?.is_none(),
        O::IfNonNull => href(0)?.is_some(),
        _ => return Err(JvmError::bare(JvmErrorKind::Unsupported)),
    })
}

fn coerce_int(v: Option<&Value>) -> i32 {
    match v {
        Some(Value::Int(x)) => *x,
        Some(Value::Long(x)) => *x as i32,
        Some(Value::Float(x)) => *x as i32,
        Some(Value::Double(x)) => *x as i32,
        Some(Value::Ref(Some(h))) => *h as i32,
        _ => 0,
    }
}

fn saturate_i32(v: f64) -> i32 {
    if v.is_nan() {
        0
    } else if v >= f64::from(i32::MAX) {
        i32::MAX
    } else if v <= f64::from(i32::MIN) {
        i32::MIN
    } else {
        v as i32
    }
}

fn saturate_i64(v: f64) -> i64 {
    if v.is_nan() {
        0
    } else if v >= i64::MAX as f64 {
        i64::MAX
    } else if v <= i64::MIN as f64 {
        i64::MIN
    } else {
        v as i64
    }
}

fn fcmp(a: f64, b: f64, greater_on_nan: bool) -> i32 {
    if a.is_nan() || b.is_nan() {
        if greater_on_nan {
            1
        } else {
            -1
        }
    } else if a < b {
        -1
    } else if a > b {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use javaflow_bytecode::Insn;

    #[test]
    fn arithmetic_matches_java() {
        let r =
            eval_pure(&Insn::simple(Opcode::IAdd), &[Value::Int(i32::MAX), Value::Int(1)], false);
        assert_eq!(r.unwrap(), vec![Value::Int(i32::MIN)]);
    }

    #[test]
    fn strict_mode_traps() {
        let e = eval_pure(&Insn::simple(Opcode::IDiv), &[Value::Int(1), Value::Int(0)], false);
        assert_eq!(e.unwrap_err().kind, JvmErrorKind::DivideByZero);
        let e = eval_pure(&Insn::simple(Opcode::IAdd), &[Value::Int(1), Value::Double(1.0)], false);
        assert_eq!(e.unwrap_err().kind, JvmErrorKind::TypeError);
    }

    #[test]
    fn lenient_mode_never_traps() {
        let r = eval_pure(&Insn::simple(Opcode::IDiv), &[Value::Int(1), Value::Int(0)], true);
        assert_eq!(r.unwrap(), vec![Value::Int(0)]);
        let r = eval_pure(&Insn::simple(Opcode::IAdd), &[Value::Int(1), Value::Double(2.0)], true);
        assert_eq!(r.unwrap(), vec![Value::Int(3)]);
    }

    #[test]
    fn shuffles_route_sides() {
        let (a, b) = (Value::Int(1), Value::Int(2));
        let r = eval_pure(&Insn::simple(Opcode::Swap), &[a, b], false).unwrap();
        assert_eq!(r, vec![b, a]);
        let r = eval_pure(&Insn::simple(Opcode::Dup), &[a], false).unwrap();
        assert_eq!(r, vec![a, a]);
        let r = eval_pure(&Insn::simple(Opcode::DupX1), &[a, b], false).unwrap();
        assert_eq!(r, vec![b, a, b]);
    }

    #[test]
    fn conditions() {
        assert!(eval_condition(Opcode::IfEq, &[Value::Int(0)], false).unwrap());
        assert!(!eval_condition(Opcode::IfEq, &[Value::Int(1)], false).unwrap());
        assert!(eval_condition(Opcode::IfICmpLt, &[Value::Int(1), Value::Int(2)], false).unwrap());
        assert!(eval_condition(Opcode::IfNull, &[Value::NULL], false).unwrap());
        assert!(eval_condition(
            Opcode::IfACmpNe,
            &[Value::Ref(Some(1)), Value::Ref(Some(2))],
            false
        )
        .unwrap());
    }

    #[test]
    fn nan_comparisons() {
        let nan = Value::Double(f64::NAN);
        let one = Value::Double(1.0);
        assert_eq!(
            eval_pure(&Insn::simple(Opcode::DCmpG), &[nan, one], false).unwrap(),
            vec![Value::Int(1)]
        );
        assert_eq!(
            eval_pure(&Insn::simple(Opcode::DCmpL), &[nan, one], false).unwrap(),
            vec![Value::Int(-1)]
        );
    }

    #[test]
    fn saturating_conversions() {
        assert_eq!(
            eval_pure(&Insn::simple(Opcode::D2I), &[Value::Double(1e300)], false).unwrap(),
            vec![Value::Int(i32::MAX)]
        );
        assert_eq!(
            eval_pure(&Insn::simple(Opcode::D2L), &[Value::Double(f64::NAN)], false).unwrap(),
            vec![Value::Long(0)]
        );
    }
}

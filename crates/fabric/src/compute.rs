//! The Instruction Execution Unit: evaluates a fired instruction's
//! operation on its gathered mesh operands.
//!
//! Two evaluation modes mirror the dissertation's two uses of the
//! simulator:
//!
//! * **Data mode** — full Java semantics; type mismatches and arithmetic
//!   faults raise the Section 6.3 exceptions (the fabric halts and defers
//!   to the GPP). Used when co-simulating real workloads against the
//!   interpreter golden model.
//! * **Scripted mode** — the Chapter 7 measurement methodology, where
//!   branch outcomes come from a predictor script and operand *values* are
//!   irrelevant; evaluation is lenient (division by zero yields zero, type
//!   mismatches yield the zero of the producing opcode) so every
//!   instruction path can be exercised.

use javaflow_bytecode::{Insn, Opcode, Value};
use javaflow_interp::{JvmError, JvmErrorKind};

/// Fixed-capacity buffer for one instruction's pushed values.
///
/// No JVM instruction pushes more than six values (`dup2_x2`), so the
/// event loop evaluates into this instead of a heap `Vec` — the core of
/// the kernel's zero-allocation steady state.
#[derive(Debug, Clone, Copy)]
pub struct OutVals {
    vals: [Value; 6],
    len: u8,
}

impl Default for OutVals {
    fn default() -> Self {
        OutVals::new()
    }
}

impl OutVals {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> OutVals {
        OutVals { vals: [Value::Int(0); 6], len: 0 }
    }

    /// Appends a pushed value.
    ///
    /// # Panics
    ///
    /// Panics past the six-value JVM maximum.
    pub fn push(&mut self, v: Value) {
        self.vals[usize::from(self.len)] = v;
        self.len += 1;
    }

    /// The values pushed so far, in push order.
    #[must_use]
    pub fn as_slice(&self) -> &[Value] {
        &self.vals[..usize::from(self.len)]
    }

    /// Empties the buffer for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    fn one(&mut self, v: Value) -> Result<(), JvmError> {
        self.push(v);
        Ok(())
    }

    fn put(&mut self, vs: &[Value]) -> Result<(), JvmError> {
        for &v in vs {
            self.push(v);
        }
        Ok(())
    }
}

/// Pure evaluation of a non-memory, non-call instruction.
///
/// `operands[k]` is side `k+1` (side 1 = deepest). Returns the pushed
/// values in push order (all pushes of one instruction carry the same
/// producer; shuffles return multiple).
///
/// # Errors
///
/// Data-mode type and arithmetic errors ([`JvmErrorKind::TypeError`],
/// [`JvmErrorKind::DivideByZero`]).
pub fn eval_pure(insn: &Insn, operands: &[Value], lenient: bool) -> Result<Vec<Value>, JvmError> {
    let mut out = OutVals::new();
    eval_into(insn, operands, lenient, &mut out)?;
    Ok(out.as_slice().to_vec())
}

/// Allocation-free form of [`eval_pure`]: clears `out` and evaluates into
/// it. Semantics (including errors) are identical.
///
/// # Errors
///
/// See [`eval_pure`].
#[allow(clippy::too_many_lines)]
pub fn eval_into(
    insn: &Insn,
    operands: &[Value],
    lenient: bool,
    out: &mut OutVals,
) -> Result<(), JvmError> {
    use Opcode as O;
    out.clear();
    let int = |k: usize| -> Result<i32, JvmError> {
        match operands.get(k) {
            Some(Value::Int(v)) => Ok(*v),
            _ if lenient => Ok(coerce_int(operands.get(k))),
            _ => Err(JvmError::bare(JvmErrorKind::TypeError)),
        }
    };
    let long = |k: usize| -> Result<i64, JvmError> {
        match operands.get(k) {
            Some(Value::Long(v)) => Ok(*v),
            _ if lenient => Ok(i64::from(coerce_int(operands.get(k)))),
            _ => Err(JvmError::bare(JvmErrorKind::TypeError)),
        }
    };
    let float = |k: usize| -> Result<f32, JvmError> {
        match operands.get(k) {
            Some(Value::Float(v)) => Ok(*v),
            _ if lenient => Ok(coerce_int(operands.get(k)) as f32),
            _ => Err(JvmError::bare(JvmErrorKind::TypeError)),
        }
    };
    let double = |k: usize| -> Result<f64, JvmError> {
        match operands.get(k) {
            Some(Value::Double(v)) => Ok(*v),
            _ if lenient => Ok(f64::from(coerce_int(operands.get(k)))),
            _ => Err(JvmError::bare(JvmErrorKind::TypeError)),
        }
    };
    match insn.op {
        // Constants.
        O::AConstNull => out.one(Value::NULL),
        O::IConstM1 => out.one(Value::Int(-1)),
        O::IConst0 => out.one(Value::Int(0)),
        O::IConst1 => out.one(Value::Int(1)),
        O::IConst2 => out.one(Value::Int(2)),
        O::IConst3 => out.one(Value::Int(3)),
        O::IConst4 => out.one(Value::Int(4)),
        O::IConst5 => out.one(Value::Int(5)),
        O::LConst0 => out.one(Value::Long(0)),
        O::LConst1 => out.one(Value::Long(1)),
        O::FConst0 => out.one(Value::Float(0.0)),
        O::FConst1 => out.one(Value::Float(1.0)),
        O::FConst2 => out.one(Value::Float(2.0)),
        O::DConst0 => out.one(Value::Double(0.0)),
        O::DConst1 => out.one(Value::Double(1.0)),
        O::BiPush | O::SiPush => match insn.operand {
            javaflow_bytecode::Operand::Imm(v) => out.one(Value::Int(v)),
            _ => Err(JvmError::bare(JvmErrorKind::Unsupported)),
        },
        // Stack shuffles: route inputs to outputs.
        O::Pop | O::Pop2 => Ok(()),
        O::Dup => out.put(&[operands[0], operands[0]]),
        O::DupX1 => out.put(&[operands[1], operands[0], operands[1]]),
        O::DupX2 => out.put(&[operands[2], operands[0], operands[1], operands[2]]),
        O::Dup2 => out.put(&[operands[0], operands[1], operands[0], operands[1]]),
        O::Dup2X1 => out.put(&[operands[1], operands[2], operands[0], operands[1], operands[2]]),
        O::Dup2X2 => {
            out.put(&[operands[2], operands[3], operands[0], operands[1], operands[2], operands[3]])
        }
        O::Swap => out.put(&[operands[1], operands[0]]),
        // Integer arithmetic.
        O::IAdd => out.one(Value::Int(int(0)?.wrapping_add(int(1)?))),
        O::ISub => out.one(Value::Int(int(0)?.wrapping_sub(int(1)?))),
        O::IMul => out.one(Value::Int(int(0)?.wrapping_mul(int(1)?))),
        O::IDiv => {
            let (a, b) = (int(0)?, int(1)?);
            if b == 0 {
                if lenient {
                    return out.one(Value::Int(0));
                }
                return Err(JvmError::bare(JvmErrorKind::DivideByZero));
            }
            out.one(Value::Int(a.wrapping_div(b)))
        }
        O::IRem => {
            let (a, b) = (int(0)?, int(1)?);
            if b == 0 {
                if lenient {
                    return out.one(Value::Int(0));
                }
                return Err(JvmError::bare(JvmErrorKind::DivideByZero));
            }
            out.one(Value::Int(a.wrapping_rem(b)))
        }
        O::INeg => out.one(Value::Int(int(0)?.wrapping_neg())),
        O::IShl => out.one(Value::Int(int(0)?.wrapping_shl(int(1)? as u32 & 0x1f))),
        O::IShr => out.one(Value::Int(int(0)?.wrapping_shr(int(1)? as u32 & 0x1f))),
        O::IUShr => {
            out.one(Value::Int(((int(0)? as u32).wrapping_shr(int(1)? as u32 & 0x1f)) as i32))
        }
        O::IAnd => out.one(Value::Int(int(0)? & int(1)?)),
        O::IOr => out.one(Value::Int(int(0)? | int(1)?)),
        O::IXor => out.one(Value::Int(int(0)? ^ int(1)?)),
        // Long arithmetic.
        O::LAdd => out.one(Value::Long(long(0)?.wrapping_add(long(1)?))),
        O::LSub => out.one(Value::Long(long(0)?.wrapping_sub(long(1)?))),
        O::LMul => out.one(Value::Long(long(0)?.wrapping_mul(long(1)?))),
        O::LDiv => {
            let (a, b) = (long(0)?, long(1)?);
            if b == 0 {
                if lenient {
                    return out.one(Value::Long(0));
                }
                return Err(JvmError::bare(JvmErrorKind::DivideByZero));
            }
            out.one(Value::Long(a.wrapping_div(b)))
        }
        O::LRem => {
            let (a, b) = (long(0)?, long(1)?);
            if b == 0 {
                if lenient {
                    return out.one(Value::Long(0));
                }
                return Err(JvmError::bare(JvmErrorKind::DivideByZero));
            }
            out.one(Value::Long(a.wrapping_rem(b)))
        }
        O::LNeg => out.one(Value::Long(long(0)?.wrapping_neg())),
        O::LShl => out.one(Value::Long(long(0)?.wrapping_shl(int(1)? as u32 & 0x3f))),
        O::LShr => out.one(Value::Long(long(0)?.wrapping_shr(int(1)? as u32 & 0x3f))),
        O::LUShr => {
            out.one(Value::Long(((long(0)? as u64).wrapping_shr(int(1)? as u32 & 0x3f)) as i64))
        }
        O::LAnd => out.one(Value::Long(long(0)? & long(1)?)),
        O::LOr => out.one(Value::Long(long(0)? | long(1)?)),
        O::LXor => out.one(Value::Long(long(0)? ^ long(1)?)),
        // Float/double arithmetic.
        O::FAdd => out.one(Value::Float(float(0)? + float(1)?)),
        O::FSub => out.one(Value::Float(float(0)? - float(1)?)),
        O::FMul => out.one(Value::Float(float(0)? * float(1)?)),
        O::FDiv => out.one(Value::Float(float(0)? / float(1)?)),
        O::FRem => out.one(Value::Float(float(0)? % float(1)?)),
        O::FNeg => out.one(Value::Float(-float(0)?)),
        O::DAdd => out.one(Value::Double(double(0)? + double(1)?)),
        O::DSub => out.one(Value::Double(double(0)? - double(1)?)),
        O::DMul => out.one(Value::Double(double(0)? * double(1)?)),
        O::DDiv => out.one(Value::Double(double(0)? / double(1)?)),
        O::DRem => out.one(Value::Double(double(0)? % double(1)?)),
        O::DNeg => out.one(Value::Double(-double(0)?)),
        // Conversions.
        O::I2L => out.one(Value::Long(i64::from(int(0)?))),
        O::I2F => out.one(Value::Float(int(0)? as f32)),
        O::I2D => out.one(Value::Double(f64::from(int(0)?))),
        O::L2I => out.one(Value::Int(long(0)? as i32)),
        O::L2F => out.one(Value::Float(long(0)? as f32)),
        O::L2D => out.one(Value::Double(long(0)? as f64)),
        O::F2I => out.one(Value::Int(saturate_i32(f64::from(float(0)?)))),
        O::F2L => out.one(Value::Long(saturate_i64(f64::from(float(0)?)))),
        O::F2D => out.one(Value::Double(f64::from(float(0)?))),
        O::D2I => out.one(Value::Int(saturate_i32(double(0)?))),
        O::D2L => out.one(Value::Long(saturate_i64(double(0)?))),
        O::D2F => out.one(Value::Float(double(0)? as f32)),
        O::I2B => out.one(Value::Int(i32::from(int(0)? as i8))),
        O::I2C => out.one(Value::Int(i32::from(int(0)? as u16))),
        O::I2S => out.one(Value::Int(i32::from(int(0)? as i16))),
        // Comparisons.
        O::LCmp => {
            let (a, b) = (long(0)?, long(1)?);
            out.one(Value::Int(match a.cmp(&b) {
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => 1,
            }))
        }
        O::FCmpL | O::FCmpG => {
            let (a, b) = (f64::from(float(0)?), f64::from(float(1)?));
            out.one(Value::Int(fcmp(a, b, insn.op == O::FCmpG)))
        }
        O::DCmpL | O::DCmpG => {
            out.one(Value::Int(fcmp(double(0)?, double(1)?, insn.op == O::DCmpG)))
        }
        other => Err(JvmError::bare(JvmErrorKind::Unsupported).at(
            javaflow_bytecode::MethodId(u32::MAX),
            0,
            other,
        )),
    }
}

/// Evaluates a conditional jump's taken/not-taken decision from its data
/// operands.
///
/// # Errors
///
/// `TypeError` when operands have the wrong type (never in lenient mode).
pub fn eval_condition(op: Opcode, operands: &[Value], lenient: bool) -> Result<bool, JvmError> {
    use Opcode as O;
    let int = |k: usize| -> Result<i32, JvmError> {
        match operands.get(k) {
            Some(Value::Int(v)) => Ok(*v),
            _ if lenient => Ok(coerce_int(operands.get(k))),
            _ => Err(JvmError::bare(JvmErrorKind::TypeError)),
        }
    };
    let href = |k: usize| -> Result<Option<u32>, JvmError> {
        match operands.get(k) {
            Some(Value::Ref(h)) => Ok(*h),
            _ if lenient => Ok(None),
            _ => Err(JvmError::bare(JvmErrorKind::TypeError)),
        }
    };
    Ok(match op {
        O::IfEq => int(0)? == 0,
        O::IfNe => int(0)? != 0,
        O::IfLt => int(0)? < 0,
        O::IfGe => int(0)? >= 0,
        O::IfGt => int(0)? > 0,
        O::IfLe => int(0)? <= 0,
        O::IfICmpEq => int(0)? == int(1)?,
        O::IfICmpNe => int(0)? != int(1)?,
        O::IfICmpLt => int(0)? < int(1)?,
        O::IfICmpGe => int(0)? >= int(1)?,
        O::IfICmpGt => int(0)? > int(1)?,
        O::IfICmpLe => int(0)? <= int(1)?,
        O::IfACmpEq => href(0)? == href(1)?,
        O::IfACmpNe => href(0)? != href(1)?,
        O::IfNull => href(0)?.is_none(),
        O::IfNonNull => href(0)?.is_some(),
        _ => return Err(JvmError::bare(JvmErrorKind::Unsupported)),
    })
}

fn coerce_int(v: Option<&Value>) -> i32 {
    match v {
        Some(Value::Int(x)) => *x,
        Some(Value::Long(x)) => *x as i32,
        Some(Value::Float(x)) => *x as i32,
        Some(Value::Double(x)) => *x as i32,
        Some(Value::Ref(Some(h))) => *h as i32,
        _ => 0,
    }
}

fn saturate_i32(v: f64) -> i32 {
    if v.is_nan() {
        0
    } else if v >= f64::from(i32::MAX) {
        i32::MAX
    } else if v <= f64::from(i32::MIN) {
        i32::MIN
    } else {
        v as i32
    }
}

fn saturate_i64(v: f64) -> i64 {
    if v.is_nan() {
        0
    } else if v >= i64::MAX as f64 {
        i64::MAX
    } else if v <= i64::MIN as f64 {
        i64::MIN
    } else {
        v as i64
    }
}

fn fcmp(a: f64, b: f64, greater_on_nan: bool) -> i32 {
    if a.is_nan() || b.is_nan() {
        if greater_on_nan {
            1
        } else {
            -1
        }
    } else if a < b {
        -1
    } else if a > b {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use javaflow_bytecode::Insn;

    #[test]
    fn arithmetic_matches_java() {
        let r =
            eval_pure(&Insn::simple(Opcode::IAdd), &[Value::Int(i32::MAX), Value::Int(1)], false);
        assert_eq!(r.unwrap(), vec![Value::Int(i32::MIN)]);
    }

    #[test]
    fn strict_mode_traps() {
        let e = eval_pure(&Insn::simple(Opcode::IDiv), &[Value::Int(1), Value::Int(0)], false);
        assert_eq!(e.unwrap_err().kind, JvmErrorKind::DivideByZero);
        let e = eval_pure(&Insn::simple(Opcode::IAdd), &[Value::Int(1), Value::Double(1.0)], false);
        assert_eq!(e.unwrap_err().kind, JvmErrorKind::TypeError);
    }

    #[test]
    fn lenient_mode_never_traps() {
        let r = eval_pure(&Insn::simple(Opcode::IDiv), &[Value::Int(1), Value::Int(0)], true);
        assert_eq!(r.unwrap(), vec![Value::Int(0)]);
        let r = eval_pure(&Insn::simple(Opcode::IAdd), &[Value::Int(1), Value::Double(2.0)], true);
        assert_eq!(r.unwrap(), vec![Value::Int(3)]);
    }

    #[test]
    fn shuffles_route_sides() {
        let (a, b) = (Value::Int(1), Value::Int(2));
        let r = eval_pure(&Insn::simple(Opcode::Swap), &[a, b], false).unwrap();
        assert_eq!(r, vec![b, a]);
        let r = eval_pure(&Insn::simple(Opcode::Dup), &[a], false).unwrap();
        assert_eq!(r, vec![a, a]);
        let r = eval_pure(&Insn::simple(Opcode::DupX1), &[a, b], false).unwrap();
        assert_eq!(r, vec![b, a, b]);
    }

    #[test]
    fn eval_into_reuses_buffer() {
        let mut out = OutVals::new();
        let (a, b) = (Value::Int(7), Value::Int(9));
        eval_into(&Insn::simple(Opcode::Dup2X2), &[a, b, a, b], false, &mut out).unwrap();
        assert_eq!(out.as_slice(), &[a, b, a, b, a, b]);
        eval_into(&Insn::simple(Opcode::IAdd), &[a, b], false, &mut out).unwrap();
        assert_eq!(out.as_slice(), &[Value::Int(16)]);
    }

    #[test]
    fn conditions() {
        assert!(eval_condition(Opcode::IfEq, &[Value::Int(0)], false).unwrap());
        assert!(!eval_condition(Opcode::IfEq, &[Value::Int(1)], false).unwrap());
        assert!(eval_condition(Opcode::IfICmpLt, &[Value::Int(1), Value::Int(2)], false).unwrap());
        assert!(eval_condition(Opcode::IfNull, &[Value::NULL], false).unwrap());
        assert!(eval_condition(
            Opcode::IfACmpNe,
            &[Value::Ref(Some(1)), Value::Ref(Some(2))],
            false
        )
        .unwrap());
    }

    #[test]
    fn nan_comparisons() {
        let nan = Value::Double(f64::NAN);
        let one = Value::Double(1.0);
        assert_eq!(
            eval_pure(&Insn::simple(Opcode::DCmpG), &[nan, one], false).unwrap(),
            vec![Value::Int(1)]
        );
        assert_eq!(
            eval_pure(&Insn::simple(Opcode::DCmpL), &[nan, one], false).unwrap(),
            vec![Value::Int(-1)]
        );
    }

    #[test]
    fn saturating_conversions() {
        assert_eq!(
            eval_pure(&Insn::simple(Opcode::D2I), &[Value::Double(1e300)], false).unwrap(),
            vec![Value::Int(i32::MAX)]
        );
        assert_eq!(
            eval_pure(&Insn::simple(Opcode::D2L), &[Value::Double(f64::NAN)], false).unwrap(),
            vec![Value::Long(0)]
        );
    }
}

//! Branch decision sources: real data or the Chapter 7 predictor script.
//!
//! "The Branch/Jump predictions applied to the simulation was not complex
//! and used consistently across all 6 configurations. For all forward
//! jumps, the taken/not-taken ratio was 50%. BP1 started with the first
//! forward jump taken while BP2 started with the first jump not taken. In
//! all cases back jumps had a taken percentage of 90%": the first nine
//! executions of a back jump are taken, the tenth falls through.

/// Where conditional-jump outcomes come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchMode {
    /// Evaluate the real operand data (co-simulation with the golden model).
    Data,
    /// Scripted predictor, first forward jump taken (Chapter 7 "BP-1").
    Bp1,
    /// Scripted predictor, first forward jump not taken ("BP-2").
    Bp2,
}

impl BranchMode {
    /// Whether evaluation should be lenient (scripted runs carry dummy
    /// data).
    #[must_use]
    pub fn is_scripted(self) -> bool {
        !matches!(self, BranchMode::Data)
    }
}

/// Per-site branch outcome oracle.
///
/// Sites are dense instruction addresses, so the state lives in flat,
/// lazily grown vectors instead of hash maps — [`BranchOracle::reset`]
/// rewinds the script while keeping the capacity, so a simulation arena
/// can reuse one oracle across runs without allocating.
#[derive(Debug)]
pub struct BranchOracle {
    mode: BranchMode,
    /// Next forward outcome per jump site: 0 = unseen, 1 = next taken,
    /// 2 = next not-taken (alternates).
    fwd: Vec<u8>,
    /// Executions seen per back-jump site.
    back: Vec<u32>,
}

impl BranchOracle {
    /// A fresh oracle for the given mode.
    #[must_use]
    pub fn new(mode: BranchMode) -> BranchOracle {
        BranchOracle { mode, fwd: Vec::new(), back: Vec::new() }
    }

    /// The oracle's mode.
    #[must_use]
    pub fn mode(&self) -> BranchMode {
        self.mode
    }

    /// Rewinds the script to its start for `mode`, keeping allocations.
    pub fn reset(&mut self, mode: BranchMode) {
        self.mode = mode;
        self.fwd.clear();
        self.back.clear();
    }

    /// Decides a conditional jump at `site`. In data mode the caller's
    /// evaluated `data_decision` wins; in scripted modes the script does.
    pub fn decide(&mut self, site: u32, is_back: bool, data_decision: bool) -> bool {
        match self.mode {
            BranchMode::Data => data_decision,
            BranchMode::Bp1 | BranchMode::Bp2 => {
                let site = site as usize;
                if is_back {
                    if site >= self.back.len() {
                        self.back.resize(site + 1, 0);
                    }
                    let n = &mut self.back[site];
                    let taken = *n % 10 != 9; // 9 of 10 taken
                    *n += 1;
                    taken
                } else {
                    if site >= self.fwd.len() {
                        self.fwd.resize(site + 1, 0);
                    }
                    let next = &mut self.fwd[site];
                    if *next == 0 {
                        *next = if self.mode == BranchMode::Bp1 { 1 } else { 2 };
                    }
                    let taken = *next == 1;
                    *next = if taken { 2 } else { 1 };
                    taken
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bp1_alternates_starting_taken() {
        let mut o = BranchOracle::new(BranchMode::Bp1);
        let seq: Vec<bool> = (0..4).map(|_| o.decide(5, false, false)).collect();
        assert_eq!(seq, vec![true, false, true, false]);
    }

    #[test]
    fn bp2_alternates_starting_not_taken() {
        let mut o = BranchOracle::new(BranchMode::Bp2);
        let seq: Vec<bool> = (0..4).map(|_| o.decide(5, false, true)).collect();
        assert_eq!(seq, vec![false, true, false, true]);
    }

    #[test]
    fn back_jumps_taken_nine_of_ten() {
        let mut o = BranchOracle::new(BranchMode::Bp1);
        let seq: Vec<bool> = (0..20).map(|_| o.decide(9, true, false)).collect();
        assert_eq!(seq.iter().filter(|t| **t).count(), 18);
        assert!(!seq[9]);
        assert!(!seq[19]);
    }

    #[test]
    fn sites_independent() {
        let mut o = BranchOracle::new(BranchMode::Bp1);
        assert!(o.decide(1, false, false));
        assert!(o.decide(2, false, false)); // fresh site starts taken again
    }

    #[test]
    fn reset_rewinds_the_script() {
        let mut o = BranchOracle::new(BranchMode::Bp1);
        assert!(o.decide(3, false, false));
        assert!(!o.decide(3, false, false));
        o.reset(BranchMode::Bp2);
        assert!(!o.decide(3, false, false), "reset restarts the BP2 alternation");
        assert!(o.decide(3, false, false));
    }

    #[test]
    fn data_mode_uses_data() {
        let mut o = BranchOracle::new(BranchMode::Data);
        assert!(o.decide(1, false, true));
        assert!(!o.decide(1, true, false));
        assert!(!BranchMode::Data.is_scripted());
        assert!(BranchMode::Bp2.is_scripted());
    }
}

//! Serial-network messages: commands (Figure 14) and tokens (Figure 23).

use javaflow_bytecode::{MethodId, Value};

/// The execution tokens of the serial token bundle (Figure 23).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Token {
    /// The "rabbit" that leads the bundle and translates dataflow execution
    /// back to control-flow order.
    Head,
    /// Memory-ordering token; the payload is the sequential order number
    /// incremented by each ordered storage operation.
    Memory(u64),
    /// A local register's current value, propagated down the method.
    Register {
        /// Register number.
        reg: u16,
        /// Current value.
        value: Value,
    },
    /// Ends the bundle; never passes an unfired instruction and acts as the
    /// barrier for back jumps and returns.
    Tail,
}

/// Serial message destinations. Most traffic addresses `Next`/`Previous`;
/// control-flow changes use explicit linear addresses that intervening
/// nodes ignore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SerialDest {
    /// The next instruction in linear order.
    Next,
    /// The previous instruction (reverse ordered network).
    Previous,
    /// An explicit linear address (taken jumps, re-injection).
    Linear(u32),
}

/// The network command set (Figure 14), carried by serial messages.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Command {
    /// Load an instruction into the first matching free node (Figure 20).
    LoadInstruction,
    /// Free all nodes of a method.
    UnloadInstruction,
    /// Phase-1 resolution: teach nodes their control-flow sources.
    SendAddressesDown,
    /// Phase-2 resolution: emit one need per pop up the network.
    SendNeedsUp,
    /// An execution token.
    Token(Token),
    /// Exception notification to the GPP.
    Exception,
    /// Stop execution for garbage collection or management.
    Quiesce,
    /// Re-resolve constant-pool pointers after garbage collection.
    ResetAddress,
    /// Continuation of a payload wider than one transfer.
    SubsequentMessage,
}

/// Thread/class/method/instance tag carried by every message so only the
/// owning method's nodes react (Section 6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstanceId {
    /// Executing thread.
    pub thread: u16,
    /// Deployed method.
    pub method: MethodId,
}

/// A serial-network message.
#[derive(Debug, Clone, PartialEq)]
pub struct SerialMessage {
    /// Destination.
    pub to: SerialDest,
    /// Command payload.
    pub command: Command,
    /// Owning instance.
    pub instance: InstanceId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_carry_typed_payloads() {
        let t = Token::Register { reg: 3, value: Value::Double(1.5) };
        match t {
            Token::Register { reg, value } => {
                assert_eq!(reg, 3);
                assert_eq!(value, Value::Double(1.5));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn message_construction() {
        let m = SerialMessage {
            to: SerialDest::Linear(7),
            command: Command::Token(Token::Head),
            instance: InstanceId { thread: 0, method: MethodId(4) },
        };
        assert_eq!(m.to, SerialDest::Linear(7));
        assert!(matches!(m.command, Command::Token(Token::Head)));
    }
}

//! The routed dataflow graph, plus the Section 6.4 enhancements evaluated
//! as ablations: **instruction folding** (pure stack-move nodes declare
//! themselves void and rewire their producers to their consumers) and the
//! **TRIPS-style fanout limit** (at most two consumer addresses per
//! instruction, extra consumers served through inserted move/relay nodes —
//! the restriction whose cost TRIPS measured at ~20% extra instructions).

use javaflow_bytecode::{Method, Opcode};

use crate::{Placement, Resolved, Sink};

/// A synthetic move/relay node inserted by the fanout limiter.
#[derive(Debug, Clone)]
pub struct Relay {
    /// Mesh coordinates (placed on the producer's node, like TRIPS move
    /// instructions sharing the producer's frame).
    pub coords: (u32, u32),
    /// Downstream sinks; `consumer >= n` addresses another relay.
    pub sinks: Vec<Sink>,
}

/// The dataflow routing graph the execution engine follows.
///
/// Sink addresses `0..n` are instructions; `n..` address relays
/// (`consumer - n` indexes [`DataflowGraph::relays`]).
#[derive(Debug, Clone)]
pub struct DataflowGraph {
    /// Number of real instructions.
    pub n: usize,
    /// Per-producer target arrays.
    pub consumers: Vec<Vec<Sink>>,
    /// Whether each instruction participates in execution (folded nodes
    /// are inert pass-throughs).
    pub active: Vec<bool>,
    /// Inserted relay nodes (fanout ablation).
    pub relays: Vec<Relay>,
}

impl DataflowGraph {
    /// Builds the unmodified graph from a resolution result.
    #[must_use]
    pub fn from_resolved(resolved: &Resolved) -> DataflowGraph {
        let n = resolved.consumers.len();
        DataflowGraph {
            n,
            consumers: resolved.consumers.clone(),
            active: vec![true; n],
            relays: Vec::new(),
        }
    }

    /// Number of folded (inactive) instructions.
    #[must_use]
    pub fn folded(&self) -> usize {
        self.active.iter().filter(|a| !**a).count()
    }

    /// For a shuffle opcode, maps each push index (bottom-based) to the
    /// operand index it routes; `None` for non-foldable opcodes.
    fn shuffle_routing(op: Opcode) -> Option<&'static [usize]> {
        match op {
            Opcode::Pop | Opcode::Pop2 => Some(&[]),
            Opcode::Dup => Some(&[0, 0]),
            Opcode::DupX1 => Some(&[1, 0, 1]),
            Opcode::DupX2 => Some(&[2, 0, 1, 2]),
            Opcode::Dup2 => Some(&[0, 1, 0, 1]),
            Opcode::Dup2X1 => Some(&[1, 2, 0, 1, 2]),
            Opcode::Dup2X2 => Some(&[2, 3, 0, 1, 2, 3]),
            Opcode::Swap => Some(&[1, 0]),
            _ => None,
        }
    }

    /// Folds pure stack-move instructions (Section 6.4): each foldable node
    /// sends "messages up to their producer nodes to change the producer
    /// node targets to the targets of the redundant nodes", then frees its
    /// Instruction Node. Returns the number of nodes folded.
    pub fn fold_moves(&mut self, method: &Method) -> usize {
        let mut folded = 0;
        // Iterate to a fixpoint so chains of shuffles fold through.
        loop {
            let mut changed = false;
            for m in 0..self.n {
                if !self.active[m] {
                    continue;
                }
                let Some(routing) = DataflowGraph::shuffle_routing(method.code[m].op) else {
                    continue;
                };
                // Producers feeding node m, per operand side (1-based).
                let mut feeders: Vec<Vec<(usize, u16)>> =
                    vec![Vec::new(); usize::from(method.code[m].pops())];
                for p in 0..self.consumers.len() {
                    for s in &self.consumers[p] {
                        if s.consumer as usize == m {
                            feeders[usize::from(s.side) - 1].push((p, s.out));
                        }
                    }
                }
                // Rewire: every sink of m moves to the producers of the
                // operand that m would have routed there.
                let sinks = self.consumers[m].clone();
                for sink in &sinks {
                    let src_side = routing[usize::from(sink.out)];
                    for &(p, p_out) in &feeders[src_side] {
                        let new = Sink { consumer: sink.consumer, side: sink.side, out: p_out };
                        if !self.consumers[p].contains(&new) {
                            self.consumers[p].push(new);
                        }
                    }
                }
                // Drop all edges into and out of m.
                self.consumers[m].clear();
                for p in 0..self.consumers.len() {
                    self.consumers[p].retain(|s| s.consumer as usize != m);
                }
                self.active[m] = false;
                folded += 1;
                changed = true;
            }
            if !changed {
                break;
            }
        }
        folded
    }

    /// Imposes a TRIPS-style fanout limit: any output of a producer with
    /// more than `limit` sinks is served through a chain of relay (move)
    /// nodes. Returns the number of relays inserted.
    ///
    /// # Panics
    ///
    /// Panics if `limit < 2` (a chain needs one forward slot plus one
    /// relay slot).
    pub fn limit_fanout(&mut self, limit: usize, placement: &Placement) -> usize {
        assert!(limit >= 2, "fanout limit must be at least 2");
        let before = self.relays.len();
        for p in 0..self.n {
            if self.consumers[p].is_empty() {
                continue;
            }
            let coords = placement.coords[p];
            // Group the producer's sinks by push index; each group fans out
            // independently.
            let mut groups: std::collections::BTreeMap<u16, Vec<Sink>> =
                std::collections::BTreeMap::new();
            for s in &self.consumers[p] {
                groups.entry(s.out).or_default().push(*s);
            }
            let mut new_sinks = Vec::new();
            for (out, mut group) in groups {
                while group.len() > limit {
                    // Keep `limit - 1` direct sinks; push the rest behind a
                    // relay that becomes the `limit`-th target.
                    let rest: Vec<Sink> = group.split_off(limit - 1);
                    let relay_id = (self.n + self.relays.len()) as u32;
                    self.relays.push(Relay {
                        coords,
                        sinks: rest.into_iter().map(|s| Sink { out: 0, ..s }).collect(),
                    });
                    group.push(Sink { consumer: relay_id, side: 0, out });
                }
                new_sinks.extend(group);
            }
            self.consumers[p] = new_sinks;
        }
        // Relays themselves may exceed the limit; chain them too.
        let mut r = 0;
        while r < self.relays.len() {
            while self.relays[r].sinks.len() > limit {
                let rest: Vec<Sink> = self.relays[r].sinks.split_off(limit - 1);
                let relay_id = (self.n + self.relays.len()) as u32;
                let coords = self.relays[r].coords;
                self.relays.push(Relay { coords, sinks: rest });
                self.relays[r].sinks.push(Sink { consumer: relay_id, side: 0, out: 0 });
            }
            r += 1;
        }
        self.relays.len() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{place, resolve, FabricConfig};
    use javaflow_bytecode::asm::assemble;

    fn graph_of(src: &str) -> (Method, DataflowGraph, Placement) {
        let p = assemble(src).unwrap();
        let (_, m) = p.methods().next().map(|(i, mm)| (i, mm.clone())).unwrap();
        let r = resolve(&m).unwrap();
        let pl = place(&m, &FabricConfig::compact2()).unwrap();
        (m, DataflowGraph::from_resolved(&r), pl)
    }

    use javaflow_bytecode::Method;

    #[test]
    fn fold_dup_rewires_producer() {
        let (m, mut g, _) = graph_of(
            ".method f args=0 returns=true locals=0
               iconst_3
               dup
               imul
               ireturn
             .end",
        );
        let folded = g.fold_moves(&m);
        assert_eq!(folded, 1);
        assert!(!g.active[1]);
        // iconst_3 now feeds both imul sides directly.
        let sinks: Vec<(u32, u16)> = g.consumers[0].iter().map(|s| (s.consumer, s.side)).collect();
        assert!(sinks.contains(&(2, 1)));
        assert!(sinks.contains(&(2, 2)));
        assert!(g.consumers[1].is_empty());
    }

    #[test]
    fn fold_swap_crosses_sides() {
        let (m, mut g, _) = graph_of(
            ".method f args=0 returns=true locals=0
               iconst_1
               iconst_2
               swap
               isub
               ireturn
             .end",
        );
        g.fold_moves(&m);
        // After swap folds: iconst_1 (@0) feeds isub side 2, iconst_2 (@1)
        // feeds isub side 1 (operands crossed).
        assert!(g.consumers[0].iter().any(|s| s.consumer == 3 && s.side == 2));
        assert!(g.consumers[1].iter().any(|s| s.consumer == 3 && s.side == 1));
    }

    #[test]
    fn fold_pop_drops_edge() {
        let (m, mut g, _) = graph_of(
            ".method f args=0 returns=false locals=0
               iconst_1
               pop
               return
             .end",
        );
        g.fold_moves(&m);
        assert!(g.consumers[0].is_empty());
        assert!(!g.active[1]);
    }

    #[test]
    fn fanout_limit_inserts_relays() {
        // iconst feeds dup; after folding dup+dup2 chains the constant has
        // fanout 4; limiting to 2 must insert relays.
        let (m, mut g, pl) = graph_of(
            ".method f args=0 returns=true locals=0
               iconst_3
               dup
               dup2
               iadd
               iadd
               iadd
               ireturn
             .end",
        );
        g.fold_moves(&m);
        let fan: usize = g.consumers[0].len();
        assert!(fan > 2, "folded constant fanout {fan}");
        let relays = g.limit_fanout(2, &pl);
        assert!(relays >= 1);
        assert!(g.consumers[0].len() <= 2);
        for r in &g.relays {
            assert!(r.sinks.len() <= 2);
        }
    }

    #[test]
    fn chain_of_shuffles_folds_through() {
        let (m, mut g, _) = graph_of(
            ".method f args=0 returns=true locals=0
               iconst_1
               iconst_2
               swap
               swap
               isub
               ireturn
             .end",
        );
        let folded = g.fold_moves(&m);
        assert_eq!(folded, 2);
        // Double swap restores order: @0 → side 1, @1 → side 2.
        assert!(g.consumers[0].iter().any(|s| s.consumer == 4 && s.side == 1));
        assert!(g.consumers[1].iter().any(|s| s.consumer == 4 && s.side == 2));
    }
}

//! Block compilation: ahead-of-time schedules for the dataflow walk.
//!
//! Scripted runs (`BranchMode::Bp1`/`Bp2` with the stub GPP) have a
//! property the fast-forward pass only exploits hop-by-hop: the *entire*
//! timing and control flow of a run is independent of the argument
//! values. Branch decisions come from the oracle scripts, lenient
//! evaluation never raises, and the stub GPP serves every request with a
//! constant-latency dummy — so two runs of the same `(method,
//! configuration, branch script, budget, args)` tuple are identical
//! event for event.
//!
//! The compiler turns that property into an executable artifact. One
//! instrumented fast-forward run records, per *basic block* (the bundle
//! passes delimited by backward-jump re-injections), the dynamic firing
//! order and the closed-form accumulation of every delay and counter the
//! run books — then deduplicates repeated block instances (loop
//! iterations with the same schedule collapse onto one block) and
//! run-length-encodes the block trace, which is exactly the
//! branch-outcome table the oracle produced. Replaying a
//! [`CompiledMethod`] walks whole blocks per step instead of popping
//! events: each schedule entry adds its block's precomputed offsets
//! (ticks, messages, fires per timing class, busy-time accumulators)
//! scaled by the repeat count, and marks the block's firing order in the
//! coverage slab. The result is bit-identical to the interpreted walk it
//! was recorded from — the differential suite in
//! `crates/fabric/tests/ff_differential.rs` pins compiled vs.
//! fast-forward vs. naive three ways.
//!
//! Eligibility mirrors [`crate::ExecParams::fast_forward`] and adds the
//! scripted-mode requirement: an order-free interconnect
//! ([`crate::NetKind::Ideal`]), the stub GPP, a scripted branch mode, and
//! no active trace sink. Ineligible requests fall back to the
//! interpreted walk, and an active sink gets a [`crate::TraceKind::Warn`]
//! event naming the reason (`WARN_COMPILE_*` — see [`crate::trace`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use javaflow_bytecode::Value;

use crate::{BranchMode, FabricConfig, Outcome};

/// One compiled basic block: the counter and delay offsets one bundle
/// pass over the block accumulates, plus its dynamic firing order.
///
/// Every field is a *delta* against the state at block entry, so a
/// schedule entry replays as `total += block * count` — the closed-form
/// fold of what the event loop would have booked one pop at a time.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct Block {
    /// Serial ticks this block spans.
    pub(crate) ticks: u64,
    /// Scheduler events the recorded walk popped.
    pub(crate) events: u64,
    /// Deliveries the recorded walk fast-forwarded over.
    pub(crate) events_skipped: u64,
    /// Instructions fired.
    pub(crate) executed: u64,
    /// Relay firings.
    pub(crate) relay_fires: u64,
    /// Serial messages sent.
    pub(crate) serial_msgs: u64,
    /// Mesh messages sent.
    pub(crate) mesh_msgs: u64,
    /// Timing-wheel pushes.
    pub(crate) wheel_pushes: u64,
    /// Ticks with ≥ 1 instruction executing.
    pub(crate) acc_ge1: u64,
    /// Ticks with ≥ 2 instructions executing.
    pub(crate) acc_ge2: u64,
    /// Fires per timing class (Table 17).
    pub(crate) class_fires: [u64; 4],
    /// The block's firing order: instruction addresses in dynamic fire
    /// order (replay marks these in the coverage slab).
    pub(crate) fired: Vec<u32>,
}

/// A method lowered into block schedules for one `(configuration, branch
/// script, budget, fast-forward flag, args)` tuple.
///
/// Produced by the instrumented recording run the first time an eligible
/// execution misses the [`CompiledCache`]; replayed (allocation-free) by
/// every later execution with the same key. See the module docs for the
/// layout.
#[derive(Debug)]
pub struct CompiledMethod {
    /// Deduplicated blocks, indexed by the schedule entries.
    pub(crate) blocks: Vec<Block>,
    /// Run-length-encoded block trace: `(block index, repeat count)` in
    /// execution order — the resolved branch-outcome table.
    pub(crate) schedule: Vec<(u32, u32)>,
    /// How the recorded run ended (exact for the keyed `args`; scripted
    /// stub runs can only return, time out, or deadlock).
    pub(crate) outcome: Outcome,
    /// Timing-wheel high-water mark of the recorded run (a maximum, not
    /// an additive counter, so it is carried whole).
    pub(crate) wheel_high_water: u64,
    /// Coverage denominator: active static nodes of the routing graph.
    pub(crate) active_static: usize,
    /// Serial ticks per mesh cycle under the compiled configuration.
    pub(crate) mesh_ticks: u64,
}

impl CompiledMethod {
    /// Number of deduplicated blocks in the artifact.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total block instances the schedule replays (loop iterations
    /// included) — `≥ block_count()` whenever deduplication collapsed
    /// repeated iterations.
    #[must_use]
    pub fn schedule_instances(&self) -> u64 {
        self.schedule.iter().map(|&(_, n)| u64::from(n)).sum()
    }
}

/// The per-method artifact cache, shared through [`crate::PreparedMethod`]
/// exactly like the decoded dispatch tables: one `Arc` serves every
/// placement, sweep, and server request over the method. Entries are
/// keyed by everything that shapes the recorded schedule; the handful of
/// live keys (six configurations × two branch scripts in a sweep) makes
/// a linear scan cheaper than hashing the configuration.
#[derive(Debug, Default)]
pub struct CompiledCache {
    entries: Mutex<Vec<(CompileKey, Arc<CompiledMethod>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Everything a recorded schedule depends on.
#[derive(Debug)]
struct CompileKey {
    config: FabricConfig,
    mode: BranchMode,
    max_mesh_cycles: u64,
    fast_forward: bool,
    args: Vec<Value>,
}

impl CompiledCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> CompiledCache {
        CompiledCache::default()
    }

    /// Cached artifacts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().map_or(0, |e| e.len())
    }

    /// Whether no artifact has been compiled yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found an artifact (replays).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Relaxed)
    }

    /// Lookups that missed and triggered a recording run.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Relaxed)
    }

    /// Finds the artifact for a key, counting the probe as a hit or miss.
    pub(crate) fn lookup(
        &self,
        config: &FabricConfig,
        mode: BranchMode,
        max_mesh_cycles: u64,
        fast_forward: bool,
        args: &[Value],
    ) -> Option<Arc<CompiledMethod>> {
        let entries = self.entries.lock().expect("compile cache lock");
        let found = entries.iter().find(|(k, _)| {
            k.mode == mode
                && k.max_mesh_cycles == max_mesh_cycles
                && k.fast_forward == fast_forward
                && k.config == *config
                && k.args == args
        });
        match found {
            Some((_, cm)) => {
                self.hits.fetch_add(1, Relaxed);
                Some(Arc::clone(cm))
            }
            None => {
                self.misses.fetch_add(1, Relaxed);
                None
            }
        }
    }

    /// Inserts a freshly recorded artifact. Racing recorders of the same
    /// key both insert; the schedules are identical by determinism, so
    /// whichever the next lookup finds first is correct.
    pub(crate) fn insert(
        &self,
        config: &FabricConfig,
        mode: BranchMode,
        max_mesh_cycles: u64,
        fast_forward: bool,
        args: &[Value],
        cm: Arc<CompiledMethod>,
    ) {
        let key = CompileKey {
            config: config.clone(),
            mode,
            max_mesh_cycles,
            fast_forward,
            args: args.to_vec(),
        };
        self.entries.lock().expect("compile cache lock").push((key, cm));
    }
}

/// A cumulative-counter snapshot of the engine, taken at block
/// boundaries; consecutive snapshots difference into one [`Block`].
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct Snapshot {
    pub(crate) now: u64,
    pub(crate) events: u64,
    pub(crate) events_skipped: u64,
    pub(crate) executed: u64,
    pub(crate) relay_fires: u64,
    pub(crate) serial_msgs: u64,
    pub(crate) mesh_msgs: u64,
    pub(crate) wheel_pushes: u64,
    pub(crate) acc_ge1: u64,
    pub(crate) acc_ge2: u64,
    pub(crate) class_fires: [u64; 4],
}

/// Rides one instrumented run and assembles the [`CompiledMethod`].
///
/// The engine reports three things: every fire (in dispatch order), every
/// backward-jump re-injection (a block boundary), and the end of the run.
/// The recorder differences counter snapshots into blocks, deduplicates
/// them by content, and run-length-encodes the trace.
#[derive(Debug)]
pub(crate) struct BlockRecorder {
    start: Snapshot,
    fired: Vec<u32>,
    blocks: Vec<Block>,
    schedule: Vec<(u32, u32)>,
    /// Content hash → candidate block indices (compile-time only; replay
    /// never touches it).
    index: HashMap<u64, Vec<u32>>,
}

impl BlockRecorder {
    pub(crate) fn new() -> BlockRecorder {
        BlockRecorder {
            start: Snapshot::default(),
            fired: Vec::new(),
            blocks: Vec::new(),
            schedule: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// A node fired (in dispatch order within the current block).
    pub(crate) fn on_fire(&mut self, node: u32) {
        self.fired.push(node);
    }

    /// Closes the current block at `snap` (a backward-jump re-injection,
    /// or the end of the run).
    pub(crate) fn boundary(&mut self, snap: Snapshot) {
        let s = &self.start;
        let block = Block {
            ticks: snap.now - s.now,
            events: snap.events - s.events,
            events_skipped: snap.events_skipped - s.events_skipped,
            executed: snap.executed - s.executed,
            relay_fires: snap.relay_fires - s.relay_fires,
            serial_msgs: snap.serial_msgs - s.serial_msgs,
            mesh_msgs: snap.mesh_msgs - s.mesh_msgs,
            wheel_pushes: snap.wheel_pushes - s.wheel_pushes,
            acc_ge1: snap.acc_ge1 - s.acc_ge1,
            acc_ge2: snap.acc_ge2 - s.acc_ge2,
            class_fires: std::array::from_fn(|k| snap.class_fires[k] - s.class_fires[k]),
            fired: std::mem::take(&mut self.fired),
        };
        self.start = snap;
        let id = self.intern(block);
        match self.schedule.last_mut() {
            Some((last, count)) if *last == id && *count < u32::MAX => *count += 1,
            _ => self.schedule.push((id, 1)),
        }
    }

    /// Deduplicates a block by content, returning its index.
    fn intern(&mut self, block: Block) -> u32 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        block.hash(&mut h);
        let candidates = self.index.entry(h.finish()).or_default();
        for &c in candidates.iter() {
            if self.blocks[c as usize] == block {
                return c;
            }
        }
        let id = self.blocks.len() as u32;
        candidates.push(id);
        self.blocks.push(block);
        id
    }

    /// Seals the recording into an artifact. The engine has already
    /// closed the final block (it snapshots right before building its
    /// report); the terminal fields come from that report.
    pub(crate) fn finish_from_report(
        self,
        report: &crate::ExecReport,
        active_static: usize,
        mesh_ticks: u64,
    ) -> CompiledMethod {
        CompiledMethod {
            blocks: self.blocks,
            schedule: self.schedule,
            outcome: report.outcome.clone(),
            wheel_high_water: report.wheel_high_water,
            active_static,
            mesh_ticks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template() -> crate::ExecReport {
        crate::ExecReport {
            outcome: Outcome::Deadlock,
            mesh_cycles: 1,
            executed: 0,
            relay_fires: 0,
            static_covered: 0,
            coverage: 0.0,
            ipc: 0.0,
            frac_cycles_ge2: 0.0,
            frac_cycles_ge1: 0.0,
            serial_msgs: 0,
            mesh_msgs: 0,
            events: 0,
            events_skipped: 0,
            class_fires: [0; 4],
            wheel_high_water: 4,
            wheel_pushes: 0,
            declined: 0,
            net: None,
        }
    }

    #[test]
    fn identical_blocks_dedup_and_rle() {
        let mut r = BlockRecorder::new();
        // Three identical loop iterations: 10 ticks each, firing node 3.
        for i in 1..=3u64 {
            r.on_fire(3);
            r.boundary(Snapshot { now: 10 * i, ..Snapshot::default() });
        }
        // A distinct terminal block.
        r.on_fire(7);
        r.boundary(Snapshot { now: 35, ..Snapshot::default() });
        let cm = r.finish_from_report(&template(), 8, 5);
        assert_eq!(cm.block_count(), 2, "loop iterations must collapse onto one block");
        assert_eq!(cm.schedule, vec![(0, 3), (1, 1)]);
        assert_eq!(cm.schedule_instances(), 4);
    }

    #[test]
    fn distinct_blocks_keep_distinct_ids() {
        let mut r = BlockRecorder::new();
        r.on_fire(1);
        r.boundary(Snapshot { now: 10, ..Snapshot::default() });
        r.on_fire(2); // different firing order → different block
        r.boundary(Snapshot { now: 20, ..Snapshot::default() });
        let cm = r.finish_from_report(&template(), 1, 5);
        assert_eq!(cm.block_count(), 2);
        assert_eq!(cm.schedule_instances(), 2);
        assert_eq!(cm.schedule, vec![(0, 1), (1, 1)]);
    }
}

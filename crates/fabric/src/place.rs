//! Method loading and placement (Section 6.2, Figure 20).
//!
//! Instructions stream down the serial network from an Anchor node; each
//! free, type-compatible Instruction Node greedily claims the head
//! instruction and forwards the rest. The serial chain snakes boustrophedon
//! through a `width`-wide mesh so consecutive chain positions are
//! mesh-adjacent ("The goal is to compress the linear method into x-y
//! coordinates that minimize the overall arc length", Section 7.2).

use javaflow_bytecode::{Method, NodeKind};

use crate::{ConfigError, FabricConfig, Layout, HETERO_PATTERN};

/// What a fabric slot can execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// Homogeneous node: accepts every instruction.
    Any,
    /// Blank spacer node (Sparse layout): routes but never executes.
    Blank,
    /// Heterogeneous node of a single kind.
    Kind(NodeKind),
}

impl SlotKind {
    /// Whether an instruction of `kind` can be housed here.
    #[must_use]
    pub fn accepts(self, kind: NodeKind) -> bool {
        match self {
            SlotKind::Any => true,
            SlotKind::Blank => false,
            SlotKind::Kind(k) => k == kind,
        }
    }
}

/// The slot kind at a serial-chain position for a layout.
#[must_use]
pub fn slot_kind(layout: Layout, position: u32) -> SlotKind {
    match layout {
        Layout::Homogeneous => SlotKind::Any,
        Layout::Sparse => {
            if position.is_multiple_of(2) {
                SlotKind::Any
            } else {
                SlotKind::Blank
            }
        }
        Layout::Heterogeneous => {
            SlotKind::Kind(HETERO_PATTERN[(position % HETERO_PATTERN.len() as u32) as usize])
        }
    }
}

/// Mesh `(x, y)` coordinates of a chain position under boustrophedon
/// placement in a `width`-wide fabric.
#[must_use]
pub fn snake_coords(position: u32, width: u32) -> (u32, u32) {
    let row = position / width;
    let col = position % width;
    let x = if row.is_multiple_of(2) { col } else { width - 1 - col };
    (x, row)
}

/// Failure to place a method.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlaceError {
    /// The method needs more nodes than the fabric provides.
    FabricFull {
        /// Instructions placed before running out.
        placed: u32,
        /// Fabric capacity in nodes.
        capacity: u32,
    },
    /// The configuration itself is invalid (zero latencies / dimensions).
    Config(ConfigError),
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::FabricFull { placed, capacity } => {
                write!(fm, "fabric full after {placed} instructions (capacity {capacity} nodes)")
            }
            PlaceError::Config(e) => write!(fm, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for PlaceError {}

/// A placed method: one slot per instruction plus span statistics.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Serial-chain position of each instruction (monotonically increasing).
    pub slots: Vec<u32>,
    /// Mesh coordinates of each instruction.
    pub coords: Vec<(u32, u32)>,
    /// Number of fabric nodes spanned (last slot + 1), including skipped
    /// incompatible/blank nodes — the "Max Node" of Tables 19/20.
    pub max_node: u32,
    /// Serial ticks consumed streaming the method in (load pipeline:
    /// one instruction enters per tick, the last travels to the last slot).
    pub load_ticks: u64,
}

impl Placement {
    /// Nodes-spanned-per-instruction ratio (1.0 compact, 2.0 sparse,
    /// ≈3.1 heterogeneous — Tables 19/20).
    #[must_use]
    pub fn span_ratio(&self) -> f64 {
        if self.slots.is_empty() {
            0.0
        } else {
            f64::from(self.max_node) / self.slots.len() as f64
        }
    }

    /// Manhattan distance between two placed instructions.
    #[must_use]
    pub fn mesh_distance(&self, a: u32, b: u32) -> u64 {
        let (ax, ay) = self.coords[a as usize];
        let (bx, by) = self.coords[b as usize];
        u64::from(ax.abs_diff(bx)) + u64::from(ay.abs_diff(by))
    }

    /// Serial-chain distance (slots) between two placed instructions.
    #[must_use]
    pub fn serial_distance(&self, a: u32, b: u32) -> u64 {
        u64::from(self.slots[a as usize].abs_diff(self.slots[b as usize]))
    }
}

/// Places a method into a fabric configuration using the greedy
/// load protocol of Figure 20.
///
/// # Errors
///
/// [`PlaceError::FabricFull`] when the method does not fit;
/// [`PlaceError::Config`] when the configuration is invalid.
pub fn place(method: &Method, config: &FabricConfig) -> Result<Placement, PlaceError> {
    config.validate().map_err(PlaceError::Config)?;
    let mut slots = Vec::with_capacity(method.code.len());
    let mut coords = Vec::with_capacity(method.code.len());
    let mut pos: u32 = 0;
    for (i, insn) in method.code.iter().enumerate() {
        let kind = insn.group().node_kind();
        while pos < config.max_nodes && !slot_kind(config.layout, pos).accepts(kind) {
            pos += 1;
        }
        if pos >= config.max_nodes {
            return Err(PlaceError::FabricFull { placed: i as u32, capacity: config.max_nodes });
        }
        slots.push(pos);
        coords.push(snake_coords(pos, config.width));
        pos += 1;
    }
    let max_node = slots.last().map_or(0, |s| s + 1);
    let load_ticks = method.code.len() as u64 + u64::from(max_node);
    Ok(Placement { slots, coords, max_node, load_ticks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use javaflow_bytecode::{Insn, Opcode, Operand};

    fn method_of(ops: &[Opcode]) -> Method {
        let mut m = Method::new("t", 0, false);
        m.max_locals = 4;
        for op in ops {
            let operand = match op {
                Opcode::ILoad => Operand::Local(0),
                _ => Operand::None,
            };
            m.code.push(Insn::new(*op, operand));
        }
        m
    }

    #[test]
    fn homogeneous_is_dense() {
        let m = method_of(&[Opcode::IConst0, Opcode::IConst1, Opcode::IAdd, Opcode::IReturn]);
        let p = place(&m, &FabricConfig::compact2()).unwrap();
        assert_eq!(p.slots, vec![0, 1, 2, 3]);
        assert!((p.span_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_doubles_span() {
        let m = method_of(&[Opcode::IConst0, Opcode::IConst1, Opcode::IAdd, Opcode::IReturn]);
        let p = place(&m, &FabricConfig::sparse2()).unwrap();
        assert_eq!(p.slots, vec![0, 2, 4, 6]);
        assert!((p.span_ratio() - 7.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn hetero_skips_incompatible_nodes() {
        // Two control-flow ops in a row must each find a Control slot
        // (positions 6, 16, ... in the pattern).
        let m = method_of(&[Opcode::IConst0, Opcode::IReturn, Opcode::IReturn]);
        let p = place(&m, &FabricConfig::hetero2()).unwrap();
        assert_eq!(p.slots[0], 0); // arith slot
        assert_eq!(p.slots[1], 9); // first control slot in the row
        assert_eq!(p.slots[2], 19); // next row's control slot
        assert!(p.span_ratio() > 3.0);
    }

    #[test]
    fn snake_adjacency() {
        // End of row 0 and start of row 1 are mesh-adjacent.
        assert_eq!(snake_coords(9, 10), (9, 0));
        assert_eq!(snake_coords(10, 10), (9, 1));
        assert_eq!(snake_coords(19, 10), (0, 1));
        assert_eq!(snake_coords(20, 10), (0, 2));
    }

    #[test]
    fn fabric_full_detected() {
        let m = method_of(&[Opcode::IConst0; 32]);
        let mut cfg = FabricConfig::compact2();
        cfg.max_nodes = 16;
        assert!(matches!(place(&m, &cfg), Err(PlaceError::FabricFull { placed: 16, .. })));
    }

    #[test]
    fn invalid_config_rejected_at_placement() {
        let m = method_of(&[Opcode::IConst0, Opcode::IReturn]);
        let cfg = FabricConfig { serial_per_mesh: Some(0), ..FabricConfig::compact2() };
        assert!(matches!(place(&m, &cfg), Err(PlaceError::Config(_))));
        let mut cfg = FabricConfig::compact2();
        cfg.timing.mesh_hop_cycles = 0;
        assert!(matches!(place(&m, &cfg), Err(PlaceError::Config(_))));
    }

    #[test]
    fn distances() {
        let m = method_of(&[Opcode::IConst0; 25]);
        let p = place(&m, &FabricConfig::compact2()).unwrap();
        // Instructions 0 (0,0) and 24 (4,2).
        assert_eq!(p.mesh_distance(0, 24), 6);
        assert_eq!(p.serial_distance(0, 24), 24);
    }
}

//! Machine configurations (Table 15).
//!
//! Six configurations are evaluated in the dissertation:
//!
//! | id | name | serial clocks / mesh clock | layout |
//! |----|------|---------------------------|--------|
//! | 0 | Baseline   | ∞ (collapsed, distance 1) | homogeneous |
//! | 1 | Compact10  | 10 | homogeneous, 10 wide |
//! | 2 | Compact4   | 4  | homogeneous, 10 wide |
//! | 3 | Compact2   | 2  | homogeneous, 10 wide |
//! | 4 | Sparse2    | 2  | every other node blank |
//! | 5 | Hetero2    | 2  | Figure 26 static-mix pattern |

use javaflow_bytecode::NodeKind;

use crate::Timing;

/// Node layout of the DataFlow fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Every node executes every instruction group.
    Homogeneous,
    /// Each Instruction Node separated by a blank node (Sparse2).
    Sparse,
    /// Nodes typed by the Chapter 5 static mix: per 10 nodes, 6 arithmetic,
    /// 1 floating point, 2 storage, 1 control (Figure 26).
    Heterogeneous,
}

/// The Figure 26 repeating row pattern: 6 arith, 1 float, 2 storage,
/// 1 control per 10 nodes, grouped by kind within the row as the
/// dissertation's figure draws them (like kinds share circuitry).
pub const HETERO_PATTERN: [NodeKind; 10] = [
    NodeKind::Arith,
    NodeKind::Arith,
    NodeKind::Arith,
    NodeKind::Arith,
    NodeKind::Arith,
    NodeKind::Arith,
    NodeKind::Float,
    NodeKind::Storage,
    NodeKind::Storage,
    NodeKind::Control,
];

/// One machine configuration (a Table 15 row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricConfig {
    /// Display name.
    pub name: &'static str,
    /// Mesh width in nodes (the dissertation settled on 10).
    pub width: u32,
    /// Serial clocks per mesh clock; `None` = unlimited (collapsed
    /// Baseline: all serial traffic moves before the next mesh clock).
    pub serial_per_mesh: Option<u32>,
    /// Whether mesh distance is collapsed to one hop (Baseline).
    pub collapsed: bool,
    /// Node layout.
    pub layout: Layout,
    /// Latency model.
    pub timing: Timing,
    /// Maximum number of fabric nodes available (the dissertation envisions
    /// 1,000–10,000).
    pub max_nodes: u32,
}

impl FabricConfig {
    /// Configuration 0: the collapsed baseline.
    #[must_use]
    pub fn baseline() -> FabricConfig {
        FabricConfig {
            name: "Baseline",
            width: 10,
            serial_per_mesh: None,
            collapsed: true,
            layout: Layout::Homogeneous,
            timing: Timing::default(),
            max_nodes: 10_000,
        }
    }

    /// Configuration 1: Compact10.
    #[must_use]
    pub fn compact10() -> FabricConfig {
        FabricConfig {
            name: "Compact10",
            serial_per_mesh: Some(10),
            collapsed: false,
            ..FabricConfig::baseline()
        }
    }

    /// Configuration 2: Compact4.
    #[must_use]
    pub fn compact4() -> FabricConfig {
        FabricConfig { name: "Compact4", serial_per_mesh: Some(4), ..FabricConfig::compact10() }
    }

    /// Configuration 3: Compact2.
    #[must_use]
    pub fn compact2() -> FabricConfig {
        FabricConfig { name: "Compact2", serial_per_mesh: Some(2), ..FabricConfig::compact10() }
    }

    /// Configuration 4: Sparse2 — every other node blank, 2 serial clocks.
    #[must_use]
    pub fn sparse2() -> FabricConfig {
        FabricConfig { name: "Sparse2", layout: Layout::Sparse, ..FabricConfig::compact2() }
    }

    /// Configuration 5: Hetero2 — static-mix node kinds, 2 serial clocks.
    #[must_use]
    pub fn hetero2() -> FabricConfig {
        FabricConfig { name: "Hetero2", layout: Layout::Heterogeneous, ..FabricConfig::compact2() }
    }

    /// All six Table 15 configurations, in id order.
    #[must_use]
    pub fn all_six() -> Vec<FabricConfig> {
        vec![
            FabricConfig::baseline(),
            FabricConfig::compact10(),
            FabricConfig::compact4(),
            FabricConfig::compact2(),
            FabricConfig::sparse2(),
            FabricConfig::hetero2(),
        ]
    }

    /// Serial ticks per mesh cycle in the simulator's base time unit.
    ///
    /// The collapsed baseline drains serial traffic for free: one tick per
    /// mesh cycle and zero-cost serial hops.
    #[must_use]
    pub fn mesh_cycle_ticks(&self) -> u64 {
        self.serial_per_mesh.map_or(1, u64::from)
    }

    /// Serial ticks per serial network hop (zero when collapsed).
    #[must_use]
    pub fn serial_hop_ticks(&self) -> u64 {
        u64::from(self.serial_per_mesh.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hetero_pattern_matches_static_mix() {
        let arith = HETERO_PATTERN.iter().filter(|k| **k == NodeKind::Arith).count();
        let float = HETERO_PATTERN.iter().filter(|k| **k == NodeKind::Float).count();
        let storage = HETERO_PATTERN.iter().filter(|k| **k == NodeKind::Storage).count();
        let control = HETERO_PATTERN.iter().filter(|k| **k == NodeKind::Control).count();
        assert_eq!((arith, float, storage, control), (6, 1, 2, 1));
    }

    #[test]
    fn six_configs() {
        let cs = FabricConfig::all_six();
        assert_eq!(cs.len(), 6);
        assert_eq!(cs[0].name, "Baseline");
        assert!(cs[0].collapsed);
        assert_eq!(cs[0].mesh_cycle_ticks(), 1);
        assert_eq!(cs[0].serial_hop_ticks(), 0);
        assert_eq!(cs[1].mesh_cycle_ticks(), 10);
        assert_eq!(cs[3].mesh_cycle_ticks(), 2);
        assert_eq!(cs[4].layout, Layout::Sparse);
        assert_eq!(cs[5].layout, Layout::Heterogeneous);
    }
}

//! Machine configurations (Table 15).
//!
//! Six configurations are evaluated in the dissertation:
//!
//! | id | name | serial clocks / mesh clock | layout |
//! |----|------|---------------------------|--------|
//! | 0 | Baseline   | ∞ (collapsed, distance 1) | homogeneous |
//! | 1 | Compact10  | 10 | homogeneous, 10 wide |
//! | 2 | Compact4   | 4  | homogeneous, 10 wide |
//! | 3 | Compact2   | 2  | homogeneous, 10 wide |
//! | 4 | Sparse2    | 2  | every other node blank |
//! | 5 | Hetero2    | 2  | Figure 26 static-mix pattern |

use javaflow_bytecode::NodeKind;

use crate::{NetKind, NetParams, Timing};

/// Node layout of the DataFlow fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Every node executes every instruction group.
    Homogeneous,
    /// Each Instruction Node separated by a blank node (Sparse2).
    Sparse,
    /// Nodes typed by the Chapter 5 static mix: per 10 nodes, 6 arithmetic,
    /// 1 floating point, 2 storage, 1 control (Figure 26).
    Heterogeneous,
}

/// The Figure 26 repeating row pattern: 6 arith, 1 float, 2 storage,
/// 1 control per 10 nodes, grouped by kind within the row as the
/// dissertation's figure draws them (like kinds share circuitry).
pub const HETERO_PATTERN: [NodeKind; 10] = [
    NodeKind::Arith,
    NodeKind::Arith,
    NodeKind::Arith,
    NodeKind::Arith,
    NodeKind::Arith,
    NodeKind::Arith,
    NodeKind::Float,
    NodeKind::Storage,
    NodeKind::Storage,
    NodeKind::Control,
];

/// One machine configuration (a Table 15 row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricConfig {
    /// Display name.
    pub name: &'static str,
    /// Mesh width in nodes (the dissertation settled on 10).
    pub width: u32,
    /// Serial clocks per mesh clock; `None` = unlimited (collapsed
    /// Baseline: all serial traffic moves before the next mesh clock).
    pub serial_per_mesh: Option<u32>,
    /// Whether mesh distance is collapsed to one hop (Baseline).
    pub collapsed: bool,
    /// Node layout.
    pub layout: Layout,
    /// Latency model.
    pub timing: Timing,
    /// Maximum number of fabric nodes available (the dissertation envisions
    /// 1,000–10,000).
    pub max_nodes: u32,
    /// Interconnect model executing mesh transfers and ring requests.
    pub net: NetKind,
    /// Parameters of the contended interconnect (ignored when `net` is
    /// [`NetKind::Ideal`]).
    pub net_params: NetParams,
}

/// An invalid [`FabricConfig`] — rejected before it can schedule zero-delay
/// events and livelock the simulator's event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `serial_per_mesh == Some(0)`: serial hops would cost zero ticks and
    /// a mesh cycle would span zero ticks.
    ZeroSerialPerMesh,
    /// A `Timing` latency is zero (named field); zero-latency execution or
    /// transit schedules same-tick event cascades.
    ZeroTiming(&'static str),
    /// A `NetParams` field is zero (named field).
    ZeroNetParam(&'static str),
    /// The mesh must be at least one node wide.
    ZeroWidth,
    /// The fabric must have at least one node.
    ZeroMaxNodes,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroSerialPerMesh => {
                write!(fm, "serial_per_mesh must be >= 1 (use None for the collapsed baseline)")
            }
            ConfigError::ZeroTiming(field) => write!(fm, "timing.{field} must be >= 1"),
            ConfigError::ZeroNetParam(field) => write!(fm, "net_params.{field} must be >= 1"),
            ConfigError::ZeroWidth => write!(fm, "width must be >= 1"),
            ConfigError::ZeroMaxNodes => write!(fm, "max_nodes must be >= 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl FabricConfig {
    /// Configuration 0: the collapsed baseline.
    #[must_use]
    pub fn baseline() -> FabricConfig {
        FabricConfig {
            name: "Baseline",
            width: 10,
            serial_per_mesh: None,
            collapsed: true,
            layout: Layout::Homogeneous,
            timing: Timing::default(),
            max_nodes: 10_000,
            net: NetKind::Ideal,
            net_params: NetParams::default(),
        }
    }

    /// The configuration with its interconnect model replaced.
    #[must_use]
    pub fn with_net(mut self, net: NetKind) -> FabricConfig {
        self.net = net;
        self
    }

    /// Rejects configurations that can livelock the event-driven engine:
    /// zero-tick mesh cycles (`serial_per_mesh == Some(0)`) and zero
    /// latencies, which schedule events at the current tick forever (a
    /// zero-delay `goto` loop never drains the `BinaryHeap`).
    ///
    /// Every loading/execution entry point calls this.
    ///
    /// # Errors
    ///
    /// See [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.width == 0 {
            return Err(ConfigError::ZeroWidth);
        }
        if self.max_nodes == 0 {
            return Err(ConfigError::ZeroMaxNodes);
        }
        if self.serial_per_mesh == Some(0) {
            return Err(ConfigError::ZeroSerialPerMesh);
        }
        let t = &self.timing;
        for (value, field) in [
            (t.move_cycles, "move_cycles"),
            (t.float_cycles, "float_cycles"),
            (t.convert_cycles, "convert_cycles"),
            (t.other_cycles, "other_cycles"),
            (t.memory_service, "memory_service"),
            (t.gpp_service, "gpp_service"),
            (t.mesh_hop_cycles, "mesh_hop_cycles"),
        ] {
            if value == 0 {
                return Err(ConfigError::ZeroTiming(field));
            }
        }
        if self.net_params.mesh_fifo_capacity == 0 {
            return Err(ConfigError::ZeroNetParam("mesh_fifo_capacity"));
        }
        if self.net_params.ring_slot_cycles == 0 {
            return Err(ConfigError::ZeroNetParam("ring_slot_cycles"));
        }
        if self.net_params.ring_latency_cycles == 0 {
            return Err(ConfigError::ZeroNetParam("ring_latency_cycles"));
        }
        Ok(())
    }

    /// Configuration 1: Compact10.
    #[must_use]
    pub fn compact10() -> FabricConfig {
        FabricConfig {
            name: "Compact10",
            serial_per_mesh: Some(10),
            collapsed: false,
            ..FabricConfig::baseline()
        }
    }

    /// Configuration 2: Compact4.
    #[must_use]
    pub fn compact4() -> FabricConfig {
        FabricConfig { name: "Compact4", serial_per_mesh: Some(4), ..FabricConfig::compact10() }
    }

    /// Configuration 3: Compact2.
    #[must_use]
    pub fn compact2() -> FabricConfig {
        FabricConfig { name: "Compact2", serial_per_mesh: Some(2), ..FabricConfig::compact10() }
    }

    /// Configuration 4: Sparse2 — every other node blank, 2 serial clocks.
    #[must_use]
    pub fn sparse2() -> FabricConfig {
        FabricConfig { name: "Sparse2", layout: Layout::Sparse, ..FabricConfig::compact2() }
    }

    /// Configuration 5: Hetero2 — static-mix node kinds, 2 serial clocks.
    #[must_use]
    pub fn hetero2() -> FabricConfig {
        FabricConfig { name: "Hetero2", layout: Layout::Heterogeneous, ..FabricConfig::compact2() }
    }

    /// All six Table 15 configurations, in id order.
    #[must_use]
    pub fn all_six() -> Vec<FabricConfig> {
        vec![
            FabricConfig::baseline(),
            FabricConfig::compact10(),
            FabricConfig::compact4(),
            FabricConfig::compact2(),
            FabricConfig::sparse2(),
            FabricConfig::hetero2(),
        ]
    }

    /// Serial ticks per mesh cycle in the simulator's base time unit.
    ///
    /// The collapsed baseline drains serial traffic for free: one tick per
    /// mesh cycle and zero-cost serial hops.
    #[must_use]
    pub fn mesh_cycle_ticks(&self) -> u64 {
        self.serial_per_mesh.map_or(1, u64::from)
    }

    /// Serial ticks per serial network hop (zero when collapsed).
    #[must_use]
    pub fn serial_hop_ticks(&self) -> u64 {
        u64::from(self.serial_per_mesh.is_some())
    }

    /// Execution latency in ticks per timing class, indexed by
    /// `DecodedInsn::timing_class` (0 move, 1 float, 2 convert, 3 other —
    /// the Table 17 classes).
    #[must_use]
    pub fn class_ticks(&self) -> [u64; 4] {
        let mt = self.mesh_cycle_ticks();
        let t = &self.timing;
        [t.move_cycles * mt, t.float_cycles * mt, t.convert_cycles * mt, t.other_cycles * mt]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hetero_pattern_matches_static_mix() {
        let arith = HETERO_PATTERN.iter().filter(|k| **k == NodeKind::Arith).count();
        let float = HETERO_PATTERN.iter().filter(|k| **k == NodeKind::Float).count();
        let storage = HETERO_PATTERN.iter().filter(|k| **k == NodeKind::Storage).count();
        let control = HETERO_PATTERN.iter().filter(|k| **k == NodeKind::Control).count();
        assert_eq!((arith, float, storage, control), (6, 1, 2, 1));
    }

    #[test]
    fn all_six_validate() {
        for c in FabricConfig::all_six() {
            assert_eq!(c.validate(), Ok(()), "{}", c.name);
            assert_eq!(c.net, NetKind::Ideal);
        }
    }

    #[test]
    fn zero_serial_per_mesh_rejected() {
        let c = FabricConfig { serial_per_mesh: Some(0), ..FabricConfig::compact2() };
        assert_eq!(c.validate(), Err(ConfigError::ZeroSerialPerMesh));
    }

    #[test]
    fn zero_timing_rejected() {
        let mut c = FabricConfig::compact2();
        c.timing.mesh_hop_cycles = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroTiming("mesh_hop_cycles")));
        let mut c = FabricConfig::baseline();
        c.timing.move_cycles = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroTiming("move_cycles")));
    }

    #[test]
    fn zero_net_params_and_shape_rejected() {
        let mut c = FabricConfig::compact2();
        c.net_params.mesh_fifo_capacity = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroNetParam("mesh_fifo_capacity")));
        let c = FabricConfig { width: 0, ..FabricConfig::compact2() };
        assert_eq!(c.validate(), Err(ConfigError::ZeroWidth));
        let c = FabricConfig { max_nodes: 0, ..FabricConfig::compact2() };
        assert_eq!(c.validate(), Err(ConfigError::ZeroMaxNodes));
    }

    #[test]
    fn with_net_switches_model() {
        let c = FabricConfig::compact2().with_net(NetKind::Contended);
        assert_eq!(c.net, NetKind::Contended);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn six_configs() {
        let cs = FabricConfig::all_six();
        assert_eq!(cs.len(), 6);
        assert_eq!(cs[0].name, "Baseline");
        assert!(cs[0].collapsed);
        assert_eq!(cs[0].mesh_cycle_ticks(), 1);
        assert_eq!(cs[0].serial_hop_ticks(), 0);
        assert_eq!(cs[1].mesh_cycle_ticks(), 10);
        assert_eq!(cs[3].mesh_cycle_ticks(), 2);
        assert_eq!(cs[4].layout, Layout::Sparse);
        assert_eq!(cs[5].layout, Layout::Heterogeneous);
    }
}

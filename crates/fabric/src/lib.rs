//! The JavaFlow DataFlow fabric: a cycle-level simulator of the machine the
//! dissertation describes — Instruction Nodes connected by ordered serial
//! networks, an X-Y routed mesh, and memory/GPP rings; whole Java methods
//! loaded, self-resolved into producer/consumer dataflow, and executed by a
//! serial token bundle.
//!
//! Pipeline: [`load`] (placement + address resolution) → optional
//! [`DataflowGraph`] enhancements (folding, fanout limiting) → [`execute`]
//! under one of the Table 15 [`FabricConfig`]s with real data or the
//! Chapter 7 branch scripts.
//!
//! # Example
//!
//! ```
//! use javaflow_bytecode::{asm, Value};
//! use javaflow_fabric::{execute, load, BranchMode, ExecParams, FabricConfig, Gpp, Outcome};
//! use javaflow_interp::Interp;
//!
//! let program = asm::assemble(
//!     ".method triple args=1 returns=true locals=1
//!        iload 0
//!        iconst_3
//!        imul
//!        ireturn
//!      .end",
//! )
//! .unwrap();
//! let (_, method) = program.method_by_name("triple").unwrap();
//! let config = FabricConfig::compact2();
//! let loaded = load(method, &config).unwrap();
//! let mut gpp = Interp::new(&program);
//! let report = execute(
//!     &loaded,
//!     &config,
//!     ExecParams {
//!         mode: BranchMode::Data,
//!         gpp: Gpp::Interp(&mut gpp),
//!         args: vec![Value::Int(14)],
//!         ..ExecParams::default()
//!     },
//! );
//! assert_eq!(report.outcome, Outcome::Returned(Some(Value::Int(42))));
//! assert_eq!(report.executed, 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod branch;
mod compile;
pub mod compute;
mod config;
mod enhance;
mod manager;
pub mod metrics;
pub mod net;
mod place;
mod resolve;
mod sim;
mod timing;
mod token;
pub mod trace;
pub mod wheel;

pub use branch::{BranchMode, BranchOracle};
pub use compile::{CompiledCache, CompiledMethod};
pub use config::{ConfigError, FabricConfig, Layout, HETERO_PATTERN};
pub use enhance::{DataflowGraph, Relay};
pub use manager::{AnchorId, FabricManager, ManageError};
pub use metrics::{CostProfile, Histogram, MetricsRegistry};
pub use net::{
    ContendedNet, IdealNet, NetKind, NetModel, NetParams, NetReport, NodeNetStat, RingReport,
};
pub use place::{place, slot_kind, snake_coords, PlaceError, Placement, SlotKind};
pub use resolve::{
    control_sources, resolve, resolve_call_count, ResolveError, ResolveStats, Resolved, Sink,
};
pub use sim::{
    execute, execute_in, execute_with_sink, load, load_with_resolved, prepare, ArenaPool,
    DecodedInsn, DecodedMethod, ExecParams, ExecReport, Gpp, LoadError, LoadedMethod, Outcome,
    PreparedMethod, SimArena,
};
pub use timing::Timing;
pub use token::{Command, InstanceId, SerialDest, SerialMessage, Token};
pub use trace::{
    warn_counter_name, NoopSink, RingRecorder, StderrSink, TraceEvent, TraceKind, TraceSink,
    EVENT_BYTES, WARN_COUNTERS,
};
pub use wheel::TimingWheel;

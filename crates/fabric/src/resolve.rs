//! Distributed DataFlow address resolution (Section 6.2, Figures 21–22).
//!
//! After loading, two serial-network passes translate the stack-oriented
//! ByteCode into producer/consumer dataflow addressing:
//!
//! 1. **`CMD_SEND_ADDRESSES_DOWN`** — every instruction with a non-adjacent
//!    successor identifies itself to its target, so each Instruction Data
//!    Unit learns its `sourceLinearAddresses` (control-flow predecessors).
//! 2. **`CMD_SEND_NEEDS_UP`** — each instruction sends one *need* message
//!    per `Pop` up the serial network. The nearest producer with an
//!    unsatisfied `Push` captures the need and records the consumer's mesh
//!    address and side; satisfied producers forward the need further up. At
//!    control-flow merges the need is replicated to every source with a
//!    Branch-ID tag; at splits only Branch-ID 0 continues.
//!
//! This module simulates the protocol per need-message (counting the
//! per-node up-queue traffic of Table 11) and produces the dataflow graph
//! the execution engine routes on. Its edge set is cross-checked against
//! [`javaflow_bytecode::verify`]'s abstract-interpretation golden model in
//! the integration tests and by property tests.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

use javaflow_bytecode::Method;

/// Process-wide count of [`resolve`] invocations, for tests asserting
/// the once-per-record caching contract.
static RESOLVE_CALLS: AtomicU64 = AtomicU64::new(0);

/// Number of times [`resolve`] has run in this process.
#[doc(hidden)]
#[must_use]
pub fn resolve_call_count() -> u64 {
    RESOLVE_CALLS.load(Ordering::Relaxed)
}

/// One dataflow sink recorded in a producer's target array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Sink {
    /// Consumer linear address.
    pub consumer: u32,
    /// Consumer operand side (1-based; side 1 = deepest operand).
    pub side: u16,
    /// Which of the producer's pushes feeds this sink (0-based from the
    /// bottom of the push group; only shuffles push more than one value).
    pub out: u16,
}

/// Resolution statistics (Tables 7, 10–14 inputs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResolveStats {
    /// Serial ticks for the two resolution passes (≈ 2 × instructions for
    /// compact placements, Table 7 "Total Cycles").
    pub resolution_ticks: u64,
    /// Maximum per-node up-queue occupancy during needs-up (Table 11).
    pub max_up_queue: u32,
    /// Total dataflow arcs discovered (Table 7 "Total DFlows").
    pub dflows: u64,
    /// Consumer sides fed by more than one producer (Table 7/12 merges).
    pub merges: u32,
    /// Back-merge arcs — always zero for javac-style code (Table 7).
    pub back_merges: u32,
    /// Average fanout over producers with at least one sink (Table 10).
    pub fanout_avg: f64,
    /// Maximum fanout (Table 10).
    pub fanout_max: u32,
    /// Average linear arc length (Table 10).
    pub arc_avg: f64,
    /// Maximum linear arc length (Table 10).
    pub arc_max: u32,
}

/// A resolution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ResolveError {
    /// A need message walked past the top instruction to the Anchor — the
    /// ByteCode stream was invalid (the paper's load-time validation).
    NeedReachedAnchor {
        /// The unsatisfied consumer.
        consumer: u32,
        /// Its operand side.
        side: u16,
    },
    /// A producer ended with fewer dataflow targets than its `Push` value
    /// (the paper's second validation measure).
    UnconsumedPush {
        /// The producer with dangling output.
        producer: u32,
    },
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::NeedReachedAnchor { consumer, side } => {
                write!(fm, "need from @{consumer} side {side} reached the anchor unsatisfied")
            }
            ResolveError::UnconsumedPush { producer } => {
                write!(fm, "producer @{producer} has unconsumed pushes")
            }
        }
    }
}

impl std::error::Error for ResolveError {}

/// The resolved dataflow structure of one loaded method.
#[derive(Debug, Clone)]
pub struct Resolved {
    /// Control-flow source addresses per instruction (phase 1 result).
    pub sources: Vec<Vec<u32>>,
    /// Dataflow target array per producer (phase 2 result): where each
    /// instruction's pushes are routed. Unlimited fanout — "these 'Push'
    /// addresses are generated automatically and not part of the
    /// instruction set" (Section 6.2).
    pub consumers: Vec<Vec<Sink>>,
    /// Statistics gathered while resolving.
    pub stats: ResolveStats,
}

impl Resolved {
    /// All arcs as `(producer, consumer, side)` triples, sorted.
    #[must_use]
    pub fn edges(&self) -> Vec<(u32, u32, u16)> {
        let mut v: Vec<(u32, u32, u16)> = self
            .consumers
            .iter()
            .enumerate()
            .flat_map(|(p, sinks)| sinks.iter().map(move |s| (p as u32, s.consumer, s.side)))
            .collect();
        v.sort_unstable();
        v
    }
}

/// Phase 1: control-flow sources of every instruction.
#[must_use]
pub fn control_sources(method: &Method) -> Vec<Vec<u32>> {
    let n = method.code.len();
    let mut sources = vec![Vec::new(); n];
    for (addr, insn) in method.iter() {
        for s in insn.successors(addr) {
            if (s as usize) < n {
                sources[s as usize].push(addr);
            }
        }
    }
    sources
}

/// Runs both resolution passes on a method.
///
/// # Errors
///
/// Returns [`ResolveError`] for structurally invalid streams (a verified
/// method never fails).
pub fn resolve(method: &Method) -> Result<Resolved, ResolveError> {
    RESOLVE_CALLS.fetch_add(1, Ordering::Relaxed);
    let n = method.code.len();
    let sources = control_sources(method);
    let pops: Vec<u32> = method.code.iter().map(|i| u32::from(i.pops())).collect();
    let pushes: Vec<u32> = method.code.iter().map(|i| u32::from(i.pushes())).collect();

    let sinks: Vec<BTreeSet<Sink>> = vec![BTreeSet::new(); n];
    let up_traffic = vec![0u32; n];

    // Depth-first walk of one need message up the serial network.
    // `t` is the number of pushes sitting above the wanted value at the
    // *output* of node `p`.
    struct Walk<'a> {
        sources: &'a [Vec<u32>],
        pops: &'a [u32],
        pushes: &'a [u32],
        reachable: &'a [bool],
        sinks: Vec<BTreeSet<Sink>>,
        up_traffic: Vec<u32>,
        back_merges: u32,
    }

    impl Walk<'_> {
        fn go(
            &mut self,
            p: u32,
            t: u32,
            consumer: u32,
            side: u16,
            visited: &mut BTreeSet<(u32, u32)>,
        ) -> Result<(), ResolveError> {
            if !visited.insert((p, t)) {
                return Ok(()); // already explored along another path
            }
            self.up_traffic[p as usize] += 1;
            if self.pushes[p as usize] > t {
                // Captured: p is a producer for this consumer side; `t`
                // pushes sit above the wanted value, so it is push index
                // `pushes - 1 - t` counting from the bottom.
                if p > consumer {
                    self.back_merges += 1;
                }
                let out = (self.pushes[p as usize] - 1 - t) as u16;
                self.sinks[p as usize].insert(Sink { consumer, side, out });
                return Ok(());
            }
            let t_in = t - self.pushes[p as usize] + self.pops[p as usize];
            let live: Vec<u32> = self.sources[p as usize]
                .iter()
                .copied()
                .filter(|s| self.reachable[*s as usize])
                .collect();
            if live.is_empty() {
                return Err(ResolveError::NeedReachedAnchor { consumer, side });
            }
            for src in live {
                self.go(src, t_in, consumer, side, visited)?;
            }
            Ok(())
        }
    }

    // Reachability: needs are only sent by instructions that can execute,
    // and travel only along executable paths.
    let reachable = reachable_set(method, &sources);

    let mut w = Walk {
        sources: &sources,
        pops: &pops,
        pushes: &pushes,
        reachable: &reachable,
        sinks,
        up_traffic,
        back_merges: 0,
    };
    for j in 0..n as u32 {
        if !w.reachable[j as usize] {
            continue;
        }
        let p = pops[j as usize];
        for k in 1..=p {
            // Side k (1-based, 1 = deepest) sits below `p - k` later pops.
            let t0 = p - k;
            if j == 0 {
                return Err(ResolveError::NeedReachedAnchor { consumer: j, side: k as u16 });
            }
            let live: Vec<u32> = w.sources[j as usize]
                .iter()
                .copied()
                .filter(|s| w.reachable[*s as usize])
                .collect();
            let mut visited = BTreeSet::new();
            for src in live {
                w.go(src, t0, j, k as u16, &mut visited)?;
            }
        }
    }
    let sinks = std::mem::take(&mut w.sinks);
    let up_traffic = std::mem::take(&mut w.up_traffic);
    let back_merges = w.back_merges;

    // Validation: every reachable producer must have at least as many sinks
    // as... not strictly `push` (a push may feed exactly one sink even when
    // fanned out), but a reachable pushing producer whose value is never
    // consumed before a return is legal Java only when the frame ends, so we
    // only flag producers with pushes but zero sinks that are not the last
    // value feeding a return path. The dissertation logs rather than fails;
    // we record nothing here and let the execution engine fire into void.

    let consumers: Vec<Vec<Sink>> = sinks.into_iter().map(|s| s.into_iter().collect()).collect();

    // Statistics.
    let mut dflows = 0u64;
    let mut fan_sum = 0u64;
    let mut fan_cnt = 0u64;
    let mut fanout_max = 0u32;
    let mut arc_sum = 0u64;
    let mut arc_max = 0u32;
    let mut merge_sinks: BTreeSet<(u32, u16)> = BTreeSet::new();
    let mut seen_sinks: BTreeSet<(u32, u16)> = BTreeSet::new();
    for (p, sinks) in consumers.iter().enumerate() {
        if !sinks.is_empty() {
            fan_sum += sinks.len() as u64;
            fan_cnt += 1;
            fanout_max = fanout_max.max(sinks.len() as u32);
        }
        for s in sinks {
            dflows += 1;
            let arc = s.consumer.abs_diff(p as u32);
            arc_sum += u64::from(arc);
            arc_max = arc_max.max(arc);
            if !seen_sinks.insert((s.consumer, s.side)) {
                merge_sinks.insert((s.consumer, s.side));
            }
        }
    }
    let max_up_queue = up_traffic.iter().copied().max().unwrap_or(0);
    let stats = ResolveStats {
        // Two full passes down and up the chain, plus queue drain.
        resolution_ticks: 2 * n as u64 + u64::from(max_up_queue),
        max_up_queue,
        dflows,
        merges: merge_sinks.len() as u32,
        back_merges,
        fanout_avg: if fan_cnt == 0 { 0.0 } else { fan_sum as f64 / fan_cnt as f64 },
        fanout_max,
        arc_avg: if dflows == 0 { 0.0 } else { arc_sum as f64 / dflows as f64 },
        arc_max,
    };

    Ok(Resolved { sources, consumers, stats })
}

fn reachable_set(method: &Method, _sources: &[Vec<u32>]) -> Vec<bool> {
    let n = method.code.len();
    let mut seen = vec![false; n];
    let mut stack = vec![0u32];
    while let Some(a) = stack.pop() {
        if seen[a as usize] {
            continue;
        }
        seen[a as usize] = true;
        for s in method.insn(a).successors(a) {
            if (s as usize) < n && !seen[s as usize] {
                stack.push(s);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use javaflow_bytecode::{asm::assemble, verify};

    fn method(src: &str) -> Method {
        let p = assemble(src).unwrap();
        let (_, m) = p.methods().next().map(|(i, m)| (i, m.clone())).unwrap();
        m
    }

    /// The resolver must agree exactly with the verifier's golden model.
    fn assert_matches_verifier(m: &Method) {
        let r = resolve(m).unwrap();
        let v = verify(m).unwrap();
        let resolver_edges = r.edges();
        let verifier_edges: Vec<(u32, u32, u16)> =
            v.edges.iter().map(|e| (e.producer, e.consumer, e.side)).collect();
        assert_eq!(resolver_edges, verifier_edges, "edge mismatch for {}", m.name);
        assert_eq!(r.stats.back_merges as usize, v.back_merges);
        assert_eq!(r.stats.merges as usize, v.merges);
    }

    #[test]
    fn figure_21_example() {
        // Three register loads, add, store — the dissertation's walkthrough.
        let m = method(
            ".method f21 args=4 returns=false locals=5
               iload 1
               iload 2
               iload 3
               iadd
               istore 4
               return
             .end",
        );
        let r = resolve(&m).unwrap();
        // iadd @3 captures needs from istore; loads @1,@2 feed iadd.
        assert!(r.consumers[1].contains(&Sink { consumer: 3, side: 1, out: 0 }));
        assert!(r.consumers[2].contains(&Sink { consumer: 3, side: 2, out: 0 }));
        assert!(r.consumers[3].contains(&Sink { consumer: 4, side: 1, out: 0 }));
        // Load @0's push is never consumed (mirrors Figure 21's deep value).
        assert!(r.consumers[0].is_empty());
        assert_matches_verifier(&m);
    }

    #[test]
    fn needs_skip_satisfied_producers() {
        // Figure 21's second phase: a second add's deep need must skip the
        // already-satisfied producers and capture the deepest load.
        let m = method(
            ".method f args=4 returns=true locals=4
               iload 0
               iload 1
               iload 2
               iadd
               iadd
               ireturn
             .end",
        );
        let r = resolve(&m).unwrap();
        // iadd@4 side 1 ← iload@0 (skipping @1,@2 whose pushes feed @3).
        assert!(r.consumers[0].contains(&Sink { consumer: 4, side: 1, out: 0 }));
        assert_matches_verifier(&m);
    }

    #[test]
    fn merge_multiplies_needs() {
        let m = method(
            ".method f args=1 returns=true locals=1
               iload 0
               ifeq @other
               iconst_1
               goto @join
             other:
               iconst_2
             join:
               ireturn
             .end",
        );
        let r = resolve(&m).unwrap();
        assert_eq!(r.stats.merges, 1);
        assert!(r.consumers[2].contains(&Sink { consumer: 5, side: 1, out: 0 }));
        assert!(r.consumers[4].contains(&Sink { consumer: 5, side: 1, out: 0 }));
        assert_eq!(r.stats.back_merges, 0);
        assert_matches_verifier(&m);
    }

    #[test]
    fn loop_resolution_terminates_without_back_merges() {
        let m = method(
            ".method f args=1 returns=true locals=2
               iconst_0
               istore 1
             top:
               iload 1
               iload 0
               iadd
               istore 1
               iinc 0 -1
               iload 0
               ifgt @top
               iload 1
               ireturn
             .end",
        );
        let r = resolve(&m).unwrap();
        assert_eq!(r.stats.back_merges, 0);
        assert_matches_verifier(&m);
    }

    #[test]
    fn goto_passes_needs_through() {
        let m = method(
            ".method f args=1 returns=true locals=1
               iload 0
               goto @use
             use:
               ireturn
             .end",
        );
        let r = resolve(&m).unwrap();
        // goto pushes nothing; the return's need passes through it.
        assert!(r.consumers[0].contains(&Sink { consumer: 2, side: 1, out: 0 }));
        assert_matches_verifier(&m);
    }

    #[test]
    fn queue_traffic_counted() {
        let m = method(
            ".method f args=4 returns=true locals=4
               iload 0
               iload 1
               iload 2
               iadd
               iadd
               ireturn
             .end",
        );
        let r = resolve(&m).unwrap();
        assert!(r.stats.max_up_queue >= 2, "deep needs forward through nodes");
        assert!(r.stats.resolution_ticks >= 2 * m.code.len() as u64);
    }

    #[test]
    fn fanout_and_arc_stats() {
        let m = method(
            ".method f args=0 returns=true locals=0
               iconst_3
               dup
               imul
               ireturn
             .end",
        );
        let r = resolve(&m).unwrap();
        assert_eq!(r.stats.fanout_max, 2); // dup feeds both imul sides
        assert!(r.stats.arc_avg >= 1.0);
        assert_matches_verifier(&m);
    }
}

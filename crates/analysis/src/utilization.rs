//! Method-utilization analysis: Table 1 (how few methods dominate the
//! dynamic instruction count) and Tables 3–4 (the top-4 methods per
//! benchmark with their contribution).

use javaflow_bytecode::{MethodId, Program};
use javaflow_interp::Profiler;

/// One Table 1 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Utilization {
    /// Total dynamic instructions executed.
    pub total_ops: u64,
    /// Number of distinct methods executed.
    pub methods_used: usize,
    /// Number of (hottest-first) methods covering 90% of `total_ops`.
    pub methods_at_90: usize,
}

impl Utilization {
    /// Computes utilization from a profiler.
    #[must_use]
    pub fn of(profiler: &Profiler) -> Utilization {
        Utilization {
            total_ops: profiler.total_ops(),
            methods_used: profiler.methods_executed(),
            methods_at_90: profiler.top_fraction(0.9).len(),
        }
    }
}

/// One Tables 3–4 row: a hot method and its share of the benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct TopMethod {
    /// Method id.
    pub id: MethodId,
    /// Method name.
    pub name: String,
    /// Dynamic instructions attributed to the method.
    pub ops: u64,
    /// Fraction of the benchmark's dynamic instructions.
    pub share: f64,
}

/// The top-`n` methods of a profiled run, with names resolved against the
/// program (Tables 3–4).
#[must_use]
pub fn top_methods(profiler: &Profiler, program: &Program, n: usize) -> Vec<TopMethod> {
    let total = profiler.total_ops().max(1) as f64;
    profiler
        .ranked()
        .into_iter()
        .take(n)
        .map(|(id, ops)| TopMethod {
            id,
            name: program.method(id).name.clone(),
            ops,
            share: ops as f64 / total,
        })
        .collect()
}

/// Combined share of the top-`n` methods (the "% Top 4" column).
#[must_use]
pub fn top_share(profiler: &Profiler, n: usize) -> f64 {
    let total = profiler.total_ops().max(1) as f64;
    profiler.ranked().into_iter().take(n).map(|(_, ops)| ops as f64).sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use javaflow_bytecode::{Insn, Method, Opcode};

    #[test]
    fn utilization_counts_hot_prefix() {
        let mut prof = Profiler::new();
        for _ in 0..95 {
            prof.record(MethodId(0), 0, &Insn::simple(Opcode::IAdd));
        }
        for _ in 0..5 {
            prof.record(MethodId(1), 0, &Insn::simple(Opcode::IAdd));
        }
        let u = Utilization::of(&prof);
        assert_eq!(u.total_ops, 100);
        assert_eq!(u.methods_used, 2);
        assert_eq!(u.methods_at_90, 1);
    }

    #[test]
    fn top_methods_resolve_names() {
        let mut program = Program::new();
        let mut m = Method::new("Hot.loop", 0, false);
        m.code.push(Insn::simple(Opcode::ReturnVoid));
        let id = program.add_method(m);
        let mut prof = Profiler::new();
        prof.record(id, 0, &Insn::simple(Opcode::IAdd));
        let tops = top_methods(&prof, &program, 4);
        assert_eq!(tops.len(), 1);
        assert_eq!(tops[0].name, "Hot.loop");
        assert!((tops[0].share - 1.0).abs() < 1e-12);
        assert!((top_share(&prof, 4) - 1.0).abs() < 1e-12);
    }
}

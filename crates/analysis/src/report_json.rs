//! Shared JSON assembly for execution reports and sweep telemetry.
//!
//! The bench artifacts (`BENCH_evaluation.json`, `BENCH_kernel.json`,
//! `BENCH_serve.json`) and the `javaflow-serve` wire protocol both
//! serialize [`ExecReport`]s and scheduler utilization. Hand-rolling the
//! strings in two places let the formats drift; every producer now calls
//! through here, so a response streamed by the server is byte-identical
//! to the same report serialized in-process.
//!
//! The crate is std-only, so this is a tiny hand-rolled emitter, not a
//! serde stand-in: integers via `Display`, floats via [`f64_json`]
//! (shortest round-trip, `null` for non-finite — `NaN` is legitimate in
//! scripted float kernels but not in JSON), strings via [`json_escape`].

use javaflow_fabric::{ExecReport, NetReport, Outcome, RingReport};

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included). Control characters become `\u00XX`.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats one `f64` as a JSON value: shortest round-trip representation
/// for finite values, `null` for NaN/infinity (JSON has no spelling for
/// them, and a bare `NaN` poisons every downstream parser).
pub fn f64_json(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// One worker's scheduling telemetry, decoupled from the sweep scheduler
/// so this crate (which `core` depends on) can render it. `core` adapts
/// its `WorkerStats` into this via `SweepStats::utilization()`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerUtilization {
    /// Records this worker executed.
    pub records_done: u64,
    /// Wall time spent inside the per-record closure.
    pub busy_secs: f64,
    /// Batches claimed from the shared queue.
    pub batches: u64,
    /// Batches stolen from other workers' in-progress ranges.
    pub steals: u64,
}

/// Renders scheduling telemetry as the `"utilization"` array of the
/// `BENCH_*.json` artifacts: per-worker records/busy-time/batch/steal
/// counts. The layout is load-bearing — CI greps these keys.
pub fn utilization_json(workers: &[WorkerUtilization]) -> String {
    let mut out = String::from("[");
    for (i, w) in workers.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"worker\": {i}, \"records_done\": {}, \"busy_secs\": {:.3}, \"batches\": {}, \"steals\": {}}}",
            w.records_done, w.busy_secs, w.batches, w.steals,
        ));
    }
    out.push(']');
    out
}

/// Serializes one [`Outcome`] as a JSON string value (quotes included).
///
/// The variants carry arbitrary payloads (`Value`s, `JvmError`s), so the
/// wire shape is the escaped `Debug` rendering — the same string the
/// determinism tests compare, which makes "byte-identical responses"
/// checkable end to end.
pub fn outcome_json(o: &Outcome) -> String {
    format!("\"{}\"", json_escape(&format!("{o:?}")))
}

fn ring_json(r: &RingReport) -> String {
    format!(
        "{{\"requests\": {}, \"wait_ticks\": {}, \"max_queue\": {}}}",
        r.requests, r.wait_ticks, r.max_queue
    )
}

/// Serializes one [`NetReport`] (link-level contended-run statistics,
/// Table 29) as a JSON object.
pub fn net_report_json(n: &NetReport) -> String {
    let mut hotspots = String::from("[");
    for (i, h) in n.hotspots.iter().enumerate() {
        if i > 0 {
            hotspots.push_str(", ");
        }
        hotspots.push_str(&format!(
            "{{\"x\": {}, \"y\": {}, \"flits\": {}, \"stall_ticks\": {}}}",
            h.x, h.y, h.flits, h.stall_ticks
        ));
    }
    hotspots.push(']');
    format!(
        "{{\"mesh_flits\": {}, \"mesh_hops\": {}, \"stall_ticks\": {}, \"max_queue_depth\": {}, \"mean_queue_depth\": {}, \"hotspots\": {hotspots}, \"memory_ring\": {}, \"gpp_ring\": {}}}",
        n.mesh_flits,
        n.mesh_hops,
        n.stall_ticks,
        n.max_queue_depth,
        f64_json(n.mean_queue_depth),
        ring_json(&n.memory_ring),
        ring_json(&n.gpp_ring),
    )
}

/// Serializes one [`ExecReport`] as a compact single-line JSON object,
/// every field in declaration order, `"net"` as `null` for ideal runs.
pub fn exec_report_json(r: &ExecReport) -> String {
    format!(
        "{{\"outcome\": {}, \"mesh_cycles\": {}, \"executed\": {}, \"relay_fires\": {}, \"static_covered\": {}, \"coverage\": {}, \"ipc\": {}, \"frac_cycles_ge2\": {}, \"frac_cycles_ge1\": {}, \"serial_msgs\": {}, \"mesh_msgs\": {}, \"events\": {}, \"events_skipped\": {}, \"class_fires\": [{}, {}, {}, {}], \"wheel_high_water\": {}, \"wheel_pushes\": {}, \"declined\": {}, \"net\": {}}}",
        outcome_json(&r.outcome),
        r.mesh_cycles,
        r.executed,
        r.relay_fires,
        r.static_covered,
        f64_json(r.coverage),
        f64_json(r.ipc),
        f64_json(r.frac_cycles_ge2),
        f64_json(r.frac_cycles_ge1),
        r.serial_msgs,
        r.mesh_msgs,
        r.events,
        r.events_skipped,
        r.class_fires[0],
        r.class_fires[1],
        r.class_fires[2],
        r.class_fires[3],
        r.wheel_high_water,
        r.wheel_pushes,
        r.declined,
        r.net.as_ref().map_or_else(|| "null".to_string(), net_report_json),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_control_bytes() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nfeed\ttab\rret"), "line\\nfeed\\ttab\\rret");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64_json(0.5), "0.5");
        assert_eq!(f64_json(2.0), "2.0");
        assert_eq!(f64_json(f64::NAN), "null");
        assert_eq!(f64_json(f64::INFINITY), "null");
        assert_eq!(f64_json(f64::NEG_INFINITY), "null");
        // Shortest round-trip: parsing the emitted text recovers the bits.
        let v = 0.1f64 + 0.2;
        assert_eq!(f64_json(v).parse::<f64>().unwrap().to_bits(), v.to_bits());
    }

    #[test]
    fn utilization_layout_matches_the_bench_artifacts() {
        let workers = [
            WorkerUtilization { records_done: 7, busy_secs: 0.1234, batches: 3, steals: 1 },
            WorkerUtilization { records_done: 5, busy_secs: 0.1, batches: 2, steals: 0 },
        ];
        assert_eq!(
            utilization_json(&workers),
            "[{\"worker\": 0, \"records_done\": 7, \"busy_secs\": 0.123, \"batches\": 3, \"steals\": 1}, \
             {\"worker\": 1, \"records_done\": 5, \"busy_secs\": 0.100, \"batches\": 2, \"steals\": 0}]"
        );
        assert_eq!(utilization_json(&[]), "[]");
    }

    #[test]
    fn exec_report_serializes_every_field() {
        let r = ExecReport {
            outcome: Outcome::Timeout,
            mesh_cycles: 10,
            executed: 20,
            relay_fires: 3,
            static_covered: 4,
            coverage: 0.5,
            ipc: f64::NAN,
            frac_cycles_ge2: 0.25,
            frac_cycles_ge1: 1.0,
            serial_msgs: 6,
            mesh_msgs: 7,
            events: 8,
            events_skipped: 9,
            class_fires: [1, 2, 3, 4],
            wheel_high_water: 11,
            wheel_pushes: 12,
            declined: 0,
            net: None,
        };
        let json = exec_report_json(&r);
        assert!(json.starts_with("{\"outcome\": \"Timeout\", \"mesh_cycles\": 10"));
        assert!(json.contains("\"ipc\": null"), "NaN must serialize as null: {json}");
        assert!(json.contains("\"class_fires\": [1, 2, 3, 4]"));
        assert!(json.ends_with("\"declined\": 0, \"net\": null}"));
    }
}

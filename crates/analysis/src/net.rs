//! Interconnect observability: aggregation of per-run [`NetReport`]s and
//! the mesh hotspot heatmap.
//!
//! Contended runs (`NetKind::Contended`) attach link-level statistics to
//! every `ExecReport`; a population sweep produces thousands of them. This
//! module folds them into one [`NetSummary`] per configuration — total link
//! occupancy, stall cycles, queue depths, ring waits — and renders the
//! per-router traffic as an ASCII heatmap so saturated rows/columns of the
//! mesh are visible at a glance.

use std::fmt::Write as _;

use javaflow_fabric::NetReport;

/// Aggregate interconnect usage over many contended runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetSummary {
    /// Runs that carried a report.
    pub runs: usize,
    /// Mesh messages routed.
    pub mesh_flits: u64,
    /// Link traversals.
    pub mesh_hops: u64,
    /// Ticks flits stalled behind busy links / full FIFOs.
    pub stall_ticks: u64,
    /// Largest link queue depth observed in any run.
    pub max_queue_depth: u64,
    /// Hop-weighted mean queue depth across all runs.
    pub mean_queue_depth: f64,
    /// Memory-ring totals: requests, wait ticks, max station queue.
    pub memory_ring: (u64, u64, u64),
    /// GPP-ring totals: requests, wait ticks, max station queue.
    pub gpp_ring: (u64, u64, u64),
    /// Per-router accumulated `(x, y, flits, stall_ticks)`, address-ordered.
    pub per_node: Vec<(u32, u32, u64, u64)>,
}

impl NetSummary {
    /// Folds reports into one summary.
    pub fn of<'a>(reports: impl IntoIterator<Item = &'a NetReport>) -> NetSummary {
        let mut s = NetSummary::default();
        let mut depth_weighted = 0.0f64;
        let mut cells: std::collections::BTreeMap<(u32, u32), (u64, u64)> =
            std::collections::BTreeMap::new();
        for r in reports {
            s.runs += 1;
            s.mesh_flits += r.mesh_flits;
            s.mesh_hops += r.mesh_hops;
            s.stall_ticks += r.stall_ticks;
            s.max_queue_depth = s.max_queue_depth.max(r.max_queue_depth);
            depth_weighted += r.mean_queue_depth * r.mesh_hops as f64;
            s.memory_ring.0 += r.memory_ring.requests;
            s.memory_ring.1 += r.memory_ring.wait_ticks;
            s.memory_ring.2 = s.memory_ring.2.max(r.memory_ring.max_queue);
            s.gpp_ring.0 += r.gpp_ring.requests;
            s.gpp_ring.1 += r.gpp_ring.wait_ticks;
            s.gpp_ring.2 = s.gpp_ring.2.max(r.gpp_ring.max_queue);
            for h in &r.hotspots {
                let cell = cells.entry((h.y, h.x)).or_insert((0, 0));
                cell.0 += h.flits;
                cell.1 += h.stall_ticks;
            }
        }
        if s.mesh_hops > 0 {
            s.mean_queue_depth = depth_weighted / s.mesh_hops as f64;
        }
        s.per_node =
            cells.into_iter().map(|((y, x), (flits, stall))| (x, y, flits, stall)).collect();
        s
    }

    /// Mean stall ticks per link traversal — the headline congestion
    /// number (0 = wire-speed).
    #[must_use]
    pub fn stall_per_hop(&self) -> f64 {
        if self.mesh_hops == 0 {
            0.0
        } else {
            self.stall_ticks as f64 / self.mesh_hops as f64
        }
    }

    /// The `top` busiest routers by flits routed, then by stall.
    #[must_use]
    pub fn hotspots(&self, top: usize) -> Vec<(u32, u32, u64, u64)> {
        let mut v = self.per_node.clone();
        v.sort_by(|a, b| (b.2, b.3).cmp(&(a.2, a.3)).then((a.0, a.1).cmp(&(b.0, b.1))));
        v.truncate(top);
        v
    }
}

/// Renders per-router traffic as a `width`-column ASCII heatmap, darkest
/// glyph = busiest router. Rows are mesh Y coordinates (the serial snake
/// descends); routers that saw no traffic print `·`.
#[must_use]
pub fn mesh_heatmap(summary: &NetSummary, width: u32) -> String {
    let mut out = String::new();
    if summary.per_node.is_empty() || width == 0 {
        let _ = writeln!(out, "(no mesh traffic recorded)");
        return out;
    }
    const RAMP: [char; 8] = ['.', ':', '-', '=', '+', '*', '#', '@'];
    let max = summary.per_node.iter().map(|c| c.2).max().unwrap_or(1).max(1);
    let height = summary.per_node.iter().map(|c| c.1).max().unwrap_or(0) + 1;
    let mut grid = vec![None; (width as usize) * (height as usize)];
    for &(x, y, flits, _) in &summary.per_node {
        if x < width {
            grid[y as usize * width as usize + x as usize] = Some(flits);
        }
    }
    let _ = writeln!(out, "mesh occupancy (x →, y ↓; max {max} flits/router):");
    for y in 0..height {
        let _ = write!(out, "  y{y:<3} ");
        for x in 0..width {
            let ch = match grid[y as usize * width as usize + x as usize] {
                None | Some(0) => '·',
                Some(f) => {
                    // Index the ramp proportionally; the busiest cell gets
                    // the last glyph.
                    let idx = ((f * (RAMP.len() as u64 - 1)).div_ceil(max)) as usize;
                    RAMP[idx.min(RAMP.len() - 1)]
                }
            };
            let _ = write!(out, "{ch}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use javaflow_fabric::{NodeNetStat, RingReport};

    fn report(flits: u64, stall: u64) -> NetReport {
        NetReport {
            mesh_flits: flits,
            mesh_hops: flits * 2,
            stall_ticks: stall,
            max_queue_depth: 3,
            mean_queue_depth: 1.5,
            hotspots: vec![
                NodeNetStat { x: 0, y: 0, flits, stall_ticks: stall },
                NodeNetStat { x: 1, y: 0, flits: flits / 2, stall_ticks: 0 },
            ],
            memory_ring: RingReport { requests: 4, wait_ticks: 6, max_queue: 2 },
            gpp_ring: RingReport::default(),
        }
    }

    #[test]
    fn summary_accumulates() {
        let rs = [report(10, 4), report(6, 2)];
        let s = NetSummary::of(&rs);
        assert_eq!(s.runs, 2);
        assert_eq!(s.mesh_flits, 16);
        assert_eq!(s.mesh_hops, 32);
        assert_eq!(s.stall_ticks, 6);
        assert_eq!(s.max_queue_depth, 3);
        assert!((s.mean_queue_depth - 1.5).abs() < 1e-12);
        assert_eq!(s.memory_ring, (8, 12, 2));
        // Cells merged across runs: (0,0) has 16 flits, (1,0) has 8.
        assert_eq!(s.per_node, vec![(0, 0, 16, 6), (1, 0, 8, 0)]);
        assert!((s.stall_per_hop() - 6.0 / 32.0).abs() < 1e-12);
        assert_eq!(s.hotspots(1), vec![(0, 0, 16, 6)]);
    }

    #[test]
    fn heatmap_renders_grid() {
        let rs = [report(10, 4)];
        let s = NetSummary::of(&rs);
        let map = mesh_heatmap(&s, 4);
        assert!(map.contains("y0"));
        // Busiest cell gets the darkest glyph; idle cells get '·'.
        assert!(map.contains('@'), "{map}");
        assert!(map.contains('·'), "{map}");
    }

    #[test]
    fn empty_summary_is_harmless() {
        let s = NetSummary::of(std::iter::empty());
        assert_eq!(s.runs, 0);
        assert_eq!(s.stall_per_hop(), 0.0);
        assert!(mesh_heatmap(&s, 10).contains("no mesh traffic"));
    }
}

//! Static and dynamic analyses for the JavaFlow evaluation.
//!
//! These are the Chapter 5 instruments:
//!
//! * [`Summary`] / [`pearson`] — the aggregate-row statistics every results
//!   table reports (Tables 9–14, 20–26) and the Table 23 correlations;
//! * [`StaticMix`] — the Table 6 node-kind mix that sizes heterogeneous
//!   fabrics;
//! * [`DynamicMix`] — the Table 2 dynamic instruction-mix columns;
//! * [`Utilization`] / [`top_methods`] — the Table 1/3/4 method-utilization
//!   analysis showing a handful of methods dominate each benchmark;
//! * [`NetSummary`] / [`mesh_heatmap`] — link-level interconnect usage of
//!   contended (`--net contended`) runs: occupancy, stall cycles, queue
//!   depths, ring waits, and the mesh hotspot heatmap;
//! * [`trace`] — replay of recorded simulator traces: recompute the
//!   Table 21/29 numbers from the event stream, cross-check them against
//!   the live counters, and export Chrome-trace / Perfetto JSON.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod mix;
mod net;
pub mod report_json;
mod stats;
pub mod trace;
mod utilization;

pub use mix::{DynamicMix, StaticMix};
pub use net::{mesh_heatmap, NetSummary};
pub use stats::{pearson, Summary};
pub use utilization::{top_methods, top_share, TopMethod, Utilization};

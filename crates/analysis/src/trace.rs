//! Replays recorded simulator traces.
//!
//! A [`TraceEvent`] stream (from a [`javaflow_fabric::RingRecorder`] fed to
//! [`javaflow_fabric::execute_with_sink`]) carries enough to recompute the
//! run's [`ExecReport`] — the Table 21 utilization numbers and, for
//! contended runs, the full Table 29 [`NetReport`] link statistics —
//! without re-simulating. [`replay`] does that reconstruction,
//! [`verify_replay`] cross-checks it bit-for-bit against the live report,
//! and [`chrome_trace_json`] renders one or more recordings as a
//! Chrome-trace / Perfetto JSON document.
//!
//! Two live counters are deliberately *not* replayable and are skipped by
//! [`verify_replay`]: `events` (scheduler pops are an engine artifact, not
//! a semantic quantity) and `events_skipped` / `wheel_*` (fast-forward
//! bookkeeping; an active sink forces the naive walk anyway).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use javaflow_fabric::net::{NetReport, NodeNetStat, RingReport};
use javaflow_fabric::trace::{
    decode_value, unpack_coords, WARN_COMPILE_DATA_MODE, WARN_COMPILE_GPP, WARN_COMPILE_NET_ORDER,
    WARN_FF_GPP, WARN_FF_NET_ORDER,
};
use javaflow_fabric::{ExecReport, Outcome, TraceEvent, TraceKind};

/// An [`ExecReport`] reconstructed purely from a recorded event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// Outcome code: 0 returned, 1 timeout, 2 deadlock, 3 exception.
    pub outcome_code: u32,
    /// Elapsed mesh cycles.
    pub mesh_cycles: u64,
    /// Dynamic instructions fired.
    pub executed: u64,
    /// Relay firings.
    pub relay_fires: u64,
    /// Distinct static instructions that fired.
    pub static_covered: usize,
    /// `static_covered / active static instructions`.
    pub coverage: f64,
    /// Instructions per mesh cycle.
    pub ipc: f64,
    /// Fraction of elapsed ticks with ≥ 2 instructions executing.
    pub frac_cycles_ge2: f64,
    /// Fraction of elapsed ticks with ≥ 1 instruction executing.
    pub frac_cycles_ge1: f64,
    /// Serial messages sent.
    pub serial_msgs: u64,
    /// Mesh messages sent.
    pub mesh_msgs: u64,
    /// Fires per timing class.
    pub class_fires: [u64; 4],
    /// Semantic fast-forward / compile decline bitmask, reconstructed
    /// from the recorded `Warn` events (bit `1 << code`) — mirrors
    /// `ExecReport::declined`.
    pub declined: u8,
    /// Link statistics, reconstructed when the run was contended.
    pub net: Option<NetReport>,
}

/// Reconstructs the run report from one recorded event stream.
///
/// The stream must hold exactly one run: every event up to and including
/// its [`TraceKind::End`] marker.
///
/// # Errors
///
/// If the stream has no `End` marker, more than one, or events after it.
pub fn replay(events: &[TraceEvent]) -> Result<Replay, String> {
    let mut executed = 0u64;
    let mut relay_fires = 0u64;
    let mut serial_msgs = 0u64;
    let mut mesh_msgs = 0u64;
    let mut class_fires = [0u64; 4];
    let mut covered = BTreeSet::new();
    // Busy-time replay mirrors the kernel's `set_busy`: accumulate the
    // interval since the previous busy-count change at every Fire and
    // Retire; the tail interval up to End is never accumulated.
    let (mut busy, mut last, mut acc_ge1, mut acc_ge2) = (0u64, 0u64, 0u64, 0u64);
    // Link statistics.
    let (mut hops, mut stall, mut depth_sum, mut max_depth) = (0u64, 0u64, 0u64, 0u64);
    let mut routers: BTreeMap<(u32, u32), (u64, u64)> = BTreeMap::new();
    let mut rings = [RingReport { requests: 0, wait_ticks: 0, max_queue: 0 }; 2];
    let mut declined = 0u8;
    let mut end: Option<&TraceEvent> = None;
    for ev in events {
        if end.is_some() {
            return Err(format!("event {:?} after the End marker", ev.kind));
        }
        match ev.kind {
            TraceKind::TokenSend => serial_msgs += 1,
            TraceKind::MeshSend => mesh_msgs += 1,
            TraceKind::Fire => {
                let dt = ev.tick - last;
                acc_ge1 += if busy >= 1 { dt } else { 0 };
                acc_ge2 += if busy >= 2 { dt } else { 0 };
                last = ev.tick;
                busy += 1;
                executed += 1;
                covered.insert(ev.node);
                let class = ev.arg as usize;
                if class >= 4 {
                    return Err(format!("Fire @{} with timing class {class}", ev.node));
                }
                class_fires[class] += 1;
            }
            TraceKind::Retire => {
                let dt = ev.tick - last;
                acc_ge1 += if busy >= 1 { dt } else { 0 };
                acc_ge2 += if busy >= 2 { dt } else { 0 };
                last = ev.tick;
                busy = busy.checked_sub(1).ok_or("Retire without a matching Fire")?;
            }
            TraceKind::RelayFire => relay_fires += 1,
            TraceKind::LinkHop => {
                hops += 1;
                stall += ev.data;
                depth_sum += ev.aux;
                max_depth = max_depth.max(ev.aux);
                let r = routers.entry((ev.arg, ev.node)).or_insert((0, 0));
                r.0 += 1;
                r.1 += ev.data;
            }
            TraceKind::RingBoard => {
                let ring =
                    rings.get_mut(ev.arg as usize).ok_or(format!("unknown ring {}", ev.arg))?;
                ring.requests += 1;
                ring.wait_ticks += ev.data;
                ring.max_queue = ring.max_queue.max(ev.aux);
            }
            TraceKind::End => end = Some(ev),
            TraceKind::Warn => {
                // Semantic declines fold back into the report bitmask.
                if (1..8).contains(&ev.arg) {
                    declined |= 1 << ev.arg;
                }
            }
            // Observation-only events carry no report state.
            TraceKind::ServiceDone | TraceKind::RegObserve | TraceKind::MemObserve => {}
        }
    }
    let end = end.ok_or("no End marker in the recording")?;
    if end.data == 0 {
        return Err("End marker with zero ticks per mesh cycle".into());
    }
    let ticks = end.tick.max(1);
    let mesh_cycles = ticks.div_ceil(end.data);
    let active_static = (end.aux >> 1).max(1);
    let net = if end.aux & 1 == 1 {
        // Hotspots are address-ordered in the live report: linear index
        // `y * width + x`, which (y, x) lexicographic order reproduces
        // without knowing the width.
        let hotspots = routers
            .iter()
            .map(|(&(y, x), &(flits, stall_ticks))| NodeNetStat { x, y, flits, stall_ticks })
            .collect();
        Some(NetReport {
            mesh_flits: mesh_msgs,
            mesh_hops: hops,
            stall_ticks: stall,
            max_queue_depth: max_depth,
            mean_queue_depth: if hops == 0 { 0.0 } else { depth_sum as f64 / hops as f64 },
            hotspots,
            memory_ring: rings[0],
            gpp_ring: rings[1],
        })
    } else {
        None
    };
    Ok(Replay {
        outcome_code: end.arg,
        mesh_cycles,
        executed,
        relay_fires,
        static_covered: covered.len(),
        coverage: covered.len() as f64 / active_static as f64,
        ipc: executed as f64 / mesh_cycles as f64,
        frac_cycles_ge2: acc_ge2 as f64 / ticks as f64,
        frac_cycles_ge1: acc_ge1 as f64 / ticks as f64,
        serial_msgs,
        mesh_msgs,
        class_fires,
        declined,
        net,
    })
}

/// Splits a multi-run recording (e.g. from
/// `FabricManager::run_all_scripted_traced`) at its `End` markers.
#[must_use]
pub fn split_runs(events: &[TraceEvent]) -> Vec<&[TraceEvent]> {
    let mut runs = Vec::new();
    let mut start = 0;
    for (i, ev) in events.iter().enumerate() {
        if ev.kind == TraceKind::End {
            runs.push(&events[start..=i]);
            start = i + 1;
        }
    }
    runs
}

fn outcome_code(o: &Outcome) -> u32 {
    match o {
        Outcome::Returned(_) => 0,
        Outcome::Timeout => 1,
        Outcome::Deadlock => 2,
        Outcome::Exception(_) => 3,
    }
}

/// Cross-checks a replayed report against the live one, bit-for-bit.
///
/// Floats are compared by bit pattern — the replay recomputes the same
/// divisions from the same integers, so even the rounding must agree.
/// `events`, `events_skipped`, and the wheel counters are engine
/// bookkeeping with no trace representation and are not compared.
///
/// # Errors
///
/// Names the first mismatching field.
pub fn verify_replay(replayed: &Replay, live: &ExecReport) -> Result<(), String> {
    fn eq<T: PartialEq + std::fmt::Debug>(name: &str, a: T, b: T) -> Result<(), String> {
        if a == b {
            Ok(())
        } else {
            Err(format!("{name}: replay {a:?} != live {b:?}"))
        }
    }
    eq("outcome", replayed.outcome_code, outcome_code(&live.outcome))?;
    eq("mesh_cycles", replayed.mesh_cycles, live.mesh_cycles)?;
    eq("executed", replayed.executed, live.executed)?;
    eq("relay_fires", replayed.relay_fires, live.relay_fires)?;
    eq("static_covered", replayed.static_covered, live.static_covered)?;
    eq("coverage", replayed.coverage.to_bits(), live.coverage.to_bits())?;
    eq("ipc", replayed.ipc.to_bits(), live.ipc.to_bits())?;
    eq("frac_cycles_ge2", replayed.frac_cycles_ge2.to_bits(), live.frac_cycles_ge2.to_bits())?;
    eq("frac_cycles_ge1", replayed.frac_cycles_ge1.to_bits(), live.frac_cycles_ge1.to_bits())?;
    eq("serial_msgs", replayed.serial_msgs, live.serial_msgs)?;
    eq("mesh_msgs", replayed.mesh_msgs, live.mesh_msgs)?;
    eq("class_fires", replayed.class_fires, live.class_fires)?;
    eq("declined", replayed.declined, live.declined)?;
    eq("net", &replayed.net, &live.net)?;
    Ok(())
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One Chrome-trace duration (`ph:"X"`) event: a slice of wall/sim time
/// on a `(pid, tid)` row. The flight recorder and the simulator-trace
/// export both render through [`chrome_json`] with these.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// Process row (1-based in practice; 0 is fine too).
    pub pid: u32,
    /// Thread row within the process.
    pub tid: u32,
    /// Start timestamp, in trace microseconds.
    pub ts: u64,
    /// Duration, in trace microseconds.
    pub dur: u64,
    /// Event label (escaped by the renderer).
    pub name: String,
    /// Pre-rendered JSON object for the `args` field.
    pub args: String,
}

/// Renders process/thread name metadata plus duration spans as a
/// Chrome-trace / Perfetto JSON document. `processes` maps pid → display
/// name; `threads` maps `(pid, tid)` → row name. Span `args` strings are
/// embedded verbatim and must already be valid JSON objects.
#[must_use]
pub fn chrome_json(
    processes: &[(u32, String)],
    threads: &[((u32, u32), String)],
    spans: &[TraceSpan],
) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: String, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&s);
    };
    for (pid, name) in processes {
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                esc(name)
            ),
            &mut out,
        );
    }
    for ((pid, tid), name) in threads {
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                esc(name)
            ),
            &mut out,
        );
    }
    for e in spans {
        push(
            format!(
                "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\
                 \"name\":\"{}\",\"args\":{}}}",
                e.pid,
                e.tid,
                e.ts,
                e.dur,
                esc(&e.name),
                e.args
            ),
            &mut out,
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Renders recordings as a Chrome-trace / Perfetto JSON document.
///
/// Each `(name, events)` pair becomes one process (pid 1, 2, …); inside
/// it, node rows are threads `1000 + y`, token kinds are threads
/// `2000 + kind`, rings `3000 + ring`, and router rows `4000 + y`.
/// Ticks map to microseconds, so a mesh cycle of `mesh_cycle_ticks()`
/// ticks shows as that many µs.
#[must_use]
pub fn chrome_trace_json(runs: &[(&str, &[TraceEvent])]) -> String {
    let mut emits: Vec<TraceSpan> = Vec::new();
    let mut threads: BTreeMap<(u32, u32), String> = BTreeMap::new();
    for (ri, (_, events)) in runs.iter().enumerate() {
        let pid = ri as u32 + 1;
        // A node is busy from its Fire to its Retire; the simulator never
        // overlaps fires of one node, so a single open-slot map suffices.
        let mut open: BTreeMap<u32, (u64, u32, u64)> = BTreeMap::new();
        for ev in *events {
            match ev.kind {
                TraceKind::Fire => {
                    open.insert(ev.node, (ev.tick, ev.arg, ev.aux));
                }
                TraceKind::Retire => {
                    if let Some((start, class, coords)) = open.remove(&ev.node) {
                        // The firing row comes from the placement coords
                        // stashed in the Fire event.
                        let (_, y) = unpack_coords(coords);
                        let tid = 1000 + y;
                        threads.entry((pid, tid)).or_insert_with(|| format!("row {y}"));
                        emits.push(TraceSpan {
                            pid,
                            tid,
                            ts: start,
                            dur: ev.tick - start,
                            name: format!("@{} fire", ev.node),
                            args: format!("{{\"class\":{class}}}"),
                        });
                    }
                }
                TraceKind::TokenSend => {
                    let code = ev.data & 7;
                    let (tid, label) = match code {
                        0 => (2000, "head".to_string()),
                        1 => (2001, "tail".to_string()),
                        2 => (2002, format!("mem#{}", ev.data >> 3)),
                        _ => (2003, format!("reg r{}", ev.data >> 3)),
                    };
                    threads.entry((pid, tid)).or_insert_with(|| {
                        ["head tokens", "tail tokens", "memory tokens", "register tokens"]
                            [code.min(3) as usize]
                            .to_string()
                    });
                    emits.push(TraceSpan {
                        pid,
                        tid,
                        ts: ev.tick,
                        dur: ev.aux.saturating_sub(ev.tick),
                        name: label,
                        args: format!("{{\"to\":{}}}", ev.arg),
                    });
                }
                TraceKind::MeshSend => {
                    let tid = 2004;
                    threads.entry((pid, tid)).or_insert_with(|| "mesh messages".to_string());
                    let (fx, fy) = unpack_coords(ev.data);
                    emits.push(TraceSpan {
                        pid,
                        tid,
                        ts: ev.tick,
                        dur: ev.aux.saturating_sub(ev.tick),
                        name: format!("mesh to @{}", ev.node),
                        args: format!("{{\"from\":[{fx},{fy}]}}"),
                    });
                }
                TraceKind::RingBoard => {
                    let tid = 3000 + ev.arg;
                    threads.entry((pid, tid)).or_insert_with(|| {
                        (if ev.arg == 0 { "memory ring" } else { "gpp ring" }).to_string()
                    });
                    emits.push(TraceSpan {
                        pid,
                        tid,
                        ts: ev.tick,
                        dur: ev.data,
                        name: "board".to_string(),
                        args: format!("{{\"queued\":{}}}", ev.aux),
                    });
                }
                TraceKind::LinkHop if ev.data > 0 => {
                    let tid = 4000 + ev.arg;
                    threads.entry((pid, tid)).or_insert_with(|| format!("router row {}", ev.arg));
                    emits.push(TraceSpan {
                        pid,
                        tid,
                        ts: ev.tick,
                        dur: ev.data,
                        name: format!("stall ({},{})", ev.node, ev.arg),
                        args: format!("{{\"depth\":{}}}", ev.aux),
                    });
                }
                TraceKind::Warn => {
                    let tid = 5000;
                    threads.entry((pid, tid)).or_insert_with(|| "warnings".to_string());
                    let why = match ev.arg {
                        WARN_FF_NET_ORDER => "fast-forward disabled: net not order-free",
                        WARN_FF_GPP => "fast-forward disabled: non-stub GPP",
                        WARN_COMPILE_NET_ORDER => "compile declined: net not order-free",
                        WARN_COMPILE_GPP => "compile declined: non-stub GPP",
                        WARN_COMPILE_DATA_MODE => "compile declined: data-driven branches",
                        _ => "warning",
                    };
                    emits.push(TraceSpan {
                        pid,
                        tid,
                        ts: ev.tick,
                        dur: 0,
                        name: why.to_string(),
                        args: "{}".to_string(),
                    });
                }
                TraceKind::RegObserve | TraceKind::MemObserve => {
                    let tid = 5001;
                    threads.entry((pid, tid)).or_insert_with(|| "observations".to_string());
                    let v = decode_value(ev.aux, ev.data);
                    emits.push(TraceSpan {
                        pid,
                        tid,
                        ts: ev.tick,
                        dur: 0,
                        name: format!(
                            "@{} {} {v}",
                            ev.node,
                            if ev.kind == TraceKind::RegObserve { "reg" } else { "store" }
                        ),
                        args: "{}".to_string(),
                    });
                }
                TraceKind::LinkHop
                | TraceKind::RelayFire
                | TraceKind::ServiceDone
                | TraceKind::End => {}
            }
        }
    }
    let processes: Vec<(u32, String)> = runs
        .iter()
        .enumerate()
        .map(|(ri, (name, _))| (ri as u32 + 1, (*name).to_string()))
        .collect();
    let threads: Vec<((u32, u32), String)> = threads.into_iter().collect();
    chrome_json(&processes, &threads, &emits)
}

//! Instruction-mix analyses: the static mix of Table 6 and the dynamic mix
//! columns of Table 2.

use javaflow_bytecode::{InstructionGroup, Method, NodeKind};
use javaflow_interp::MethodProfile;

/// Static mix of a method or method set, as node-kind fractions
/// (Table 6's %Arith / %Float / %Control / %Storage columns).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StaticMix {
    /// Fraction handled by arithmetic nodes.
    pub arith: f64,
    /// Fraction handled by floating-point nodes.
    pub float: f64,
    /// Fraction handled by control nodes.
    pub control: f64,
    /// Fraction handled by storage nodes.
    pub storage: f64,
    /// Total static instructions.
    pub total: usize,
}

impl StaticMix {
    /// Computes the static mix over a set of methods.
    #[must_use]
    pub fn of<'m>(methods: impl IntoIterator<Item = &'m Method>) -> StaticMix {
        let mut counts = [0usize; 4];
        let mut total = 0usize;
        for m in methods {
            for insn in &m.code {
                let k = match insn.group().node_kind() {
                    NodeKind::Arith => 0,
                    NodeKind::Float => 1,
                    NodeKind::Control => 2,
                    NodeKind::Storage => 3,
                };
                counts[k] += 1;
                total += 1;
            }
        }
        if total == 0 {
            return StaticMix::default();
        }
        let f = |k: usize| counts[k] as f64 / total as f64;
        StaticMix { arith: f(0), float: f(1), control: f(2), storage: f(3), total }
    }
}

/// Dynamic mix columns of Table 2, as fractions of the dynamic count.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DynamicMix {
    /// Local reads/writes/incs plus stack moves (the "Locals+Stack" column
    /// — all folding candidates).
    pub locals_stack: f64,
    /// Fixed-point arithmetic and conversions.
    pub arith_fixed: f64,
    /// Floating-point arithmetic.
    pub arith_float: f64,
    /// Unordered constant-pool reads ("Constants-Stg").
    pub constants: f64,
    /// Ordered array/field storage operations.
    pub storage: f64,
    /// Conditional and unconditional jumps.
    pub control: f64,
    /// Calls and returns.
    pub calls: f64,
    /// Object/special operations requiring the GPP.
    pub special: f64,
    /// Total dynamic instructions.
    pub total: u64,
}

impl DynamicMix {
    /// Aggregates profiles into the Table 2 columns.
    #[must_use]
    pub fn of<'p>(profiles: impl IntoIterator<Item = &'p MethodProfile>) -> DynamicMix {
        let mut by_group: std::collections::HashMap<InstructionGroup, u64> =
            std::collections::HashMap::new();
        for p in profiles {
            for (g, c) in p.by_group() {
                *by_group.entry(g).or_insert(0) += c;
            }
        }
        let total: u64 = by_group.values().sum();
        if total == 0 {
            return DynamicMix::default();
        }
        let g = |keys: &[InstructionGroup]| -> f64 {
            keys.iter().map(|k| by_group.get(k).copied().unwrap_or(0)).sum::<u64>() as f64
                / total as f64
        };
        use InstructionGroup as G;
        DynamicMix {
            locals_stack: g(&[G::LocalRead, G::LocalWrite, G::LocalInc, G::ArithMove]),
            arith_fixed: g(&[G::ArithInteger, G::FloatConversion]),
            arith_float: g(&[G::FloatArith]),
            constants: g(&[G::MemConst]),
            storage: g(&[G::MemRead, G::MemWrite]),
            control: g(&[G::ControlFlow]),
            calls: g(&[G::Call, G::Return]),
            special: g(&[G::Special]),
            total,
        }
    }

    /// Sum of all fractions (≈ 1.0 for a sanity check).
    #[must_use]
    pub fn fraction_sum(&self) -> f64 {
        self.locals_stack
            + self.arith_fixed
            + self.arith_float
            + self.constants
            + self.storage
            + self.control
            + self.calls
            + self.special
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use javaflow_bytecode::{Insn, Opcode, Operand};

    #[test]
    fn static_mix_fractions() {
        let mut m = Method::new("t", 0, false);
        m.max_locals = 1;
        m.code = vec![
            Insn::simple(Opcode::IConst0),               // arith
            Insn::simple(Opcode::DConst0),               // arith (move)
            Insn::simple(Opcode::DConst1),               // arith
            Insn::simple(Opcode::DAdd),                  // float
            Insn::new(Opcode::Goto, Operand::Target(5)), // control
            Insn::simple(Opcode::ReturnVoid),            // control
        ];
        let mix = StaticMix::of([&m]);
        assert_eq!(mix.total, 6);
        assert!((mix.arith - 0.5).abs() < 1e-12);
        assert!((mix.float - 1.0 / 6.0).abs() < 1e-12);
        assert!((mix.control - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(mix.storage, 0.0);
    }

    #[test]
    fn dynamic_mix_sums_to_one() {
        let mut p = javaflow_interp::Profiler::new();
        let m = javaflow_bytecode::MethodId(0);
        p.record(m, 0, &Insn::simple(Opcode::IAdd));
        p.record(m, 1, &Insn::simple(Opcode::DMul));
        p.record(m, 2, &Insn::simple(Opcode::ILoad0));
        p.record(
            m,
            3,
            &Insn::new(
                Opcode::GetField,
                Operand::Field(javaflow_bytecode::FieldRef { class: 0, slot: 0 }),
            ),
        );
        let mix = DynamicMix::of(p.methods().values());
        assert_eq!(mix.total, 4);
        assert!((mix.fraction_sum() - 1.0).abs() < 1e-12);
        assert!((mix.storage - 0.25).abs() < 1e-12);
        assert!((mix.locals_stack - 0.25).abs() < 1e-12);
    }
}

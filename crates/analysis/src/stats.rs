//! Summary statistics and correlation, matching the aggregate rows the
//! dissertation's tables report (mean, standard deviation, median, max,
//! min; Pearson correlation for Table 23).

/// Five-number summary (plus mean/σ) of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Median (midpoint average for even n).
    pub median: f64,
    /// Maximum.
    pub max: f64,
    /// Minimum.
    pub min: f64,
    /// Sample size.
    pub n: usize,
}

impl Summary {
    /// Computes the summary of a sample. Returns `None` for empty input or
    /// when any value is non-finite.
    #[must_use]
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median =
            if n % 2 == 1 { sorted[n / 2] } else { (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0 };
        Some(Summary {
            mean,
            std_dev: var.sqrt(),
            median,
            max: *sorted.last().expect("non-empty"),
            min: sorted[0],
            n,
        })
    }
}

/// Pearson correlation coefficient of two equal-length samples (Table 23).
///
/// Returns `None` for mismatched lengths, n < 2, or degenerate variance.
#[must_use]
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx).powi(2);
        syy += (b - my).powi(2);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.min, 1.0);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.n, 4);
    }

    #[test]
    fn summary_odd_median() {
        let s = Summary::of(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn summary_rejects_bad_input() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate() {
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
    }
}

//! Round trip: record a run, replay the recording through
//! `analysis::trace`, and demand the reconstructed report match the live
//! one bit-for-bit — including the full Table 29 link statistics of a
//! contended run.

use javaflow_analysis::trace::{chrome_trace_json, replay, split_runs, verify_replay};
use javaflow_bytecode::asm;
use javaflow_fabric::net::NetKind;
use javaflow_fabric::{
    execute_with_sink, load, BranchMode, ExecParams, FabricConfig, RingRecorder, SimArena,
};
use javaflow_workloads::synthetic::{generate, hotspot, GenConfig};

fn params() -> ExecParams<'static, 'static> {
    ExecParams { mode: BranchMode::Bp1, max_mesh_cycles: 50_000, ..ExecParams::default() }
}

#[test]
fn replay_matches_live_report_on_hotspot() {
    let (program, id) = hotspot();
    let method = program.method(id);
    for config in [
        FabricConfig::compact2(),
        FabricConfig::sparse2(),
        FabricConfig::compact2().with_net(NetKind::Contended),
        FabricConfig::sparse2().with_net(NetKind::Contended),
    ] {
        let loaded = load(method, &config).expect("hotspot loads");
        let mut rec = RingRecorder::with_capacity(1 << 19);
        let live = execute_with_sink(&loaded, &config, params(), &mut SimArena::new(), &mut rec);
        assert_eq!(rec.dropped(), 0);
        let events = rec.events();
        let replayed =
            replay(&events).unwrap_or_else(|e| panic!("{}: replay failed: {e}", config.name));
        verify_replay(&replayed, &live)
            .unwrap_or_else(|e| panic!("{}: replay diverged: {e}", config.name));
        if config.net == NetKind::Contended {
            assert!(replayed.net.is_some(), "{}: contended run lost its net report", config.name);
        }
    }
}

#[test]
fn replay_matches_live_report_on_synthetic_population() {
    let (program, ids) = generate(&GenConfig { count: 12, ..GenConfig::default() });
    for config in [FabricConfig::compact2(), FabricConfig::compact2().with_net(NetKind::Contended)]
    {
        for &id in &ids {
            let method = program.method(id);
            let Ok(loaded) = load(method, &config) else { continue };
            let mut rec = RingRecorder::with_capacity(1 << 19);
            let live =
                execute_with_sink(&loaded, &config, params(), &mut SimArena::new(), &mut rec);
            assert_eq!(rec.dropped(), 0);
            let events = rec.events();
            let replayed = replay(&events)
                .unwrap_or_else(|e| panic!("{} {id:?}: replay failed: {e}", config.name));
            verify_replay(&replayed, &live)
                .unwrap_or_else(|e| panic!("{} {id:?}: replay diverged: {e}", config.name));
        }
    }
}

#[test]
fn split_runs_separates_consecutive_recordings() {
    let program = asm::assemble(
        ".method quad args=1 returns=true locals=1
           iload 0
           iconst_4
           imul
           ireturn
         .end",
    )
    .unwrap();
    let (_, method) = program.method_by_name("quad").unwrap();
    let config = FabricConfig::compact2();
    let loaded = load(method, &config).expect("quad loads");
    let mut rec = RingRecorder::with_capacity(1 << 16);
    let mut arena = SimArena::new();
    let r1 = execute_with_sink(&loaded, &config, params(), &mut arena, &mut rec);
    let r2 = execute_with_sink(&loaded, &config, params(), &mut arena, &mut rec);
    let events = rec.events();
    let runs = split_runs(&events);
    assert_eq!(runs.len(), 2, "two End markers ⇒ two runs");
    verify_replay(&replay(runs[0]).unwrap(), &r1).expect("first run replays");
    verify_replay(&replay(runs[1]).unwrap(), &r2).expect("second run replays");
    // The two runs of the same method are byte-identical streams.
    assert_eq!(runs[0], runs[1]);
}

#[test]
fn chrome_trace_json_is_well_formed() {
    let (program, id) = hotspot();
    let method = program.method(id);
    let config = FabricConfig::compact2().with_net(NetKind::Contended);
    let loaded = load(method, &config).expect("hotspot loads");
    let mut rec = RingRecorder::with_capacity(1 << 19);
    execute_with_sink(&loaded, &config, params(), &mut SimArena::new(), &mut rec);
    let events = rec.events();
    let json = chrome_trace_json(&[("hotspot", events.as_slice())]);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
    assert!(json.contains("\"ph\":\"M\""), "needs metadata events");
    assert!(json.contains("\"ph\":\"X\""), "needs span events");
    assert!(json.contains("process_name"));
    // Balanced braces/brackets outside strings — a cheap well-formedness
    // check that catches unescaped payloads without a JSON parser.
    let (mut depth, mut in_str, mut prev_escape) = (0i64, false, false);
    for c in json.chars() {
        match c {
            '"' if !prev_escape => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => depth -= 1,
            _ => {}
        }
        prev_escape = in_str && c == '\\' && !prev_escape;
        assert!(depth >= 0, "unbalanced JSON nesting");
    }
    assert_eq!(depth, 0, "unbalanced JSON nesting");
    assert!(!in_str, "unterminated string");
}

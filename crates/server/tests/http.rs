//! The HTTP observability sidecar end to end: `/metrics` Prometheus
//! exposition, `/healthz` in both states, `/varz`, 404s, and the flight
//! recorder's Chrome-trace dump.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

use javaflow_server::json::Json;
use javaflow_server::protocol::{read_frame, write_frame};
use javaflow_server::{Server, ServerConfig};

fn connect(server: &Server) -> TcpStream {
    let conn = TcpStream::connect(server.addr()).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    conn
}

fn send(conn: &mut TcpStream, json: &str) {
    write_frame(conn, json.as_bytes()).expect("send");
}

fn recv(conn: &mut TcpStream) -> String {
    read_frame(conn, usize::MAX)
        .expect("recv")
        .map(|f| String::from_utf8(f).expect("utf-8"))
        .expect("frame")
}

/// One `GET` against the sidecar; returns (status code, body).
fn http_get(server: &Server, path: &str) -> (u16, String) {
    let addr = server.metrics_addr().expect("metrics addr");
    let mut s = TcpStream::connect(addr).expect("http connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("http read");
    let status: u16 = resp
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {resp}"));
    let body = resp.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn observed_server() -> Server {
    Server::start(ServerConfig {
        metrics_addr: Some("127.0.0.1:0".to_string()),
        batch_records: 1,
        threads: 1,
        ..ServerConfig::default()
    })
    .expect("start")
}

fn run_sweep(server: &Server, id: u64, synthetic: u32) {
    let mut conn = connect(server);
    send(&mut conn, &format!("{{\"kind\": \"sweep\", \"id\": {id}, \"synthetic\": {synthetic}}}"));
    loop {
        let frame = recv(&mut conn);
        if frame.starts_with("{\"type\": \"done\"") {
            break;
        }
    }
}

#[test]
fn metrics_page_exposes_all_three_metric_families() {
    let server = observed_server();
    run_sweep(&server, 1, 4);

    // The span folds in just after the done frame is written — poll
    // until the phase histograms show it.
    let (mut status, mut page) = http_get(&server, "/metrics");
    for _ in 0..200 {
        if page.contains("javaflow_server_phase_execute_us_count 1") {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        (status, page) = http_get(&server, "/metrics");
    }
    assert_eq!(status, 200);
    // Server counters and gauges.
    assert!(page.contains("# TYPE javaflow_server_accepted_total counter"), "{page}");
    assert!(page.contains("javaflow_server_accepted_total 1"), "{page}");
    assert!(page.contains("javaflow_server_completed_total 1"), "{page}");
    assert!(page.contains("javaflow_server_draining 0"), "{page}");
    // Per-phase histograms with cumulative buckets.
    assert!(page.contains("# TYPE javaflow_server_phase_execute_us histogram"), "{page}");
    assert!(page.contains("javaflow_server_phase_execute_us_bucket{le=\"+Inf\"} 1"), "{page}");
    assert!(page.contains("javaflow_server_phase_execute_us_count 1"), "{page}");
    // Per-key sweep counters with the full label set.
    assert!(
        page.contains("javaflow_server_sweeps_by_key_total{synthetic=\"4\",max_mesh_cycles=\""),
        "{page}"
    );
    // Flight-recorder gauges.
    assert!(page.contains("javaflow_server_flight_entries"), "{page}");
    // The simulator's Table 30 registry.
    assert!(page.contains("javaflow_sim_"), "{page}");

    // A second identical sweep bumps the per-key counter.
    run_sweep(&server, 2, 4);
    let (_, page) = http_get(&server, "/metrics");
    let line = page
        .lines()
        .find(|l| l.starts_with("javaflow_server_sweeps_by_key_total{synthetic=\"4\""))
        .expect("per-key line");
    assert!(line.ends_with(" 2"), "{line}");

    // Query strings are ignored, unknown paths are 404, non-GET is 405.
    assert_eq!(http_get(&server, "/metrics?x=1").0, 200);
    assert_eq!(http_get(&server, "/nope").0, 404);

    server.request_shutdown();
    server.join().expect("join");
}

#[test]
fn varz_serves_the_metrics_frame_as_json() {
    let server = observed_server();
    run_sweep(&server, 1, 4);
    let (status, body) = http_get(&server, "/varz");
    assert_eq!(status, 200);
    let j = Json::parse(&body).expect("varz is json");
    assert_eq!(j.get("type").and_then(Json::as_str), Some("metrics"));
    let accepted = j.get("server").and_then(|s| s.get("accepted")).and_then(Json::as_u64);
    assert_eq!(accepted, Some(1));
    server.request_shutdown();
    server.join().expect("join");
}

#[test]
fn healthz_flips_to_draining_mid_drain() {
    let server = observed_server();
    let (status, body) = http_get(&server, "/healthz");
    assert_eq!((status, body.trim()), (200, "ok"));

    // Occupy the sweeper so the drain stays in progress while we probe.
    let mut conn = connect(&server);
    send(
        &mut conn,
        "{\"kind\": \"sweep\", \"id\": 5, \"synthetic\": 32, \"max_mesh_cycles\": 150000}",
    );
    assert!(recv(&mut conn).starts_with("{\"type\": \"accepted\""));
    assert!(recv(&mut conn).starts_with("{\"type\": \"batch\""));
    server.request_shutdown();
    let (status, body) = http_get(&server, "/healthz");
    assert_eq!((status, body.trim()), (503, "draining"));

    loop {
        let frame = recv(&mut conn);
        if frame.starts_with("{\"type\": \"done\"") {
            break;
        }
    }
    server.join().expect("join");
}

#[test]
fn flight_dump_is_valid_chrome_trace_json() {
    let server = observed_server();
    run_sweep(&server, 7, 4);
    // A failing request lands in the ring too.
    let mut conn = connect(&server);
    send(&mut conn, "not json at all");
    assert!(recv(&mut conn).contains("\"code\": 400"));

    // Spans land in the ring just after the terminal frame is written,
    // so give the server threads a moment to finish both records.
    let mut dump = server.flight_chrome_json();
    for _ in 0..200 {
        if dump.contains("sweep s4") && dump.contains("\"phase: execute\"") {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        dump = server.flight_chrome_json();
    }
    assert!(dump.starts_with("{\"traceEvents\":["), "{dump}");
    Json::parse(&dump).expect("dump parses as JSON");
    assert!(dump.contains("javaflow-serve"), "{dump}");
    assert!(
        dump.contains("#7 sweep s4 \\u2192 200") || dump.contains("#7 sweep s4 → 200"),
        "{dump}"
    );
    assert!(dump.contains("\"phase: execute\""), "{dump}");

    // And the file form SIGUSR1 uses.
    let path = std::env::temp_dir().join(format!("javaflow-flight-{}.json", std::process::id()));
    server.dump_flight(&path).expect("dump to file");
    let on_disk = std::fs::read_to_string(&path).expect("read dump");
    assert_eq!(on_disk, server.flight_chrome_json());
    let _ = std::fs::remove_file(&path);

    server.request_shutdown();
    server.join().expect("join");
}

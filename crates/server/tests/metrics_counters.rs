//! Deterministic outcome accounting: every induced terminal outcome
//! (2xx / 400 / 429 / 503 / 504) increments exactly one counter exactly
//! once, and the per-phase histograms count exactly the requests that
//! reached each phase.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

use javaflow_server::json::Json;
use javaflow_server::protocol::{read_frame, write_frame};
use javaflow_server::{Server, ServerConfig};

fn connect(server: &Server) -> TcpStream {
    let conn = TcpStream::connect(server.addr()).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    conn
}

fn send(conn: &mut TcpStream, json: &str) {
    write_frame(conn, json.as_bytes()).expect("send");
}

fn recv(conn: &mut TcpStream) -> String {
    read_frame(conn, usize::MAX)
        .expect("recv")
        .map(|f| String::from_utf8(f).expect("utf-8"))
        .expect("frame")
}

fn counter(server: &Json, name: &str) -> u64 {
    server.get(name).and_then(Json::as_u64).unwrap_or_else(|| panic!("counter {name}"))
}

fn phase_count(server: &Json, phase: &str) -> u64 {
    server
        .get("phases")
        .and_then(|p| p.get(phase))
        .and_then(|p| p.get("count"))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("phase {phase}"))
}

#[test]
fn every_outcome_increments_its_counter_exactly_once() {
    // queue_cap 1 so a single queued job saturates admission; one record
    // per batch so the long sweep streams steadily while we race it.
    let server = Server::start(ServerConfig {
        queue_cap: 1,
        batch_records: 1,
        threads: 1,
        ..ServerConfig::default()
    })
    .expect("start");

    // 400: an unparseable frame.
    let mut conn_bad = connect(&server);
    send(&mut conn_bad, "this is not json");
    assert!(recv(&mut conn_bad).contains("\"code\": 400"));

    // S1, the long sweep that occupies the sweeper. Reading its first
    // batch proves the sweeper has popped it (the queue is empty again).
    let mut conn1 = connect(&server);
    send(
        &mut conn1,
        "{\"kind\": \"sweep\", \"id\": 1, \"synthetic\": 32, \"max_mesh_cycles\": 150000}",
    );
    assert!(recv(&mut conn1).starts_with("{\"type\": \"accepted\""));
    assert!(recv(&mut conn1).starts_with("{\"type\": \"batch\""));

    // S2 queues behind S1 with an already-hopeless deadline → 504 when
    // the sweeper eventually picks it up.
    let mut conn2 = connect(&server);
    send(&mut conn2, "{\"kind\": \"sweep\", \"id\": 2, \"synthetic\": 4, \"deadline_ms\": 1}");
    assert!(recv(&mut conn2).starts_with("{\"type\": \"accepted\""));

    // S3 finds the queue full → 429.
    let mut conn3 = connect(&server);
    send(&mut conn3, "{\"kind\": \"sweep\", \"id\": 3, \"synthetic\": 4}");
    assert!(recv(&mut conn3).contains("\"code\": 429"), "queue of 1 must be full");

    // Drain S1 to done (200), then S2's pre-start 504.
    loop {
        let frame = recv(&mut conn1);
        if frame.starts_with("{\"type\": \"done\"") {
            break;
        }
        assert!(frame.starts_with("{\"type\": \"batch\""), "{frame}");
    }
    assert!(recv(&mut conn2).contains("\"code\": 504"), "expired deadline must 504");

    // Drain-mode 503: request shutdown, then try to sweep.
    send(&mut conn3, "{\"kind\": \"shutdown\", \"id\": 9}");
    assert!(recv(&mut conn3).starts_with("{\"type\": \"shutdown_ack\""));
    send(&mut conn3, "{\"kind\": \"sweep\", \"id\": 4, \"synthetic\": 4}");
    assert!(recv(&mut conn3).contains("\"code\": 503"));

    // The ledger. Six spans have finished: 400, 200, 429, 504, the
    // shutdown ack, and the 503. The sweeper folds the 200 and 504 in
    // just after writing their terminal frames, so poll until both have
    // landed. Each probe's own span (kind `metrics`) finishes before the
    // reader handles the next request on this connection, so at probe k
    // the expected read count is 6 + (k - 1).
    let mut metrics = Json::Null;
    let mut probes = 0u64;
    for _ in 0..200 {
        send(&mut conn3, "{\"kind\": \"metrics\", \"id\": 10}");
        metrics = Json::parse(&recv(&mut conn3)).expect("metrics json");
        probes += 1;
        let read = phase_count(metrics.get("server").expect("server block"), "read");
        if read >= 6 + (probes - 1) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let server_half = metrics.get("server").expect("server block");
    let probe_spans = probes - 1;

    assert_eq!(counter(server_half, "accepted"), 2, "S1 and S2");
    assert_eq!(counter(server_half, "completed"), 1, "S1 only");
    assert_eq!(counter(server_half, "cancelled_deadline"), 1, "S2 only");
    assert_eq!(counter(server_half, "rejected_busy"), 1, "S3 only");
    assert_eq!(counter(server_half, "rejected_drain"), 1, "S4 only");
    assert_eq!(counter(server_half, "bad_requests"), 1);
    assert_eq!(counter(server_half, "disconnects"), 0);

    // Phase histograms: `read` and `parse` count every finished span;
    // `queue` the two admitted jobs; `prepare`/`execute`/`stream` only
    // the sweep that actually ran.
    assert_eq!(phase_count(server_half, "read"), 6 + probe_spans);
    assert_eq!(phase_count(server_half, "parse"), 6 + probe_spans);
    assert_eq!(phase_count(server_half, "queue"), 2);
    assert_eq!(phase_count(server_half, "prepare"), 1);
    assert_eq!(phase_count(server_half, "execute"), 1);
    assert_eq!(phase_count(server_half, "stream"), 1);

    drop(conn1);
    drop(conn2);
    server.join().expect("join");
}

#[test]
fn oversized_frames_finish_a_413_span() {
    let server =
        Server::start(ServerConfig { max_frame: 128, ..ServerConfig::default() }).expect("start");
    let mut conn = connect(&server);
    conn.write_all(&4096u32.to_be_bytes()).unwrap();
    conn.write_all(&[b'x'; 64]).unwrap();
    let frame = recv(&mut conn);
    assert!(frame.contains("\"code\": 413"), "{frame}");

    let mut conn2 = connect(&server);
    send(&mut conn2, "{\"kind\": \"metrics\", \"id\": 1}");
    let metrics = Json::parse(&recv(&mut conn2)).expect("metrics json");
    let server_half = metrics.get("server").expect("server block");
    assert_eq!(counter(server_half, "bad_requests"), 1);
    // The payload never arrived, so no phase was measured for the 413 —
    // the read histogram must not be polluted with a synthetic zero.
    assert_eq!(phase_count(server_half, "read"), 0);

    server.request_shutdown();
    server.join().expect("join");
}

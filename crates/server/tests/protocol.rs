//! Wire-framing property tests: arbitrary payload sequences round-trip
//! through `write_frame`/`read_frame`, and every corruption mode yields a
//! structured error — never a panic, never a hang.

use javaflow_server::protocol::{read_frame, write_frame, FrameError, MAX_REQUEST_FRAME};
use javaflow_workloads::rng::StdRng;

#[test]
fn random_payload_sequences_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x6a76_666c);
    for round in 0..200 {
        let count = rng.gen_range(0..8usize);
        let payloads: Vec<Vec<u8>> = (0..count)
            .map(|_| {
                let len = rng.gen_range(0..2000usize);
                (0..len).map(|_| rng.gen_range(0..=255u64) as u8).collect()
            })
            .collect();
        let mut wire = Vec::new();
        for p in &payloads {
            write_frame(&mut wire, p).unwrap();
        }
        let mut r = &wire[..];
        for (i, p) in payloads.iter().enumerate() {
            let got = read_frame(&mut r, MAX_REQUEST_FRAME)
                .unwrap_or_else(|e| panic!("round {round} frame {i}: {e:?}"))
                .expect("frame present");
            assert_eq!(&got, p, "round {round} frame {i}");
        }
        assert!(
            read_frame(&mut r, MAX_REQUEST_FRAME).unwrap().is_none(),
            "clean EOF after {count}"
        );
    }
}

#[test]
fn every_truncation_point_errors_cleanly() {
    // One valid two-frame stream, cut at every byte boundary: the reader
    // must return the intact prefix frames and then either a clean EOF
    // (cut at a boundary) or `Truncated` — never panic or block.
    let mut wire = Vec::new();
    write_frame(&mut wire, b"{\"kind\": \"ping\", \"id\": 1}").unwrap();
    write_frame(&mut wire, &[0xABu8; 37]).unwrap();
    for cut in 0..wire.len() {
        let mut r = &wire[..cut];
        loop {
            match read_frame(&mut r, MAX_REQUEST_FRAME) {
                Ok(Some(_)) => continue,
                Ok(None) | Err(FrameError::Truncated) => break,
                Err(e) => panic!("cut {cut}: unexpected {e:?}"),
            }
        }
    }
}

#[test]
fn random_garbage_prefixes_never_panic() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..500 {
        let len = rng.gen_range(0..64usize);
        let junk: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u64) as u8).collect();
        let mut r = &junk[..];
        // Drain until EOF or error; any outcome but a panic/hang is fine.
        while let Ok(Some(_)) = read_frame(&mut r, 4096) {}
    }
}

#[test]
fn the_frame_cap_is_exact() {
    let payload = vec![7u8; 100];
    let mut wire = Vec::new();
    write_frame(&mut wire, &payload).unwrap();
    let mut r = &wire[..];
    assert!(matches!(read_frame(&mut r, 99), Err(FrameError::Oversized(100))));
    let mut r = &wire[..];
    assert_eq!(read_frame(&mut r, 100).unwrap().unwrap(), payload);
}

//! End-to-end server tests over real sockets: request/response identity,
//! unhappy-path handling (malformed, oversized, truncated), deadline
//! cancellation, and graceful drain.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

use javaflow_core::{EvalConfig, Evaluation};
use javaflow_server::protocol::{
    batch_frame, done_frame, expected_batch_payloads, read_frame, write_frame,
};
use javaflow_server::{Server, ServerConfig};

fn connect(server: &Server) -> TcpStream {
    let conn = TcpStream::connect(server.addr()).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    conn
}

fn send(conn: &mut TcpStream, json: &str) {
    write_frame(conn, json.as_bytes()).expect("send");
}

fn recv(conn: &mut TcpStream) -> Option<String> {
    read_frame(conn, usize::MAX).expect("recv").map(|f| String::from_utf8(f).expect("utf-8"))
}

#[test]
fn served_sweep_is_byte_identical_to_in_process() {
    let server =
        Server::start(ServerConfig { batch_records: 2, threads: 2, ..ServerConfig::default() })
            .expect("start");

    let cfg = EvalConfig {
        synthetic_count: 4,
        max_mesh_cycles: 150_000,
        threads: 2,
        ..EvalConfig::default()
    };
    let eval = Evaluation::run(&cfg);
    let batches = expected_batch_payloads(&eval, 2);

    let mut conn = connect(&server);
    send(
        &mut conn,
        "{\"kind\": \"sweep\", \"id\": 42, \"synthetic\": 4, \
         \"max_mesh_cycles\": 150000, \"tables\": [22, 30]}",
    );
    let first = recv(&mut conn).expect("accepted");
    assert!(first.starts_with("{\"type\": \"accepted\", \"id\": 42"), "{first}");
    for (seq, (lo, payload)) in batches.iter().enumerate() {
        let frame = recv(&mut conn).expect("batch");
        assert_eq!(frame, batch_frame(42, seq, *lo, payload), "batch {seq} diverged");
    }
    let done = recv(&mut conn).expect("done");
    assert_eq!(done, done_frame(42, &eval, false, &[22, 30]));

    server.request_shutdown();
    server.join().expect("join");
}

#[test]
fn malformed_requests_get_400_and_the_connection_survives() {
    let server = Server::start(ServerConfig::default()).expect("start");
    let mut conn = connect(&server);
    for bad in [
        "this is not json",
        "{\"kind\": \"warp\", \"id\": 5}",
        "{\"id\": 5}",
        "{\"kind\": \"sweep\", \"id\": 5, \"net\": \"quantum\"}",
        "{\"kind\": \"sweep\", \"id\": 5, \"threads\": 9000}",
        "{\"kind\": \"sweep\", \"id\": 5, \"synthetic\": 1000000}",
    ] {
        send(&mut conn, bad);
        let frame = recv(&mut conn).expect("error frame");
        assert!(frame.contains("\"code\": 400"), "`{bad}` → {frame}");
    }
    // The connection is still perfectly usable.
    send(&mut conn, "{\"kind\": \"ping\", \"id\": 6}");
    assert_eq!(recv(&mut conn).unwrap(), "{\"type\": \"pong\", \"id\": 6}");
    server.request_shutdown();
    server.join().expect("join");
}

#[test]
fn oversized_frames_get_413_then_the_connection_closes() {
    let server =
        Server::start(ServerConfig { max_frame: 256, ..ServerConfig::default() }).expect("start");
    let mut conn = connect(&server);
    send(
        &mut conn,
        &format!("{{\"kind\": \"ping\", \"id\": 1, \"pad\": \"{}\"}}", "x".repeat(500)),
    );
    let frame = recv(&mut conn).expect("413 frame");
    assert!(frame.contains("\"code\": 413"), "{frame}");
    assert!(recv(&mut conn).is_none(), "connection must close after a 413");
    server.request_shutdown();
    server.join().expect("join");
}

#[test]
fn truncated_frames_neither_hang_nor_crash_the_server() {
    let server = Server::start(ServerConfig::default()).expect("start");
    {
        // A length prefix promising 100 bytes, then a hangup.
        let mut conn = connect(&server);
        conn.write_all(&100u32.to_be_bytes()).unwrap();
        conn.write_all(b"only a little").unwrap();
    }
    {
        // A hangup mid-prefix.
        let mut conn = connect(&server);
        conn.write_all(&[0, 0]).unwrap();
    }
    // The server shrugged both off and still answers.
    let mut conn = connect(&server);
    send(&mut conn, "{\"kind\": \"ping\", \"id\": 9}");
    assert_eq!(recv(&mut conn).unwrap(), "{\"type\": \"pong\", \"id\": 9}");
    server.request_shutdown();
    server.join().expect("join");
}

#[test]
fn deadlines_cancel_between_batches_with_504() {
    // One record per batch: the deadline is checked at every batch
    // boundary. The deadline is generous enough for the first batches to
    // stream and far too short for the whole population.
    let server =
        Server::start(ServerConfig { batch_records: 1, ..ServerConfig::default() }).expect("start");
    let mut conn = connect(&server);
    send(&mut conn, "{\"kind\": \"sweep\", \"id\": 7, \"synthetic\": 100, \"deadline_ms\": 700}");
    let first = recv(&mut conn).expect("accepted");
    assert!(first.starts_with("{\"type\": \"accepted\""), "{first}");
    let mut batches = 0usize;
    let code = loop {
        let frame = recv(&mut conn).expect("stream must end in a 504, not EOF");
        if frame.starts_with("{\"type\": \"batch\"") {
            batches += 1;
        } else if frame.starts_with("{\"type\": \"error\"") {
            break frame;
        } else {
            panic!("a deadlined sweep must never reach done: {frame}");
        }
    };
    assert!(code.contains("\"code\": 504"), "{code}");
    assert!(batches >= 1, "the sweep should stream at least one batch before expiring");

    // The cancelled sweep must not poison the server: a fresh small sweep
    // still runs to completion on the same connection.
    send(&mut conn, "{\"kind\": \"sweep\", \"id\": 8, \"synthetic\": 2}");
    loop {
        let frame = recv(&mut conn).expect("second sweep completes");
        if frame.starts_with("{\"type\": \"done\", \"id\": 8") {
            break;
        }
        assert!(
            frame.starts_with("{\"type\": \"accepted\"")
                || frame.starts_with("{\"type\": \"batch\""),
            "{frame}"
        );
    }
    server.request_shutdown();
    server.join().expect("join");
}

#[test]
fn the_unix_socket_speaks_the_same_protocol() {
    let path =
        std::env::temp_dir().join(format!("javaflow-serve-test-{}.sock", std::process::id()));
    let server =
        Server::start(ServerConfig { uds_path: Some(path.clone()), ..ServerConfig::default() })
            .expect("start");
    let mut conn = std::os::unix::net::UnixStream::connect(&path).expect("uds connect");
    write_frame(&mut conn, b"{\"kind\": \"ping\", \"id\": 3}").unwrap();
    let frame = read_frame(&mut conn, 4096).unwrap().expect("pong");
    assert_eq!(std::str::from_utf8(&frame).unwrap(), "{\"type\": \"pong\", \"id\": 3}");
    server.request_shutdown();
    server.join().expect("join");
    assert!(!path.exists(), "join must remove the socket file");
}

#[test]
fn metrics_requests_render_counters_and_table30() {
    let server = Server::start(ServerConfig::default()).expect("start");
    let mut conn = connect(&server);
    // One tiny sweep so the registry has something in it.
    send(&mut conn, "{\"kind\": \"sweep\", \"id\": 1, \"synthetic\": 2}");
    loop {
        let frame = recv(&mut conn).expect("sweep stream");
        if frame.starts_with("{\"type\": \"done\"") {
            break;
        }
    }
    send(&mut conn, "{\"kind\": \"metrics\", \"id\": 2}");
    let m = recv(&mut conn).expect("metrics");
    for key in [
        "\"type\": \"metrics\"",
        "\"accepted\": 1",
        "\"completed\": 1",
        "\"sweeps\": 1",
        "\"p99_us\"",
        "\"table30\"",
        "\"counters\"",
    ] {
        assert!(m.contains(key), "metrics response missing {key}: {m}");
    }
    server.request_shutdown();
    server.join().expect("join");
}

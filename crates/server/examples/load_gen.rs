//! load_gen — hammer a `javaflow-serve` instance with concurrent
//! mixed-config sweeps and assert every streamed frame is byte-identical
//! to a direct in-process `Evaluation::run`.
//!
//! Default mode starts a server in-process on an ephemeral port, runs the
//! full gauntlet (identity under concurrency, deterministic `429`
//! saturation, graceful `503` drain), prints a machine-parsable summary
//! line, and exits nonzero on any mismatch. Against an external server
//! (CI's serve-smoke):
//!
//! ```text
//! load_gen --addr 127.0.0.1:PORT [--concurrency N] [--requests N]
//!          [--synthetic N] [--batch-records N]   # must match the server
//! load_gen --addr ... --metrics                  # scrape and print metrics
//! load_gen --addr ... --shutdown                 # ask the server to drain
//! ```

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use javaflow_core::{EvalConfig, Evaluation};
use javaflow_fabric::NetKind;
use javaflow_server::protocol::{
    batch_frame, done_frame, expected_batch_payloads, read_frame, write_frame,
};
use javaflow_server::{Server, ServerConfig};

/// One request shape in the mix. `net`/`fast_forward`/`tables` vary so
/// coalescing has distinct keys to keep apart.
#[derive(Clone)]
struct Variant {
    synthetic: usize,
    max_mesh_cycles: u64,
    net: NetKind,
    fast_forward: bool,
    tables: Vec<u32>,
}

impl Variant {
    fn request_json(&self, id: u64, deadline_ms: u64) -> String {
        let tables = self.tables.iter().map(u32::to_string).collect::<Vec<_>>().join(", ");
        format!(
            "{{\"kind\": \"sweep\", \"id\": {id}, \"synthetic\": {}, \
             \"max_mesh_cycles\": {}, \"net\": \"{}\", \"fast_forward\": {}, \
             \"tables\": [{tables}], \"deadline_ms\": {deadline_ms}}}",
            self.synthetic,
            self.max_mesh_cycles,
            if self.net == NetKind::Contended { "contended" } else { "ideal" },
            self.fast_forward,
        )
    }

    fn eval_config(&self) -> EvalConfig {
        EvalConfig {
            synthetic_count: self.synthetic,
            max_mesh_cycles: self.max_mesh_cycles,
            net: self.net,
            fast_forward: self.fast_forward,
            ..EvalConfig::default()
        }
    }
}

/// The expected response stream for one variant, precomputed once from a
/// direct in-process evaluation through the same renderers the server
/// uses. Identity is then plain string equality per frame.
struct Expected {
    batches: Vec<(usize, String)>,
    eval: Evaluation,
    tables: Vec<u32>,
}

impl Expected {
    fn build(v: &Variant, batch_records: usize) -> Expected {
        let eval = Evaluation::run(&v.eval_config());
        let batches = expected_batch_payloads(&eval, batch_records);
        Expected { batches, eval, tables: v.tables.clone() }
    }
}

#[derive(Default)]
struct Tally {
    completed: u64,
    mismatches: u64,
    retries_429: u64,
    coalesced_done: u64,
    bug_errors: u64,
}

impl Tally {
    fn absorb(&mut self, other: &Tally) {
        self.completed += other.completed;
        self.mismatches += other.mismatches;
        self.retries_429 += other.retries_429;
        self.coalesced_done += other.coalesced_done;
        self.bug_errors += other.bug_errors;
    }
}

fn send_json(conn: &mut TcpStream, json: &str) {
    write_frame(conn, json.as_bytes()).expect("request write");
}

fn recv_text(conn: &mut TcpStream) -> Option<String> {
    let frame = read_frame(conn, usize::MAX).ok()??;
    Some(String::from_utf8(frame).expect("responses are UTF-8"))
}

/// Crude field extraction — responses are exact strings this binary also
/// verifies wholesale, so a substring probe is enough for routing.
fn field_u64(frame: &str, name: &str) -> Option<u64> {
    let pat = format!("\"{name}\": ");
    let at = frame.find(&pat)? + pat.len();
    let digits: String = frame[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn frame_type(frame: &str) -> &'static str {
    for t in ["accepted", "batch", "done", "error", "pong", "metrics", "shutdown_ack"] {
        if frame.starts_with(&format!("{{\"type\": \"{t}\"")) {
            return t;
        }
    }
    "unknown"
}

/// Runs one sweep request to completion, verifying every frame against
/// the expectation. Retries on `429` with backoff.
fn run_one(addr: &str, v: &Variant, exp: &Expected, id: u64, tally: &mut Tally) {
    let mut attempt = 0u32;
    'retry: loop {
        let mut conn = TcpStream::connect(addr).expect("connect");
        send_json(&mut conn, &v.request_json(id, 0));
        let mut next_batch = 0usize;
        loop {
            let Some(frame) = recv_text(&mut conn) else {
                eprintln!("load_gen: connection closed mid-stream (id {id})");
                tally.bug_errors += 1;
                return;
            };
            match frame_type(&frame) {
                "accepted" => {}
                "batch" => {
                    let (first, payload) = &exp.batches[next_batch];
                    let want = batch_frame(id, next_batch, *first, payload);
                    if frame != want {
                        tally.mismatches += 1;
                        eprintln!(
                            "load_gen: batch mismatch id {id} seq {next_batch}\n  got  {}\n  want {}",
                            &frame[..frame.len().min(200)],
                            &want[..want.len().min(200)],
                        );
                    }
                    next_batch += 1;
                }
                "done" => {
                    let solo = done_frame(id, &exp.eval, false, &exp.tables);
                    let shared = done_frame(id, &exp.eval, true, &exp.tables);
                    if frame == shared {
                        tally.coalesced_done += 1;
                    } else if frame != solo {
                        tally.mismatches += 1;
                        eprintln!("load_gen: done mismatch id {id}");
                    }
                    if next_batch != exp.batches.len() {
                        tally.mismatches += 1;
                        eprintln!(
                            "load_gen: id {id} saw {next_batch}/{} batches",
                            exp.batches.len()
                        );
                    }
                    tally.completed += 1;
                    return;
                }
                "error" => match field_u64(&frame, "code") {
                    Some(429) => {
                        tally.retries_429 += 1;
                        attempt += 1;
                        if attempt > 50 {
                            eprintln!("load_gen: id {id} starved by 429s");
                            tally.bug_errors += 1;
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(20 * u64::from(attempt.min(10))));
                        continue 'retry;
                    }
                    code => {
                        eprintln!("load_gen: unexpected error {code:?} for id {id}: {frame}");
                        tally.bug_errors += 1;
                        return;
                    }
                },
                other => {
                    eprintln!("load_gen: unexpected `{other}` frame for id {id}");
                    tally.bug_errors += 1;
                    return;
                }
            }
        }
    }
}

/// The concurrent identity gauntlet against `addr`.
fn hammer(
    addr: &str,
    variants: &[Variant],
    expected: &[Expected],
    concurrency: usize,
    requests_per_worker: usize,
) -> Tally {
    let ids = AtomicU64::new(1);
    std::thread::scope(|scope| {
        let ids = &ids;
        let handles: Vec<_> = (0..concurrency)
            .map(|w| {
                scope.spawn(move || {
                    let mut tally = Tally::default();
                    for r in 0..requests_per_worker {
                        let vi = (w + r) % variants.len();
                        let id = ids.fetch_add(1, Ordering::Relaxed);
                        run_one(addr, &variants[vi], &expected[vi], id, &mut tally);
                    }
                    tally
                })
            })
            .collect();
        let mut total = Tally::default();
        for h in handles {
            total.absorb(&h.join().expect("worker panicked"));
        }
        total
    })
}

/// Deterministic saturation + drain against a dedicated tiny server:
/// queue capacity 1, so sweep A (in flight) + sweep B (queued) force a
/// `429` for C; a shutdown then drains B before refusing E with `503`.
fn backpressure_and_drain(batch_records: usize) -> Result<(), String> {
    let server =
        Server::start(ServerConfig { queue_cap: 1, batch_records, ..ServerConfig::default() })
            .map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr().to_string();
    // Big enough that preparing + sweeping A comfortably outlasts the
    // admission of B and C below, even on a fast machine.
    let slow = Variant {
        synthetic: 100,
        max_mesh_cycles: 250_000,
        net: NetKind::Ideal,
        fast_forward: true,
        tables: vec![],
    };
    let mut a = TcpStream::connect(&addr).map_err(|e| e.to_string())?;
    send_json(&mut a, &slow.request_json(1001, 0));
    expect_type(&mut a, "accepted")?;
    // B is admitted the moment the sweeper pops A (the queue holds one).
    // Retrying until then avoids any sleep-vs-sweep-duration race: once B
    // is in, A's multi-second sweep has only just begun.
    let mut b = TcpStream::connect(&addr).map_err(|e| e.to_string())?;
    loop {
        send_json(&mut b, &slow.request_json(1002, 0));
        let frame = recv_text(&mut b).ok_or("B got EOF")?;
        match field_u64(&frame, "code") {
            None if frame_type(&frame) == "accepted" => break,
            Some(429) => std::thread::sleep(Duration::from_millis(5)),
            _ => return Err(format!("unexpected frame for B: {frame}")),
        }
    }
    let mut c = TcpStream::connect(&addr).map_err(|e| e.to_string())?;
    send_json(&mut c, &slow.request_json(1003, 0));
    let frame = recv_text(&mut c).ok_or("C got EOF")?;
    if field_u64(&frame, "code") != Some(429) {
        return Err(format!("expected 429 for C, got: {frame}"));
    }
    // Drain: the shutdown ack arrives immediately; B must still stream to
    // completion; a post-shutdown sweep is refused with 503.
    send_json(&mut c, "{\"kind\": \"shutdown\", \"id\": 1004}");
    expect_type(&mut c, "shutdown_ack")?;
    let mut e = TcpStream::connect(&addr).map_err(|e| e.to_string())?;
    send_json(&mut e, &slow.request_json(1005, 0));
    let frame = recv_text(&mut e).ok_or("E got EOF")?;
    if field_u64(&frame, "code") != Some(503) {
        return Err(format!("expected 503 for E, got: {frame}"));
    }
    for (conn, id) in [(&mut a, 1001u64), (&mut b, 1002)] {
        loop {
            let frame = recv_text(conn).ok_or_else(|| format!("{id} died mid-drain"))?;
            match frame_type(&frame) {
                "batch" => {}
                "done" => break,
                other => return Err(format!("{id} got `{other}` during drain: {frame}")),
            }
        }
    }
    server.join().map_err(|e| format!("join: {e}"))?;
    Ok(())
}

fn expect_type(conn: &mut TcpStream, want: &str) -> Result<(), String> {
    let frame = recv_text(conn).ok_or_else(|| format!("EOF while expecting {want}"))?;
    if frame_type(&frame) == want {
        Ok(())
    } else {
        Err(format!("expected `{want}`, got: {frame}"))
    }
}

fn scrape_metrics(addr: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    send_json(&mut conn, "{\"kind\": \"metrics\", \"id\": 1}");
    recv_text(&mut conn).expect("metrics response")
}

fn main() {
    let mut addr: Option<String> = None;
    let mut concurrency = 64usize;
    let mut requests = 2usize;
    let mut synthetic = 12usize;
    let mut batch_records = 16usize;
    let mut do_metrics = false;
    let mut do_shutdown = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().expect("flag value");
        match arg.as_str() {
            "--addr" => addr = Some(value()),
            "--concurrency" => concurrency = value().parse().expect("--concurrency"),
            "--requests" => requests = value().parse().expect("--requests"),
            "--synthetic" => synthetic = value().parse().expect("--synthetic"),
            "--batch-records" => batch_records = value().parse().expect("--batch-records"),
            "--metrics" => do_metrics = true,
            "--shutdown" => do_shutdown = true,
            other => panic!("unknown flag `{other}`"),
        }
    }

    if do_metrics || do_shutdown {
        let addr = addr.expect("--metrics/--shutdown require --addr");
        if do_metrics {
            println!("{}", scrape_metrics(&addr));
        }
        if do_shutdown {
            let mut conn = TcpStream::connect(&addr).expect("connect");
            send_json(&mut conn, "{\"kind\": \"shutdown\", \"id\": 1}");
            expect_type(&mut conn, "shutdown_ack").expect("shutdown ack");
        }
        return;
    }

    let variants = vec![
        Variant {
            synthetic,
            max_mesh_cycles: 250_000,
            net: NetKind::Ideal,
            fast_forward: true,
            tables: vec![22],
        },
        Variant {
            synthetic,
            max_mesh_cycles: 250_000,
            net: NetKind::Contended,
            fast_forward: true,
            tables: vec![],
        },
        Variant {
            synthetic,
            max_mesh_cycles: 250_000,
            net: NetKind::Ideal,
            fast_forward: false,
            tables: vec![30],
        },
        Variant {
            synthetic: synthetic / 2,
            max_mesh_cycles: 150_000,
            net: NetKind::Ideal,
            fast_forward: true,
            tables: vec![21],
        },
    ];
    eprintln!(
        "load_gen: precomputing expectations for {} variants (synthetic {synthetic})",
        variants.len()
    );
    let expected: Vec<Expected> =
        variants.iter().map(|v| Expected::build(v, batch_records)).collect();

    let in_process: Option<Server> = match &addr {
        Some(_) => None,
        None => Some(
            Server::start(ServerConfig { batch_records, ..ServerConfig::default() })
                .expect("in-process server"),
        ),
    };
    let target = addr
        .clone()
        .unwrap_or_else(|| in_process.as_ref().expect("started above").addr().to_string());

    eprintln!("load_gen: hammering {target} with {concurrency}\u{d7}{requests} requests");
    let tally = hammer(&target, &variants, &expected, concurrency, requests);

    let mut failures: Vec<String> = Vec::new();
    if tally.mismatches > 0 {
        failures.push(format!("{} frame mismatches", tally.mismatches));
    }
    if tally.bug_errors > 0 {
        failures.push(format!("{} bug-class errors", tally.bug_errors));
    }
    let want_completed = (concurrency * requests) as u64;
    if tally.completed != want_completed {
        failures.push(format!("completed {}/{want_completed}", tally.completed));
    }

    if let Some(server) = in_process {
        // Full gauntlet: the identity hammer above, now saturation + drain.
        if tally.coalesced_done == 0 {
            failures.push("no request ever coalesced under the concurrent hammer".into());
        }
        let metrics = scrape_metrics(&server.addr().to_string());
        for key in ["\"accepted\"", "\"coalesced_requests\"", "\"table30\"", "\"counters\""] {
            if !metrics.contains(key) {
                failures.push(format!("metrics response missing {key}"));
            }
        }
        if let Err(e) = backpressure_and_drain(batch_records) {
            failures.push(format!("backpressure/drain: {e}"));
        }
        server.request_shutdown();
        server.join().expect("clean join");
    }

    println!(
        "load_gen: completed={} mismatches={} coalesced_done={} retries_429={} bug_errors={}",
        tally.completed,
        tally.mismatches,
        tally.coalesced_done,
        tally.retries_429,
        tally.bug_errors
    );
    std::io::stdout().flush().expect("stdout flush");
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("load_gen: FAIL {f}");
        }
        std::process::exit(1);
    }
    println!("load_gen: OK");
}

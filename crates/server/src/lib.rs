//! `javaflow-serve`: the sweep harness as a long-lived service.
//!
//! [`javaflow_core::Evaluation::run`] is a batch tool — every invocation
//! rebuilds and re-prepares the whole population before simulating a
//! single record. This crate keeps that work resident: a
//! [`Server`] owns a cache of prepared populations (keyed by synthetic
//! size) and the process-wide warm arena pool, and answers sweep
//! requests over TCP or a Unix socket using the
//! [`javaflow_core::PreparedPopulation`] fast path — byte-identical
//! results to an in-process run, without the per-request startup cost.
//!
//! The protocol is deliberately small (see [`protocol`]): length-prefixed
//! JSON frames, four request kinds (`sweep`, `metrics`, `ping`,
//! `shutdown`), streamed per-batch responses. The operational behaviour
//! is the point of the crate:
//!
//! * **Batching / coalescing** — compatible concurrent sweeps (same
//!   population, cycle budget, net model, and fast-forward setting) share
//!   one simulation; every subscriber receives the identical frames.
//! * **Backpressure** — the admission queue is bounded; saturation is an
//!   immediate `429`, never an unbounded backlog.
//! * **Deadlines** — a per-request deadline cancels its sweep at the next
//!   batch boundary with a `504` (and cancels the simulation itself once
//!   no subscriber remains).
//! * **Graceful drain** — shutdown (signal or request) stops admission
//!   with `503`, streams everything already queued to completion, then
//!   exits.
//! * **Live metrics** — a `metrics` request renders the server counters,
//!   log₂-histogram latency percentiles, and the folded Table 30
//!   simulation registry of everything the process has run.
//! * **Always-on observability** — every request carries a
//!   [`span::RequestSpan`] (read → parse → queue → prepare → execute →
//!   stream) folded into per-phase histograms; an optional HTTP sidecar
//!   ([`ServerConfig::metrics_addr`]) serves `/metrics` (Prometheus text
//!   exposition), `/healthz`, and `/varz`; and a fixed-capacity
//!   [`flight::FlightRecorder`] ring keeps the most recent spans and
//!   gating warnings for a Chrome-trace dump on SIGUSR1 or on failure.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod flight;
mod http;
pub mod json;
pub mod metrics;
pub mod protocol;
mod server;
pub mod span;

pub use server::{Server, ServerConfig};

//! The server runtime: listeners, admission, coalescing, sweeping, drain.
//!
//! One sweeper thread owns all simulation work; reader threads only
//! parse, validate, and enqueue. The admission queue is bounded —
//! saturation is a `429` response, not an unbounded backlog — and
//! compatible queued requests (same [`SweepKey`]) are coalesced into a
//! single shared sweep whose batch frames fan out to every subscriber.
//! Shutdown is a drain: no new sweeps are admitted (`503`), everything
//! already queued streams to completion, then the threads exit.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use javaflow_analysis::report_json::json_escape;
use javaflow_core::{EvalConfig, PreparedPopulation};
use javaflow_fabric::{MetricsRegistry, NetKind};

use crate::metrics::ServerMetrics;
use crate::protocol::{
    batch_frame, batch_payload, done_frame, error_frame, parse_request, read_frame, write_frame,
    FrameError, Request, SweepRequest, MAX_REQUEST_FRAME,
};

/// Server tuning knobs. `Default` is suitable for tests and local use:
/// an ephemeral TCP port, no Unix socket, a 32-deep admission queue.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP bind address; port 0 picks an ephemeral port (read it back
    /// with [`Server::addr`]).
    pub addr: String,
    /// Optional Unix-socket path to also listen on. A stale socket file
    /// at this path is removed before binding.
    pub uds_path: Option<PathBuf>,
    /// Admission-queue capacity; a sweep arriving at a full queue is
    /// refused with `429`.
    pub queue_cap: usize,
    /// Records per streamed batch (and therefore the deadline- and
    /// cancellation-check granularity).
    pub batch_records: usize,
    /// Default sweep threads when a request does not ask for a count.
    pub threads: usize,
    /// Largest accepted request frame, bytes.
    pub max_frame: usize,
    /// Largest accepted `synthetic` population size; guards the prepared
    /// cache against absurd requests.
    pub synthetic_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            uds_path: None,
            queue_cap: 32,
            batch_records: 16,
            threads: EvalConfig::default().threads,
            max_frame: MAX_REQUEST_FRAME,
            synthetic_cap: 5000,
        }
    }
}

/// The coalescing key: two queued sweeps with equal keys produce
/// byte-identical batch payloads, so they share one sweep. `threads` is
/// deliberately absent — results never depend on it (the shared sweep
/// takes the group's largest ask).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SweepKey {
    synthetic: usize,
    max_mesh_cycles: u64,
    net_contended: bool,
    fast_forward: bool,
    /// Execution backend: block-compiled replay vs the interpreted walk.
    /// Reports are bit-identical either way, but the backend is part of
    /// the contract a subscriber asked for — compiled and interpreted
    /// sweeps never coalesce onto one shared run.
    compiled: bool,
}

impl SweepKey {
    fn of(req: &SweepRequest) -> SweepKey {
        SweepKey {
            synthetic: req.synthetic,
            max_mesh_cycles: req.max_mesh_cycles,
            net_contended: req.net == NetKind::Contended,
            fast_forward: req.fast_forward,
            compiled: req.compiled,
        }
    }
}

/// One admitted sweep request waiting for (or riding) a sweep.
struct Job {
    id: u64,
    key: SweepKey,
    threads: Option<usize>,
    tables: Vec<u32>,
    deadline: Option<Instant>,
    writer: Arc<ConnWriter>,
    enqueued: Instant,
}

/// A connection stream over either transport.
enum AnyStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl AnyStream {
    fn try_clone(&self) -> std::io::Result<AnyStream> {
        match self {
            AnyStream::Tcp(s) => s.try_clone().map(AnyStream::Tcp),
            AnyStream::Unix(s) => s.try_clone().map(AnyStream::Unix),
        }
    }

    fn shutdown(&self) -> std::io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            AnyStream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.read(buf),
            AnyStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for AnyStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.write(buf),
            AnyStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.flush(),
            AnyStream::Unix(s) => s.flush(),
        }
    }
}

/// The write half of a connection, shared between the reader thread (for
/// immediate responses) and the sweeper (for streamed frames). A failed
/// write latches `closed`; later frames to this subscriber are dropped
/// without touching the socket.
struct ConnWriter {
    stream: Mutex<AnyStream>,
    closed: AtomicBool,
}

impl ConnWriter {
    /// Closes the underlying socket in both directions, unblocking any
    /// parked read on the other half.
    fn shutdown(&self) {
        let _ = self.stream.lock().expect("writer lock").shutdown();
        self.closed.store(true, Ordering::Relaxed);
    }

    /// Writes one frame; `false` once the connection is dead.
    fn send(&self, payload: &str) -> bool {
        if self.closed.load(Ordering::Relaxed) {
            return false;
        }
        let mut s = self.stream.lock().expect("writer lock");
        match write_frame(&mut *s, payload.as_bytes()) {
            Ok(()) => true,
            Err(_) => {
                self.closed.store(true, Ordering::Relaxed);
                false
            }
        }
    }
}

struct Shared {
    cfg: ServerConfig,
    /// Request-level defaults handed to the parser.
    defaults: EvalConfig,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    /// Set (under the queue lock) when draining; checked under the same
    /// lock at admission so no job can slip in behind the sweeper's exit.
    shutdown: AtomicBool,
    /// Set by the sweeper once the drain is complete. The listeners stay
    /// up until then so late requests get an explicit `503`, not a
    /// connection refusal.
    drained: AtomicBool,
    in_flight: AtomicUsize,
    metrics: Mutex<ServerMetrics>,
    /// Simulation metrics folded in from every completed sweep (the
    /// Table 30 registry the metrics endpoint renders).
    registry: Mutex<MetricsRegistry>,
    /// Prepared populations keyed by synthetic size.
    prepared: Mutex<HashMap<usize, Arc<PreparedPopulation>>>,
    /// Live connections, shut down at the end of a drain to unblock
    /// parked reader threads. Readers deregister themselves on exit.
    conns: Mutex<Vec<Arc<ConnWriter>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn request_shutdown(&self) {
        let _guard = self.queue.lock().expect("queue lock");
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }
}

/// A running `javaflow-serve` instance.
///
/// ```no_run
/// use javaflow_server::{Server, ServerConfig};
///
/// let server = Server::start(ServerConfig::default()).unwrap();
/// println!("listening on {}", server.addr());
/// server.request_shutdown();
/// server.join().unwrap();
/// ```
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").field("cfg", &self.cfg).finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listeners, spawns the accept and sweeper threads, and
    /// returns immediately.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let uds = match &cfg.uds_path {
            Some(path) => {
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let defaults = EvalConfig { threads: cfg.threads, ..EvalConfig::default() };
        let shared = Arc::new(Shared {
            cfg,
            defaults,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            drained: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            metrics: Mutex::new(ServerMetrics::default()),
            registry: Mutex::new(MetricsRegistry::new()),
            prepared: Mutex::new(HashMap::new()),
            conns: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::new();
        {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                accept_loop(&shared, move || listener.accept().map(|(s, _)| AnyStream::Tcp(s)));
            }));
        }
        if let Some(l) = uds {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                accept_loop(&shared, move || l.accept().map(|(s, _)| AnyStream::Unix(s)));
            }));
        }
        {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || sweeper_loop(&shared)));
        }
        Ok(Server { shared, addr, handles })
    }

    /// The bound TCP address (the actual port when `addr` asked for 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins a graceful drain: new sweeps get `503`, queued sweeps run
    /// to completion, then the worker threads exit. Idempotent; also
    /// triggered by a client `shutdown` request.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Whether a drain has been requested (by [`Server::request_shutdown`]
    /// or a client `shutdown` frame).
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for the drain to finish: joins the accept and sweeper
    /// threads, unblocks and joins every reader, removes the Unix socket
    /// file. Call after (or concurrently with) a shutdown request.
    pub fn join(mut self) -> std::io::Result<()> {
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        for c in self.shared.conns.lock().expect("conns lock").drain(..) {
            c.shutdown();
        }
        let readers: Vec<_> = self.shared.readers.lock().expect("readers lock").drain(..).collect();
        for h in readers {
            let _ = h.join();
        }
        if let Some(path) = &self.shared.cfg.uds_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// Polls a nonblocking listener until shutdown, handing each accepted
/// stream its own reader thread.
fn accept_loop(shared: &Arc<Shared>, mut accept: impl FnMut() -> std::io::Result<AnyStream>) {
    while !shared.drained.load(Ordering::SeqCst) {
        match accept() {
            Ok(stream) => {
                let Ok(read_half) = stream.try_clone() else { continue };
                let writer = Arc::new(ConnWriter {
                    stream: Mutex::new(stream),
                    closed: AtomicBool::new(false),
                });
                shared.conns.lock().expect("conns lock").push(Arc::clone(&writer));
                let shared2 = Arc::clone(shared);
                let handle = std::thread::spawn(move || {
                    let mut reader = read_half;
                    reader_loop(&shared2, &mut reader, &writer);
                    // Surface EOF to the peer even while queued jobs still
                    // hold `Arc`s to this writer, and drop the registry
                    // entry so long-lived servers don't accumulate one
                    // per connection ever served.
                    writer.shutdown();
                    shared2.conns.lock().expect("conns lock").retain(|w| !Arc::ptr_eq(w, &writer));
                });
                shared.readers.lock().expect("readers lock").push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// Reads frames off one connection until EOF, error, or a protocol
/// violation that closes it.
fn reader_loop(shared: &Arc<Shared>, reader: &mut AnyStream, writer: &Arc<ConnWriter>) {
    loop {
        match read_frame(reader, shared.cfg.max_frame) {
            Ok(None) => break,
            Ok(Some(payload)) => handle_request(shared, writer, &payload),
            Err(FrameError::Oversized(n)) => {
                shared.metrics.lock().expect("metrics lock").bad_requests += 1;
                writer.send(&error_frame(
                    0,
                    413,
                    &format!("frame of {n} bytes exceeds the {} byte limit", shared.cfg.max_frame),
                ));
                break;
            }
            Err(FrameError::Truncated | FrameError::Io(_)) => break,
        }
        if writer.closed.load(Ordering::Relaxed) {
            break;
        }
    }
}

fn handle_request(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, payload: &[u8]) {
    match parse_request(payload, &shared.defaults) {
        Err(e) => {
            shared.metrics.lock().expect("metrics lock").bad_requests += 1;
            writer.send(&error_frame(e.id, e.code, &e.message));
        }
        Ok(Request::Ping { id }) => {
            writer.send(&format!("{{\"type\": \"pong\", \"id\": {id}}}"));
        }
        Ok(Request::Shutdown { id }) => {
            writer.send(&format!("{{\"type\": \"shutdown_ack\", \"id\": {id}}}"));
            shared.request_shutdown();
        }
        Ok(Request::Metrics { id }) => {
            let queue_depth = shared.queue.lock().expect("queue lock").len();
            let in_flight = shared.in_flight.load(Ordering::SeqCst);
            let server =
                shared.metrics.lock().expect("metrics lock").render_json(queue_depth, in_flight);
            let reg = shared.registry.lock().expect("registry lock");
            let frame = format!(
                "{{\"type\": \"metrics\", \"id\": {id}, \"server\": {server}, \
                 \"table30\": \"{}\", \"metrics\": {}}}",
                json_escape(&reg.render()),
                reg.to_json(),
            );
            drop(reg);
            writer.send(&frame);
        }
        Ok(Request::Sweep(req)) => admit(shared, writer, req),
    }
}

/// Admission control: validate against server limits, refuse when
/// draining (`503`) or saturated (`429`), otherwise enqueue and ack.
fn admit(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, req: SweepRequest) {
    if req.synthetic > shared.cfg.synthetic_cap {
        shared.metrics.lock().expect("metrics lock").bad_requests += 1;
        writer.send(&error_frame(
            req.id,
            400,
            &format!("`synthetic` exceeds the server cap of {}", shared.cfg.synthetic_cap),
        ));
        return;
    }
    let id = req.id;
    {
        let mut q = shared.queue.lock().expect("queue lock");
        if shared.shutdown.load(Ordering::SeqCst) {
            drop(q);
            shared.metrics.lock().expect("metrics lock").rejected_drain += 1;
            writer.send(&error_frame(id, 503, "server is draining"));
            return;
        }
        if q.len() >= shared.cfg.queue_cap {
            drop(q);
            shared.metrics.lock().expect("metrics lock").rejected_busy += 1;
            writer.send(&error_frame(id, 429, "admission queue is full"));
            return;
        }
        let now = Instant::now();
        q.push_back(Job {
            id,
            key: SweepKey::of(&req),
            threads: req.threads,
            tables: req.tables,
            deadline: (req.deadline_ms > 0).then(|| now + Duration::from_millis(req.deadline_ms)),
            writer: Arc::clone(writer),
            enqueued: now,
        });
        // Ack under the queue lock: the sweeper cannot pop (and start
        // streaming batches) until admission's frame is on the wire, so
        // `accepted` always precedes the first `batch` on a connection.
        writer.send(&format!(
            "{{\"type\": \"accepted\", \"id\": {id}, \"queue_depth\": {}}}",
            q.len()
        ));
    }
    shared.queue_cv.notify_one();
    shared.metrics.lock().expect("metrics lock").accepted += 1;
}

/// The sweeper: pop the oldest job, coalesce everything compatible with
/// it, run one shared sweep, stream to all subscribers. Exits when the
/// queue is empty after a shutdown request — a drain, not an abort.
fn sweeper_loop(shared: &Arc<Shared>) {
    loop {
        let group: Vec<Job> = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(first) = q.pop_front() {
                    let key = first.key.clone();
                    let mut group = vec![first];
                    let mut i = 0;
                    while i < q.len() {
                        if q[i].key == key {
                            group.extend(q.remove(i));
                        } else {
                            i += 1;
                        }
                    }
                    break group;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    drop(q);
                    shared.drained.store(true, Ordering::SeqCst);
                    return;
                }
                q = shared.queue_cv.wait(q).expect("queue lock");
            }
        };
        shared.in_flight.store(group.len(), Ordering::SeqCst);
        run_group(shared, group);
        shared.in_flight.store(0, Ordering::SeqCst);
    }
}

/// One subscriber to a (possibly shared) sweep.
struct Sub {
    job: Job,
    seq: usize,
    alive: bool,
}

fn run_group(shared: &Arc<Shared>, group: Vec<Job>) {
    let coalesced = group.len() > 1;
    {
        let picked_up = Instant::now();
        let mut m = shared.metrics.lock().expect("metrics lock");
        m.sweeps += 1;
        if coalesced {
            m.coalesced_requests += group.len() as u64 - 1;
        }
        for job in &group {
            m.observe_queue_wait(picked_up.duration_since(job.enqueued));
        }
    }
    let mut subs: Vec<Sub> = Vec::with_capacity(group.len());
    for job in group {
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            shared.metrics.lock().expect("metrics lock").cancelled_deadline += 1;
            job.writer.send(&error_frame(job.id, 504, "deadline expired before the sweep started"));
        } else {
            subs.push(Sub { job, seq: 0, alive: true });
        }
    }
    if subs.is_empty() {
        return;
    }
    let key = subs[0].job.key.clone();
    let pop = {
        let mut cache = shared.prepared.lock().expect("prepared lock");
        Arc::clone(cache.entry(key.synthetic).or_insert_with(|| {
            Arc::new(PreparedPopulation::prepare(key.synthetic, shared.cfg.threads))
        }))
    };
    let threads = subs.iter().filter_map(|s| s.job.threads).max().unwrap_or(shared.cfg.threads);
    let cfg = EvalConfig {
        synthetic_count: key.synthetic,
        max_mesh_cycles: key.max_mesh_cycles,
        net: if key.net_contended { NetKind::Contended } else { NetKind::Ideal },
        fast_forward: key.fast_forward,
        compiled: key.compiled,
        threads,
        ..EvalConfig::default()
    };
    let records = pop.records();
    let eval = pop.evaluate_batched(&cfg, shared.cfg.batch_records, |first, results| {
        let payload = batch_payload(records, first, results);
        let mut streamed = 0u64;
        let mut any_alive = false;
        for sub in subs.iter_mut().filter(|s| s.alive) {
            if sub.job.deadline.is_some_and(|d| Instant::now() >= d) {
                sub.alive = false;
                shared.metrics.lock().expect("metrics lock").cancelled_deadline += 1;
                sub.job.writer.send(&error_frame(sub.job.id, 504, "deadline exceeded mid-sweep"));
                continue;
            }
            if sub.job.writer.send(&batch_frame(sub.job.id, sub.seq, first, &payload)) {
                sub.seq += 1;
                streamed += 1;
                any_alive = true;
            } else {
                sub.alive = false;
                shared.metrics.lock().expect("metrics lock").disconnects += 1;
            }
        }
        shared.metrics.lock().expect("metrics lock").batches_streamed += streamed;
        // No live subscribers left → cancel the sweep at this boundary.
        any_alive
    });
    let Some(eval) = eval else { return };
    let done_at = Instant::now();
    for sub in subs.iter().filter(|s| s.alive) {
        let frame = done_frame(sub.job.id, &eval, coalesced, &sub.job.tables);
        let delivered = sub.job.writer.send(&frame);
        let mut m = shared.metrics.lock().expect("metrics lock");
        if delivered {
            m.completed += 1;
            m.observe_latency(done_at.duration_since(sub.job.enqueued));
        } else {
            m.disconnects += 1;
        }
    }
    shared.registry.lock().expect("registry lock").merge(&eval.metrics());
}

//! The server runtime: listeners, admission, coalescing, sweeping, drain.
//!
//! One sweeper thread owns all simulation work; reader threads only
//! parse, validate, and enqueue. The admission queue is bounded —
//! saturation is a `429` response, not an unbounded backlog — and
//! compatible queued requests (same [`SweepKey`]) are coalesced into a
//! single shared sweep whose batch frames fan out to every subscriber.
//! Shutdown is a drain: no new sweeps are admitted (`503`), everything
//! already queued streams to completion, then the threads exit.
//!
//! Every framed request carries a [`RequestSpan`] from its first byte to
//! its terminal frame; finished spans fold into the per-phase histograms
//! of [`ServerMetrics`], land in the always-on [`FlightRecorder`] ring,
//! and (with `log_json`) emit one structured log line each. An optional
//! HTTP sidecar listener ([`ServerConfig::metrics_addr`]) exposes
//! `/metrics` (Prometheus text), `/healthz`, and `/varz`.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use javaflow_analysis::report_json::json_escape;
use javaflow_core::{EvalConfig, PreparedPopulation};
use javaflow_fabric::{MetricsRegistry, NetKind, WARN_COUNTERS};

use crate::flight::{FlightEntry, FlightRecorder};
use crate::metrics::ServerMetrics;
use crate::protocol::{
    batch_frame, batch_payload, done_frame, error_frame, parse_request, read_frame_timed,
    write_frame, FrameError, Request, SweepRequest, MAX_REQUEST_FRAME,
};
use crate::span::{
    RequestSpan, OUTCOME_CLIENT_GONE, PHASE_EXECUTE, PHASE_PARSE, PHASE_PREPARE, PHASE_QUEUE,
    PHASE_READ, PHASE_STREAM,
};

/// Server tuning knobs. `Default` is suitable for tests and local use:
/// an ephemeral TCP port, no Unix socket, a 32-deep admission queue.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP bind address; port 0 picks an ephemeral port (read it back
    /// with [`Server::addr`]).
    pub addr: String,
    /// Optional Unix-socket path to also listen on. A stale socket file
    /// at this path is removed before binding.
    pub uds_path: Option<PathBuf>,
    /// Optional HTTP bind address for the observability sidecar
    /// (`/metrics`, `/healthz`, `/varz`); port 0 picks an ephemeral port
    /// (read it back with [`Server::metrics_addr`]).
    pub metrics_addr: Option<String>,
    /// Admission-queue capacity; a sweep arriving at a full queue is
    /// refused with `429`.
    pub queue_cap: usize,
    /// Records per streamed batch (and therefore the deadline- and
    /// cancellation-check granularity).
    pub batch_records: usize,
    /// Default sweep threads when a request does not ask for a count.
    pub threads: usize,
    /// Largest accepted request frame, bytes.
    pub max_frame: usize,
    /// Largest accepted `synthetic` population size; guards the prepared
    /// cache against absurd requests.
    pub synthetic_cap: usize,
    /// Emit one structured JSON log line per finished request on stderr.
    pub log_json: bool,
    /// Flight-recorder ring capacity (entries). The ring is preallocated
    /// at startup and recording never allocates.
    pub flight_capacity: usize,
    /// Dump the flight recorder to this Chrome-trace file whenever a
    /// request fails (`4xx`/`5xx`/client-gone), throttled to once per
    /// second. `None` disables failure dumps; SIGUSR1 dumps are driven by
    /// the binary regardless.
    pub flight_dump_on_error: Option<PathBuf>,
    /// Master switch for span accounting, the flight recorder, and log
    /// lines. On by default; `--bench-serve` turns it off to measure the
    /// untraced floor the 2% overhead guard compares against.
    pub observability: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            uds_path: None,
            metrics_addr: None,
            queue_cap: 32,
            batch_records: 16,
            threads: EvalConfig::default().threads,
            max_frame: MAX_REQUEST_FRAME,
            synthetic_cap: 5000,
            log_json: false,
            flight_capacity: 1024,
            flight_dump_on_error: None,
            observability: true,
        }
    }
}

/// The coalescing key: two queued sweeps with equal keys produce
/// byte-identical batch payloads, so they share one sweep. `threads` is
/// deliberately absent — results never depend on it (the shared sweep
/// takes the group's largest ask). `Ord` keeps the per-key sweep
/// counters in a stable order on the `/metrics` page.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct SweepKey {
    pub(crate) synthetic: usize,
    pub(crate) max_mesh_cycles: u64,
    pub(crate) net_contended: bool,
    pub(crate) fast_forward: bool,
    /// Execution backend: block-compiled replay vs the interpreted walk.
    /// Reports are bit-identical either way, but the backend is part of
    /// the contract a subscriber asked for — compiled and interpreted
    /// sweeps never coalesce onto one shared run.
    pub(crate) compiled: bool,
}

impl SweepKey {
    fn of(req: &SweepRequest) -> SweepKey {
        SweepKey {
            synthetic: req.synthetic,
            max_mesh_cycles: req.max_mesh_cycles,
            net_contended: req.net == NetKind::Contended,
            fast_forward: req.fast_forward,
            compiled: req.compiled,
        }
    }

    /// Prometheus label set for the per-key sweep counter.
    pub(crate) fn prom_labels(&self) -> String {
        format!(
            "synthetic=\"{}\",max_mesh_cycles=\"{}\",net=\"{}\",fast_forward=\"{}\",compiled=\"{}\"",
            self.synthetic,
            self.max_mesh_cycles,
            if self.net_contended { "contended" } else { "ideal" },
            self.fast_forward,
            self.compiled,
        )
    }
}

/// One admitted sweep request waiting for (or riding) a sweep.
struct Job {
    id: u64,
    key: SweepKey,
    threads: Option<usize>,
    tables: Vec<u32>,
    deadline: Option<Instant>,
    writer: Arc<ConnWriter>,
    enqueued: Instant,
    span: RequestSpan,
}

/// A connection stream over either transport.
enum AnyStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl AnyStream {
    fn try_clone(&self) -> std::io::Result<AnyStream> {
        match self {
            AnyStream::Tcp(s) => s.try_clone().map(AnyStream::Tcp),
            AnyStream::Unix(s) => s.try_clone().map(AnyStream::Unix),
        }
    }

    fn shutdown(&self) -> std::io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            AnyStream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.read(buf),
            AnyStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for AnyStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.write(buf),
            AnyStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.flush(),
            AnyStream::Unix(s) => s.flush(),
        }
    }
}

/// The write half of a connection, shared between the reader thread (for
/// immediate responses) and the sweeper (for streamed frames). A failed
/// write latches `closed`; later frames to this subscriber are dropped
/// without touching the socket.
struct ConnWriter {
    stream: Mutex<AnyStream>,
    closed: AtomicBool,
}

impl ConnWriter {
    /// Closes the underlying socket in both directions, unblocking any
    /// parked read on the other half.
    fn shutdown(&self) {
        let _ = self.stream.lock().expect("writer lock").shutdown();
        self.closed.store(true, Ordering::Relaxed);
    }

    /// Writes one frame; `false` once the connection is dead.
    fn send(&self, payload: &str) -> bool {
        if self.closed.load(Ordering::Relaxed) {
            return false;
        }
        let mut s = self.stream.lock().expect("writer lock");
        match write_frame(&mut *s, payload.as_bytes()) {
            Ok(()) => true,
            Err(_) => {
                self.closed.store(true, Ordering::Relaxed);
                false
            }
        }
    }
}

pub(crate) struct Shared {
    pub(crate) cfg: ServerConfig,
    /// Request-level defaults handed to the parser.
    defaults: EvalConfig,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    /// Set (under the queue lock) when draining; checked under the same
    /// lock at admission so no job can slip in behind the sweeper's exit.
    pub(crate) shutdown: AtomicBool,
    /// Set by the sweeper once the drain is complete. The listeners stay
    /// up until then so late requests get an explicit `503`, not a
    /// connection refusal.
    pub(crate) drained: AtomicBool,
    pub(crate) in_flight: AtomicUsize,
    pub(crate) metrics: Mutex<ServerMetrics>,
    /// Simulation metrics folded in from every completed sweep (the
    /// Table 30 registry the metrics endpoint renders).
    pub(crate) registry: Mutex<MetricsRegistry>,
    /// Sweeps executed per [`SweepKey`], for the labelled `/metrics`
    /// counter.
    pub(crate) sweeps_by_key: Mutex<BTreeMap<SweepKey, u64>>,
    /// The always-on flight recorder ring.
    pub(crate) flight: Mutex<FlightRecorder>,
    /// Monotonic zero for every span timestamp in this process.
    pub(crate) epoch: Instant,
    /// µs-since-epoch of the last failure-triggered flight dump, for the
    /// once-per-second throttle.
    last_error_dump_us: AtomicU64,
    /// Prepared populations keyed by synthetic size.
    prepared: Mutex<HashMap<usize, Arc<PreparedPopulation>>>,
    /// Live connections, shut down at the end of a drain to unblock
    /// parked reader threads. Readers deregister themselves on exit.
    conns: Mutex<Vec<Arc<ConnWriter>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn request_shutdown(&self) {
        let _guard = self.queue.lock().expect("queue lock");
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    /// Microseconds since the server epoch.
    pub(crate) fn now_us(&self) -> u64 {
        crate::span::as_micros_u64(self.epoch.elapsed())
    }

    /// Current admission-queue depth.
    pub(crate) fn queue_depth(&self) -> usize {
        self.queue.lock().expect("queue lock").len()
    }

    /// A request reached its terminal point: fold the span into the
    /// per-phase histograms, record it in the flight ring, emit the log
    /// line, and — for failures, when configured — dump the recorder.
    pub(crate) fn finish_span(&self, span: &RequestSpan) {
        if !self.cfg.observability {
            return;
        }
        self.metrics.lock().expect("metrics lock").observe_span(span);
        self.flight.lock().expect("flight lock").push(FlightEntry::Span(*span));
        if self.cfg.log_json {
            eprintln!("{}", span.render_log_json());
        }
        if span.outcome != 200 {
            if let Some(path) = &self.cfg.flight_dump_on_error {
                let now = self.now_us();
                let last = self.last_error_dump_us.load(Ordering::Relaxed);
                if now.saturating_sub(last) >= 1_000_000 || last == 0 {
                    self.last_error_dump_us.store(now.max(1), Ordering::Relaxed);
                    if let Err(e) = self.dump_flight(path) {
                        eprintln!("javaflow-serve: flight dump to {} failed: {e}", path.display());
                    }
                }
            }
        }
    }

    /// Writes the flight ring as a Chrome-trace JSON file.
    pub(crate) fn dump_flight(&self, path: &Path) -> std::io::Result<()> {
        let json = self.flight.lock().expect("flight lock").chrome_json();
        std::fs::write(path, json)
    }
}

/// Renders the framed `metrics` response body — also served verbatim at
/// `/varz` by the HTTP sidecar.
pub(crate) fn metrics_frame_json(shared: &Shared, id: u64) -> String {
    let queue_depth = shared.queue_depth();
    let in_flight = shared.in_flight.load(Ordering::SeqCst);
    let server = shared.metrics.lock().expect("metrics lock").render_json(queue_depth, in_flight);
    let reg = shared.registry.lock().expect("registry lock");
    format!(
        "{{\"type\": \"metrics\", \"id\": {id}, \"server\": {server}, \
         \"table30\": \"{}\", \"metrics\": {}}}",
        json_escape(&reg.render()),
        reg.to_json(),
    )
}

/// A running `javaflow-serve` instance.
///
/// ```no_run
/// use javaflow_server::{Server, ServerConfig};
///
/// let server = Server::start(ServerConfig::default()).unwrap();
/// println!("listening on {}", server.addr());
/// server.request_shutdown();
/// server.join().unwrap();
/// ```
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").field("cfg", &self.cfg).finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("metrics_addr", &self.metrics_addr)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listeners, spawns the accept and sweeper threads (plus
    /// the HTTP sidecar when configured), and returns immediately.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let uds = match &cfg.uds_path {
            Some(path) => {
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let http = match &cfg.metrics_addr {
            Some(a) => {
                let l = TcpListener::bind(a)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let metrics_addr = match &http {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let defaults = EvalConfig { threads: cfg.threads, ..EvalConfig::default() };
        let flight_capacity = cfg.flight_capacity;
        let shared = Arc::new(Shared {
            cfg,
            defaults,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            drained: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            metrics: Mutex::new(ServerMetrics::default()),
            registry: Mutex::new(MetricsRegistry::new()),
            sweeps_by_key: Mutex::new(BTreeMap::new()),
            flight: Mutex::new(FlightRecorder::new(flight_capacity)),
            epoch: Instant::now(),
            last_error_dump_us: AtomicU64::new(0),
            prepared: Mutex::new(HashMap::new()),
            conns: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::new();
        {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                accept_loop(&shared, move || listener.accept().map(|(s, _)| AnyStream::Tcp(s)));
            }));
        }
        if let Some(l) = uds {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                accept_loop(&shared, move || l.accept().map(|(s, _)| AnyStream::Unix(s)));
            }));
        }
        if let Some(l) = http {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || crate::http::serve(&shared, &l)));
        }
        {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || sweeper_loop(&shared)));
        }
        Ok(Server { shared, addr, metrics_addr, handles })
    }

    /// The bound TCP address (the actual port when `addr` asked for 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound HTTP sidecar address, when one was configured.
    #[must_use]
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Begins a graceful drain: new sweeps get `503`, queued sweeps run
    /// to completion, then the worker threads exit. Idempotent; also
    /// triggered by a client `shutdown` request.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Whether a drain has been requested (by [`Server::request_shutdown`]
    /// or a client `shutdown` frame).
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Writes the flight recorder's current ring to `path` as a
    /// Chrome-trace / Perfetto JSON file (the SIGUSR1 dump).
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn dump_flight(&self, path: &Path) -> std::io::Result<()> {
        self.shared.dump_flight(path)
    }

    /// The flight recorder's current ring as Chrome-trace JSON.
    #[must_use]
    pub fn flight_chrome_json(&self) -> String {
        self.shared.flight.lock().expect("flight lock").chrome_json()
    }

    /// Waits for the drain to finish: joins the accept and sweeper
    /// threads, unblocks and joins every reader, removes the Unix socket
    /// file. Call after (or concurrently with) a shutdown request.
    pub fn join(mut self) -> std::io::Result<()> {
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        for c in self.shared.conns.lock().expect("conns lock").drain(..) {
            c.shutdown();
        }
        let readers: Vec<_> = self.shared.readers.lock().expect("readers lock").drain(..).collect();
        for h in readers {
            let _ = h.join();
        }
        if let Some(path) = &self.shared.cfg.uds_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// Polls a nonblocking listener until shutdown, handing each accepted
/// stream its own reader thread.
fn accept_loop(shared: &Arc<Shared>, mut accept: impl FnMut() -> std::io::Result<AnyStream>) {
    while !shared.drained.load(Ordering::SeqCst) {
        match accept() {
            Ok(stream) => {
                let Ok(read_half) = stream.try_clone() else { continue };
                let writer = Arc::new(ConnWriter {
                    stream: Mutex::new(stream),
                    closed: AtomicBool::new(false),
                });
                shared.conns.lock().expect("conns lock").push(Arc::clone(&writer));
                let shared2 = Arc::clone(shared);
                let handle = std::thread::spawn(move || {
                    let mut reader = read_half;
                    reader_loop(&shared2, &mut reader, &writer);
                    // Surface EOF to the peer even while queued jobs still
                    // hold `Arc`s to this writer, and drop the registry
                    // entry so long-lived servers don't accumulate one
                    // per connection ever served.
                    writer.shutdown();
                    shared2.conns.lock().expect("conns lock").retain(|w| !Arc::ptr_eq(w, &writer));
                });
                shared.readers.lock().expect("readers lock").push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// Reads frames off one connection until EOF, error, or a protocol
/// violation that closes it.
fn reader_loop(shared: &Arc<Shared>, reader: &mut AnyStream, writer: &Arc<ConnWriter>) {
    loop {
        match read_frame_timed(reader, shared.cfg.max_frame) {
            Ok(None) => break,
            Ok(Some((payload, read_dur))) => {
                let mut span = RequestSpan {
                    start_us: shared.now_us().saturating_sub(crate::span::as_micros_u64(read_dur)),
                    ..RequestSpan::default()
                };
                span.add_phase(PHASE_READ, read_dur);
                handle_request(shared, writer, &payload, span);
            }
            Err(FrameError::Oversized(n)) => {
                shared.metrics.lock().expect("metrics lock").bad_requests += 1;
                writer.send(&error_frame(
                    0,
                    413,
                    &format!("frame of {n} bytes exceeds the {} byte limit", shared.cfg.max_frame),
                ));
                // The payload was never read, so the span has no
                // measured phases — record the failure itself.
                let span = RequestSpan {
                    start_us: shared.now_us(),
                    outcome: 413,
                    ..RequestSpan::default()
                };
                shared.finish_span(&span);
                break;
            }
            Err(FrameError::Truncated | FrameError::Io(_)) => break,
        }
        if writer.closed.load(Ordering::Relaxed) {
            break;
        }
    }
}

fn handle_request(
    shared: &Arc<Shared>,
    writer: &Arc<ConnWriter>,
    payload: &[u8],
    mut span: RequestSpan,
) {
    let parse_started = Instant::now();
    let parsed = parse_request(payload, &shared.defaults);
    span.add_phase(PHASE_PARSE, parse_started.elapsed());
    match parsed {
        Err(e) => {
            shared.metrics.lock().expect("metrics lock").bad_requests += 1;
            writer.send(&error_frame(e.id, e.code, &e.message));
            span.id = e.id;
            span.outcome = e.code as u16;
            shared.finish_span(&span);
        }
        Ok(Request::Ping { id }) => {
            writer.send(&format!("{{\"type\": \"pong\", \"id\": {id}}}"));
            span.id = id;
            span.kind = b'p';
            span.outcome = 200;
            shared.finish_span(&span);
        }
        Ok(Request::Shutdown { id }) => {
            writer.send(&format!("{{\"type\": \"shutdown_ack\", \"id\": {id}}}"));
            shared.request_shutdown();
            span.id = id;
            span.kind = b'x';
            span.outcome = 200;
            shared.finish_span(&span);
        }
        Ok(Request::Metrics { id }) => {
            let frame = metrics_frame_json(shared, id);
            writer.send(&frame);
            span.id = id;
            span.kind = b'm';
            span.outcome = 200;
            shared.finish_span(&span);
        }
        Ok(Request::Sweep(req)) => {
            span.id = req.id;
            span.kind = b's';
            span.synthetic = req.synthetic as u64;
            span.max_mesh_cycles = req.max_mesh_cycles;
            span.net_contended = req.net == NetKind::Contended;
            span.fast_forward = req.fast_forward;
            span.compiled = req.compiled;
            admit(shared, writer, req, span);
        }
    }
}

/// Admission control: validate against server limits, refuse when
/// draining (`503`) or saturated (`429`), otherwise enqueue and ack.
fn admit(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, req: SweepRequest, mut span: RequestSpan) {
    if req.synthetic > shared.cfg.synthetic_cap {
        shared.metrics.lock().expect("metrics lock").bad_requests += 1;
        writer.send(&error_frame(
            req.id,
            400,
            &format!("`synthetic` exceeds the server cap of {}", shared.cfg.synthetic_cap),
        ));
        span.outcome = 400;
        shared.finish_span(&span);
        return;
    }
    let id = req.id;
    {
        let mut q = shared.queue.lock().expect("queue lock");
        if shared.shutdown.load(Ordering::SeqCst) {
            drop(q);
            shared.metrics.lock().expect("metrics lock").rejected_drain += 1;
            writer.send(&error_frame(id, 503, "server is draining"));
            span.outcome = 503;
            shared.finish_span(&span);
            return;
        }
        if q.len() >= shared.cfg.queue_cap {
            drop(q);
            shared.metrics.lock().expect("metrics lock").rejected_busy += 1;
            writer.send(&error_frame(id, 429, "admission queue is full"));
            span.outcome = 429;
            shared.finish_span(&span);
            return;
        }
        let now = Instant::now();
        q.push_back(Job {
            id,
            key: SweepKey::of(&req),
            threads: req.threads,
            tables: req.tables,
            deadline: (req.deadline_ms > 0).then(|| now + Duration::from_millis(req.deadline_ms)),
            writer: Arc::clone(writer),
            enqueued: now,
            span,
        });
        // Ack under the queue lock: the sweeper cannot pop (and start
        // streaming batches) until admission's frame is on the wire, so
        // `accepted` always precedes the first `batch` on a connection.
        writer.send(&format!(
            "{{\"type\": \"accepted\", \"id\": {id}, \"queue_depth\": {}}}",
            q.len()
        ));
    }
    shared.queue_cv.notify_one();
    shared.metrics.lock().expect("metrics lock").accepted += 1;
}

/// The sweeper: pop the oldest job, coalesce everything compatible with
/// it, run one shared sweep, stream to all subscribers. Exits when the
/// queue is empty after a shutdown request — a drain, not an abort.
fn sweeper_loop(shared: &Arc<Shared>) {
    loop {
        let group: Vec<Job> = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(first) = q.pop_front() {
                    let key = first.key.clone();
                    let mut group = vec![first];
                    let mut i = 0;
                    while i < q.len() {
                        if q[i].key == key {
                            group.extend(q.remove(i));
                        } else {
                            i += 1;
                        }
                    }
                    break group;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    drop(q);
                    shared.drained.store(true, Ordering::SeqCst);
                    return;
                }
                q = shared.queue_cv.wait(q).expect("queue lock");
            }
        };
        shared.in_flight.store(group.len(), Ordering::SeqCst);
        run_group(shared, group);
        shared.in_flight.store(0, Ordering::SeqCst);
    }
}

/// One subscriber to a (possibly shared) sweep.
struct Sub {
    job: Job,
    seq: usize,
    alive: bool,
}

fn run_group(shared: &Arc<Shared>, mut group: Vec<Job>) {
    let coalesced = group.len() > 1;
    {
        let picked_up = Instant::now();
        let mut m = shared.metrics.lock().expect("metrics lock");
        m.sweeps += 1;
        if coalesced {
            m.coalesced_requests += group.len() as u64 - 1;
        }
        for job in &mut group {
            let waited = picked_up.duration_since(job.enqueued);
            m.observe_queue_wait(waited);
            job.span.add_phase(PHASE_QUEUE, waited);
            job.span.coalesced = coalesced;
        }
    }
    let mut subs: Vec<Sub> = Vec::with_capacity(group.len());
    for job in group {
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            shared.metrics.lock().expect("metrics lock").cancelled_deadline += 1;
            job.writer.send(&error_frame(job.id, 504, "deadline expired before the sweep started"));
            let mut span = job.span;
            span.outcome = 504;
            shared.finish_span(&span);
        } else {
            subs.push(Sub { job, seq: 0, alive: true });
        }
    }
    if subs.is_empty() {
        return;
    }
    let key = subs[0].job.key.clone();
    let prepare_started = Instant::now();
    let pop = {
        let mut cache = shared.prepared.lock().expect("prepared lock");
        Arc::clone(cache.entry(key.synthetic).or_insert_with(|| {
            Arc::new(PreparedPopulation::prepare(key.synthetic, shared.cfg.threads))
        }))
    };
    let prepare_dur = prepare_started.elapsed();
    for sub in &mut subs {
        sub.job.span.add_phase(PHASE_PREPARE, prepare_dur);
    }
    let threads = subs.iter().filter_map(|s| s.job.threads).max().unwrap_or(shared.cfg.threads);
    let cfg = EvalConfig {
        synthetic_count: key.synthetic,
        max_mesh_cycles: key.max_mesh_cycles,
        net: if key.net_contended { NetKind::Contended } else { NetKind::Ideal },
        fast_forward: key.fast_forward,
        compiled: key.compiled,
        threads,
        ..EvalConfig::default()
    };
    let records = pop.records();
    let mut exec_mark = Instant::now();
    let eval = pop.evaluate_batched(&cfg, shared.cfg.batch_records, |first, results| {
        let exec_dur = exec_mark.elapsed();
        let payload = batch_payload(records, first, results);
        let mut streamed = 0u64;
        let mut any_alive = false;
        for sub in subs.iter_mut().filter(|s| s.alive) {
            sub.job.span.add_phase(PHASE_EXECUTE, exec_dur);
            if sub.job.deadline.is_some_and(|d| Instant::now() >= d) {
                sub.alive = false;
                shared.metrics.lock().expect("metrics lock").cancelled_deadline += 1;
                sub.job.writer.send(&error_frame(sub.job.id, 504, "deadline exceeded mid-sweep"));
                let mut span = sub.job.span;
                span.outcome = 504;
                shared.finish_span(&span);
                continue;
            }
            let frame = batch_frame(sub.job.id, sub.seq, first, &payload);
            let write_started = Instant::now();
            if sub.job.writer.send(&frame) {
                sub.job.span.add_phase(PHASE_STREAM, write_started.elapsed());
                sub.job.span.bytes_streamed += frame.len() as u64;
                sub.job.span.batches += 1;
                sub.seq += 1;
                streamed += 1;
                any_alive = true;
            } else {
                sub.alive = false;
                shared.metrics.lock().expect("metrics lock").disconnects += 1;
                let mut span = sub.job.span;
                span.outcome = OUTCOME_CLIENT_GONE;
                shared.finish_span(&span);
            }
        }
        shared.metrics.lock().expect("metrics lock").batches_streamed += streamed;
        exec_mark = Instant::now();
        // No live subscribers left → cancel the sweep at this boundary.
        any_alive
    });
    let Some(eval) = eval else { return };
    // Fold the sweep's simulation metrics in (and count it against its
    // key) before the done frames go out, so a client that saw `done`
    // also sees this sweep on the metrics page.
    let sweep_metrics = eval.metrics();
    shared.registry.lock().expect("registry lock").merge(&sweep_metrics);
    *shared.sweeps_by_key.lock().expect("sweeps_by_key lock").entry(key).or_insert(0) += 1;
    if shared.cfg.observability {
        let at_us = shared.now_us();
        let mut flight = shared.flight.lock().expect("flight lock");
        for (code, name) in WARN_COUNTERS {
            let count = sweep_metrics.counter(name);
            if count > 0 {
                flight.push(FlightEntry::Warn { at_us, code, count });
            }
        }
    }
    let done_at = Instant::now();
    for sub in subs.iter_mut().filter(|s| s.alive) {
        let frame = done_frame(sub.job.id, &eval, coalesced, &sub.job.tables);
        let write_started = Instant::now();
        let delivered = sub.job.writer.send(&frame);
        sub.job.span.add_phase(PHASE_STREAM, write_started.elapsed());
        {
            let mut m = shared.metrics.lock().expect("metrics lock");
            if delivered {
                m.completed += 1;
                m.observe_latency(done_at.duration_since(sub.job.enqueued));
            } else {
                m.disconnects += 1;
            }
        }
        let mut span = sub.job.span;
        if delivered {
            span.bytes_streamed += frame.len() as u64;
            span.outcome = 200;
        } else {
            span.outcome = OUTCOME_CLIENT_GONE;
        }
        shared.finish_span(&span);
    }
}

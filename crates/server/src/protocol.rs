//! The `javaflow-serve` wire protocol: length-prefixed JSON frames.
//!
//! Every message — request or response — is one frame: a 4-byte
//! big-endian length `N` followed by `N` bytes of UTF-8 JSON. Requests
//! are bounded by [`MAX_REQUEST_FRAME`] (an oversized prefix is answered
//! with a `413` error and the connection closed before any payload is
//! buffered); responses carry no bound, a sweep's tables can be large.
//!
//! The response builders here are the *only* producers of sample/report
//! JSON on the wire, and they delegate to `analysis::report_json` — the
//! same serializers the `BENCH_*.json` artifacts use — so a served
//! response is byte-identical to the equivalent in-process rendering.
//! `load_gen` exercises exactly that equivalence via
//! [`expected_batch_payloads`].

use std::io::{Read, Write};

use javaflow_analysis::report_json::{exec_report_json, json_escape};
use javaflow_core::{EvalConfig, Evaluation, MethodRecord, MethodStatics, Sample};
use javaflow_fabric::NetKind;

use crate::json::Json;

/// Upper bound on an incoming request frame. Requests are small command
/// objects; anything larger is a protocol error (or an attack), answered
/// with `413` before the payload is read.
pub const MAX_REQUEST_FRAME: usize = 1 << 20;

/// Longest accepted `tables` list in one request.
pub const MAX_TABLES: usize = 32;

/// Reads one length-prefixed frame. `Ok(None)` is a clean EOF at a frame
/// boundary; a length above `max` yields `FrameError::Oversized` without
/// reading the payload; a mid-frame EOF yields `Truncated`.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    read_frame_timed(r, max).map(|f| f.map(|(payload, _)| payload))
}

/// [`read_frame`], also reporting how long the frame took to arrive.
///
/// The clock starts when the *first* bytes of the length prefix return —
/// not when the call blocks waiting for the client to speak — so the
/// reported duration is socket/transfer time for this frame, which is
/// what the request span's `read` phase means. An idle keep-alive
/// connection therefore reads as µs, not as the minutes it sat parked.
pub fn read_frame_timed(
    r: &mut impl Read,
    max: usize,
) -> Result<Option<(Vec<u8>, std::time::Duration)>, FrameError> {
    let mut len = [0u8; 4];
    let started;
    match r.read(&mut len) {
        Ok(0) => return Ok(None),
        Ok(mut got) => {
            started = std::time::Instant::now();
            while got < 4 {
                match r.read(&mut len[got..]) {
                    Ok(0) => return Err(FrameError::Truncated),
                    Ok(n) => got += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(FrameError::Io(e)),
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(FrameError::Io(e)),
    }
    let n = u32::from_be_bytes(len) as usize;
    if n > max {
        return Err(FrameError::Oversized(n));
    }
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    })?;
    Ok(Some((buf, started.elapsed())))
}

/// Writes one length-prefixed frame.
///
/// # Panics
///
/// Panics if `payload` exceeds `u32::MAX` bytes (no rendered response
/// approaches this).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).expect("frame fits in u32");
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// A framing failure while reading a request.
#[derive(Debug)]
pub enum FrameError {
    /// The length prefix exceeded the limit; the payload was not read.
    Oversized(usize),
    /// The peer closed mid-frame.
    Truncated,
    /// An I/O error.
    Io(std::io::Error),
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or join) a sweep and stream the results.
    Sweep(SweepRequest),
    /// Render the live metrics registry and server counters.
    Metrics {
        /// Client-chosen request id, echoed on the response.
        id: u64,
    },
    /// Liveness probe.
    Ping {
        /// Client-chosen request id, echoed on the response.
        id: u64,
    },
    /// Ask the server to drain and exit (same path as SIGINT).
    Shutdown {
        /// Client-chosen request id, echoed on the response.
        id: u64,
    },
}

/// A sweep request: a population selection plus per-request `EvalConfig`
/// overrides. Unset fields take the server's defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// Client-chosen request id, echoed on every response frame.
    pub id: u64,
    /// Synthetic-population size (the cache key for prepared methods).
    pub synthetic: usize,
    /// Per-run mesh-cycle budget.
    pub max_mesh_cycles: u64,
    /// Interconnect model.
    pub net: NetKind,
    /// Worker threads for the sweep (coalesced requests share the
    /// largest ask). Results never depend on this.
    pub threads: Option<usize>,
    /// Token-walk fast-forwarding.
    pub fast_forward: bool,
    /// Block-compiled execution: replay cached AOT schedules where
    /// eligible. Part of the coalescing key — compiled and interpreted
    /// sweeps never share a run.
    pub compiled: bool,
    /// Chapter 7 tables to render into the final `done` frame.
    pub tables: Vec<u32>,
    /// Per-request deadline in milliseconds; 0 = none. An expired sweep
    /// is cancelled at the next batch boundary with a `504`.
    pub deadline_ms: u64,
}

/// A request-parse failure: the `429`-style numeric code plus a message.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// Protocol error code (`400` malformed, `413` oversized, ...).
    pub code: u32,
    /// Human-readable reason, safe to echo into the error frame.
    pub message: String,
    /// The request id, when one could be recovered from the payload.
    pub id: u64,
}

impl RequestError {
    fn bad(id: u64, message: impl Into<String>) -> RequestError {
        RequestError { code: 400, message: message.into(), id }
    }
}

/// Parses and validates one request frame.
pub fn parse_request(payload: &[u8], defaults: &EvalConfig) -> Result<Request, RequestError> {
    let text =
        std::str::from_utf8(payload).map_err(|_| RequestError::bad(0, "request is not UTF-8"))?;
    let j = Json::parse(text).map_err(|e| RequestError::bad(0, format!("bad JSON: {e}")))?;
    let id = j.get("id").and_then(Json::as_u64).unwrap_or(0);
    let kind = j
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| RequestError::bad(id, "missing `kind`"))?;
    match kind {
        "metrics" => Ok(Request::Metrics { id }),
        "ping" => Ok(Request::Ping { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "sweep" => {
            let field_u64 = |name: &str, default: u64| -> Result<u64, RequestError> {
                match j.get(name) {
                    None | Some(Json::Null) => Ok(default),
                    Some(v) => v.as_u64().ok_or_else(|| {
                        RequestError::bad(id, format!("`{name}` must be a non-negative integer"))
                    }),
                }
            };
            let synthetic = field_u64("synthetic", defaults.synthetic_count as u64)? as usize;
            let max_mesh_cycles = field_u64("max_mesh_cycles", defaults.max_mesh_cycles)?;
            if max_mesh_cycles == 0 || max_mesh_cycles > 100_000_000 {
                return Err(RequestError::bad(id, "`max_mesh_cycles` out of range (1..=1e8)"));
            }
            let net = match j.get("net") {
                None | Some(Json::Null) => defaults.net,
                Some(v) => match v.as_str() {
                    Some("ideal") => NetKind::Ideal,
                    Some("contended") => NetKind::Contended,
                    _ => {
                        return Err(RequestError::bad(
                            id,
                            "`net` must be \"ideal\" or \"contended\"",
                        ))
                    }
                },
            };
            let threads = match j.get("threads") {
                None | Some(Json::Null) => None,
                Some(v) => match v.as_u64() {
                    Some(t @ 1..=256) => Some(t as usize),
                    _ => return Err(RequestError::bad(id, "`threads` must be 1..=256")),
                },
            };
            let fast_forward = match j.get("fast_forward") {
                None | Some(Json::Null) => defaults.fast_forward,
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| RequestError::bad(id, "`fast_forward` must be a bool"))?,
            };
            let compiled = match j.get("compiled") {
                None | Some(Json::Null) => defaults.compiled,
                Some(v) => {
                    v.as_bool().ok_or_else(|| RequestError::bad(id, "`compiled` must be a bool"))?
                }
            };
            let tables = match j.get("tables") {
                None | Some(Json::Null) => Vec::new(),
                Some(v) => {
                    let arr = v
                        .as_arr()
                        .ok_or_else(|| RequestError::bad(id, "`tables` must be an array"))?;
                    if arr.len() > MAX_TABLES {
                        return Err(RequestError::bad(
                            id,
                            format!("at most {MAX_TABLES} tables per request"),
                        ));
                    }
                    arr.iter()
                        .map(|t| match t.as_u64() {
                            Some(n @ 1..=30) => Ok(n as u32),
                            _ => Err(RequestError::bad(id, "table ids must be 1..=30")),
                        })
                        .collect::<Result<Vec<u32>, RequestError>>()?
                }
            };
            let deadline_ms = field_u64("deadline_ms", 0)?;
            Ok(Request::Sweep(SweepRequest {
                id,
                synthetic,
                max_mesh_cycles,
                net,
                threads,
                fast_forward,
                compiled,
                tables,
                deadline_ms,
            }))
        }
        other => Err(RequestError::bad(id, format!("unknown kind `{other}`"))),
    }
}

/// Renders the `"records"` array of one batch frame from per-record sweep
/// results. Shared verbatim between the server's sweeper and the
/// expectation side of `load_gen` — byte-identity is this function being
/// the only implementation.
pub fn batch_records_json<'a>(
    entries: impl Iterator<Item = (usize, &'a str, &'a [Sample])>,
) -> String {
    let mut out = String::from("[");
    for (i, (ri, name, samples)) in entries.enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"record\": {ri}, \"name\": \"{}\", \"samples\": [",
            json_escape(name)
        ));
        for (k, s) in samples.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"config\": {}, \"bp\": \"{:?}\", \"ok\": {}, \"report\": {}}}",
                s.config,
                s.bp,
                s.ok,
                exec_report_json(&s.report),
            ));
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

/// [`batch_records_json`] over one batch of `core::service` sweep
/// results, as the sweeper streams them.
pub fn batch_payload(
    records: &[MethodRecord],
    first_record: usize,
    results: &[(MethodStatics, Vec<Sample>)],
) -> String {
    batch_records_json(results.iter().enumerate().map(|(i, (_, samples))| {
        let ri = first_record + i;
        (ri, records[ri].name.as_str(), samples.as_slice())
    }))
}

/// The expected per-batch `"records"` payloads for a finished in-process
/// [`Evaluation`] — what a server sweeping in `batch_records`-sized
/// batches must stream, byte for byte. Returns `(first_record, payload)`
/// pairs in stream order.
#[must_use]
pub fn expected_batch_payloads(eval: &Evaluation, batch_records: usize) -> Vec<(usize, String)> {
    assert!(batch_records > 0);
    // `Evaluation::assemble` appends samples record by record, so each
    // record's samples are one contiguous, ordered run.
    let mut by_record: Vec<&[Sample]> = vec![&[]; eval.records.len()];
    let mut i = 0;
    while i < eval.samples.len() {
        let ri = eval.samples[i].record;
        let mut j = i;
        while j < eval.samples.len() && eval.samples[j].record == ri {
            j += 1;
        }
        by_record[ri] = &eval.samples[i..j];
        i = j;
    }
    let mut out = Vec::new();
    let mut lo = 0;
    while lo < eval.records.len() {
        let hi = (lo + batch_records).min(eval.records.len());
        let payload = batch_records_json(
            (lo..hi).map(|ri| (ri, eval.records[ri].name.as_str(), by_record[ri])),
        );
        out.push((lo, payload));
        lo = hi;
    }
    out
}

/// Builds one full batch frame around a shared records payload.
#[must_use]
pub fn batch_frame(id: u64, seq: usize, first_record: usize, records_payload: &str) -> String {
    format!(
        "{{\"type\": \"batch\", \"id\": {id}, \"seq\": {seq}, \"first_record\": {first_record}, \"records\": {records_payload}}}"
    )
}

/// Builds the final `done` frame: totals plus the requested rendered
/// tables. `coalesced` reports whether this request shared its sweep.
#[must_use]
pub fn done_frame(id: u64, eval: &Evaluation, coalesced: bool, tables: &[u32]) -> String {
    let mut rendered = String::from("{");
    for (i, &t) in tables.iter().enumerate() {
        if i > 0 {
            rendered.push_str(", ");
        }
        rendered.push_str(&format!(
            "\"{t}\": \"{}\"",
            json_escape(&javaflow_core::tables::chapter7_tables(eval, t))
        ));
    }
    rendered.push('}');
    format!(
        "{{\"type\": \"done\", \"id\": {id}, \"records\": {}, \"samples\": {}, \"coalesced\": {coalesced}, \"tables\": {rendered}}}",
        eval.records.len(),
        eval.samples.len(),
    )
}

/// Builds an error frame.
#[must_use]
pub fn error_frame(id: u64, code: u32, message: &str) -> String {
    format!(
        "{{\"type\": \"error\", \"id\": {id}, \"code\": {code}, \"message\": \"{}\"}}",
        json_escape(message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"kind\": \"ping\"}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"{\"kind\": \"ping\"}");
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, 1024).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_is_detected_before_the_payload() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(1u32 << 24).to_be_bytes());
        let mut r = &buf[..];
        assert!(
            matches!(read_frame(&mut r, MAX_REQUEST_FRAME), Err(FrameError::Oversized(n)) if n == 1 << 24)
        );
    }

    #[test]
    fn truncation_is_an_error_not_a_hang() {
        // Mid-prefix EOF.
        let mut r: &[u8] = &[0, 0];
        assert!(matches!(read_frame(&mut r, 1024), Err(FrameError::Truncated)));
        // Mid-payload EOF.
        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r, 1024), Err(FrameError::Truncated)));
    }

    #[test]
    fn sweep_requests_parse_with_defaults() {
        let d = EvalConfig::default();
        let r = parse_request(b"{\"kind\": \"sweep\", \"id\": 3}", &d).unwrap();
        let Request::Sweep(s) = r else { panic!("expected sweep") };
        assert_eq!(s.id, 3);
        assert_eq!(s.synthetic, d.synthetic_count);
        assert_eq!(s.max_mesh_cycles, d.max_mesh_cycles);
        assert_eq!(s.net, d.net);
        assert_eq!(s.threads, None);
        assert!(s.fast_forward);
        assert!(!s.compiled, "compiled defaults off, like EvalConfig");
        assert!(s.tables.is_empty());
        assert_eq!(s.deadline_ms, 0);

        let r = parse_request(b"{\"kind\": \"sweep\", \"id\": 4, \"compiled\": true}", &d).unwrap();
        let Request::Sweep(s) = r else { panic!("expected sweep") };
        assert!(s.compiled);
    }

    #[test]
    fn invalid_fields_are_400s_with_the_request_id() {
        let d = EvalConfig::default();
        for bad in [
            "{\"kind\": \"sweep\", \"id\": 9, \"net\": \"warp\"}",
            "{\"kind\": \"sweep\", \"id\": 9, \"threads\": 0}",
            "{\"kind\": \"sweep\", \"id\": 9, \"tables\": [31]}",
            "{\"kind\": \"sweep\", \"id\": 9, \"max_mesh_cycles\": 0}",
            "{\"kind\": \"sweep\", \"id\": 9, \"synthetic\": \"many\"}",
            "{\"kind\": \"sweep\", \"id\": 9, \"compiled\": \"yes\"}",
            "{\"kind\": \"warp\", \"id\": 9}",
        ] {
            let e = parse_request(bad.as_bytes(), &d).unwrap_err();
            assert_eq!(e.code, 400, "{bad}");
            assert_eq!(e.id, 9, "{bad}");
        }
        let e = parse_request(b"not json", &d).unwrap_err();
        assert_eq!((e.code, e.id), (400, 0));
    }
}

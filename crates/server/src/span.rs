//! Request spans: monotonic per-phase timing for one request's lifecycle.
//!
//! A [`RequestSpan`] is a fixed-size `Copy` record created when a frame
//! arrives and finished exactly once at the request's terminal point
//! (`done`, `400`, `413`, `429`, `499` client-gone, `503`, `504`). The
//! phase durations — read → parse → queue → prepare → execute → stream —
//! fold into the per-phase histograms of
//! [`ServerMetrics`](crate::metrics::ServerMetrics), land in the flight
//! recorder's ring, and (with `--log-json`) render as one structured JSON
//! log line per request on stderr. Being `Copy` with no heap parts is
//! what lets the flight recorder hold spans without allocating after
//! startup.

use std::time::Duration;

/// Phase index: time reading the frame off the socket (first byte →
/// complete frame).
pub const PHASE_READ: usize = 0;
/// Phase index: parsing + validating the request JSON.
pub const PHASE_PARSE: usize = 1;
/// Phase index: waiting in the admission queue for the sweeper.
pub const PHASE_QUEUE: usize = 2;
/// Phase index: preparing (or fetching) the population for the sweep.
pub const PHASE_PREPARE: usize = 3;
/// Phase index: simulating, summed across the sweep's batches.
pub const PHASE_EXECUTE: usize = 4;
/// Phase index: writing result frames to this subscriber.
pub const PHASE_STREAM: usize = 5;
/// Phase display names, index-aligned with the `PHASE_*` constants.
pub const PHASE_NAMES: [&str; 6] = ["read", "parse", "queue", "prepare", "execute", "stream"];

/// Outcome code for a subscriber whose connection died mid-stream
/// (nginx-style "client closed request").
pub const OUTCOME_CLIENT_GONE: u16 = 499;

/// One request's lifecycle timings and identity, recorded as monotonic
/// per-phase durations in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestSpan {
    /// Client-chosen request id (0 when none could be parsed).
    pub id: u64,
    /// Start of the span (first byte of the frame), µs since the server
    /// epoch.
    pub start_us: u64,
    /// Per-phase durations, µs; see the `PHASE_*` constants.
    pub phase_us: [u64; 6],
    /// Bitmask of phases that actually happened (`1 << PHASE_*`); a
    /// refused request never reaches `execute`, and its phase histogram
    /// must not be polluted with zeros.
    pub reached: u8,
    /// Terminal outcome: `200`, `400`, `413`, `429`, [`OUTCOME_CLIENT_GONE`],
    /// `503`, `504`.
    pub outcome: u16,
    /// Request kind tag: `b's'` sweep, `b'm'` metrics, `b'p'` ping,
    /// `b'x'` shutdown, `0` unparseable.
    pub kind: u8,
    /// Whether this sweep shared an already-queued run.
    pub coalesced: bool,
    /// Result-frame bytes written to this subscriber.
    pub bytes_streamed: u64,
    /// Batch frames delivered to this subscriber.
    pub batches: u64,
    /// Sweep key: synthetic population size (0 for non-sweeps).
    pub synthetic: u64,
    /// Sweep key: per-run mesh-cycle budget.
    pub max_mesh_cycles: u64,
    /// Sweep key: contended interconnect model.
    pub net_contended: bool,
    /// Sweep key: token-walk fast-forwarding.
    pub fast_forward: bool,
    /// Sweep key: block-compiled execution.
    pub compiled: bool,
}

/// Saturating `Duration` → µs (the histograms are `u64`).
#[must_use]
pub fn as_micros_u64(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

impl RequestSpan {
    /// Accumulates `dur` into phase `p` and marks it reached.
    pub fn add_phase(&mut self, p: usize, dur: Duration) {
        self.phase_us[p] = self.phase_us[p].saturating_add(as_micros_u64(dur));
        self.reached |= 1 << p;
    }

    /// Total wall time across the recorded phases, µs. (Phases are
    /// contiguous by construction, so the sum is the span.)
    #[must_use]
    pub fn total_us(&self) -> u64 {
        self.phase_us.iter().sum()
    }

    /// The request kind as a display string.
    #[must_use]
    pub fn kind_str(&self) -> &'static str {
        match self.kind {
            b's' => "sweep",
            b'm' => "metrics",
            b'p' => "ping",
            b'x' => "shutdown",
            _ => "unknown",
        }
    }

    /// Renders the structured `--log-json` line: one flat JSON object,
    /// stable key order, no allocation surprises. The caller adds the
    /// newline.
    #[must_use]
    pub fn render_log_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"event\":\"request\",\"ts_us\":{},\"id\":{},\"kind\":\"{}\",\"outcome\":{}",
            self.start_us,
            self.id,
            self.kind_str(),
            self.outcome,
        ));
        if self.kind == b's' {
            out.push_str(&format!(
                ",\"synthetic\":{},\"max_mesh_cycles\":{},\"net\":\"{}\",\"fast_forward\":{},\"compiled\":{},\"coalesced\":{},\"batches\":{},\"bytes_streamed\":{}",
                self.synthetic,
                self.max_mesh_cycles,
                if self.net_contended { "contended" } else { "ideal" },
                self.fast_forward,
                self.compiled,
                self.coalesced,
                self.batches,
                self.bytes_streamed,
            ));
        }
        for (p, name) in PHASE_NAMES.iter().enumerate() {
            if self.reached & (1 << p) != 0 {
                out.push_str(&format!(",\"{name}_us\":{}", self.phase_us[p]));
            }
        }
        out.push_str(&format!(",\"total_us\":{}}}", self.total_us()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_and_mark_reached() {
        let mut s = RequestSpan { id: 7, kind: b's', ..Default::default() };
        s.add_phase(PHASE_READ, Duration::from_micros(5));
        s.add_phase(PHASE_EXECUTE, Duration::from_micros(100));
        s.add_phase(PHASE_EXECUTE, Duration::from_micros(50));
        assert_eq!(s.phase_us[PHASE_EXECUTE], 150);
        assert_eq!(s.reached, (1 << PHASE_READ) | (1 << PHASE_EXECUTE));
        assert_eq!(s.total_us(), 155);
    }

    #[test]
    fn log_line_is_flat_json_with_reached_phases_only() {
        let mut s =
            RequestSpan { id: 3, kind: b's', outcome: 200, synthetic: 16, ..Default::default() };
        s.add_phase(PHASE_READ, Duration::from_micros(2));
        s.add_phase(PHASE_PARSE, Duration::from_micros(1));
        let line = s.render_log_json();
        assert!(line.starts_with("{\"event\":\"request\""), "{line}");
        assert!(line.contains("\"kind\":\"sweep\""), "{line}");
        assert!(line.contains("\"read_us\":2"), "{line}");
        assert!(line.contains("\"parse_us\":1"), "{line}");
        assert!(!line.contains("execute_us"), "unreached phases stay out: {line}");
        assert!(line.ends_with("\"total_us\":3}"), "{line}");
        // It must parse as JSON with our own parser.
        crate::json::Json::parse(&line).expect("log line parses");
    }

    #[test]
    fn ping_lines_skip_sweep_fields() {
        let s = RequestSpan { id: 1, kind: b'p', outcome: 200, ..Default::default() };
        let line = s.render_log_json();
        assert!(line.contains("\"kind\":\"ping\""));
        assert!(!line.contains("synthetic"), "{line}");
        crate::json::Json::parse(&line).expect("log line parses");
    }
}

//! `javaflow-serve` — the sweep harness as a long-lived process.
//!
//! Binds a TCP listener (and optionally a Unix socket), prints a ready
//! line with the bound address, and serves length-prefixed JSON sweep
//! requests until a shutdown request or SIGINT/SIGTERM, then drains the
//! admission queue and exits 0. With `--metrics-addr` an HTTP sidecar
//! serves `/metrics`, `/healthz`, and `/varz`; SIGUSR1 dumps the flight
//! recorder to a Chrome-trace file.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use javaflow_server::{Server, ServerConfig};

/// Drain flag flipped by the C signal handler; the main loop polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);
/// Flight-dump flag flipped by SIGUSR1; the main loop polls and clears it.
static DUMP: AtomicBool = AtomicBool::new(false);

type SigHandler = extern "C" fn(i32);

extern "C" {
    fn signal(signum: i32, handler: SigHandler) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

extern "C" fn on_dump_signal(_signum: i32) {
    DUMP.store(true, Ordering::SeqCst);
}

const SIGINT: i32 = 2;
const SIGUSR1: i32 = 10;
const SIGTERM: i32 = 15;

const USAGE: &str = "\
javaflow-serve: long-lived sweep server

USAGE:
    javaflow-serve [OPTIONS]

OPTIONS:
    --addr <host:port>     TCP bind address (default 127.0.0.1:0; port 0
                           picks an ephemeral port, echoed on stdout)
    --uds <path>           also listen on a Unix socket at <path>
    --metrics-addr <h:p>   serve HTTP /metrics, /healthz, /varz here
    --queue-cap <n>        admission-queue capacity (default 32)
    --batch-records <n>    records per streamed batch (default 16)
    --threads <n>          default sweep threads (default: machine parallelism)
    --synthetic-cap <n>    largest accepted synthetic population (default 5000)
    --log-json             one structured JSON log line per request on stderr
    --flight-cap <n>       flight-recorder ring capacity (default 1024)
    --flight-dump <path>   Chrome-trace dump target for SIGUSR1, and for
                           automatic dumps on request failure
    --help                 print this help

SIGNALS:
    SIGINT/SIGTERM drain and exit; SIGUSR1 dumps the flight recorder to
    the --flight-dump path (default flight.trace.json).

PROTOCOL:
    4-byte big-endian length prefix + UTF-8 JSON per frame. Request kinds:
    sweep, metrics, ping, shutdown. See DESIGN.md \"Request lifecycle\".
";

fn parse_args() -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--addr" => cfg.addr = value("--addr")?,
            "--uds" => cfg.uds_path = Some(value("--uds")?.into()),
            "--metrics-addr" => cfg.metrics_addr = Some(value("--metrics-addr")?),
            "--queue-cap" => {
                cfg.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|_| "--queue-cap must be an integer".to_string())?;
            }
            "--batch-records" => {
                cfg.batch_records = value("--batch-records")?
                    .parse()
                    .map_err(|_| "--batch-records must be an integer".to_string())?;
                if cfg.batch_records == 0 {
                    return Err("--batch-records must be at least 1".to_string());
                }
            }
            "--threads" => {
                cfg.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be an integer".to_string())?;
                if cfg.threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--synthetic-cap" => {
                cfg.synthetic_cap = value("--synthetic-cap")?
                    .parse()
                    .map_err(|_| "--synthetic-cap must be an integer".to_string())?;
            }
            "--log-json" => cfg.log_json = true,
            "--flight-cap" => {
                cfg.flight_capacity = value("--flight-cap")?
                    .parse()
                    .map_err(|_| "--flight-cap must be an integer".to_string())?;
                if cfg.flight_capacity == 0 {
                    return Err("--flight-cap must be at least 1".to_string());
                }
            }
            "--flight-dump" => cfg.flight_dump_on_error = Some(value("--flight-dump")?.into()),
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("javaflow-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
        signal(SIGUSR1, on_dump_signal);
    }
    let uds = cfg.uds_path.clone();
    let dump_path = cfg.flight_dump_on_error.clone().unwrap_or_else(|| "flight.trace.json".into());
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("javaflow-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The ready line CI and scripts scrape for the ephemeral port.
    println!("javaflow-serve listening on {}", server.addr());
    if let Some(path) = &uds {
        println!("javaflow-serve listening on unix:{}", path.display());
    }
    if let Some(addr) = server.metrics_addr() {
        println!("javaflow-serve metrics on http://{addr}/metrics");
    }
    loop {
        if SHUTDOWN.load(Ordering::SeqCst) || server.shutdown_requested() {
            break;
        }
        if DUMP.swap(false, Ordering::SeqCst) {
            match server.dump_flight(&dump_path) {
                Ok(()) => eprintln!("javaflow-serve: flight dump → {}", dump_path.display()),
                Err(e) => {
                    eprintln!("javaflow-serve: flight dump to {} failed: {e}", dump_path.display());
                }
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("javaflow-serve: draining");
    server.request_shutdown();
    match server.join() {
        Ok(()) => {
            eprintln!("javaflow-serve: drained, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("javaflow-serve: drain failed: {e}");
            ExitCode::FAILURE
        }
    }
}

//! A minimal std-only JSON reader for request parsing.
//!
//! The workspace is dependency-free, so requests are parsed by this small
//! recursive-descent reader instead of serde. It accepts exactly the JSON
//! grammar (objects, arrays, strings with escapes, numbers, literals),
//! bounds recursion depth, and reports errors as strings — a malformed
//! request must produce a structured `400` response, never a panic.
//! Responses are *written* by `analysis::report_json` and the protocol
//! module; this type is only ever built from client bytes.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integer from float).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. BTreeMap: key order never matters for requests.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error (a frame carries exactly one value).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one (within u64
    /// range and integral).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 1.8446744073709552e19 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte 0x{b:02x} at offset {}", self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        self.depth += 1;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            self.pos += 4;
                            // Surrogates never appear in our requests;
                            // map them to U+FFFD rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through verbatim: the frame
                    // was already validated as UTF-8.
                    let start = self.pos;
                    let text =
                        std::str::from_utf8(&self.bytes[start..]).map_err(|_| "bad utf-8")?;
                    let c = text.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_requests() {
        let j = Json::parse(
            "{\"kind\": \"sweep\", \"id\": 7, \"synthetic\": 50, \"fast_forward\": false, \
             \"tables\": [22, 30], \"net\": \"contended\"}",
        )
        .unwrap();
        assert_eq!(j.get("kind").and_then(Json::as_str), Some("sweep"));
        assert_eq!(j.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(j.get("fast_forward").and_then(Json::as_bool), Some(false));
        assert_eq!(j.get("tables").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn strings_unescape() {
        let j = Json::parse("\"a\\\"b\\\\c\\n\\u0041\"").unwrap();
        assert_eq!(j.as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\":}",
            "[1,]",
            "nul",
            "{\"a\" 1}",
            "01x",
            "\"unterminated",
            "{\"a\":1} trailing",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err(), "deep nesting must be rejected, not recursed");
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn numbers_parse() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("2.5").unwrap(), Json::Num(2.5));
        assert_eq!(Json::parse("1e3").unwrap().as_u64(), Some(1000));
    }
}

//! The flight recorder: a fixed-capacity ring of recent request spans
//! and gating warnings, always on.
//!
//! This is the third observability tier. A full
//! [`javaflow_fabric::TraceSink`] recording forces the naive walk, so it
//! cannot run in production; the flight recorder instead keeps the last
//! `capacity` [`RequestSpan`]s (plus any `WARN_*` gating declines folded
//! out of each sweep's metrics) in a preallocated ring of `Copy` records
//! — recording never allocates or touches the simulation hot path.
//! On SIGUSR1, or on a request failure when configured, the ring is
//! rendered as a Chrome-trace / Perfetto JSON document through the
//! `analysis::trace` export machinery ([`FlightRecorder::chrome_json`]).

use javaflow_analysis::trace::{chrome_json, TraceSpan};
use javaflow_fabric::warn_counter_name;

use crate::span::{RequestSpan, OUTCOME_CLIENT_GONE, PHASE_NAMES};

/// One ring slot: a finished request span, or a gating warning observed
/// while folding a sweep's simulation metrics.
#[derive(Debug, Clone, Copy)]
pub enum FlightEntry {
    /// A request that reached its terminal point.
    Span(RequestSpan),
    /// `count` fast-forward / compile gating declines of kind `code`
    /// (a `javaflow_fabric::trace::WARN_*` value) in one sweep.
    Warn {
        /// µs since the server epoch when the sweep finished.
        at_us: u64,
        /// The `WARN_*` reason code.
        code: u32,
        /// How many runs of the sweep declined for this reason.
        count: u64,
    },
}

/// Fixed-capacity ring of recent [`FlightEntry`]s. All slots are
/// preallocated at construction; recording overwrites the oldest entry
/// and never allocates.
#[derive(Debug)]
pub struct FlightRecorder {
    entries: Vec<FlightEntry>,
    /// Overwrite cursor once the ring is full.
    next: usize,
    /// Entries overwritten since startup.
    dropped: u64,
    capacity: usize,
}

impl FlightRecorder {
    /// A ring holding up to `capacity` entries (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder { entries: Vec::with_capacity(capacity), next: 0, dropped: 0, capacity }
    }

    /// Records one entry, overwriting the oldest when full.
    pub fn push(&mut self, e: FlightEntry) {
        if self.entries.len() < self.capacity {
            self.entries.push(e);
        } else {
            self.entries[self.next] = e;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Entries currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring holds nothing yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries overwritten since startup.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The held entries, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<FlightEntry> {
        let mut out = Vec::with_capacity(self.entries.len());
        out.extend_from_slice(&self.entries[self.next..]);
        out.extend_from_slice(&self.entries[..self.next]);
        out
    }

    /// Renders the ring as a Chrome-trace / Perfetto JSON document:
    /// one process, a "requests" summary row, one row per phase, and a
    /// "warnings" row. Timestamps are µs since the server epoch, so
    /// concurrent requests interleave exactly as they ran.
    #[must_use]
    pub fn chrome_json(&self) -> String {
        let pid = 1u32;
        let mut threads: Vec<((u32, u32), String)> = vec![((pid, 10), "requests".to_string())];
        for (p, name) in PHASE_NAMES.iter().enumerate() {
            threads.push(((pid, 100 + p as u32), format!("phase: {name}")));
        }
        threads.push(((pid, 20), "warnings".to_string()));
        let mut spans: Vec<TraceSpan> = Vec::new();
        for e in self.snapshot() {
            match e {
                FlightEntry::Span(s) => {
                    let label = if s.kind == b's' {
                        format!("#{} sweep s{} → {}", s.id, s.synthetic, s.outcome)
                    } else {
                        format!("#{} {} → {}", s.id, s.kind_str(), s.outcome)
                    };
                    let gone = if s.outcome == OUTCOME_CLIENT_GONE { " (client gone)" } else { "" };
                    spans.push(TraceSpan {
                        pid,
                        tid: 10,
                        ts: s.start_us,
                        dur: s.total_us().max(1),
                        name: format!("{label}{gone}"),
                        args: format!(
                            "{{\"id\":{},\"outcome\":{},\"coalesced\":{},\"bytes\":{},\"batches\":{}}}",
                            s.id, s.outcome, s.coalesced, s.bytes_streamed, s.batches
                        ),
                    });
                    let mut t = s.start_us;
                    for (p, name) in PHASE_NAMES.iter().enumerate() {
                        if s.reached & (1 << p) != 0 {
                            spans.push(TraceSpan {
                                pid,
                                tid: 100 + p as u32,
                                ts: t,
                                dur: s.phase_us[p].max(1),
                                name: format!("#{} {name}", s.id),
                                args: format!("{{\"us\":{}}}", s.phase_us[p]),
                            });
                            t += s.phase_us[p];
                        }
                    }
                }
                FlightEntry::Warn { at_us, code, count } => {
                    spans.push(TraceSpan {
                        pid,
                        tid: 20,
                        ts: at_us,
                        dur: 1,
                        name: warn_counter_name(code).unwrap_or("warn_unknown").to_string(),
                        args: format!("{{\"count\":{count}}}"),
                    });
                }
            }
        }
        chrome_json(&[(pid, "javaflow-serve".to_string())], &threads, &spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{PHASE_EXECUTE, PHASE_READ};
    use std::time::Duration;

    fn span(id: u64) -> RequestSpan {
        let mut s =
            RequestSpan { id, kind: b's', outcome: 200, start_us: id * 1000, ..Default::default() };
        s.add_phase(PHASE_READ, Duration::from_micros(3));
        s.add_phase(PHASE_EXECUTE, Duration::from_micros(40));
        s
    }

    #[test]
    fn ring_overwrites_oldest_and_keeps_order() {
        let mut r = FlightRecorder::new(3);
        for id in 0..5 {
            r.push(FlightEntry::Span(span(id)));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let ids: Vec<u64> = r
            .snapshot()
            .iter()
            .map(|e| match e {
                FlightEntry::Span(s) => s.id,
                FlightEntry::Warn { .. } => unreachable!(),
            })
            .collect();
        assert_eq!(ids, [2, 3, 4], "oldest first");
    }

    #[test]
    fn chrome_dump_has_metadata_and_phase_rows() {
        let mut r = FlightRecorder::new(8);
        r.push(FlightEntry::Span(span(1)));
        r.push(FlightEntry::Warn { at_us: 5000, code: 1, count: 2 });
        let j = r.chrome_json();
        assert!(j.starts_with("{\"traceEvents\":["), "{j}");
        assert!(j.contains("\"name\":\"process_name\""), "{j}");
        assert!(j.contains("\"name\":\"phase: execute\""), "{j}");
        assert!(j.contains("warn_ff_net_order"), "{j}");
        assert!(j.ends_with("],\"displayTimeUnit\":\"ms\"}"), "{j}");
        crate::json::Json::parse(&j).expect("dump parses as JSON");
    }
}

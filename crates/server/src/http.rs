//! The observability sidecar: a minimal std-only HTTP/1.1 listener.
//!
//! Serves exactly three read-only endpoints on
//! [`ServerConfig::metrics_addr`](crate::ServerConfig::metrics_addr):
//!
//! * `GET /metrics` — Prometheus text exposition: the server counters
//!   and gauges, every latency/phase histogram with cumulative `le`
//!   buckets, the per-[`SweepKey`](crate::server) sweep counters, the
//!   flight-recorder gauges, and the simulator's Table 30 registry under
//!   the `javaflow_sim_` prefix.
//! * `GET /healthz` — `200 ok` while accepting, `503 draining` once a
//!   drain has begun.
//! * `GET /varz` — the framed `metrics` response body as JSON, for
//!   humans and scripts that already speak the frame format.
//!
//! This is deliberately not a web server: requests are read with a small
//! bounded buffer, only `GET` is answered, every response closes the
//! connection. A scraper, a load balancer check, and `curl` are the
//! entire intended client population.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crate::server::{metrics_frame_json, Shared};

/// Largest accepted request head; enough for any sane GET line + headers.
const MAX_HEAD: usize = 8192;

/// Accept-loop for the sidecar listener; returns when the server drains.
pub(crate) fn serve(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.drained.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => handle_conn(shared, stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// Reads one request head and answers it. Any parse trouble is a `400`;
/// an unknown path is a `404`; a non-GET method is a `405`.
fn handle_conn(shared: &Arc<Shared>, mut stream: TcpStream) {
    // The listener is nonblocking for the poll loop; the accepted socket
    // must not be (inheritance is platform-dependent).
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let Some(head) = read_head(&mut stream) else {
        respond(&mut stream, 400, "text/plain; charset=utf-8", "bad request\n");
        return;
    };
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        respond(&mut stream, 405, "text/plain; charset=utf-8", "method not allowed\n");
        return;
    }
    // Ignore any query string — /metrics?foo=bar is still /metrics.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => {
            let page = render_metrics(shared);
            respond(&mut stream, 200, "text/plain; version=0.0.4; charset=utf-8", &page);
        }
        "/healthz" => {
            if shared.shutdown.load(Ordering::SeqCst) {
                respond(&mut stream, 503, "text/plain; charset=utf-8", "draining\n");
            } else {
                respond(&mut stream, 200, "text/plain; charset=utf-8", "ok\n");
            }
        }
        "/varz" => {
            let body = metrics_frame_json(shared, 0);
            respond(&mut stream, 200, "application/json", &body);
        }
        _ => respond(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

/// Reads until the blank line ending the request head, or gives up at
/// [`MAX_HEAD`] bytes / timeout / EOF.
fn read_head(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
                {
                    return String::from_utf8(buf).ok();
                }
                if buf.len() > MAX_HEAD {
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
}

fn respond(stream: &mut TcpStream, code: u16, content_type: &str, body: &str) {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Renders the whole Prometheus page: server half, per-key sweep
/// counters, flight-recorder gauges, then the simulation registry.
pub(crate) fn render_metrics(shared: &Arc<Shared>) -> String {
    let mut out = String::with_capacity(8192);
    let queue_depth = shared.queue_depth();
    let in_flight = shared.in_flight.load(Ordering::SeqCst);
    let draining = shared.shutdown.load(Ordering::SeqCst);
    shared.metrics.lock().expect("metrics lock").render_prometheus(
        &mut out,
        queue_depth,
        in_flight,
        draining,
    );
    {
        let by_key = shared.sweeps_by_key.lock().expect("sweeps_by_key lock");
        if !by_key.is_empty() {
            out.push_str("# TYPE javaflow_server_sweeps_by_key_total counter\n");
            for (key, n) in by_key.iter() {
                let _ = writeln!(
                    out,
                    "javaflow_server_sweeps_by_key_total{{{}}} {n}",
                    key.prom_labels()
                );
            }
        }
    }
    {
        let flight = shared.flight.lock().expect("flight lock");
        out.push_str("# TYPE javaflow_server_flight_entries gauge\n");
        let _ = writeln!(out, "javaflow_server_flight_entries {}", flight.len());
        out.push_str("# TYPE javaflow_server_flight_dropped_total counter\n");
        let _ = writeln!(out, "javaflow_server_flight_dropped_total {}", flight.dropped());
    }
    shared.registry.lock().expect("registry lock").render_prometheus(&mut out, "javaflow_sim_");
    out
}

//! Server-side counters, latency histograms, and per-phase request
//! histograms for the metrics endpoints (framed `metrics` requests,
//! `/varz`, and the Prometheus `/metrics` exposition).

use std::fmt::Write as _;
use std::time::Duration;

use javaflow_fabric::Histogram;

use crate::span::{RequestSpan, PHASE_NAMES};

/// Live server counters, updated under the shared-state lock. Latencies
/// land in log₂ [`Histogram`]s — the same fixed-footprint buckets the
/// simulator's Table 30 registry uses — so the percentile read-out costs
/// a 65-bucket walk, never an allocation per request.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Sweep requests admitted to the queue.
    pub accepted: u64,
    /// Sweep requests refused with `429` (queue at capacity).
    pub rejected_busy: u64,
    /// Sweep requests refused with `503` (server draining).
    pub rejected_drain: u64,
    /// Frames that failed to parse or validate (`400`/`413`).
    pub bad_requests: u64,
    /// Sweeps that streamed to `done`.
    pub completed: u64,
    /// Sweeps cancelled at a batch boundary by their deadline (`504`).
    pub cancelled_deadline: u64,
    /// Subscribers dropped mid-stream by a write failure.
    pub disconnects: u64,
    /// Sweeps actually executed (≤ `accepted` when coalescing wins).
    pub sweeps: u64,
    /// Admitted requests that shared an already-queued sweep.
    pub coalesced_requests: u64,
    /// Batch frames written across all subscribers.
    pub batches_streamed: u64,
    /// Result-frame bytes written across all subscribers.
    pub bytes_streamed: u64,
    /// End-to-end sweep latency (admission → done), microseconds.
    pub latency_us: Histogram,
    /// Time spent queued before the sweeper picked the job up, microseconds.
    pub queue_wait_us: Histogram,
    /// Per-phase request timing, index-aligned with
    /// [`PHASE_NAMES`]: read, parse, queue, prepare, execute, stream.
    /// A phase's histogram only counts requests that reached it.
    pub phase_us: [Histogram; 6],
}

impl ServerMetrics {
    /// Records one completed request's end-to-end latency.
    pub fn observe_latency(&mut self, elapsed: Duration) {
        self.latency_us.observe(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one job's time-in-queue.
    pub fn observe_queue_wait(&mut self, waited: Duration) {
        self.queue_wait_us.observe(waited.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Folds one finished request span into the per-phase histograms and
    /// the streamed-bytes counter. Each phase the request reached counts
    /// exactly once, so a phase histogram's `count` is the number of
    /// requests that got that far.
    pub fn observe_span(&mut self, s: &RequestSpan) {
        for (p, h) in self.phase_us.iter_mut().enumerate() {
            if s.reached & (1 << p) != 0 {
                h.observe(s.phase_us[p]);
            }
        }
        self.bytes_streamed += s.bytes_streamed;
    }

    /// Renders the `"server"` half of a metrics response: counters, the
    /// caller-supplied instantaneous gauges, p50/p95/p99 for the latency
    /// and queue-wait histograms, and a count + percentile block per
    /// request phase.
    #[must_use]
    pub fn render_json(&self, queue_depth: usize, in_flight: usize) -> String {
        let q = |h: &Histogram| {
            format!(
                "{{\"count\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}",
                h.count,
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
            )
        };
        let mut phases = String::from("{");
        for (p, name) in PHASE_NAMES.iter().enumerate() {
            if p > 0 {
                phases.push_str(", ");
            }
            let _ = write!(phases, "\"{name}\": {}", q(&self.phase_us[p]));
        }
        phases.push('}');
        format!(
            "{{\"accepted\": {}, \"rejected_busy\": {}, \"rejected_drain\": {}, \
             \"bad_requests\": {}, \"completed\": {}, \"cancelled_deadline\": {}, \
             \"disconnects\": {}, \"sweeps\": {}, \"coalesced_requests\": {}, \
             \"batches_streamed\": {}, \"bytes_streamed\": {}, \"queue_depth\": {queue_depth}, \
             \"in_flight\": {in_flight}, \"latency\": {}, \"queue_wait\": {}, \"phases\": {phases}}}",
            self.accepted,
            self.rejected_busy,
            self.rejected_drain,
            self.bad_requests,
            self.completed,
            self.cancelled_deadline,
            self.disconnects,
            self.sweeps,
            self.coalesced_requests,
            self.batches_streamed,
            self.bytes_streamed,
            q(&self.latency_us),
            q(&self.queue_wait_us),
        )
    }

    /// Appends the server half of the Prometheus `/metrics` page:
    /// counters as `javaflow_server_*_total`, the caller-supplied gauges,
    /// and every histogram (latency, queue wait, per-phase) with
    /// cumulative `le` buckets.
    pub fn render_prometheus(
        &self,
        out: &mut String,
        queue_depth: usize,
        in_flight: usize,
        draining: bool,
    ) {
        let counters: [(&str, u64); 11] = [
            ("accepted", self.accepted),
            ("rejected_busy", self.rejected_busy),
            ("rejected_drain", self.rejected_drain),
            ("bad_requests", self.bad_requests),
            ("completed", self.completed),
            ("cancelled_deadline", self.cancelled_deadline),
            ("disconnects", self.disconnects),
            ("sweeps", self.sweeps),
            ("coalesced_requests", self.coalesced_requests),
            ("batches_streamed", self.batches_streamed),
            ("bytes_streamed", self.bytes_streamed),
        ];
        for (name, v) in counters {
            let _ = writeln!(out, "# TYPE javaflow_server_{name}_total counter");
            let _ = writeln!(out, "javaflow_server_{name}_total {v}");
        }
        let gauges: [(&str, u64); 3] = [
            ("queue_depth", queue_depth as u64),
            ("in_flight", in_flight as u64),
            ("draining", u64::from(draining)),
        ];
        for (name, v) in gauges {
            let _ = writeln!(out, "# TYPE javaflow_server_{name} gauge");
            let _ = writeln!(out, "javaflow_server_{name} {v}");
        }
        self.latency_us.render_prometheus(
            out,
            "javaflow_server_latency_us",
            "end-to-end sweep latency, admission to done",
        );
        self.queue_wait_us.render_prometheus(
            out,
            "javaflow_server_queue_wait_us",
            "time queued before the sweeper picked the job up",
        );
        for (p, name) in PHASE_NAMES.iter().enumerate() {
            self.phase_us[p].render_prometheus(
                out,
                &format!("javaflow_server_phase_{name}_us"),
                "per-request phase duration",
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{PHASE_EXECUTE, PHASE_PARSE, PHASE_READ};

    #[test]
    fn render_carries_counters_and_quantiles() {
        let mut m = ServerMetrics { accepted: 7, coalesced_requests: 3, ..Default::default() };
        for us in [100, 200, 400, 800] {
            m.observe_latency(Duration::from_micros(us));
        }
        let s = m.render_json(2, 1);
        assert!(s.contains("\"accepted\": 7"), "{s}");
        assert!(s.contains("\"coalesced_requests\": 3"), "{s}");
        assert!(s.contains("\"queue_depth\": 2"), "{s}");
        assert!(s.contains("\"in_flight\": 1"), "{s}");
        assert!(s.contains("\"count\": 4"), "{s}");
        assert!(s.contains("\"phases\": {\"read\":"), "{s}");
        // Log₂ buckets: the p99 of [100..800]µs lands in the 512..1023 bucket.
        assert!(m.latency_us.quantile(0.99) >= 512);
    }

    #[test]
    fn spans_fold_into_reached_phases_only() {
        let mut m = ServerMetrics::default();
        let mut s =
            RequestSpan { outcome: 200, kind: b's', bytes_streamed: 64, ..Default::default() };
        s.add_phase(PHASE_READ, Duration::from_micros(3));
        s.add_phase(PHASE_PARSE, Duration::from_micros(2));
        m.observe_span(&s);
        let mut refused = RequestSpan { outcome: 429, kind: b's', ..Default::default() };
        refused.add_phase(PHASE_READ, Duration::from_micros(1));
        m.observe_span(&refused);
        assert_eq!(m.phase_us[PHASE_READ].count, 2);
        assert_eq!(m.phase_us[PHASE_PARSE].count, 1);
        assert_eq!(m.phase_us[PHASE_EXECUTE].count, 0);
        assert_eq!(m.bytes_streamed, 64);
    }

    #[test]
    fn prometheus_page_has_counters_gauges_and_phase_histograms() {
        let mut m = ServerMetrics { accepted: 2, ..Default::default() };
        let mut s = RequestSpan { outcome: 200, kind: b's', ..Default::default() };
        s.add_phase(PHASE_EXECUTE, Duration::from_micros(900));
        m.observe_span(&s);
        let mut page = String::new();
        m.render_prometheus(&mut page, 4, 1, false);
        assert!(page.contains("javaflow_server_accepted_total 2"), "{page}");
        assert!(page.contains("# TYPE javaflow_server_queue_depth gauge"), "{page}");
        assert!(page.contains("javaflow_server_queue_depth 4"), "{page}");
        assert!(page.contains("javaflow_server_draining 0"), "{page}");
        assert!(page.contains("javaflow_server_phase_execute_us_bucket{le=\"1023\"} 1"), "{page}");
        assert!(page.contains("javaflow_server_phase_execute_us_count 1"), "{page}");
    }
}

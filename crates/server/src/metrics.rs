//! Server-side counters and latency histograms for the metrics endpoint.

use std::time::Duration;

use javaflow_fabric::Histogram;

/// Live server counters, updated under the shared-state lock. Latencies
/// land in log₂ [`Histogram`]s — the same fixed-footprint buckets the
/// simulator's Table 30 registry uses — so the percentile read-out costs
/// a 65-bucket walk, never an allocation per request.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Sweep requests admitted to the queue.
    pub accepted: u64,
    /// Sweep requests refused with `429` (queue at capacity).
    pub rejected_busy: u64,
    /// Sweep requests refused with `503` (server draining).
    pub rejected_drain: u64,
    /// Frames that failed to parse or validate (`400`/`413`).
    pub bad_requests: u64,
    /// Sweeps that streamed to `done`.
    pub completed: u64,
    /// Sweeps cancelled at a batch boundary by their deadline (`504`).
    pub cancelled_deadline: u64,
    /// Subscribers dropped mid-stream by a write failure.
    pub disconnects: u64,
    /// Sweeps actually executed (≤ `accepted` when coalescing wins).
    pub sweeps: u64,
    /// Admitted requests that shared an already-queued sweep.
    pub coalesced_requests: u64,
    /// Batch frames written across all subscribers.
    pub batches_streamed: u64,
    /// End-to-end sweep latency (admission → done), microseconds.
    pub latency_us: Histogram,
    /// Time spent queued before the sweeper picked the job up, microseconds.
    pub queue_wait_us: Histogram,
}

impl ServerMetrics {
    /// Records one completed request's end-to-end latency.
    pub fn observe_latency(&mut self, elapsed: Duration) {
        self.latency_us.observe(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one job's time-in-queue.
    pub fn observe_queue_wait(&mut self, waited: Duration) {
        self.queue_wait_us.observe(waited.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Renders the `"server"` + `"latency"` halves of a metrics response:
    /// counters, the caller-supplied instantaneous gauges, and
    /// p50/p95/p99 for both histograms.
    #[must_use]
    pub fn render_json(&self, queue_depth: usize, in_flight: usize) -> String {
        let q = |h: &Histogram| {
            format!(
                "{{\"count\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}",
                h.count,
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
            )
        };
        format!(
            "{{\"accepted\": {}, \"rejected_busy\": {}, \"rejected_drain\": {}, \
             \"bad_requests\": {}, \"completed\": {}, \"cancelled_deadline\": {}, \
             \"disconnects\": {}, \"sweeps\": {}, \"coalesced_requests\": {}, \
             \"batches_streamed\": {}, \"queue_depth\": {queue_depth}, \
             \"in_flight\": {in_flight}, \"latency\": {}, \"queue_wait\": {}}}",
            self.accepted,
            self.rejected_busy,
            self.rejected_drain,
            self.bad_requests,
            self.completed,
            self.cancelled_deadline,
            self.disconnects,
            self.sweeps,
            self.coalesced_requests,
            self.batches_streamed,
            q(&self.latency_us),
            q(&self.queue_wait_us),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_carries_counters_and_quantiles() {
        let mut m = ServerMetrics { accepted: 7, coalesced_requests: 3, ..Default::default() };
        for us in [100, 200, 400, 800] {
            m.observe_latency(Duration::from_micros(us));
        }
        let s = m.render_json(2, 1);
        assert!(s.contains("\"accepted\": 7"), "{s}");
        assert!(s.contains("\"coalesced_requests\": 3"), "{s}");
        assert!(s.contains("\"queue_depth\": 2"), "{s}");
        assert!(s.contains("\"in_flight\": 1"), "{s}");
        assert!(s.contains("\"count\": 4"), "{s}");
        // Log₂ buckets: the p99 of [100..800]µs lands in the 512..1023 bucket.
        assert!(m.latency_us.quantile(0.99) >= 512);
    }
}

//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **folding** (Section 6.4): eliminating pure stack-move nodes;
//! * **fanout limit**: JavaFlow's unlimited fanout vs a TRIPS-style
//!   2-consumer limit with inserted move relays;
//! * **serial clock ratio**: the Table 15 knob swept 1..16;
//! * **mesh width**: placement compression (10-wide per the dissertation)
//!   vs narrower/wider fabrics.
//!
//! Each bench also prints the measured IPC effect, so `cargo bench` output
//! doubles as the ablation record.

use javaflow_bench::micro::time;
use javaflow_fabric::{execute, load, BranchMode, ExecParams, ExecReport, FabricConfig};
use javaflow_workloads::scimark;

fn case_study() -> (javaflow_bytecode::Program, javaflow_bytecode::MethodId) {
    let mut program = javaflow_bytecode::Program::new();
    let (_cls, _make, next_double) = scimark::build_random(&mut program);
    (program, next_double)
}

/// A stack-style polynomial kernel full of `dup`s — the unoptimized-javac
/// shape whose moves folding eliminates and whose shared values create
/// fanout once folded.
fn dup_heavy() -> (javaflow_bytecode::Program, javaflow_bytecode::MethodId) {
    use javaflow_bytecode::{MethodBuilder, Opcode};
    let mut b = MethodBuilder::new("ablation.poly", 1, true);
    // acc = x; repeat: acc = acc*acc + acc (each step via dup/dup chains)
    b.dload(0);
    for _ in 0..12 {
        b.op(Opcode::Dup); // acc acc
        b.op(Opcode::Dup); // acc acc acc
        b.op(Opcode::DMul); // acc acc²
        b.op(Opcode::Swap); // acc² acc
        b.op(Opcode::DAdd); // acc²+acc
        b.dconst(0.5).op(Opcode::DMul);
    }
    b.op(Opcode::DReturn);
    let mut program = javaflow_bytecode::Program::new();
    let id = program.add_method(b.finish().expect("poly"));
    (program, id)
}

/// A large kernel (~300 instructions) whose placement spans many rows, so
/// mesh width changes real transit distances.
fn wide_kernel() -> (javaflow_bytecode::Program, javaflow_bytecode::MethodId) {
    let mut program = javaflow_bytecode::Program::new();
    let id = javaflow_workloads::crypto::build_sha160(&mut program);
    (program, id)
}

fn run_scripted(loaded: &javaflow_fabric::LoadedMethod<'_>, fc: &FabricConfig) -> ExecReport {
    execute(loaded, fc, ExecParams { mode: BranchMode::Bp1, ..ExecParams::default() })
}

fn ablation_folding() {
    let (program, id) = dup_heavy();
    let method = program.method(id);
    let config = FabricConfig::compact2();
    let plain = load(method, &config).expect("loads");
    let mut folded = load(method, &config).expect("loads");
    let n = folded.graph_mut().fold_moves(method);

    let a = run_scripted(&plain, &config);
    let b = run_scripted(&folded, &config);
    println!(
        "[ablation folding] folded {n} nodes: executed {} → {}, cycles {} → {}, IPC {:.3} → {:.3}",
        a.executed, b.executed, a.mesh_cycles, b.mesh_cycles, a.ipc, b.ipc
    );

    time("ablation_folding/unfolded", 50, || run_scripted(&plain, &config));
    time("ablation_folding/folded", 50, || run_scripted(&folded, &config));
}

fn ablation_fanout() {
    let (program, id) = dup_heavy();
    let method = program.method(id);
    let config = FabricConfig::compact2();
    let mut unlimited = load(method, &config).expect("loads");
    unlimited.graph_mut().fold_moves(method);
    let mut limited = load(method, &config).expect("loads");
    limited.graph_mut().fold_moves(method); // fanout appears after folding
    let placement = limited.placement.clone();
    let relays = limited.graph_mut().limit_fanout(2, &placement);

    let a = run_scripted(&unlimited, &config);
    let b = run_scripted(&limited, &config);
    println!(
        "[ablation fanout-2] {relays} relays inserted: relay fires {}, cycles {} → {}, IPC {:.3} → {:.3} (TRIPS paid ~20% extra instructions for this)",
        b.relay_fires, a.mesh_cycles, b.mesh_cycles, a.ipc, b.ipc
    );

    time("ablation_fanout/unlimited", 50, || run_scripted(&unlimited, &config));
    time("ablation_fanout/limit2", 50, || run_scripted(&limited, &config));
}

fn ablation_serial_ratio() {
    let (program, id) = case_study();
    let method = program.method(id);
    let mut report = String::new();
    for ratio in [1u32, 2, 4, 8, 16] {
        let config = FabricConfig {
            name: "SweepRatio",
            serial_per_mesh: Some(ratio),
            collapsed: false,
            ..FabricConfig::baseline()
        };
        let loaded = load(method, &config).expect("loads");
        let r = run_scripted(&loaded, &config);
        report.push_str(&format!(" ratio {ratio}: IPC {:.3};", r.ipc));
        time(&format!("ablation_serial_ratio/{ratio}"), 50, || run_scripted(&loaded, &config));
    }
    println!("[ablation serial-ratio]{report}");
}

fn ablation_mesh_width() {
    let (program, id) = wide_kernel();
    let method = program.method(id);
    let mut report = String::new();
    for width in [4u32, 10, 20] {
        let config = FabricConfig { name: "SweepWidth", width, ..FabricConfig::compact2() };
        let loaded = load(method, &config).expect("loads");
        let r = run_scripted(&loaded, &config);
        report.push_str(&format!(" width {width}: IPC {:.3};", r.ipc));
        time(&format!("ablation_mesh_width/{width}"), 50, || run_scripted(&loaded, &config));
    }
    println!("[ablation mesh-width]{report} (dissertation settled on 10)");
}

fn main() {
    ablation_folding();
    ablation_fanout();
    ablation_serial_ratio();
    ablation_mesh_width();
}

//! Pipeline throughput benchmarks: the interpreter (GPP), the verifier,
//! and the fabric's load/resolve/execute stages, per machine
//! configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use javaflow_bytecode::{verify, Value};
use javaflow_fabric::{execute, load, resolve, BranchMode, ExecParams, FabricConfig};
use javaflow_interp::Interp;
use javaflow_workloads::{scimark, synthetic};

fn bench_interpreter(c: &mut Criterion) {
    let mut g = c.benchmark_group("interpreter");
    let bench = scimark::monte_carlo_benchmark(500);
    g.bench_function("monte_carlo_500", |b| {
        b.iter(|| bench.run().expect("runs"));
    });
    let fft = scimark::fft_benchmark(32);
    g.bench_function("fft_32_round_trip", |b| {
        b.iter(|| fft.run().expect("runs"));
    });
    g.finish();
}

fn bench_verify_resolve(c: &mut Criterion) {
    let (program, ids) = synthetic::generate(&synthetic::GenConfig {
        count: 40,
        ..Default::default()
    });
    let methods: Vec<_> = ids.iter().map(|id| program.method(*id)).collect();
    let mut g = c.benchmark_group("static_pipeline");
    g.bench_function("verify_population_40", |b| {
        b.iter(|| {
            for m in &methods {
                verify(m).expect("verifies");
            }
        });
    });
    g.bench_function("resolve_population_40", |b| {
        b.iter(|| {
            for m in &methods {
                resolve(m).expect("resolves");
            }
        });
    });
    g.finish();
}

fn bench_execution_per_config(c: &mut Criterion) {
    // Scripted execution of the Appendix C case-study method on every
    // Table 15 configuration.
    let mut program = javaflow_bytecode::Program::new();
    let (_cls, _make, next_double) = scimark::build_random(&mut program);
    let method = program.method(next_double);
    let mut g = c.benchmark_group("execute_nextDouble");
    for config in FabricConfig::all_six() {
        let loaded = load(method, &config).expect("loads");
        g.bench_with_input(BenchmarkId::from_parameter(config.name), &config, |b, fc| {
            b.iter(|| {
                execute(
                    &loaded,
                    fc,
                    ExecParams { mode: BranchMode::Bp1, ..ExecParams::default() },
                )
            });
        });
    }
    g.finish();
}

fn bench_data_mode_machine(c: &mut Criterion) {
    // Full data-driven co-simulation: fabric + GPP heap.
    let mut program = javaflow_bytecode::Program::new();
    let (_cls, make, next_double) = scimark::build_random(&mut program);
    let config = FabricConfig::compact2();
    let method = program.method(next_double);
    let loaded = load(method, &config).expect("loads");
    c.bench_function("data_mode_nextDouble_compact2", |b| {
        b.iter_batched(
            || {
                let mut gpp = Interp::new(&program);
                let r = gpp.run(make, &[Value::Int(42)]).expect("seeds").expect("ref");
                (gpp, r)
            },
            |(mut gpp, r)| {
                execute(
                    &loaded,
                    &config,
                    ExecParams {
                        mode: BranchMode::Data,
                        gpp: javaflow_fabric::Gpp::Interp(&mut gpp),
                        args: vec![r],
                        ..ExecParams::default()
                    },
                )
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_interpreter,
    bench_verify_resolve,
    bench_execution_per_config,
    bench_data_mode_machine
);
criterion_main!(benches);

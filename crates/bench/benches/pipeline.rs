//! Pipeline throughput benchmarks: the interpreter (GPP), the verifier,
//! and the fabric's load/resolve/execute stages, per machine
//! configuration.

use javaflow_bench::micro::time;
use javaflow_bytecode::{verify, Value};
use javaflow_fabric::{execute, load, resolve, BranchMode, ExecParams, FabricConfig};
use javaflow_interp::Interp;
use javaflow_workloads::{scimark, synthetic};

fn bench_interpreter() {
    let bench = scimark::monte_carlo_benchmark(500);
    time("interpreter/monte_carlo_500", 20, || bench.run().expect("runs"));
    let fft = scimark::fft_benchmark(32);
    time("interpreter/fft_32_round_trip", 20, || fft.run().expect("runs"));
}

fn bench_verify_resolve() {
    let (program, ids) =
        synthetic::generate(&synthetic::GenConfig { count: 40, ..Default::default() });
    let methods: Vec<_> = ids.iter().map(|id| program.method(*id)).collect();
    time("static_pipeline/verify_population_40", 50, || {
        for m in &methods {
            verify(m).expect("verifies");
        }
    });
    time("static_pipeline/resolve_population_40", 50, || {
        for m in &methods {
            resolve(m).expect("resolves");
        }
    });
}

fn bench_execution_per_config() {
    // Scripted execution of the Appendix C case-study method on every
    // Table 15 configuration.
    let mut program = javaflow_bytecode::Program::new();
    let (_cls, _make, next_double) = scimark::build_random(&mut program);
    let method = program.method(next_double);
    for config in FabricConfig::all_six() {
        let loaded = load(method, &config).expect("loads");
        time(&format!("execute_nextDouble/{}", config.name), 50, || {
            execute(&loaded, &config, ExecParams { mode: BranchMode::Bp1, ..ExecParams::default() })
        });
    }
}

fn bench_data_mode_machine() {
    // Full data-driven co-simulation: fabric + GPP heap (seeding included
    // in each iteration, as each run mutates the shared heap).
    let mut program = javaflow_bytecode::Program::new();
    let (_cls, make, next_double) = scimark::build_random(&mut program);
    let config = FabricConfig::compact2();
    let method = program.method(next_double);
    let loaded = load(method, &config).expect("loads");
    time("data_mode_nextDouble_compact2", 50, || {
        let mut gpp = Interp::new(&program);
        let r = gpp.run(make, &[Value::Int(42)]).expect("seeds").expect("ref");
        execute(
            &loaded,
            &config,
            ExecParams {
                mode: BranchMode::Data,
                gpp: javaflow_fabric::Gpp::Interp(&mut gpp),
                args: vec![r],
                ..ExecParams::default()
            },
        )
    });
}

fn main() {
    bench_interpreter();
    bench_verify_resolve();
    bench_execution_per_config();
    bench_data_mode_machine();
}

//! One benchmark per evaluation table/figure: each times the code path
//! that regenerates the corresponding dissertation table, so `cargo bench`
//! exercises the complete reproduction surface.

use javaflow_bench::micro::time;
use javaflow_bench::{chapter5_tables, chapter7_tables, profile_suite};
use javaflow_core::{EvalConfig, Evaluation};
use javaflow_fabric::{execute, load, BranchMode, ExecParams, FabricConfig};
use javaflow_workloads::scimark;

/// Tables 1–5: dynamic-mix profiling of one representative benchmark.
fn tables_1_to_5_dynamic_mix() {
    let bench = scimark::monte_carlo_benchmark(300);
    time("table1_5_profile_monte_carlo", 10, || bench.profile().expect("profiles"));
}

/// Tables 6–8: static mix and dataflow/control-flow analysis of the hot
/// methods.
fn tables_6_to_8_static_analysis() {
    let bench = scimark::fft_benchmark(32);
    time("table6_8_static_analysis_fft", 10, || {
        for id in &bench.hot {
            let m = bench.program.method(*id);
            javaflow_bytecode::verify(m).expect("verifies");
            javaflow_fabric::resolve(m).expect("resolves");
            let _ = javaflow_bytecode::Cfg::build(m);
        }
    });
}

/// Tables 9–16 + 19/20: population statics (placement + resolution).
fn tables_9_to_20_population_statics() {
    time("table9_20_population_statics", 10, || {
        let e = Evaluation::run(&EvalConfig {
            synthetic_count: 8,
            max_mesh_cycles: 50_000,
            configs: vec![FabricConfig::baseline(), FabricConfig::hetero2()],
            ..EvalConfig::default()
        });
        let _ = e.dataflow_summaries(javaflow_core::Filter::Filter1);
        let _ = e.span_summary(1, javaflow_core::Filter::Filter1);
    });
}

/// Tables 17/18/21–26: the IPC / FoM / coverage / parallelism sweep.
fn tables_21_to_26_ipc_sweep() {
    time("table21_26_ipc_sweep_small", 10, || {
        let e = Evaluation::run(&EvalConfig {
            synthetic_count: 4,
            max_mesh_cycles: 50_000,
            ..EvalConfig::default()
        });
        let _ = e.config_rows(javaflow_core::Filter::All);
        let _ = e.coverage(BranchMode::Bp1);
        let _ = e.parallelism();
    });
}

/// Tables 27/28: per-hot-method Figures of Merit.
fn tables_27_28_hot_rows() {
    let e = Evaluation::run(&EvalConfig {
        synthetic_count: 0,
        max_mesh_cycles: 100_000,
        ..EvalConfig::default()
    });
    time("table27_28_hot_rows", 10, || {
        let _ = e.hot_method_rows(javaflow_workloads::SuiteKind::Jvm2008);
        let _ = e.hot_method_rows(javaflow_workloads::SuiteKind::Jvm98);
    });
}

/// Figures 21/22: the address-resolution walkthrough examples.
fn figures_21_22_resolution() {
    let program = javaflow_bytecode::asm::assemble(
        ".method f21 args=4 returns=false locals=5
           iload 1
           iload 2
           iload 3
           iadd
           iadd
           istore 4
           return
         .end",
    )
    .expect("assembles");
    let (_, m) = program.method_by_name("f21").expect("exists");
    time("figure21_22_resolution_example", 500, || javaflow_fabric::resolve(m).expect("resolves"));
}

/// Figures 27–31: the `nextDouble` case study, load + scripted execution.
fn figures_27_31_nextdouble() {
    let mut program = javaflow_bytecode::Program::new();
    let (_cls, _make, next_double) = scimark::build_random(&mut program);
    let method = program.method(next_double);
    let config = FabricConfig::hetero2();
    time("figure27_31_nextDouble_case_study", 50, || {
        let loaded = load(method, &config).expect("loads");
        execute(&loaded, &config, ExecParams { mode: BranchMode::Bp1, ..ExecParams::default() })
    });
}

/// Rendering: the text-table generation itself.
fn table_rendering() {
    let suite = profile_suite();
    time("render_chapter5_tables", 10, || {
        let mut total = 0usize;
        for t in 1..=8 {
            total += chapter5_tables(&suite, t).len();
        }
        total
    });
    let eval = Evaluation::run(&EvalConfig {
        synthetic_count: 4,
        max_mesh_cycles: 50_000,
        ..EvalConfig::default()
    });
    time("render_chapter7_tables", 10, || {
        let mut total = 0usize;
        for t in 9..=28 {
            total += chapter7_tables(&eval, t).len();
        }
        total
    });
}

fn main() {
    tables_1_to_5_dynamic_mix();
    tables_6_to_8_static_analysis();
    tables_9_to_20_population_statics();
    tables_21_to_26_ipc_sweep();
    tables_27_28_hot_rows();
    figures_21_22_resolution();
    figures_27_31_nextdouble();
    table_rendering();
}

//! Determinism of the parallel evaluation sweep: any thread count must
//! reproduce the serial results bit for bit — same statics, same samples
//! in the same order, and byte-identical rendered tables.

use javaflow_bench::chapter7_tables;
use javaflow_core::{EvalConfig, Evaluation};

fn eval(threads: usize) -> Evaluation {
    Evaluation::run(&EvalConfig {
        synthetic_count: 16,
        max_mesh_cycles: 120_000,
        threads,
        ..EvalConfig::default()
    })
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let serial = eval(1);
    let parallel = eval(4);

    assert_eq!(serial.records.len(), parallel.records.len());
    assert_eq!(serial.samples.len(), parallel.samples.len());
    // Sample ordering and content (Debug strings: float NaNs in span
    // ratios and scripted returns are bitwise-equal but `!=` by IEEE).
    for (a, b) in serial.samples.iter().zip(&parallel.samples) {
        assert_eq!((a.record, a.config, a.bp, a.ok), (b.record, b.config, b.bp, b.ok));
        assert_eq!(format!("{:?}", a.report), format!("{:?}", b.report));
    }
    assert_eq!(format!("{:?}", serial.statics), format!("{:?}", parallel.statics));

    // The rendered headline tables must match to the byte.
    for table in [21, 22] {
        assert_eq!(
            chapter7_tables(&serial, table),
            chapter7_tables(&parallel, table),
            "table {table} diverged"
        );
    }
}

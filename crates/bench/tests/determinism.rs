//! Determinism of the parallel evaluation sweep: any thread count must
//! reproduce the serial results bit for bit — same statics, same samples
//! in the same order, and byte-identical rendered tables.

use javaflow_bench::chapter7_tables;
use javaflow_core::{EvalConfig, Evaluation};
use javaflow_fabric::NetKind;

fn eval(threads: usize) -> Evaluation {
    eval_net(threads, NetKind::Ideal)
}

fn eval_net(threads: usize, net: NetKind) -> Evaluation {
    Evaluation::run(&EvalConfig {
        synthetic_count: 16,
        max_mesh_cycles: 120_000,
        threads,
        net,
        ..EvalConfig::default()
    })
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let serial = eval(1);
    let parallel = eval(4);

    assert_eq!(serial.records.len(), parallel.records.len());
    assert_eq!(serial.samples.len(), parallel.samples.len());
    // Sample ordering and content (Debug strings: float NaNs in span
    // ratios and scripted returns are bitwise-equal but `!=` by IEEE).
    for (a, b) in serial.samples.iter().zip(&parallel.samples) {
        assert_eq!((a.record, a.config, a.bp, a.ok), (b.record, b.config, b.bp, b.ok));
        assert_eq!(format!("{:?}", a.report), format!("{:?}", b.report));
    }
    assert_eq!(format!("{:?}", serial.statics), format!("{:?}", parallel.statics));

    // The rendered headline tables must match to the byte.
    for table in [21, 22] {
        assert_eq!(
            chapter7_tables(&serial, table),
            chapter7_tables(&parallel, table),
            "table {table} diverged"
        );
    }
}

#[test]
fn contended_sweep_is_bit_identical_to_serial() {
    let serial = eval_net(1, NetKind::Contended);
    let parallel = eval_net(4, NetKind::Contended);

    assert_eq!(serial.samples.len(), parallel.samples.len());
    for (a, b) in serial.samples.iter().zip(&parallel.samples) {
        assert_eq!((a.record, a.config, a.bp, a.ok), (b.record, b.config, b.bp, b.ok));
        // The Debug string covers the attached NetReport too, so link
        // arbitration and ring waits must replay identically.
        assert_eq!(format!("{:?}", a.report), format!("{:?}", b.report));
        assert!(a.report.net.is_some(), "contended samples carry link stats");
    }
    // The ideal-vs-contended comparison built from deterministic sweeps is
    // itself deterministic.
    let ideal = eval(1);
    let rows_a = javaflow_bench::net_bench_rows(&ideal, &serial);
    let rows_b = javaflow_bench::net_bench_rows(&ideal, &parallel);
    assert_eq!(format!("{rows_a:?}"), format!("{rows_b:?}"));
    assert_eq!(
        javaflow_bench::net_report(&rows_a, &serial.configs),
        javaflow_bench::net_report(&rows_b, &parallel.configs),
    );
}

#[test]
fn net_flag_leaves_ideal_tables_untouched() {
    // `--net ideal` must be the exact seed behaviour: explicitly setting
    // the default produces byte-identical tables.
    let implicit = eval(2);
    let explicit = eval_net(2, NetKind::Ideal);
    for table in [21, 22] {
        assert_eq!(
            chapter7_tables(&implicit, table),
            chapter7_tables(&explicit, table),
            "table {table} diverged under an explicit --net ideal"
        );
    }
    assert!(implicit.samples.iter().all(|s| s.report.net.is_none()));
}

#[test]
fn list_tables_covers_all_ids() {
    let listing = javaflow_bench::list_tables();
    for t in 1..=30u32 {
        assert!(
            listing.contains(&format!("{t:>2}  ")),
            "table {t} missing from --list-tables output"
        );
        assert_ne!(javaflow_bench::table_title(t), "(unknown table)");
    }
    assert_eq!(javaflow_bench::table_title(0), "(unknown table)");
    assert_eq!(javaflow_bench::table_title(31), "(unknown table)");
}

//! Byte-identity of the rendered tables against goldens captured from the
//! pre-timing-wheel seed build (`tables --synthetic 16 --threads 1`, with
//! and without `--net contended`). The kernel rewrite — timing wheel,
//! struct-of-arrays state, decoded dispatch — must not move a single byte
//! of any table.

use javaflow_bench::{chapter5_tables, chapter7_tables, profile_suite};
use javaflow_core::{EvalConfig, Evaluation};
use javaflow_fabric::NetKind;

/// Reports the first line where `got` and `want` diverge.
fn first_divergence(got: &str, want: &str) -> String {
    for (n, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        if g != w {
            return format!("first divergence at line {}:\n  got:  {g}\n  want: {w}", n + 1);
        }
    }
    format!("length mismatch: got {} bytes, want {} bytes", got.len(), want.len())
}

#[test]
fn tables_are_byte_identical_to_seed_goldens() {
    let suite = profile_suite();
    let mut ch5 = String::new();
    for t in 1..=8u32 {
        // The binary prints each table with `println!("{text}")`.
        ch5.push_str(&chapter5_tables(&suite, t));
        ch5.push('\n');
    }
    let goldens = [
        (NetKind::Ideal, include_str!("goldens/tables_ideal_s16.txt")),
        (NetKind::Contended, include_str!("goldens/tables_contended_s16.txt")),
    ];
    for (net, golden) in goldens {
        let eval = Evaluation::run(&EvalConfig {
            synthetic_count: 16,
            threads: 1,
            net,
            ..EvalConfig::default()
        });
        let mut out = ch5.clone();
        for t in 9..=28u32 {
            out.push_str(&chapter7_tables(&eval, t));
            out.push('\n');
        }
        assert!(
            out == golden,
            "tables for {net:?} diverged from the seed golden — {}",
            first_divergence(&out, golden)
        );
    }
}

//! Minimal micro-benchmark harness.
//!
//! The workspace builds fully offline, so the bench targets cannot pull
//! `criterion`; this module provides the small slice they need — named
//! timing loops with warmup and a mean-per-iteration report — with plain
//! `std::time` measurements. Bench targets stay `harness = false` binaries
//! runnable via `cargo bench`.

use std::time::{Duration, Instant};

/// Times `f` over `iters` iterations after one warmup call and prints the
/// mean per-iteration wall time.
///
/// Returns the mean so sweeps can post-process their own reports.
pub fn time<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> Duration {
    let _ = std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters.max(1) {
        std::hint::black_box(f());
    }
    let mean = start.elapsed() / iters.max(1);
    println!("{name:<44} {iters:>5} iters  {mean:>12.3?}/iter");
    mean
}

//! Regenerates every table of the JavaFlow evaluation.
//!
//! ```text
//! tables                  # print all tables (1–28)
//! tables --table 22       # one table
//! tables --synthetic 400  # population size for the Chapter 7 sweeps
//! ```

use javaflow_bench::{chapter5_tables, chapter7_tables, default_evaluation, profile_suite};

fn main() {
    let mut table: Option<u32> = None;
    let mut figure: Option<u32> = None;
    let mut synthetic = 240usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--table" => {
                table = args.next().and_then(|v| v.parse().ok());
                if table.is_none() {
                    eprintln!("--table requires a number 1..=28");
                    std::process::exit(2);
                }
            }
            "--synthetic" => {
                synthetic = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--synthetic requires a count");
                        std::process::exit(2);
                    });
            }
            "--figure" => {
                figure = args.next().and_then(|v| v.parse().ok());
                if figure.is_none() {
                    eprintln!("--figure requires a number");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                println!("usage: tables [--table N] [--figure N] [--synthetic COUNT]");
                return;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    if let Some(f) = figure {
        print!("{}", javaflow_bench::figure(f));
        if table.is_none() {
            return;
        }
    }
    let wanted: Vec<u32> = match table {
        Some(t) => vec![t],
        None => (1..=28).collect(),
    };
    let needs_ch5 = wanted.iter().any(|t| (1..=8).contains(t));
    let needs_ch7 = wanted.iter().any(|t| (9..=28).contains(t));

    let suite = needs_ch5.then(|| {
        eprintln!("profiling the benchmark suite on the interpreter …");
        profile_suite()
    });
    let eval = needs_ch7.then(|| {
        eprintln!("running the population on all six configurations ({synthetic} synthetic) …");
        default_evaluation(synthetic)
    });

    for t in wanted {
        let text = if (1..=8).contains(&t) {
            chapter5_tables(suite.as_ref().expect("chapter 5 data"), t)
        } else {
            chapter7_tables(eval.as_ref().expect("chapter 7 data"), t)
        };
        println!("{text}");
    }
}

//! Regenerates every table of the JavaFlow evaluation.
//!
//! ```text
//! tables                  # print all tables (1–30)
//! tables --table 22       # one table
//! tables --list-tables    # list the valid table ids with titles
//! tables --synthetic 400  # population size for the Chapter 7 sweeps
//! tables --threads 4      # worker threads for the sweep (default: all
//!                         # cores; JAVAFLOW_THREADS overrides the default)
//! tables --net contended  # simulate interconnect contention instead of
//!                         # the closed-form (ideal) delays
//! tables --bench-eval     # time serial vs parallel sweeps and write
//!                         # BENCH_evaluation.json
//! tables --bench-net      # compare ideal vs contended sweeps and write
//!                         # BENCH_net.json
//! tables --bench-kernel   # time the timing-wheel event kernel (events/s,
//!                         # allocation counts) and write BENCH_kernel.json
//! tables --bench-rings    # sweep the contended net's ring-slot × FIFO
//!                         # parameters and write BENCH_rings.json
//! tables --bench-serve    # hammer an in-process javaflow-serve at several
//!                         # concurrency levels and write BENCH_serve.json
//!                         # with throughput and p50/p95/p99 latency
//! tables --trace-out trace.json
//!                         # record the hotspot kernel under Compact2
//!                         # (ideal + contended) and Sparse2, cross-check
//!                         # the recordings against the live reports, and
//!                         # write Chrome-trace / Perfetto JSON
//! ```

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

use javaflow_analysis::report_json::utilization_json;
use javaflow_bench::{chapter5_tables, chapter7_tables, profile_suite};
use javaflow_core::parallel::default_threads;
use javaflow_core::{EvalConfig, Evaluation, PreparedPopulation};
use javaflow_fabric::NetKind;

/// Counting wrapper around the system allocator, so `--bench-kernel` can
/// report how many heap allocations a sweep performs (the timing-wheel
/// kernel's steady state should add none per event).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counters are side effects.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Relaxed);
        unsafe { std::alloc::System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Relaxed);
        unsafe { std::alloc::System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn run_eval(synthetic: usize, threads: usize, net: NetKind) -> Evaluation {
    eprintln!(
        "running the population on all six configurations ({synthetic} synthetic, {threads} thread{}, {net:?} net) …",
        if threads == 1 { "" } else { "s" }
    );
    let start = Instant::now();
    let eval = Evaluation::run(&EvalConfig {
        synthetic_count: synthetic,
        threads,
        net,
        ..EvalConfig::default()
    });
    let secs = start.elapsed().as_secs_f64();
    eprintln!(
        "evaluated {} records ({} samples) in {secs:.2}s — {:.1} records/s",
        eval.records.len(),
        eval.samples.len(),
        eval.records.len() as f64 / secs.max(1e-9),
    );
    eval
}

/// Times the pre-optimization sweep (serial, re-resolve per config, fresh
/// simulator allocations), the optimized sweep serially, and the optimized
/// sweep in parallel; checks all three produce the same reports; records
/// the comparison in `BENCH_evaluation.json`.
fn bench_eval(synthetic: usize, threads: usize) {
    eprintln!("timing the pre-optimization (seed-equivalent) sweep …");
    let max_mesh_cycles = EvalConfig::default().max_mesh_cycles;
    let t0 = Instant::now();
    let seed_reports = javaflow_bench::seed_equivalent_sweep(synthetic, max_mesh_cycles);
    let seed_secs = t0.elapsed().as_secs_f64();
    eprintln!("seed-equivalent sweep: {seed_secs:.2}s");

    let t1 = Instant::now();
    let serial = run_eval(synthetic, 1, NetKind::Ideal);
    let serial_secs = t1.elapsed().as_secs_f64();

    let t2 = Instant::now();
    let parallel = run_eval(synthetic, threads, NetKind::Ideal);
    let parallel_secs = t2.elapsed().as_secs_f64();

    // Debug-string comparison: NaN-valued returns (legitimate in scripted
    // float kernels) are bitwise-identical but `!=` under IEEE 754.
    let identical = format!("{:?}", serial.samples) == format!("{:?}", parallel.samples)
        && format!("{:?}", serial.statics) == format!("{:?}", parallel.statics)
        && seed_reports.len() == serial.samples.len()
        && seed_reports
            .iter()
            .zip(&serial.samples)
            .all(|(r, s)| format!("{r:?}") == format!("{:?}", s.report));
    let speedup_vs_seed = seed_secs / parallel_secs.max(1e-9);
    let parallel_speedup = serial_secs / parallel_secs.max(1e-9);

    // Table rendering exercises the O(1) sample index (the old linear
    // lookup made Tables 21–28 quadratic in the population).
    let t3 = Instant::now();
    let mut rendered = 0usize;
    for t in 9..=28 {
        rendered += chapter7_tables(&parallel, t).len();
    }
    let tables_secs = t3.elapsed().as_secs_f64();
    eprintln!("rendered tables 9–28 ({rendered} bytes) in {tables_secs:.2}s");

    let metrics = serial.metrics().to_json();
    let json = format!(
        "{{\n  \"benchmark\": \"tables --synthetic {synthetic}\",\n  \"records\": {},\n  \"samples\": {},\n  \"threads\": {threads},\n  \"threads_used\": {},\n  \"seed_equivalent_secs\": {seed_secs:.3},\n  \"serial_secs\": {serial_secs:.3},\n  \"parallel_secs\": {parallel_secs:.3},\n  \"tables_9_28_secs\": {tables_secs:.3},\n  \"speedup_vs_seed\": {speedup_vs_seed:.2},\n  \"parallel_speedup\": {parallel_speedup:.2},\n  \"identical_output\": {identical},\n  \"utilization\": {},\n  \"metrics\": {metrics}\n}}\n",
        serial.records.len(),
        serial.samples.len(),
        parallel.sweep.threads_used,
        utilization_json(&parallel.sweep.utilization()),
    );
    std::fs::write("BENCH_evaluation.json", &json).expect("write BENCH_evaluation.json");
    println!("{json}");
    assert!(identical, "optimized sweep diverged from the seed-equivalent output");
}

/// Times the event kernel itself: a serial sweep (wall time, scheduler
/// events processed, heap allocations), a parallel sweep, and the
/// block-compiled backend (one cold sweep that records the AOT schedules
/// through a [`PreparedPopulation`], then a warm sweep that only replays
/// them), checks all of them produce identical reports, and records the
/// numbers — plus the pre-timing-wheel baseline for comparison — in
/// `BENCH_kernel.json`.
fn bench_kernel(synthetic: usize, threads: usize) {
    // serial_secs of the committed BENCH_kernel.json the fast-forward work
    // was measured against (synthetic 1500 on the timing-wheel kernel,
    // before token-walk fast-forwarding and event-chain fusion).
    const BASELINE_SERIAL_SECS: f64 = 3.762;
    const BASELINE_SYNTHETIC: usize = 1500;

    let a0 = ALLOCS.load(Relaxed);
    let b0 = ALLOC_BYTES.load(Relaxed);
    let t1 = Instant::now();
    let serial = run_eval(synthetic, 1, NetKind::Ideal);
    let serial_secs = t1.elapsed().as_secs_f64();
    let serial_allocs = ALLOCS.load(Relaxed) - a0;
    let serial_alloc_bytes = ALLOC_BYTES.load(Relaxed) - b0;

    let t2 = Instant::now();
    let parallel = run_eval(synthetic, threads, NetKind::Ideal);
    let parallel_secs = t2.elapsed().as_secs_f64();

    // Debug-string comparison: NaN-valued returns (legitimate in scripted
    // float kernels) are bitwise-identical but `!=` under IEEE 754.
    let identical = format!("{:?}", serial.samples) == format!("{:?}", parallel.samples)
        && format!("{:?}", serial.statics) == format!("{:?}", parallel.statics);

    // Compiled backend, measured the way a resident process runs it: the
    // PreparedPopulation holds the schedule caches, the first sweep
    // records (cold), every later sweep replays (warm). Serial, like the
    // interpreted reference, so events/s compares kernel to kernel.
    eprintln!("preparing the population for the compiled backend …");
    let pop = PreparedPopulation::prepare(synthetic, threads);
    let compiled_cfg = EvalConfig {
        synthetic_count: synthetic,
        threads: 1,
        compiled: true,
        ..EvalConfig::default()
    };
    eprintln!("compiled cold sweep (recording AOT schedules) …");
    let t3 = Instant::now();
    let cold = pop.evaluate(&compiled_cfg);
    let compiled_cold_secs = t3.elapsed().as_secs_f64();
    eprintln!("compiled cold sweep: {compiled_cold_secs:.2}s");
    eprintln!("compiled warm sweep (replaying AOT schedules) …");
    let t4 = Instant::now();
    let warm = pop.evaluate(&compiled_cfg);
    let compiled_warm_secs = t4.elapsed().as_secs_f64();
    eprintln!("compiled warm sweep: {compiled_warm_secs:.2}s");
    let compiled_identical = format!("{:?}", cold.samples) == format!("{:?}", serial.samples)
        && format!("{:?}", warm.samples) == format!("{:?}", serial.samples)
        && format!("{:?}", warm.statics) == format!("{:?}", serial.statics);

    let events: u64 = serial.samples.iter().map(|s| s.report.events).sum();
    let events_skipped: u64 = serial.samples.iter().map(|s| s.report.events_skipped).sum();
    let events_per_sec = events as f64 / serial_secs.max(1e-9);
    let samples = serial.samples.len().max(1);
    let allocs_per_sample = serial_allocs as f64 / samples as f64;
    let speedup_vs_baseline = if synthetic == BASELINE_SYNTHETIC {
        BASELINE_SERIAL_SECS / serial_secs.max(1e-9)
    } else {
        0.0
    };

    // Warm replays process the same reports without popping events, so
    // the compiled rate is the same event total over the replay time.
    let compiled_events_per_sec = events as f64 / compiled_warm_secs.max(1e-9);
    let compiled_speedup = serial_secs / compiled_warm_secs.max(1e-9);
    // Sweeps until the compiled backend's total time (one cold recording
    // plus warm replays) beats the interpreted kernel: the cold overhead
    // divided by the per-sweep saving. 0 = ahead from the first sweep.
    let compiled_amortize_sweeps = if compiled_cold_secs <= serial_secs {
        0.0
    } else {
        (compiled_cold_secs - serial_secs) / (serial_secs - compiled_warm_secs).max(1e-9)
    };

    let metrics = serial.metrics().to_json();
    let json = format!(
        "{{\n  \"benchmark\": \"tables --bench-kernel --synthetic {synthetic}\",\n  \"records\": {},\n  \"samples\": {},\n  \"threads\": {threads},\n  \"threads_used\": {},\n  \"serial_secs\": {serial_secs:.3},\n  \"parallel_secs\": {parallel_secs:.3},\n  \"parallel_speedup\": {:.2},\n  \"events\": {events},\n  \"events_skipped\": {events_skipped},\n  \"events_per_sec\": {events_per_sec:.0},\n  \"serial_allocs\": {serial_allocs},\n  \"serial_alloc_bytes\": {serial_alloc_bytes},\n  \"allocs_per_sample\": {allocs_per_sample:.1},\n  \"baseline_serial_secs\": {BASELINE_SERIAL_SECS},\n  \"baseline_synthetic\": {BASELINE_SYNTHETIC},\n  \"speedup_vs_baseline\": {speedup_vs_baseline:.2},\n  \"identical_output\": {identical},\n  \"compiled\": {{\n    \"cold_secs\": {compiled_cold_secs:.3},\n    \"warm_secs\": {compiled_warm_secs:.3},\n    \"events_per_sec\": {compiled_events_per_sec:.0},\n    \"speedup_vs_interpreted\": {compiled_speedup:.2},\n    \"amortize_sweeps\": {compiled_amortize_sweeps:.2},\n    \"identical_output\": {compiled_identical}\n  }},\n  \"utilization\": {},\n  \"metrics\": {metrics}\n}}\n",
        serial.records.len(),
        serial.samples.len(),
        parallel.sweep.threads_used,
        serial_secs / parallel_secs.max(1e-9),
        utilization_json(&parallel.sweep.utilization()),
    );
    std::fs::write("BENCH_kernel.json", &json).expect("write BENCH_kernel.json");
    println!("{json}");
    assert!(identical, "parallel sweep diverged from the serial sweep");
    assert!(compiled_identical, "compiled sweep diverged from the interpreted serial sweep");
}

/// Runs the same sweep under the ideal and contended interconnect models,
/// prints the per-configuration comparison (IPC/cycle deltas, link stats,
/// hotspot heatmap), and records it in `BENCH_net.json`.
fn bench_net(synthetic: usize, threads: usize) {
    let ideal = run_eval(synthetic, threads, NetKind::Ideal);
    let contended = run_eval(synthetic, threads, NetKind::Contended);
    let rows = javaflow_bench::net_bench_rows(&ideal, &contended);
    println!("{}", javaflow_bench::net_report(&rows, &contended.configs));

    let mut entries = String::new();
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        entries.push_str(&format!(
            "    {{\n      \"config\": \"{}\",\n      \"ipc_ideal\": {:.4},\n      \"ipc_contended\": {:.4},\n      \"ipc_delta_pct\": {:.2},\n      \"cycles_ideal\": {:.1},\n      \"cycles_contended\": {:.1},\n      \"cycle_delta_pct\": {:.2},\n      \"mesh_flits\": {},\n      \"mesh_hops\": {},\n      \"stall_ticks\": {},\n      \"stall_per_hop\": {:.4},\n      \"max_queue_depth\": {},\n      \"mean_queue_depth\": {:.3},\n      \"memory_ring_requests\": {},\n      \"memory_ring_wait_ticks\": {},\n      \"gpp_ring_requests\": {},\n      \"gpp_ring_wait_ticks\": {}\n    }}{sep}\n",
            r.name,
            r.ipc_ideal,
            r.ipc_contended,
            r.ipc_delta_pct(),
            r.cycles_ideal,
            r.cycles_contended,
            r.cycle_delta_pct(),
            r.net.mesh_flits,
            r.net.mesh_hops,
            r.net.stall_ticks,
            r.net.stall_per_hop(),
            r.net.max_queue_depth,
            r.net.mean_queue_depth,
            r.net.memory_ring.0,
            r.net.memory_ring.1,
            r.net.gpp_ring.0,
            r.net.gpp_ring.1,
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"tables --bench-net --synthetic {synthetic}\",\n  \"records\": {},\n  \"samples_per_model\": {},\n  \"threads\": {threads},\n  \"configs\": [\n{entries}  ]\n}}\n",
        ideal.records.len(),
        ideal.samples.len(),
    );
    std::fs::write("BENCH_net.json", &json).expect("write BENCH_net.json");
    eprintln!("wrote BENCH_net.json");
}

/// Sweeps the contended interconnect's service parameters —
/// `NetParams::ring_slot_cycles` × `NetParams::mesh_fifo_capacity` — over
/// the same population, recording each combination's aggregate IPC and
/// queueing behaviour in `BENCH_rings.json`.
fn bench_rings(synthetic: usize, threads: usize) {
    const SLOTS: [u64; 3] = [1, 2, 4];
    const FIFOS: [u32; 3] = [2, 4, 8];
    let total = SLOTS.len() * FIFOS.len();
    let mut entries = String::new();
    let mut step = 0usize;
    for slot in SLOTS {
        for fifo in FIFOS {
            step += 1;
            eprintln!(
                "ring sweep {step}/{total}: ring_slot_cycles={slot} mesh_fifo_capacity={fifo}"
            );
            let mut configs = javaflow_fabric::FabricConfig::all_six();
            for c in &mut configs {
                c.net_params.ring_slot_cycles = slot;
                c.net_params.mesh_fifo_capacity = fifo;
            }
            let t = Instant::now();
            let eval = Evaluation::run(&EvalConfig {
                synthetic_count: synthetic,
                threads,
                net: NetKind::Contended,
                configs,
                ..EvalConfig::default()
            });
            let secs = t.elapsed().as_secs_f64();

            let mut ipc_sum = 0.0f64;
            let mut ok = 0u64;
            let (mut stall, mut flits, mut hops) = (0u64, 0u64, 0u64);
            let (mut mem_req, mut mem_wait, mut gpp_req, mut gpp_wait) = (0u64, 0u64, 0u64, 0u64);
            let mut max_queue = 0u64;
            for s in &eval.samples {
                if s.ok {
                    ipc_sum += s.report.ipc;
                    ok += 1;
                }
                if let Some(n) = &s.report.net {
                    stall += n.stall_ticks;
                    flits += n.mesh_flits;
                    hops += n.mesh_hops;
                    mem_req += n.memory_ring.requests;
                    mem_wait += n.memory_ring.wait_ticks;
                    gpp_req += n.gpp_ring.requests;
                    gpp_wait += n.gpp_ring.wait_ticks;
                    max_queue = max_queue.max(n.max_queue_depth);
                }
            }
            let mean_ipc = ipc_sum / ok.max(1) as f64;
            let stall_per_hop = stall as f64 / hops.max(1) as f64;
            let mem_wait_per_req = mem_wait as f64 / mem_req.max(1) as f64;
            let gpp_wait_per_req = gpp_wait as f64 / gpp_req.max(1) as f64;
            let sep = if step == total { "" } else { "," };
            entries.push_str(&format!(
                "    {{\n      \"ring_slot_cycles\": {slot},\n      \"mesh_fifo_capacity\": {fifo},\n      \"mean_ipc\": {mean_ipc:.4},\n      \"ok_samples\": {ok},\n      \"mesh_flits\": {flits},\n      \"mesh_hops\": {hops},\n      \"stall_ticks\": {stall},\n      \"stall_per_hop\": {stall_per_hop:.4},\n      \"max_queue_depth\": {max_queue},\n      \"memory_ring_requests\": {mem_req},\n      \"memory_ring_wait_per_request\": {mem_wait_per_req:.4},\n      \"gpp_ring_requests\": {gpp_req},\n      \"gpp_ring_wait_per_request\": {gpp_wait_per_req:.4},\n      \"sweep_secs\": {secs:.3}\n    }}{sep}\n"
            ));
        }
    }
    let json = format!(
        "{{\n  \"benchmark\": \"tables --bench-rings --synthetic {synthetic}\",\n  \"threads\": {threads},\n  \"combinations\": [\n{entries}  ]\n}}\n"
    );
    std::fs::write("BENCH_rings.json", &json).expect("write BENCH_rings.json");
    println!("{json}");
}

/// Benchmarks `javaflow-serve` end to end: an in-process server is
/// hammered at several concurrency levels with identical sweep requests
/// (the coalescing fast path), measuring client-observed end-to-end
/// latency per request. Records throughput plus exact p50/p95/p99 per
/// level in `BENCH_serve.json`, and — because request spans and the
/// flight recorder are always on in production — runs the whole ladder
/// twice, once with observability disabled, to publish the measured
/// span overhead against that untraced floor.
fn bench_serve(synthetic: usize, threads: usize) {
    use javaflow_server::protocol::{read_frame, write_frame};
    use javaflow_server::{Server, ServerConfig};

    const LEVELS: [usize; 3] = [1, 8, 32];
    const REQUESTS_PER_LEVEL: usize = 32;

    let request =
        format!("{{\"kind\": \"sweep\", \"id\": 1, \"synthetic\": {synthetic}, \"tables\": [22]}}");

    // Two resident servers, identical except for the observability
    // switch. Every level is measured back-to-back on both so machine
    // drift (frequency scaling, noisy neighbours) cancels out of the
    // overhead figure instead of landing entirely on whichever ladder
    // ran first.
    let start = |observability: bool| {
        Server::start(ServerConfig {
            threads,
            queue_cap: 64,
            observability,
            ..ServerConfig::default()
        })
        .expect("start javaflow-serve in-process")
    };
    let floor_server = start(false);
    let obs_server = start(true);

    let run_one = |addr: std::net::SocketAddr, request: &str| -> f64 {
        let mut conn = std::net::TcpStream::connect(addr).expect("connect");
        let t = Instant::now();
        write_frame(&mut conn, request.as_bytes()).expect("send");
        loop {
            let frame = read_frame(&mut conn, usize::MAX).expect("recv").expect("stream");
            if frame.starts_with(b"{\"type\": \"done\"") {
                return t.elapsed().as_secs_f64();
            }
            assert!(
                !frame.starts_with(b"{\"type\": \"error\""),
                "bench request failed: {}",
                String::from_utf8_lossy(&frame)
            );
        }
    };
    // One level's worth of requests; returns (wall seconds, latencies).
    let run_level = |addr: std::net::SocketAddr, concurrency: usize| -> (f64, Vec<f64>) {
        let per_worker = REQUESTS_PER_LEVEL / concurrency;
        let wall = Instant::now();
        let latencies: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..concurrency)
                .map(|_| {
                    let request = &request;
                    scope.spawn(move || {
                        (0..per_worker).map(|_| run_one(addr, request)).collect::<Vec<f64>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("bench worker")).collect()
        });
        (wall.elapsed().as_secs_f64(), latencies)
    };

    // One request up front on each server so every timed level sees a
    // warm prepared cache and arena pool — the steady state a resident
    // server serves.
    eprintln!("bench-serve: warming the prepared caches (synthetic {synthetic}) …");
    run_one(floor_server.addr(), &request);
    run_one(obs_server.addr(), &request);

    // Two rounds per level in ABBA order (floor/observed, then
    // observed/floor) so neither configuration systematically runs on a
    // warmer or more throttled machine than the other.
    let (mut floor_requests, mut floor_wall) = (0u64, 0.0f64);
    let (mut obs_requests, mut obs_wall) = (0u64, 0.0f64);
    let mut level_stats: Vec<(f64, Vec<f64>)> = vec![(0.0, Vec::new()); LEVELS.len()];
    for round in 0..2 {
        for (li, &concurrency) in LEVELS.iter().enumerate() {
            let per_worker = REQUESTS_PER_LEVEL / concurrency;
            eprintln!(
                "bench-serve: round {}/2, {concurrency} clients \u{d7} {per_worker} requests \u{d7} 2 servers …",
                round + 1
            );
            let floor_first = round == 0;
            for obs_turn in [!floor_first, floor_first] {
                if obs_turn {
                    let (wall_secs, latencies) = run_level(obs_server.addr(), concurrency);
                    obs_requests += latencies.len() as u64;
                    obs_wall += wall_secs;
                    level_stats[li].0 += wall_secs;
                    level_stats[li].1.extend(latencies);
                } else {
                    let (wall_secs, _) = run_level(floor_server.addr(), concurrency);
                    floor_requests += REQUESTS_PER_LEVEL as u64;
                    floor_wall += wall_secs;
                }
            }
        }
    }
    let mut entries = String::new();
    for (li, &concurrency) in LEVELS.iter().enumerate() {
        let (wall_secs, latencies) = &mut level_stats[li];
        latencies.sort_by(f64::total_cmp);
        let pct = |q: f64| {
            let rank = ((q * latencies.len() as f64).ceil() as usize).max(1);
            latencies[rank - 1]
        };
        let total = latencies.len();
        let throughput = total as f64 / wall_secs.max(1e-9);
        let sep = if li + 1 == LEVELS.len() { "" } else { "," };
        entries.push_str(&format!(
            "    {{\n      \"concurrency\": {concurrency},\n      \"requests\": {total},\n      \"wall_secs\": {wall_secs:.3},\n      \"throughput_rps\": {throughput:.3},\n      \"p50_ms\": {:.1},\n      \"p95_ms\": {:.1},\n      \"p99_ms\": {:.1}\n    }}{sep}\n",
            pct(0.50) * 1e3,
            pct(0.95) * 1e3,
            pct(0.99) * 1e3,
        ));
    }
    for server in [floor_server, obs_server] {
        server.request_shutdown();
        server.join().expect("clean server shutdown");
    }

    // Overhead over the whole ladder: per-level numbers are too short to
    // be stable (the top level finishes in a fraction of a second), but
    // the full 3-level pass is seconds of timed work on both sides.
    // Positive = spans cost throughput.
    let floor_rps = floor_requests as f64 / floor_wall.max(1e-9);
    let observed_rps = obs_requests as f64 / obs_wall.max(1e-9);
    let overhead_pct = (floor_rps - observed_rps) / floor_rps.max(1e-9) * 100.0;

    let json = format!(
        "{{\n  \"benchmark\": \"tables --bench-serve --synthetic {synthetic}\",\n  \"threads\": {threads},\n  \"levels\": [\n{entries}  ],\n  \"observability\": {{\n    \"floor_throughput_rps\": {floor_rps:.3},\n    \"observed_throughput_rps\": {observed_rps:.3},\n    \"span_overhead_pct\": {overhead_pct:.2}\n  }}\n}}\n"
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("{json}");
}

/// Records the deterministic hotspot kernel under three configurations,
/// cross-checks every recording against its live report (the Table 29
/// numbers must reproduce bit-for-bit from the event stream alone), and
/// writes all three as one Chrome-trace / Perfetto JSON document.
fn trace_capture(path: &str) {
    use javaflow_analysis::trace::{chrome_trace_json, replay, verify_replay};
    use javaflow_fabric::{
        execute_with_sink, load, ExecParams, FabricConfig, RingRecorder, SimArena, TraceEvent,
    };

    let (program, id) = javaflow_workloads::synthetic::hotspot();
    let method = program.method(id);
    let configs = [
        FabricConfig::compact2(),
        FabricConfig::sparse2(),
        FabricConfig::compact2().with_net(NetKind::Contended),
    ];
    let names = ["Compact2 (ideal)", "Sparse2 (ideal)", "Compact2 (contended)"];
    let mut recordings = Vec::new();
    for (cfg, name) in configs.iter().zip(names) {
        let loaded = load(method, cfg).expect("hotspot loads");
        let mut rec = RingRecorder::with_capacity(1 << 20);
        let mut arena = SimArena::default();
        let report = execute_with_sink(&loaded, cfg, ExecParams::default(), &mut arena, &mut rec);
        assert_eq!(rec.dropped(), 0, "{name}: recorder dropped events; raise the capacity");
        let events = rec.events();
        let replayed = replay(&events).unwrap_or_else(|e| {
            eprintln!("{name}: trace replay failed: {e}");
            std::process::exit(1);
        });
        if let Err(e) = verify_replay(&replayed, &report) {
            eprintln!("{name}: replay diverged from the live report: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "{name}: {} events recorded, replay matches the live report bit-for-bit",
            events.len()
        );
        recordings.push((name, events));
    }
    let runs: Vec<(&str, &[TraceEvent])> =
        recordings.iter().map(|(n, e)| (*n, e.as_slice())).collect();
    let json = chrome_trace_json(&runs);
    std::fs::write(path, &json).expect("write trace JSON");
    eprintln!("wrote {path} ({} bytes) — open at ui.perfetto.dev or chrome://tracing", json.len());
}

fn main() {
    let mut table: Option<u32> = None;
    let mut figure: Option<u32> = None;
    let mut trace_out: Option<String> = None;
    let mut synthetic = 240usize;
    let mut threads = default_threads();
    let mut net = NetKind::Ideal;
    let mut bench = false;
    let mut bench_net_mode = false;
    let mut bench_kernel_mode = false;
    let mut bench_rings_mode = false;
    let mut bench_serve_mode = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--table" => {
                let raw = args.next();
                table =
                    raw.as_deref().and_then(|v| v.parse().ok()).filter(|t| (1..=30).contains(t));
                if table.is_none() {
                    match raw {
                        Some(v) => eprintln!(
                            "--table: `{v}` is not a valid table id; valid ids are 1..=30 \
                             (run `tables --list-tables` for titles)"
                        ),
                        None => eprintln!(
                            "--table requires a table id 1..=30 \
                             (run `tables --list-tables` for titles)"
                        ),
                    }
                    std::process::exit(2);
                }
            }
            "--trace-out" => {
                trace_out = args.next();
                if trace_out.is_none() {
                    eprintln!("--trace-out requires an output path");
                    std::process::exit(2);
                }
            }
            "--list-tables" => {
                print!("{}", javaflow_bench::list_tables());
                return;
            }
            "--net" => {
                net = match args.next().as_deref() {
                    Some("ideal") => NetKind::Ideal,
                    Some("contended") => NetKind::Contended,
                    other => {
                        eprintln!(
                            "--net requires `ideal` or `contended` (got {})",
                            other.map_or_else(|| "nothing".into(), |v| format!("`{v}`"))
                        );
                        std::process::exit(2);
                    }
                };
            }
            "--synthetic" => {
                synthetic = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--synthetic requires a count");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                threads =
                    args.next().and_then(|v| v.parse().ok()).filter(|&n| n >= 1).unwrap_or_else(
                        || {
                            eprintln!("--threads requires a count >= 1");
                            std::process::exit(2);
                        },
                    );
            }
            "--bench-eval" => bench = true,
            "--bench-net" => bench_net_mode = true,
            "--bench-kernel" => bench_kernel_mode = true,
            "--bench-rings" => bench_rings_mode = true,
            "--bench-serve" => bench_serve_mode = true,
            "--figure" => {
                figure = args.next().and_then(|v| v.parse().ok());
                if figure.is_none() {
                    eprintln!("--figure requires a number");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: tables [--table N] [--figure N] [--list-tables] \
                     [--synthetic COUNT] [--threads N] [--net ideal|contended] \
                     [--bench-eval] [--bench-net] [--bench-kernel] [--bench-rings] \
                     [--bench-serve] [--trace-out FILE]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = trace_out {
        trace_capture(&path);
        return;
    }
    if bench {
        bench_eval(synthetic, threads);
        return;
    }
    if bench_net_mode {
        bench_net(synthetic, threads);
        return;
    }
    if bench_kernel_mode {
        bench_kernel(synthetic, threads);
        return;
    }
    if bench_rings_mode {
        bench_rings(synthetic, threads);
        return;
    }
    if bench_serve_mode {
        bench_serve(synthetic, threads);
        return;
    }

    if let Some(f) = figure {
        print!("{}", javaflow_bench::figure(f));
        if table.is_none() {
            return;
        }
    }
    let wanted: Vec<u32> = match table {
        Some(t) => vec![t],
        None => (1..=30).collect(),
    };
    let needs_ch5 = wanted.iter().any(|t| (1..=8).contains(t));
    let needs_ch7 = wanted.iter().any(|t| (9..=30).contains(t));

    let suite = needs_ch5.then(|| {
        eprintln!("profiling the benchmark suite on the interpreter …");
        profile_suite()
    });
    let eval = needs_ch7.then(|| run_eval(synthetic, threads, net));

    for t in wanted {
        let text = if (1..=8).contains(&t) {
            chapter5_tables(suite.as_ref().expect("chapter 5 data"), t)
        } else {
            chapter7_tables(eval.as_ref().expect("chapter 7 data"), t)
        };
        println!("{text}");
    }
}

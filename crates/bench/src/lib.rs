//! Table-regeneration library for the JavaFlow evaluation.
//!
//! Every table of the dissertation's Chapters 5 and 7 can be regenerated:
//! the `tables` binary prints them (`cargo run --release -p javaflow-bench
//! --bin tables -- --table N`, or all of them with no argument), and the
//! plain-main benches time the underlying machinery. The functions here are
//! shared between both.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt::Write as _;

pub mod micro;

use javaflow_analysis::{mesh_heatmap, DynamicMix, NetSummary, StaticMix, Utilization};
use javaflow_core::{EvalConfig, Evaluation};
use javaflow_fabric::{BranchMode, FabricConfig};
use javaflow_interp::Profiler;
use javaflow_workloads::{full_suite, Benchmark, SuiteKind};

/// Chapter 7 table rendering now lives in `core` (so the resident server
/// can render tables without this crate); re-exported for compatibility.
pub use javaflow_core::tables::chapter7_tables;

/// A profiled suite: per-benchmark profilers, reused across tables.
#[derive(Debug)]
pub struct ProfiledSuite {
    /// The benchmarks.
    pub benchmarks: Vec<Benchmark>,
    /// Profiler per benchmark (same order).
    pub profilers: Vec<Profiler>,
}

/// Profiles the whole suite on the interpreter.
///
/// Benchmarks are profiled on worker threads (each profile run is
/// independent); the profiler list keeps benchmark order.
///
/// # Panics
///
/// Panics if a benchmark driver faults (a bug — the suite is tested).
#[must_use]
pub fn profile_suite() -> ProfiledSuite {
    let benchmarks = full_suite();
    let profilers = javaflow_core::parallel::par_map(
        &benchmarks,
        javaflow_core::parallel::default_threads(),
        |_, b| b.profile().unwrap_or_else(|e| panic!("{} failed: {e}", b.name)).0,
    );
    ProfiledSuite { benchmarks, profilers }
}

/// Tables 1–8: the Chapter 5 benchmark analysis.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn chapter5_tables(suite: &ProfiledSuite, table: u32) -> String {
    let mut out = String::new();
    match table {
        1 => {
            let _ = writeln!(out, "Table 1 — Method Utilization in SPEC-substitute Benchmarks");
            let _ = writeln!(
                out,
                "{:<22} {:>14} {:>10} {:>12}",
                "Benchmark", "Total Ops", "Methods", "90% Methods"
            );
            for (b, p) in suite.benchmarks.iter().zip(&suite.profilers) {
                let u = Utilization::of(p);
                let _ = writeln!(
                    out,
                    "{:<22} {:>14} {:>10} {:>12}",
                    b.name, u.total_ops, u.methods_used, u.methods_at_90
                );
            }
        }
        2 => {
            let _ = writeln!(out, "Table 2 — Dynamic Instruction Mix of 90% Methods");
            let _ = writeln!(
                out,
                "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
                "Benchmark",
                "Loc+Stk",
                "ArithI",
                "ArithF",
                "Const",
                "Storage",
                "Ctl",
                "Calls",
                "Spec"
            );
            for (b, p) in suite.benchmarks.iter().zip(&suite.profilers) {
                let hot: Vec<javaflow_bytecode::MethodId> =
                    p.top_fraction(0.9).into_iter().map(|(id, _)| id).collect();
                let profs: Vec<_> = hot.iter().filter_map(|id| p.methods().get(id)).collect();
                let mix = DynamicMix::of(profs);
                let _ = writeln!(
                    out,
                    "{:<22} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
                    b.name,
                    mix.locals_stack * 100.0,
                    mix.arith_fixed * 100.0,
                    mix.arith_float * 100.0,
                    mix.constants * 100.0,
                    mix.storage * 100.0,
                    mix.control * 100.0,
                    mix.calls * 100.0,
                    mix.special * 100.0,
                );
            }
            let _ = writeln!(out, "(paper: Locals+Stack 26–54% — the folding candidates)");
        }
        3 | 4 => {
            let kind = if table == 3 { SuiteKind::Jvm2008 } else { SuiteKind::Jvm98 };
            let _ = writeln!(out, "Table {table} — {} Top 4 Methods", kind.label());
            for (b, p) in suite.benchmarks.iter().zip(&suite.profilers) {
                if b.suite != kind {
                    continue;
                }
                let tops = javaflow_analysis::top_methods(p, &b.program, 4);
                let share = javaflow_analysis::top_share(p, 4);
                let _ = writeln!(out, "{}  (top-4 share {:.0}%)", b.name, share * 100.0);
                for t in tops {
                    let _ =
                        writeln!(out, "    {:<44} {:>12} {:>5.1}%", t.name, t.ops, t.share * 100.0);
                }
            }
        }
        5 => {
            let _ = writeln!(out, "Table 5 — Impact of Quick Instructions");
            for kind in [SuiteKind::Jvm2008, SuiteKind::Jvm98] {
                let mut merged = Profiler::new();
                for (b, p) in suite.benchmarks.iter().zip(&suite.profilers) {
                    if b.suite == kind {
                        merged.merge(p);
                    }
                }
                let _ = writeln!(
                    out,
                    "{:<14} base {:>10}  quick {:>12}  quick-fraction {:>6.1}%  (paper: 97–99%)",
                    kind.label(),
                    merged.base_storage,
                    merged.quick_storage,
                    merged.quick_fraction() * 100.0
                );
            }
        }
        6 => {
            let _ = writeln!(out, "Table 6 — Static Mix Analysis");
            let _ = writeln!(
                out,
                "{:<22} {:>8} {:>8} {:>9} {:>9} {:>10}",
                "Benchmark", "%Arith", "%Float", "%Control", "%Storage", "Total"
            );
            let mut all_methods = Vec::new();
            for b in &suite.benchmarks {
                let methods: Vec<&javaflow_bytecode::Method> =
                    b.program.methods().map(|(_, m)| m).collect();
                let mix = StaticMix::of(methods.iter().copied());
                all_methods.extend(methods);
                let _ = writeln!(
                    out,
                    "{:<22} {:>7.0}% {:>7.0}% {:>8.0}% {:>8.0}% {:>10}",
                    b.name,
                    mix.arith * 100.0,
                    mix.float * 100.0,
                    mix.control * 100.0,
                    mix.storage * 100.0,
                    mix.total
                );
            }
            let total = StaticMix::of(all_methods);
            let _ = writeln!(
                out,
                "{:<22} {:>7.0}% {:>7.0}% {:>8.0}% {:>8.0}% {:>10}   (paper conclusion: 60/10/10/20)",
                "Total",
                total.arith * 100.0,
                total.float * 100.0,
                total.control * 100.0,
                total.storage * 100.0,
                total.total
            );
        }
        7 => {
            let _ = writeln!(out, "Table 7 — Benchmark DataFlow and Control Flow Analysis");
            let _ = writeln!(
                out,
                "{:<22} {:>6} {:>6} {:>8} {:>9} {:>8} {:>7} {:>6}",
                "Benchmark", "Fwd", "Back", "Insts", "Cycles", "DFlows", "Merges", "DFBack"
            );
            let mut sums = [0u64; 6];
            for b in &suite.benchmarks {
                let mut fwd = 0usize;
                let mut back = 0usize;
                let mut insts = 0usize;
                let mut cycles = 0u64;
                let mut dflows = 0u64;
                let mut merges = 0u32;
                let mut dfback = 0u32;
                for id in &b.hot {
                    let m = b.program.method(*id);
                    let cfg = javaflow_bytecode::Cfg::build(m);
                    fwd += cfg.forward_jump_stats().0;
                    back += cfg.back_jump_stats().0;
                    insts += m.len();
                    let r = javaflow_fabric::resolve(m).expect("resolves");
                    cycles += r.stats.resolution_ticks;
                    dflows += r.stats.dflows;
                    merges += r.stats.merges;
                    dfback += r.stats.back_merges;
                }
                let _ = writeln!(
                    out,
                    "{:<22} {:>6} {:>6} {:>8} {:>9} {:>8} {:>7} {:>6}",
                    b.name, fwd, back, insts, cycles, dflows, merges, dfback
                );
                sums[0] += fwd as u64;
                sums[1] += back as u64;
                sums[2] += insts as u64;
                sums[3] += cycles;
                sums[4] += dflows;
                sums[5] += u64::from(dfback);
            }
            let _ = writeln!(
                out,
                "{:<22} {:>6} {:>6} {:>8} {:>9} {:>8} {:>7} {:>6}   (paper: DFBack = 0; cycles ≈ 2×insts)",
                "Sum", sums[0], sums[1], sums[2], sums[3], sums[4], "-", sums[5]
            );
        }
        8 => {
            let _ = writeln!(out, "Table 8 — Analysis Summary");
            let mut total_ops = 0u64;
            let mut methods = 0usize;
            let mut hot_methods = 0usize;
            let mut hot_insts = 0usize;
            let mut hot_regs = 0u64;
            for (b, p) in suite.benchmarks.iter().zip(&suite.profilers) {
                total_ops += p.total_ops();
                methods += p.methods_executed();
                for id in &b.hot {
                    hot_methods += 1;
                    hot_insts += b.program.method(*id).len();
                    hot_regs += u64::from(b.program.method(*id).max_locals);
                }
            }
            let _ = writeln!(out, "Dynamic instructions executed : {total_ops}");
            let _ = writeln!(out, "Methods executed              : {methods}");
            let _ = writeln!(out, "Hot methods analyzed          : {hot_methods}");
            let _ = writeln!(
                out,
                "Avg insts / hot method        : {:.0}   (paper: 71)",
                hot_insts as f64 / hot_methods as f64
            );
            let _ = writeln!(
                out,
                "Avg registers / hot method    : {:.1}   (paper: 6)",
                hot_regs as f64 / hot_methods as f64
            );
        }
        other => {
            let _ = writeln!(out, "(table {other} is not a Chapter 5 table)");
        }
    }
    out
}

/// One-line title of a regenerable table, for `tables --list-tables` and
/// range errors.
#[must_use]
pub fn table_title(n: u32) -> &'static str {
    match n {
        1 => "Method Utilization in SPEC-substitute Benchmarks",
        2 => "Dynamic Instruction Mix of 90% Methods",
        3 => "JVM2008 Top 4 Methods",
        4 => "JVM98 Top 4 Methods",
        5 => "Impact of Quick Instructions",
        6 => "Static Mix Analysis",
        7 => "Benchmark DataFlow and Control Flow Analysis",
        8 => "Analysis Summary",
        9 => "General Data Flow Analysis (Filter 1)",
        10 => "DataFlow FanOut and Arc Analysis (Filter 1)",
        11 => "DataFlow Resolution Queue Analysis (Filter 1)",
        12 => "DataFlow Merge Analysis (Filter 1)",
        13 => "DataFlow Jump Forward Analysis (Filter 1)",
        14 => "DataFlow Jump Backward Analysis (Filter 1)",
        15 => "Benchmark Configurations",
        16 => "Filters on Methods",
        17 => "Execution Cycles per Instruction (+ Figure 25)",
        18 => "Execution Coverage (All Methods)",
        19 => "Ratio of Nodes Spanned to Instructions",
        20 => "Heterogeneous Addressing Detail (Filter 1)",
        21 => "Raw IPC Data (All Methods)",
        22 => "Figure of Merit (All Methods)",
        23 => "Correlations with FM Hetero2 (Filter All)",
        24 => "All Data (Filter 1)",
        25 => "All Data (Filter 2)",
        26 => "Parallelism (All Methods)",
        27 => "Figure of Merit on Top Methods (JVM2008)",
        28 => "Figure of Merit on Top Methods (JVM98)",
        29 => "Interconnect Link Statistics (contended model)",
        30 => "Instrumentation Summary",
        _ => "(unknown table)",
    }
}

/// The `--list-tables` text: every valid id with its one-line title.
#[must_use]
pub fn list_tables() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Chapter 5 (interpreter profile):");
    for t in 1..=8u32 {
        let _ = writeln!(out, "  {t:>2}  {}", table_title(t));
    }
    let _ = writeln!(out, "Chapter 7 (fabric evaluation):");
    for t in 9..=30u32 {
        let _ = writeln!(out, "  {t:>2}  {}", table_title(t));
    }
    out
}

/// Ideal-vs-contended comparison for one configuration (`--bench-net`).
#[derive(Debug, Clone)]
pub struct NetBenchRow {
    /// Configuration name.
    pub name: &'static str,
    /// Mean IPC over returned samples, ideal interconnect.
    pub ipc_ideal: f64,
    /// Mean IPC over returned samples, contended interconnect.
    pub ipc_contended: f64,
    /// Mean elapsed mesh cycles, ideal.
    pub cycles_ideal: f64,
    /// Mean elapsed mesh cycles, contended.
    pub cycles_contended: f64,
    /// Aggregated link-level statistics of the contended sweep.
    pub net: NetSummary,
}

impl NetBenchRow {
    /// Relative IPC lost to contention, in percent (positive = slower).
    #[must_use]
    pub fn ipc_delta_pct(&self) -> f64 {
        if self.ipc_ideal == 0.0 {
            0.0
        } else {
            (self.ipc_ideal - self.ipc_contended) / self.ipc_ideal * 100.0
        }
    }

    /// Relative cycle growth under contention, in percent.
    #[must_use]
    pub fn cycle_delta_pct(&self) -> f64 {
        if self.cycles_ideal == 0.0 {
            0.0
        } else {
            (self.cycles_contended - self.cycles_ideal) / self.cycles_ideal * 100.0
        }
    }
}

/// Folds two sweeps of the same population — one ideal, one contended —
/// into per-configuration comparison rows.
///
/// # Panics
///
/// Panics if the two evaluations ran different configuration lists.
#[must_use]
pub fn net_bench_rows(ideal: &Evaluation, contended: &Evaluation) -> Vec<NetBenchRow> {
    assert_eq!(ideal.configs.len(), contended.configs.len(), "sweeps must match");
    let mean_of = |eval: &Evaluation, ci: usize| -> (f64, f64) {
        let mut ipc = 0.0;
        let mut cycles = 0.0;
        let mut n = 0usize;
        for s in &eval.samples {
            if s.config == ci && s.ok {
                ipc += s.report.ipc;
                cycles += s.report.mesh_cycles as f64;
                n += 1;
            }
        }
        if n == 0 {
            (0.0, 0.0)
        } else {
            (ipc / n as f64, cycles / n as f64)
        }
    };
    ideal
        .configs
        .iter()
        .enumerate()
        .map(|(ci, fc)| {
            let (ipc_ideal, cycles_ideal) = mean_of(ideal, ci);
            let (ipc_contended, cycles_contended) = mean_of(contended, ci);
            let net = NetSummary::of(
                contended
                    .samples
                    .iter()
                    .filter(|s| s.config == ci)
                    .filter_map(|s| s.report.net.as_ref()),
            );
            NetBenchRow {
                name: fc.name,
                ipc_ideal,
                ipc_contended,
                cycles_ideal,
                cycles_contended,
                net,
            }
        })
        .collect()
}

/// The `--bench-net` report: per-configuration ideal-vs-contended deltas,
/// link/ring statistics, and the hotspot heatmap of the most congested
/// configuration.
#[must_use]
pub fn net_report(rows: &[NetBenchRow], configs: &[FabricConfig]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Interconnect contention report (ideal vs contended)");
    let _ = writeln!(
        out,
        "{:<11} {:>9} {:>9} {:>7} {:>11} {:>11} {:>7} | {:>9} {:>6} {:>6} {:>9} {:>9}",
        "Config",
        "IPC-ideal",
        "IPC-cont",
        "ΔIPC%",
        "Cyc-ideal",
        "Cyc-cont",
        "ΔCyc%",
        "stall/hop",
        "maxQ",
        "meanQ",
        "mem-wait",
        "gpp-wait"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<11} {:>9.3} {:>9.3} {:>7.1} {:>11.1} {:>11.1} {:>7.1} | {:>9.3} {:>6} {:>6.2} {:>9} {:>9}",
            r.name,
            r.ipc_ideal,
            r.ipc_contended,
            r.ipc_delta_pct(),
            r.cycles_ideal,
            r.cycles_contended,
            r.cycle_delta_pct(),
            r.net.stall_per_hop(),
            r.net.max_queue_depth,
            r.net.mean_queue_depth,
            r.net.memory_ring.1,
            r.net.gpp_ring.1,
        );
    }
    // Heatmap of the configuration with the worst per-hop stall.
    if let Some((ci, worst)) = rows
        .iter()
        .enumerate()
        .filter(|(_, r)| r.net.mesh_hops > 0)
        .max_by(|(_, a), (_, b)| a.net.stall_per_hop().total_cmp(&b.net.stall_per_hop()))
    {
        let width = configs.get(ci).map_or(10, |c| c.width);
        let _ = writeln!(out, "\nhotspots — {} (worst stall/hop):", worst.name);
        out.push_str(&mesh_heatmap(&worst.net, width));
        for (x, y, flits, stall) in worst.net.hotspots(5) {
            let _ = writeln!(out, "  ({x},{y}): {flits} flits, {stall} stall ticks");
        }
    }
    out
}

/// Builds the default evaluation used by the `tables` binary.
#[must_use]
pub fn default_evaluation(synthetic_count: usize) -> Evaluation {
    Evaluation::run(&EvalConfig { synthetic_count, ..EvalConfig::default() })
}

/// Re-runs the evaluation sweep the way the pre-optimization harness did —
/// serial, a fresh `load` (with its own `resolve`) per record×config, and
/// fresh simulator allocations per run — returning the execution reports
/// in sweep order.
///
/// Only used by `tables --bench-eval` as the timing baseline; the reports
/// double as a cross-check that the cached pipeline changes nothing.
#[must_use]
pub fn seed_equivalent_sweep(
    synthetic_count: usize,
    max_mesh_cycles: u64,
) -> Vec<javaflow_fabric::ExecReport> {
    let records = javaflow_core::population(synthetic_count);
    let configs = FabricConfig::all_six();
    let mut reports = Vec::new();
    for rec in &records {
        // The statics pass as the old harness ran it: verify, a dedicated
        // resolve, the CFG, and a placement per configuration.
        let _ = javaflow_bytecode::verify(&rec.method).expect("population verifies");
        let _ = javaflow_fabric::resolve(&rec.method).expect("population resolves");
        let _ = javaflow_bytecode::Cfg::build(&rec.method);
        for fc in &configs {
            let _ = javaflow_fabric::place(&rec.method, fc);
        }
        for fc in &configs {
            let Ok(loaded) = javaflow_fabric::load(&rec.method, fc) else {
                continue;
            };
            for bp in [BranchMode::Bp1, BranchMode::Bp2] {
                reports.push(javaflow_fabric::execute(
                    &loaded,
                    fc,
                    javaflow_fabric::ExecParams {
                        mode: bp,
                        max_mesh_cycles,
                        ..javaflow_fabric::ExecParams::default()
                    },
                ));
            }
        }
    }
    reports
}

/// The Table 15 configuration list.
#[must_use]
pub fn default_configs() -> Vec<FabricConfig> {
    FabricConfig::all_six()
}

/// ASCII renderings of the dissertation's figures that have a structural
/// (non-chart) content: the system diagram, the loading walkthrough, the
/// resolution examples, and the heterogeneous row pattern.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn figure(n: u32) -> String {
    let mut out = String::new();
    match n {
        12 => {
            let _ = writeln!(out, "Figure 12 — JavaFlow system diagram");
            let _ = writeln!(
                out,
                "
       +--------------------------- DataFlow Fabric ---------------------------+
       |  [A]->[n]->[n]->[n]->[n]->[n]->[n]->[n]->[n]->[n]   forward/reverse   |
       |   |    |    |    |    |    |    |    |    |    |    ordered serial    |
       |  [n]<-[n]<-[n]<-[n]<-[n]<-[n]<-[n]<-[n]<-[n]<-[n]   network (snake)   |
       |   |    |    |    |    |    |    |    |    |    |                      |
       |  [n]->[n]->[n]->[S]->[n]->[n]->[n]->[S]->[n]->[n]   X-Y routed mesh   |
       +------------|-------------------------|-------------------------------+
                    |    high-speed rings     |
              +-----v-----+             +-----v-----+
              |  Memory   |             |    GPP    |  (interpreter: calls,
              | subsystem |             |           |   services, exceptions)
              +-----------+             +-----------+
 [A] anchor node   [S] storage node   [n] instruction node"
            );
        }
        20 => {
            let _ = writeln!(out, "Figure 20 — Loading a method (greedy allocation)");
            let program = javaflow_bytecode::asm::assemble(
                ".method demo args=1 returns=true locals=1
                   iload 0
                   dconst_1
                   d2i
                   iadd
                   ireturn
                 .end",
            )
            .expect("assembles");
            let (_, m) = program.method_by_name("demo").expect("exists");
            for config in [FabricConfig::compact2(), FabricConfig::hetero2()] {
                let p = javaflow_fabric::place(m, &config).expect("places");
                let _ = writeln!(out, "\n{} layout:", config.name);
                for (addr, insn) in m.iter() {
                    let slot = p.slots[addr as usize];
                    let (x, y) = p.coords[addr as usize];
                    let kind = insn.group().node_kind();
                    let _ = writeln!(
                        out,
                        "  @{addr} {:<12} [{kind:<7}] -> slot {slot:>3} at ({x},{y})",
                        insn.to_string()
                    );
                }
                let _ = writeln!(
                    out,
                    "  {} instructions span {} nodes (ratio {:.2})",
                    m.len(),
                    p.max_node,
                    p.span_ratio()
                );
            }
        }
        21 | 22 => {
            let _ = writeln!(out, "Figure {n} — DataFlow address resolution walkthrough");
            let src = if n == 21 {
                ".method f21 args=4 returns=false locals=5
                   iload 1
                   iload 2
                   iload 3
                   iadd
                   iadd
                   istore 4
                   return
                 .end"
            } else {
                ".method f22 args=1 returns=true locals=1
                   iload 0
                   ifeq @other
                   iconst_1
                   goto @join
                 other:
                   iconst_2
                 join:
                   ireturn
                 .end"
            };
            let program = javaflow_bytecode::asm::assemble(src).expect("assembles");
            let (_, m) = program.methods().next().expect("exists");
            let r = javaflow_fabric::resolve(m).expect("resolves");
            for (addr, insn) in m.iter() {
                let _ = write!(
                    out,
                    "  @{addr:<2} {:<14} pop {} push {}",
                    insn.to_string(),
                    insn.pops(),
                    insn.pushes()
                );
                let sinks = &r.consumers[addr as usize];
                if !sinks.is_empty() {
                    let _ = write!(out, "  →");
                    for s in sinks {
                        let _ = write!(out, " (@{}, side {})", s.consumer, s.side);
                    }
                }
                let _ = writeln!(out);
            }
            let _ = writeln!(
                out,
                "  merges {}  back merges {}  max up-queue {}",
                r.stats.merges, r.stats.back_merges, r.stats.max_up_queue
            );
        }
        26 => {
            let _ = writeln!(out, "Figure 26 — Heterogeneous DataFlow row (per 10 nodes)");
            let _ = write!(out, "  ");
            for k in javaflow_fabric::HETERO_PATTERN {
                let _ = write!(out, "[{}]", &k.label()[..1].to_uppercase());
            }
            let _ = writeln!(out, "   A=arith F=float S=storage C=control (6/1/2/1)");
        }
        other => {
            let _ =
                writeln!(out, "(no structural rendering for figure {other}; see EXPERIMENTS.md)");
        }
    }
    out
}

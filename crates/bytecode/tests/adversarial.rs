//! Adversarial and consistency tests for the ByteCode substrate: the
//! verifier against malformed streams, opcode-table invariants, assembler
//! error paths, and builder/verifier integration.

use javaflow_bytecode::{
    asm, verify, Insn, InstructionGroup, Method, MethodBuilder, Opcode, Operand, VerifyError,
};

#[test]
fn opcode_table_stack_effects_are_group_consistent() {
    for op in Opcode::ALL {
        let (Some(pops), Some(pushes)) = (op.base_pops(), op.base_pushes()) else {
            continue;
        };
        match op.group() {
            InstructionGroup::LocalRead => {
                assert_eq!((pops, pushes), (0, 1), "{op}");
            }
            InstructionGroup::LocalWrite => {
                assert_eq!((pops, pushes), (1, 0), "{op}");
            }
            InstructionGroup::LocalInc => {
                assert_eq!((pops, pushes), (0, 0), "{op}");
            }
            InstructionGroup::MemConst => {
                assert_eq!((pops, pushes), (0, 1), "{op}");
            }
            InstructionGroup::ControlFlow => {
                assert!(pops <= 2 && pushes == 0, "{op}");
            }
            InstructionGroup::Return => {
                assert!(pops <= 1 && pushes == 0, "{op}");
            }
            InstructionGroup::ArithInteger | InstructionGroup::FloatArith => {
                assert!((1..=2).contains(&pops) && pushes == 1, "{op}");
            }
            InstructionGroup::FloatConversion => {
                assert_eq!((pops, pushes), (1, 1), "{op}");
            }
            _ => {}
        }
    }
}

#[test]
fn every_branch_opcode_has_classification() {
    let branches: Vec<&Opcode> = Opcode::ALL.iter().filter(|o| o.is_branch()).collect();
    assert!(branches.len() >= 20);
    for op in branches {
        assert!(
            op.is_goto()
                || op.is_conditional()
                || matches!(
                    op,
                    Opcode::Jsr | Opcode::JsrW | Opcode::TableSwitch | Opcode::LookupSwitch
                ),
            "{op} unclassified"
        );
    }
}

#[test]
fn verifier_rejects_depth_divergent_loop() {
    // A loop that nets +1 stack per iteration must be rejected (the stack
    // shape at the loop head differs between entries).
    let mut m = Method::new("t", 1, false);
    m.max_locals = 1;
    m.code = vec![
        Insn::simple(Opcode::IConst0),               // 0: push (loop head)
        Insn::new(Opcode::ILoad, Operand::Local(0)), // 1
        Insn::new(Opcode::IfNe, Operand::Target(0)), // 2: back edge, net +1
        Insn::simple(Opcode::ReturnVoid),            // 3
    ];
    assert!(matches!(verify(&m), Err(VerifyError::ShapeMismatch { .. })));
}

#[test]
fn verifier_handles_dense_diamonds() {
    // Nested diamonds with stack values crossing the joins: stays
    // polynomial and produces the union of producers.
    let src = ".method d args=3 returns=true locals=3
       iload 0
       ifeq @b1
       iload 1
       goto @j1
     b1:
       iload 2
     j1:
       iload 0
       ifne @b2
       iconst_1
       goto @j2
     b2:
       iconst_2
     j2:
       iadd
       ireturn
     .end";
    let p = asm::assemble(src).unwrap();
    let (_, m) = p.method_by_name("d").unwrap();
    let v = verify(m).unwrap();
    assert_eq!(v.merges, 2);
    assert_eq!(v.back_merges, 0);
    // iadd (@10) side 1 is fed by both iload 1 (@2) and iload 2 (@4);
    // side 2 by the two constants (@7, @9).
    let feeders = |side: u16| -> Vec<u32> {
        v.edges.iter().filter(|e| e.consumer == 10 && e.side == side).map(|e| e.producer).collect()
    };
    assert_eq!(feeders(1), vec![2, 4]);
    assert_eq!(feeders(2), vec![7, 9]);
}

#[test]
fn assembler_rejects_malformed_programs() {
    let cases: &[(&str, &str)] = &[
        (".method t args=0 returns=false\n  bogus\n.end", "unknown opcode"),
        (".method t args=0 returns=false\n  goto nowhere\n.end", "must start with `@`"),
        (".method t args=0 returns=false\n  iload\n.end", "expects 1 operand"),
        (".method t args=0 returns=false\n  getfield Missing 0\n.end", "unknown class"),
        (".method t args=0 returns=false\n  invokestatic ghost\n.end", "unknown callee"),
        (".method t args=0 returns=false\n  return", "missing .end"),
        (".method t args=0 returns=false\n x:\n x:\n  return\n.end", "duplicate label"),
        ("  iadd\n", "outside .method"),
        (".const int 3\n", "outside .method"),
    ];
    for (src, needle) in cases {
        let err = asm::assemble(src).unwrap_err();
        assert!(
            err.message.contains(needle),
            "source {src:?}: expected {needle:?} in {:?}",
            err.message
        );
    }
}

#[test]
fn builder_switch_integrates_with_interpreter() {
    let mut b = MethodBuilder::new("sw", 1, true);
    let a = b.new_label();
    let c = b.new_label();
    let d = b.new_label();
    b.iload(0);
    b.switch(vec![(1, a), (2, c)], d);
    b.bind(a);
    b.iconst(100);
    b.op(Opcode::IReturn);
    b.bind(c);
    b.iconst(200);
    b.op(Opcode::IReturn);
    b.bind(d);
    b.iconst(-1);
    b.op(Opcode::IReturn);
    let m = b.finish().unwrap();
    let p = javaflow_bytecode::Program::from(m);
    let run = |v: i32| {
        let mut jvm = javaflow_interp::Interp::new(&p);
        jvm.run(javaflow_bytecode::MethodId(0), &[javaflow_bytecode::Value::Int(v)])
            .unwrap()
            .unwrap()
    };
    assert_eq!(run(1), javaflow_bytecode::Value::Int(100));
    assert_eq!(run(2), javaflow_bytecode::Value::Int(200));
    assert_eq!(run(9), javaflow_bytecode::Value::Int(-1));
}

#[test]
fn disassembly_is_stable() {
    // Disassembling twice yields identical text (no hidden state).
    let src = ".class K fields=1 statics=1
     .method t args=1 returns=true locals=2
     .const double 6.25
       ldc2_w #0
       dload 0
       dmul
       dreturn
     .end";
    let p = asm::assemble(src).unwrap();
    let once = asm::disassemble(&p);
    let twice = asm::disassemble(&asm::assemble(&once).unwrap());
    assert_eq!(once, twice);
}

#[test]
fn display_formats_are_readable() {
    assert_eq!(Insn::simple(Opcode::DAdd).to_string(), "dadd");
    assert_eq!(Insn::new(Opcode::Goto, Operand::Target(7)).to_string(), "goto @7");
    assert_eq!(Insn::new(Opcode::ILoad, Operand::Local(9)).to_string(), "iload 9");
    assert_eq!(InstructionGroup::FloatArith.to_string(), "float-arith");
}

#[test]
fn method_error_display_is_located() {
    let mut m = Method::new("t", 0, false);
    m.code = vec![Insn::new(Opcode::Goto, Operand::Target(99)), Insn::simple(Opcode::ReturnVoid)];
    let e = m.validate().unwrap_err();
    let text = e.to_string();
    assert!(text.contains("@0") && text.contains("@99"), "{text}");
}

//! A javap-style assembler and disassembler.
//!
//! The dissertation's toolchain captured methods as JAVAP text and fed that
//! into the simulator; this module plays the same role. The format is
//! line-oriented:
//!
//! ```text
//! .class Random fields=1 statics=0
//!
//! .method Random.next args=2 returns=true locals=4
//! .const long 25214903917
//!   aload 0
//!   ldc #0
//! loop:
//!   iinc 2 -1
//!   iload 2
//!   ifne @loop
//!   ireturn
//! .end
//! ```
//!
//! * labels are `name:` lines; branch operands are `@name` or absolute `@N`
//! * `.const <type> <value>` appends to the method's constant pool
//! * field operands are `<class> <slot>` with the class by name or id
//! * call operands are the callee's method name; arity and return type are
//!   resolved when the whole program has been parsed
//!
//! [`disassemble`] produces text that [`assemble`] parses back to an equal
//! program (round-trip property-tested).

use std::collections::HashMap;

use crate::{
    ArrayKind, CallRef, ClassDef, FieldRef, Insn, Method, Opcode, Operand, Program, SwitchTable,
    Value,
};

/// An assembly error with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fm, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError { line, message: message.into() })
}

/// A not-yet-linked operand (labels and callee names unresolved).
#[derive(Debug)]
enum RawOperand {
    Done(Operand),
    Label(String),
    Callee(String),
    Switch(Vec<(i32, String)>, String),
}

#[derive(Debug)]
struct RawMethod {
    method: Method,
    raw: Vec<(usize, RawOperand)>, // (line, operand) per instruction
    labels: HashMap<String, u32>,
}

/// Assembles a full program.
///
/// # Errors
///
/// Returns the first [`AsmError`].
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut classes: Vec<ClassDef> = Vec::new();
    let mut class_ids: HashMap<String, u16> = HashMap::new();
    let mut raws: Vec<RawMethod> = Vec::new();
    let mut current: Option<RawMethod> = None;

    for (idx, raw_line) in source.lines().enumerate() {
        let lno = idx + 1;
        let line = raw_line.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".class ") {
            if current.is_some() {
                return err(lno, ".class inside .method");
            }
            let mut name = None;
            let mut fields = 0u16;
            let mut statics = 0u16;
            for tok in rest.split_whitespace() {
                if let Some(v) = tok.strip_prefix("fields=") {
                    fields = v.parse().map_err(|_| AsmError {
                        line: lno,
                        message: format!("bad fields count `{v}`"),
                    })?;
                } else if let Some(v) = tok.strip_prefix("statics=") {
                    statics = v.parse().map_err(|_| AsmError {
                        line: lno,
                        message: format!("bad statics count `{v}`"),
                    })?;
                } else if name.is_none() {
                    name = Some(tok.to_string());
                } else {
                    return err(lno, format!("unexpected token `{tok}`"));
                }
            }
            let name = name
                .ok_or_else(|| AsmError { line: lno, message: ".class requires a name".into() })?;
            class_ids.insert(name.clone(), classes.len() as u16);
            classes.push(ClassDef { name, instance_fields: fields, static_fields: statics });
            continue;
        }
        if let Some(rest) = line.strip_prefix(".method ") {
            if current.is_some() {
                return err(lno, "nested .method");
            }
            let mut name = None;
            let mut args = 0u16;
            let mut returns = false;
            let mut locals: Option<u16> = None;
            for tok in rest.split_whitespace() {
                if let Some(v) = tok.strip_prefix("args=") {
                    args = v
                        .parse()
                        .map_err(|_| AsmError { line: lno, message: format!("bad args `{v}`") })?;
                } else if let Some(v) = tok.strip_prefix("returns=") {
                    returns = v == "true";
                } else if let Some(v) = tok.strip_prefix("locals=") {
                    locals = Some(v.parse().map_err(|_| AsmError {
                        line: lno,
                        message: format!("bad locals `{v}`"),
                    })?);
                } else if name.is_none() {
                    name = Some(tok.to_string());
                } else {
                    return err(lno, format!("unexpected token `{tok}`"));
                }
            }
            let name = name
                .ok_or_else(|| AsmError { line: lno, message: ".method requires a name".into() })?;
            let mut method = Method::new(name, args, returns);
            method.max_locals = locals.unwrap_or(args);
            current = Some(RawMethod { method, raw: Vec::new(), labels: HashMap::new() });
            continue;
        }
        if line == ".end" {
            let raw = current
                .take()
                .ok_or_else(|| AsmError { line: lno, message: ".end without .method".into() })?;
            raws.push(raw);
            continue;
        }
        let Some(cur) = current.as_mut() else {
            return err(lno, format!("`{line}` outside .method"));
        };
        if let Some(rest) = line.strip_prefix(".const ") {
            let mut it = rest.split_whitespace();
            let (ty, val) = (it.next(), it.next());
            let (Some(ty), Some(val)) = (ty, val) else {
                return err(lno, ".const requires `<type> <value>`");
            };
            let v = parse_const(ty, val)
                .ok_or_else(|| AsmError { line: lno, message: format!("bad constant `{val}`") })?;
            cur.method.cpool.push(v);
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let addr = cur.method.code.len() as u32;
            if cur.labels.insert(label.to_string(), addr).is_some() {
                return err(lno, format!("duplicate label `{label}`"));
            }
            continue;
        }
        // An instruction line.
        let mut it = line.split_whitespace();
        let mnem = it.next().expect("non-empty line");
        let op = Opcode::from_mnemonic(mnem)
            .ok_or_else(|| AsmError { line: lno, message: format!("unknown opcode `{mnem}`") })?;
        let rest: Vec<&str> = it.collect();
        let raw_op = parse_operand(op, &rest, &class_ids, lno)?;
        cur.method.code.push(Insn { op, operand: Operand::None });
        cur.raw.push((lno, raw_op));
        continue;
    }
    if current.is_some() {
        return err(source.lines().count(), "missing .end");
    }

    // Link: method name → (id, argc, returns).
    let mut program = Program::new();
    for c in classes {
        program.add_class(c);
    }
    let mut sigs: HashMap<String, (crate::MethodId, u8, bool)> = HashMap::new();
    let mut ids = Vec::new();
    for r in &raws {
        let id = program.add_method(r.method.clone());
        sigs.insert(r.method.name.clone(), (id, r.method.num_args as u8, r.method.returns));
        ids.push(id);
    }
    for (r, id) in raws.iter().zip(ids) {
        let resolve_label = |name: &str, line: usize| -> Result<u32, AsmError> {
            if let Some(a) = r.labels.get(name) {
                return Ok(*a);
            }
            if let Ok(n) = name.parse::<u32>() {
                return Ok(n);
            }
            err(line, format!("unknown label `{name}`"))
        };
        for (i, (line, raw)) in r.raw.iter().enumerate() {
            let operand = match raw {
                RawOperand::Done(o) => o.clone(),
                RawOperand::Label(l) => Operand::Target(resolve_label(l, *line)?),
                RawOperand::Callee(name) => {
                    let (m, argc, returns) = *sigs.get(name.as_str()).ok_or_else(|| AsmError {
                        line: *line,
                        message: format!("unknown callee `{name}`"),
                    })?;
                    Operand::Call(CallRef { method: m, argc, returns })
                }
                RawOperand::Switch(arms, default) => {
                    let mut table = SwitchTable { arms: Vec::new(), default: 0 };
                    for (k, l) in arms {
                        table.arms.push((*k, resolve_label(l, *line)?));
                    }
                    table.default = resolve_label(default, *line)?;
                    Operand::Switch(table)
                }
            };
            program.method_mut(id).code[i].operand = operand;
        }
    }
    Ok(program)
}

fn parse_const(ty: &str, val: &str) -> Option<Value> {
    Some(match ty {
        "int" => Value::Int(val.parse().ok()?),
        "long" => Value::Long(val.parse().ok()?),
        "float" => Value::Float(val.parse().ok()?),
        "double" => Value::Double(val.parse().ok()?),
        "null" => Value::NULL,
        _ => return None,
    })
}

fn parse_operand(
    op: Opcode,
    rest: &[&str],
    class_ids: &HashMap<String, u16>,
    lno: usize,
) -> Result<RawOperand, AsmError> {
    use Opcode as O;
    let need = |n: usize| -> Result<(), AsmError> {
        if rest.len() == n {
            Ok(())
        } else {
            err(lno, format!("{op} expects {n} operand(s), found {}", rest.len()))
        }
    };
    let class_of = |tok: &str| -> Result<u16, AsmError> {
        if let Some(id) = class_ids.get(tok) {
            return Ok(*id);
        }
        tok.parse::<u16>()
            .map_err(|_| AsmError { line: lno, message: format!("unknown class `{tok}`") })
    };
    let done = |o: Operand| Ok(RawOperand::Done(o));
    match op {
        O::BiPush | O::SiPush => {
            need(1)?;
            let v: i32 = rest[0]
                .parse()
                .map_err(|_| AsmError { line: lno, message: format!("bad imm `{}`", rest[0]) })?;
            done(Operand::Imm(v))
        }
        O::Ldc | O::LdcW | O::Ldc2W => {
            need(1)?;
            let idx = rest[0].strip_prefix('#').unwrap_or(rest[0]);
            let i: u16 = idx
                .parse()
                .map_err(|_| AsmError { line: lno, message: format!("bad cp index `{idx}`") })?;
            done(Operand::Cp(i))
        }
        O::ILoad
        | O::LLoad
        | O::FLoad
        | O::DLoad
        | O::ALoad
        | O::IStore
        | O::LStore
        | O::FStore
        | O::DStore
        | O::AStore
        | O::Ret => {
            need(1)?;
            let r: u16 = rest[0]
                .parse()
                .map_err(|_| AsmError { line: lno, message: format!("bad local `{}`", rest[0]) })?;
            done(Operand::Local(r))
        }
        O::IInc => {
            need(2)?;
            let local: u16 = rest[0]
                .parse()
                .map_err(|_| AsmError { line: lno, message: format!("bad local `{}`", rest[0]) })?;
            let delta: i32 = rest[1]
                .parse()
                .map_err(|_| AsmError { line: lno, message: format!("bad delta `{}`", rest[1]) })?;
            done(Operand::Inc { local, delta })
        }
        O::GetStatic | O::PutStatic | O::GetField | O::PutField => {
            need(2)?;
            let class = class_of(rest[0])?;
            let slot: u16 = rest[1]
                .parse()
                .map_err(|_| AsmError { line: lno, message: format!("bad slot `{}`", rest[1]) })?;
            done(Operand::Field(FieldRef { class, slot }))
        }
        O::InvokeVirtual
        | O::InvokeSpecial
        | O::InvokeStatic
        | O::InvokeInterface
        | O::InvokeDynamic => {
            need(1)?;
            Ok(RawOperand::Callee(rest[0].to_string()))
        }
        O::New | O::ANewArray | O::CheckCast | O::InstanceOf => {
            need(1)?;
            done(Operand::ClassId(class_of(rest[0])?))
        }
        O::NewArray => {
            need(1)?;
            let kind = match rest[0] {
                "boolean" => ArrayKind::Boolean,
                "char" => ArrayKind::Char,
                "float" => ArrayKind::Float,
                "double" => ArrayKind::Double,
                "byte" => ArrayKind::Byte,
                "short" => ArrayKind::Short,
                "int" => ArrayKind::Int,
                "long" => ArrayKind::Long,
                other => return err(lno, format!("bad array kind `{other}`")),
            };
            done(Operand::ArrayType(kind))
        }
        O::MultiANewArray => {
            need(2)?;
            let class = class_of(rest[0])?;
            let dims: u8 = rest[1]
                .parse()
                .map_err(|_| AsmError { line: lno, message: format!("bad dims `{}`", rest[1]) })?;
            done(Operand::Dims { class, dims })
        }
        O::TableSwitch | O::LookupSwitch => {
            if rest.is_empty() {
                return err(lno, "switch requires arms");
            }
            let mut arms = Vec::new();
            let mut default = None;
            for tok in rest {
                let (k, l) = tok.split_once(":@").ok_or_else(|| AsmError {
                    line: lno,
                    message: format!("bad switch arm `{tok}` (want key:@label)"),
                })?;
                if k == "default" {
                    default = Some(l.to_string());
                } else {
                    let key: i32 = k.parse().map_err(|_| AsmError {
                        line: lno,
                        message: format!("bad switch key `{k}`"),
                    })?;
                    arms.push((key, l.to_string()));
                }
            }
            let default = default
                .ok_or_else(|| AsmError { line: lno, message: "missing default arm".into() })?;
            Ok(RawOperand::Switch(arms, default))
        }
        _ if op.is_branch() => {
            need(1)?;
            let l = rest[0].strip_prefix('@').ok_or_else(|| AsmError {
                line: lno,
                message: format!("branch target must start with `@`, found `{}`", rest[0]),
            })?;
            Ok(RawOperand::Label(l.to_string()))
        }
        _ => {
            need(0)?;
            done(Operand::None)
        }
    }
}

/// Disassembles a program to assembler text that [`assemble`] accepts.
#[must_use]
pub fn disassemble(program: &Program) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for c in program.classes() {
        let _ = writeln!(
            out,
            ".class {} fields={} statics={}",
            c.name, c.instance_fields, c.static_fields
        );
    }
    for (_, m) in program.methods() {
        let _ = writeln!(
            out,
            "\n.method {} args={} returns={} locals={}",
            m.name, m.num_args, m.returns, m.max_locals
        );
        for v in &m.cpool {
            let s = match v {
                Value::Int(x) => format!("int {x}"),
                Value::Long(x) => format!("long {x}"),
                Value::Float(x) => format!("float {x}"),
                Value::Double(x) => format!("double {x}"),
                Value::Ref(_) => "null".to_string(),
                Value::RetAddr(_) => "null".to_string(),
            };
            let _ = writeln!(out, ".const {s}");
        }
        for (addr, insn) in m.iter() {
            let _ = write!(out, "  {}", insn.op.mnemonic());
            match &insn.operand {
                Operand::None => {}
                Operand::Imm(v) => {
                    let _ = write!(out, " {v}");
                }
                Operand::Local(r) => {
                    let _ = write!(out, " {r}");
                }
                Operand::Target(t) => {
                    let _ = write!(out, " @{t}");
                }
                Operand::Cp(i) => {
                    let _ = write!(out, " #{i}");
                }
                Operand::Field(f) => {
                    let _ = write!(out, " {} {}", program.class(f.class).name, f.slot);
                }
                Operand::Call(c) => {
                    let _ = write!(out, " {}", program.method(c.method).name);
                }
                Operand::Inc { local, delta } => {
                    let _ = write!(out, " {local} {delta}");
                }
                Operand::ArrayType(k) => {
                    let s = match k {
                        ArrayKind::Boolean => "boolean",
                        ArrayKind::Char => "char",
                        ArrayKind::Float => "float",
                        ArrayKind::Double => "double",
                        ArrayKind::Byte => "byte",
                        ArrayKind::Short => "short",
                        ArrayKind::Int => "int",
                        ArrayKind::Long => "long",
                    };
                    let _ = write!(out, " {s}");
                }
                Operand::ClassId(c) => {
                    let _ = write!(out, " {}", program.class(*c).name);
                }
                Operand::Switch(t) => {
                    for (k, tgt) in &t.arms {
                        let _ = write!(out, " {k}:@{tgt}");
                    }
                    let _ = write!(out, " default:@{}", t.default);
                }
                Operand::Dims { class, dims } => {
                    let _ = write!(out, " {} {dims}", program.class(*class).name);
                }
            }
            let _ = writeln!(out, " ; @{addr} {}", insn.group().label());
        }
        let _ = writeln!(out, ".end");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
.class Point fields=2 statics=1

.method Point.scale args=2 returns=true locals=3
.const double 2.5
  aload 0
  getfield Point 0
  ldc #0
  dmul
  dreturn
.end

.method Point.loop args=1 returns=false locals=2
top:
  iinc 1 -1
  iload 1
  ifne @top
  invokestatic Point.scale
  pop
  return
.end
";

    #[test]
    fn assembles_sample() {
        let p = assemble(SAMPLE).unwrap();
        assert_eq!(p.num_methods(), 2);
        let (_, scale) = p.method_by_name("Point.scale").unwrap();
        assert_eq!(scale.code.len(), 5);
        assert_eq!(scale.cpool, vec![Value::Double(2.5)]);
        p.validate().unwrap();
    }

    #[test]
    fn call_arity_resolved_from_callee() {
        let p = assemble(SAMPLE).unwrap();
        let (_, lp) = p.method_by_name("Point.loop").unwrap();
        let call = &lp.code[3];
        match &call.operand {
            Operand::Call(c) => {
                assert_eq!(c.argc, 2);
                assert!(c.returns);
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn labels_resolve_backwards() {
        let p = assemble(SAMPLE).unwrap();
        let (_, lp) = p.method_by_name("Point.loop").unwrap();
        assert_eq!(lp.code[2].branch_target(), Some(0));
        assert!(lp.is_back_branch(2));
    }

    #[test]
    fn round_trip() {
        let p = assemble(SAMPLE).unwrap();
        let text = disassemble(&p);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p.num_methods(), p2.num_methods());
        for ((_, a), (_, b)) in p.methods().zip(p2.methods()) {
            assert_eq!(a, b, "round-trip mismatch for {}", a.name);
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble(".method t args=0 returns=false\n  frobnicate\n.end").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn unknown_label_rejected() {
        let e = assemble(".method t args=0 returns=false\n  goto @nowhere\n.end").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn switch_parses() {
        let src = ".method t args=1 returns=false locals=1
  iload 0
  tableswitch 0:@a 1:@b default:@c
a:
  return
b:
  return
c:
  return
.end";
        let p = assemble(src).unwrap();
        let (_, m) = p.method_by_name("t").unwrap();
        match &m.code[1].operand {
            Operand::Switch(t) => {
                assert_eq!(t.arms, vec![(0, 2), (1, 3)]);
                assert_eq!(t.default, 4);
            }
            other => panic!("expected switch, got {other:?}"),
        }
    }
}

//! The Java ByteCode operation codes.
//!
//! Every opcode architected by the Java Virtual Machine specification (and
//! catalogued in Appendix A of the JavaFlow dissertation) is listed here,
//! together with its [`InstructionGroup`] and its *value-semantics* stack
//! effect: the number of values it pops from and pushes onto the operand
//! stack. JavaFlow reasons about whole values rather than 32-bit stack
//! slots, so `ladd` pops two values and pushes one, exactly as in the
//! dissertation's Appendix A tables. (The handful of `dup*` entries whose
//! printed pop/push counts in the dissertation are internally inconsistent
//! use the arithmetically correct value counts here.)
//!
//! Opcodes whose stack effect depends on their operand — the `invoke*`
//! family and `multianewarray` — report `None` from [`Opcode::base_pops`] /
//! [`Opcode::base_pushes`]; the effective counts are computed by
//! [`crate::Insn::pops`] and [`crate::Insn::pushes`] from the operand.

use crate::group::InstructionGroup;

macro_rules! opcodes {
    ($( $variant:ident = ($byte:expr, $mnem:literal, $group:ident, $pop:expr, $push:expr) ),+ $(,)?) => {
        /// A Java ByteCode operation code.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[allow(missing_docs)] // the variants are the JVM mnemonics themselves
        pub enum Opcode {
            $($variant,)+
        }

        impl Opcode {
            /// All opcodes, in JVM numbering order.
            pub const ALL: &'static [Opcode] = &[$(Opcode::$variant,)+];

            /// The JVM encoding byte for this opcode.
            #[must_use]
            pub fn byte(self) -> u8 {
                match self { $(Opcode::$variant => $byte,)+ }
            }

            /// The JVM assembler mnemonic (as printed by `javap`).
            #[must_use]
            pub fn mnemonic(self) -> &'static str {
                match self { $(Opcode::$variant => $mnem,)+ }
            }

            /// Looks an opcode up by its mnemonic.
            #[must_use]
            pub fn from_mnemonic(s: &str) -> Option<Opcode> {
                match s { $($mnem => Some(Opcode::$variant),)+ _ => None }
            }

            /// The instruction group this opcode belongs to (Appendix A).
            #[must_use]
            pub fn group(self) -> InstructionGroup {
                match self { $(Opcode::$variant => InstructionGroup::$group,)+ }
            }

            /// Number of values popped, when fixed for the opcode alone.
            ///
            /// `None` for `invoke*` and `multianewarray`, whose pop count
            /// depends on the call signature / dimension operand.
            #[must_use]
            pub fn base_pops(self) -> Option<u16> {
                match self { $(Opcode::$variant => $pop,)+ }
            }

            /// Number of values pushed, when fixed for the opcode alone.
            #[must_use]
            pub fn base_pushes(self) -> Option<u16> {
                match self { $(Opcode::$variant => $push,)+ }
            }
        }
    };
}

const fn f(n: u16) -> Option<u16> {
    Some(n)
}
const V: Option<u16> = None; // variable; depends on the operand

opcodes! {
    // -- Arithmetic/Move: constants and stack manipulation (Table 31) -----
    Nop         = (0x00, "nop",          Special,   f(0), f(0)),
    AConstNull  = (0x01, "aconst_null",  ArithMove, f(0), f(1)),
    IConstM1    = (0x02, "iconst_m1",    ArithMove, f(0), f(1)),
    IConst0     = (0x03, "iconst_0",     ArithMove, f(0), f(1)),
    IConst1     = (0x04, "iconst_1",     ArithMove, f(0), f(1)),
    IConst2     = (0x05, "iconst_2",     ArithMove, f(0), f(1)),
    IConst3     = (0x06, "iconst_3",     ArithMove, f(0), f(1)),
    IConst4     = (0x07, "iconst_4",     ArithMove, f(0), f(1)),
    IConst5     = (0x08, "iconst_5",     ArithMove, f(0), f(1)),
    LConst0     = (0x09, "lconst_0",     ArithMove, f(0), f(1)),
    LConst1     = (0x0a, "lconst_1",     ArithMove, f(0), f(1)),
    FConst0     = (0x0b, "fconst_0",     ArithMove, f(0), f(1)),
    FConst1     = (0x0c, "fconst_1",     ArithMove, f(0), f(1)),
    FConst2     = (0x0d, "fconst_2",     ArithMove, f(0), f(1)),
    DConst0     = (0x0e, "dconst_0",     ArithMove, f(0), f(1)),
    DConst1     = (0x0f, "dconst_1",     ArithMove, f(0), f(1)),
    BiPush      = (0x10, "bipush",       ArithMove, f(0), f(1)),
    SiPush      = (0x11, "sipush",       ArithMove, f(0), f(1)),
    // -- Memory constant: constant-pool reads (Table 36) ------------------
    Ldc         = (0x12, "ldc",          MemConst,  f(0), f(1)),
    LdcW        = (0x13, "ldc_w",        MemConst,  f(0), f(1)),
    Ldc2W       = (0x14, "ldc2_w",       MemConst,  f(0), f(1)),
    // -- Local reads (Table 39) --------------------------------------------
    ILoad       = (0x15, "iload",        LocalRead, f(0), f(1)),
    LLoad       = (0x16, "lload",        LocalRead, f(0), f(1)),
    FLoad       = (0x17, "fload",        LocalRead, f(0), f(1)),
    DLoad       = (0x18, "dload",        LocalRead, f(0), f(1)),
    ALoad       = (0x19, "aload",        LocalRead, f(0), f(1)),
    ILoad0      = (0x1a, "iload_0",      LocalRead, f(0), f(1)),
    ILoad1      = (0x1b, "iload_1",      LocalRead, f(0), f(1)),
    ILoad2      = (0x1c, "iload_2",      LocalRead, f(0), f(1)),
    ILoad3      = (0x1d, "iload_3",      LocalRead, f(0), f(1)),
    LLoad0      = (0x1e, "lload_0",      LocalRead, f(0), f(1)),
    LLoad1      = (0x1f, "lload_1",      LocalRead, f(0), f(1)),
    LLoad2      = (0x20, "lload_2",      LocalRead, f(0), f(1)),
    LLoad3      = (0x21, "lload_3",      LocalRead, f(0), f(1)),
    FLoad0      = (0x22, "fload_0",      LocalRead, f(0), f(1)),
    FLoad1      = (0x23, "fload_1",      LocalRead, f(0), f(1)),
    FLoad2      = (0x24, "fload_2",      LocalRead, f(0), f(1)),
    FLoad3      = (0x25, "fload_3",      LocalRead, f(0), f(1)),
    DLoad0      = (0x26, "dload_0",      LocalRead, f(0), f(1)),
    DLoad1      = (0x27, "dload_1",      LocalRead, f(0), f(1)),
    DLoad2      = (0x28, "dload_2",      LocalRead, f(0), f(1)),
    DLoad3      = (0x29, "dload_3",      LocalRead, f(0), f(1)),
    ALoad0      = (0x2a, "aload_0",      LocalRead, f(0), f(1)),
    ALoad1      = (0x2b, "aload_1",      LocalRead, f(0), f(1)),
    ALoad2      = (0x2c, "aload_2",      LocalRead, f(0), f(1)),
    ALoad3      = (0x2d, "aload_3",      LocalRead, f(0), f(1)),
    // -- Memory reads: array loads (Table 37) ------------------------------
    IALoad      = (0x2e, "iaload",       MemRead,   f(2), f(1)),
    LALoad      = (0x2f, "laload",       MemRead,   f(2), f(1)),
    FALoad      = (0x30, "faload",       MemRead,   f(2), f(1)),
    DALoad      = (0x31, "daload",       MemRead,   f(2), f(1)),
    AALoad      = (0x32, "aaload",       MemRead,   f(2), f(1)),
    BALoad      = (0x33, "baload",       MemRead,   f(2), f(1)),
    CALoad      = (0x34, "caload",       MemRead,   f(2), f(1)),
    SALoad      = (0x35, "saload",       MemRead,   f(2), f(1)),
    // -- Local writes (Table 40) -------------------------------------------
    IStore      = (0x36, "istore",       LocalWrite, f(1), f(0)),
    LStore      = (0x37, "lstore",       LocalWrite, f(1), f(0)),
    FStore      = (0x38, "fstore",       LocalWrite, f(1), f(0)),
    DStore      = (0x39, "dstore",       LocalWrite, f(1), f(0)),
    AStore      = (0x3a, "astore",       LocalWrite, f(1), f(0)),
    IStore0     = (0x3b, "istore_0",     LocalWrite, f(1), f(0)),
    IStore1     = (0x3c, "istore_1",     LocalWrite, f(1), f(0)),
    IStore2     = (0x3d, "istore_2",     LocalWrite, f(1), f(0)),
    IStore3     = (0x3e, "istore_3",     LocalWrite, f(1), f(0)),
    LStore0     = (0x3f, "lstore_0",     LocalWrite, f(1), f(0)),
    LStore1     = (0x40, "lstore_1",     LocalWrite, f(1), f(0)),
    LStore2     = (0x41, "lstore_2",     LocalWrite, f(1), f(0)),
    LStore3     = (0x42, "lstore_3",     LocalWrite, f(1), f(0)),
    FStore0     = (0x43, "fstore_0",     LocalWrite, f(1), f(0)),
    FStore1     = (0x44, "fstore_1",     LocalWrite, f(1), f(0)),
    FStore2     = (0x45, "fstore_2",     LocalWrite, f(1), f(0)),
    FStore3     = (0x46, "fstore_3",     LocalWrite, f(1), f(0)),
    DStore0     = (0x47, "dstore_0",     LocalWrite, f(1), f(0)),
    DStore1     = (0x48, "dstore_1",     LocalWrite, f(1), f(0)),
    DStore2     = (0x49, "dstore_2",     LocalWrite, f(1), f(0)),
    DStore3     = (0x4a, "dstore_3",     LocalWrite, f(1), f(0)),
    AStore0     = (0x4b, "astore_0",     LocalWrite, f(1), f(0)),
    AStore1     = (0x4c, "astore_1",     LocalWrite, f(1), f(0)),
    AStore2     = (0x4d, "astore_2",     LocalWrite, f(1), f(0)),
    AStore3     = (0x4e, "astore_3",     LocalWrite, f(1), f(0)),
    // -- Memory writes: array stores (Table 38) ----------------------------
    IAStore     = (0x4f, "iastore",      MemWrite,  f(3), f(0)),
    LAStore     = (0x50, "lastore",      MemWrite,  f(3), f(0)),
    FAStore     = (0x51, "fastore",      MemWrite,  f(3), f(0)),
    DAStore     = (0x52, "dastore",      MemWrite,  f(3), f(0)),
    AAStore     = (0x53, "aastore",      MemWrite,  f(3), f(0)),
    BAStore     = (0x54, "bastore",      MemWrite,  f(3), f(0)),
    CAStore     = (0x55, "castore",      MemWrite,  f(3), f(0)),
    SAStore     = (0x56, "sastore",      MemWrite,  f(3), f(0)),
    // -- More Arithmetic/Move: stack shuffles (Table 31) -------------------
    Pop         = (0x57, "pop",          ArithMove, f(1), f(0)),
    Pop2        = (0x58, "pop2",         ArithMove, f(2), f(0)),
    Dup         = (0x59, "dup",          ArithMove, f(1), f(2)),
    DupX1       = (0x5a, "dup_x1",       ArithMove, f(2), f(3)),
    DupX2       = (0x5b, "dup_x2",       ArithMove, f(3), f(4)),
    Dup2        = (0x5c, "dup2",         ArithMove, f(2), f(4)),
    Dup2X1      = (0x5d, "dup2_x1",      ArithMove, f(3), f(5)),
    Dup2X2      = (0x5e, "dup2_x2",      ArithMove, f(4), f(6)),
    Swap        = (0x5f, "swap",         ArithMove, f(2), f(2)),
    // -- Integer arithmetic (Table 30) + float arithmetic (Table 32) -------
    IAdd        = (0x60, "iadd",         ArithInteger, f(2), f(1)),
    LAdd        = (0x61, "ladd",         ArithInteger, f(2), f(1)),
    FAdd        = (0x62, "fadd",         FloatArith,   f(2), f(1)),
    DAdd        = (0x63, "dadd",         FloatArith,   f(2), f(1)),
    ISub        = (0x64, "isub",         ArithInteger, f(2), f(1)),
    LSub        = (0x65, "lsub",         ArithInteger, f(2), f(1)),
    FSub        = (0x66, "fsub",         FloatArith,   f(2), f(1)),
    DSub        = (0x67, "dsub",         FloatArith,   f(2), f(1)),
    IMul        = (0x68, "imul",         ArithInteger, f(2), f(1)),
    LMul        = (0x69, "lmul",         ArithInteger, f(2), f(1)),
    FMul        = (0x6a, "fmul",         FloatArith,   f(2), f(1)),
    DMul        = (0x6b, "dmul",         FloatArith,   f(2), f(1)),
    IDiv        = (0x6c, "idiv",         ArithInteger, f(2), f(1)),
    LDiv        = (0x6d, "ldiv",         FloatArith,   f(2), f(1)),
    FDiv        = (0x6e, "fdiv",         FloatArith,   f(2), f(1)),
    DDiv        = (0x6f, "ddiv",         FloatArith,   f(2), f(1)),
    IRem        = (0x70, "irem",         ArithInteger, f(2), f(1)),
    LRem        = (0x71, "lrem",         ArithInteger, f(2), f(1)),
    FRem        = (0x72, "frem",         FloatArith,   f(2), f(1)),
    DRem        = (0x73, "drem",         FloatArith,   f(2), f(1)),
    INeg        = (0x74, "ineg",         ArithInteger, f(1), f(1)),
    LNeg        = (0x75, "lneg",         ArithInteger, f(1), f(1)),
    FNeg        = (0x76, "fneg",         FloatArith,   f(1), f(1)),
    DNeg        = (0x77, "dneg",         FloatArith,   f(1), f(1)),
    IShl        = (0x78, "ishl",         ArithInteger, f(2), f(1)),
    LShl        = (0x79, "lshl",         ArithInteger, f(2), f(1)),
    IShr        = (0x7a, "ishr",         ArithInteger, f(2), f(1)),
    LShr        = (0x7b, "lshr",         ArithInteger, f(2), f(1)),
    IUShr       = (0x7c, "iushr",        ArithInteger, f(2), f(1)),
    LUShr       = (0x7d, "lushr",        ArithInteger, f(2), f(1)),
    IAnd        = (0x7e, "iand",         ArithInteger, f(2), f(1)),
    LAnd        = (0x7f, "land",         ArithInteger, f(2), f(1)),
    IOr         = (0x80, "ior",          ArithInteger, f(2), f(1)),
    LOr         = (0x81, "lor",          ArithInteger, f(2), f(1)),
    IXor        = (0x82, "ixor",         ArithInteger, f(2), f(1)),
    LXor        = (0x83, "lxor",         ArithInteger, f(2), f(1)),
    // -- Local increment (Table 39) -----------------------------------------
    IInc        = (0x84, "iinc",         LocalInc,  f(0), f(0)),
    // -- Conversions (Table 29) ---------------------------------------------
    I2L         = (0x85, "i2l",          FloatConversion, f(1), f(1)),
    I2F         = (0x86, "i2f",          FloatConversion, f(1), f(1)),
    I2D         = (0x87, "i2d",          FloatConversion, f(1), f(1)),
    L2I         = (0x88, "l2i",          FloatConversion, f(1), f(1)),
    L2F         = (0x89, "l2f",          FloatConversion, f(1), f(1)),
    L2D         = (0x8a, "l2d",          FloatConversion, f(1), f(1)),
    F2I         = (0x8b, "f2i",          FloatConversion, f(1), f(1)),
    F2L         = (0x8c, "f2l",          FloatConversion, f(1), f(1)),
    F2D         = (0x8d, "f2d",          FloatConversion, f(1), f(1)),
    D2I         = (0x8e, "d2i",          FloatConversion, f(1), f(1)),
    D2L         = (0x8f, "d2l",          FloatConversion, f(1), f(1)),
    D2F         = (0x90, "d2f",          FloatConversion, f(1), f(1)),
    I2B         = (0x91, "i2b",          FloatConversion, f(1), f(1)),
    I2C         = (0x92, "i2c",          FloatConversion, f(1), f(1)),
    I2S         = (0x93, "i2s",          FloatConversion, f(1), f(1)),
    // -- Comparisons producing an int (Table 32) ----------------------------
    LCmp        = (0x94, "lcmp",         FloatArith, f(2), f(1)),
    FCmpL       = (0x95, "fcmpl",        FloatArith, f(2), f(1)),
    FCmpG       = (0x96, "fcmpg",        FloatArith, f(2), f(1)),
    DCmpL       = (0x97, "dcmpl",        FloatArith, f(2), f(1)),
    DCmpG       = (0x98, "dcmpg",        FloatArith, f(2), f(1)),
    // -- Control flow (Table 33) --------------------------------------------
    IfEq        = (0x99, "ifeq",         ControlFlow, f(1), f(0)),
    IfNe        = (0x9a, "ifne",         ControlFlow, f(1), f(0)),
    IfLt        = (0x9b, "iflt",         ControlFlow, f(1), f(0)),
    IfGe        = (0x9c, "ifge",         ControlFlow, f(1), f(0)),
    IfGt        = (0x9d, "ifgt",         ControlFlow, f(1), f(0)),
    IfLe        = (0x9e, "ifle",         ControlFlow, f(1), f(0)),
    IfICmpEq    = (0x9f, "if_icmpeq",    ControlFlow, f(2), f(0)),
    IfICmpNe    = (0xa0, "if_icmpne",    ControlFlow, f(2), f(0)),
    IfICmpLt    = (0xa1, "if_icmplt",    ControlFlow, f(2), f(0)),
    IfICmpGe    = (0xa2, "if_icmpge",    ControlFlow, f(2), f(0)),
    IfICmpGt    = (0xa3, "if_icmpgt",    ControlFlow, f(2), f(0)),
    IfICmpLe    = (0xa4, "if_icmple",    ControlFlow, f(2), f(0)),
    IfACmpEq    = (0xa5, "if_acmpeq",    ControlFlow, f(2), f(0)),
    IfACmpNe    = (0xa6, "if_acmpne",    ControlFlow, f(2), f(0)),
    Goto        = (0xa7, "goto",         ControlFlow, f(0), f(0)),
    Jsr         = (0xa8, "jsr",          Special,     f(0), f(1)),
    Ret         = (0xa9, "ret",          Special,     f(0), f(0)),
    TableSwitch = (0xaa, "tableswitch",  Special,     f(1), f(0)),
    LookupSwitch= (0xab, "lookupswitch", Special,     f(1), f(0)),
    // -- Returns (Table 35) -------------------------------------------------
    IReturn     = (0xac, "ireturn",      Return,    f(1), f(0)),
    LReturn     = (0xad, "lreturn",      Return,    f(1), f(0)),
    FReturn     = (0xae, "freturn",      Return,    f(1), f(0)),
    DReturn     = (0xaf, "dreturn",      Return,    f(1), f(0)),
    AReturn     = (0xb0, "areturn",      Return,    f(1), f(0)),
    ReturnVoid  = (0xb1, "return",       Return,    f(0), f(0)),
    // -- Field access (Tables 37/38) ----------------------------------------
    GetStatic   = (0xb2, "getstatic",    MemRead,   f(0), f(1)),
    PutStatic   = (0xb3, "putstatic",    MemWrite,  f(1), f(0)),
    GetField    = (0xb4, "getfield",     MemRead,   f(1), f(1)),
    PutField    = (0xb5, "putfield",     MemWrite,  f(2), f(0)),
    // -- Calls (Table 34): stack effect depends on the signature ------------
    InvokeVirtual   = (0xb6, "invokevirtual",   Call, V, V),
    InvokeSpecial   = (0xb7, "invokespecial",   Call, V, V),
    InvokeStatic    = (0xb8, "invokestatic",    Call, V, V),
    InvokeInterface = (0xb9, "invokeinterface", Call, V, V),
    InvokeDynamic   = (0xba, "invokedynamic",   Call, V, V),
    // -- Object / service operations (Table 41) -----------------------------
    New             = (0xbb, "new",           Special, f(0), f(1)),
    NewArray        = (0xbc, "newarray",      Special, f(1), f(1)),
    ANewArray       = (0xbd, "anewarray",     Special, f(1), f(1)),
    ArrayLength     = (0xbe, "arraylength",   Special, f(1), f(1)),
    AThrow          = (0xbf, "athrow",        Return,  f(1), f(0)),
    CheckCast       = (0xc0, "checkcast",     Special, f(1), f(1)),
    InstanceOf      = (0xc1, "instanceof",    Special, f(1), f(1)),
    MonitorEnter    = (0xc2, "monitorenter",  Special, f(1), f(0)),
    MonitorExit     = (0xc3, "monitorexit",   Special, f(1), f(0)),
    Wide            = (0xc4, "wide",          Special, f(0), f(0)),
    MultiANewArray  = (0xc5, "multianewarray", Special, V, f(1)),
    IfNull          = (0xc6, "ifnull",        ControlFlow, f(1), f(0)),
    IfNonNull       = (0xc7, "ifnonnull",     ControlFlow, f(1), f(0)),
    GotoW           = (0xc8, "goto_w",        ControlFlow, f(0), f(0)),
    JsrW            = (0xc9, "jsr_w",         Special,     f(0), f(1)),
}

impl Opcode {
    /// Whether this opcode transfers control non-sequentially when taken.
    #[must_use]
    pub fn is_branch(self) -> bool {
        matches!(self.group(), InstructionGroup::ControlFlow)
            || matches!(
                self,
                Opcode::Jsr | Opcode::JsrW | Opcode::TableSwitch | Opcode::LookupSwitch
            )
    }

    /// Whether this opcode is an *unconditional* branch (`goto`/`goto_w`).
    #[must_use]
    pub fn is_goto(self) -> bool {
        matches!(self, Opcode::Goto | Opcode::GotoW)
    }

    /// Whether this opcode is a conditional jump (`if*`).
    #[must_use]
    pub fn is_conditional(self) -> bool {
        self.group() == InstructionGroup::ControlFlow && !self.is_goto()
    }

    /// Whether this opcode ends the current method (returns or `athrow`).
    #[must_use]
    pub fn is_return(self) -> bool {
        self.group() == InstructionGroup::Return
    }

    /// Whether the opcode performs an *ordered* memory access (heap or
    /// class data) that participates in `MEMORY_TOKEN` ordering.
    ///
    /// Constant-pool reads (`ldc*`) are unordered: the constant pool is
    /// loaded before execution and never written (Section 6.3).
    #[must_use]
    pub fn is_ordered_memory(self) -> bool {
        matches!(self.group(), InstructionGroup::MemRead | InstructionGroup::MemWrite)
    }
}

impl std::fmt::Display for Opcode {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_are_unique_and_ordered() {
        let mut prev: i32 = -1;
        for op in Opcode::ALL {
            let b = i32::from(op.byte());
            assert!(b > prev, "{op} byte 0x{b:02x} out of order");
            prev = b;
        }
        assert_eq!(Opcode::ALL.len(), 0xca);
    }

    #[test]
    fn mnemonic_round_trip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(*op));
        }
        assert_eq!(Opcode::from_mnemonic("frobnicate"), None);
    }

    #[test]
    fn variable_stack_effects_are_calls_or_multianewarray() {
        for op in Opcode::ALL {
            if op.base_pops().is_none() {
                assert!(
                    op.group() == InstructionGroup::Call || *op == Opcode::MultiANewArray,
                    "{op} unexpectedly variable"
                );
            }
        }
    }

    #[test]
    fn branch_classification() {
        assert!(Opcode::Goto.is_branch());
        assert!(Opcode::Goto.is_goto());
        assert!(!Opcode::Goto.is_conditional());
        assert!(Opcode::IfICmpLt.is_conditional());
        assert!(Opcode::TableSwitch.is_branch());
        assert!(!Opcode::IAdd.is_branch());
        assert!(Opcode::AThrow.is_return());
        assert!(Opcode::ReturnVoid.is_return());
    }

    #[test]
    fn ordered_memory_excludes_constant_pool() {
        assert!(Opcode::GetField.is_ordered_memory());
        assert!(Opcode::IAStore.is_ordered_memory());
        assert!(!Opcode::Ldc.is_ordered_memory());
        assert!(!Opcode::IAdd.is_ordered_memory());
    }
}

//! Control-flow structure: basic blocks and branch statistics.
//!
//! Backwards branches (loops) require special handling in the fabric — the
//! serial token bundle stalls and re-enters via the reverse network — so the
//! number and length of back branches is a first-order performance input
//! (Tables 7, 13, 14).

use crate::{Method, Opcode};

/// One basic block: a maximal straight-line instruction range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasicBlock {
    /// First linear address in the block.
    pub start: u32,
    /// One past the last linear address in the block.
    pub end: u32,
}

impl BasicBlock {
    /// Number of instructions in the block.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the block is empty (never true for built CFGs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Summary of a single explicit control-flow jump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Jump {
    /// Address of the jumping instruction.
    pub from: u32,
    /// Taken-path target address.
    pub to: u32,
    /// Whether the jump is conditional.
    pub conditional: bool,
}

impl Jump {
    /// Whether the jump goes backwards (a loop edge).
    #[must_use]
    pub fn is_back(&self) -> bool {
        self.to <= self.from
    }

    /// Linear jump length `|to − from|`.
    #[must_use]
    pub fn length(&self) -> u32 {
        self.to.abs_diff(self.from)
    }
}

/// The control-flow graph of a method.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks, ordered by start address.
    pub blocks: Vec<BasicBlock>,
    /// All explicit jumps (conditionals, gotos, switch arms).
    pub jumps: Vec<Jump>,
}

impl Cfg {
    /// Builds the CFG of a method.
    #[must_use]
    pub fn build(method: &Method) -> Cfg {
        let n = method.code.len() as u32;
        let mut leaders = vec![false; n as usize];
        if n > 0 {
            leaders[0] = true;
        }
        let mut jumps = Vec::new();
        for (addr, insn) in method.iter() {
            let mut mark = |t: u32| {
                if t < n {
                    leaders[t as usize] = true;
                }
            };
            if insn.op.is_branch() || insn.op.is_return() || matches!(insn.op, Opcode::Ret) {
                mark(addr + 1);
            }
            if let Some(t) = insn.branch_target() {
                mark(t);
                if insn.op.is_branch() {
                    jumps.push(Jump { from: addr, to: t, conditional: insn.op.is_conditional() });
                }
            }
            for t in insn.switch_targets() {
                mark(t);
                jumps.push(Jump { from: addr, to: t, conditional: true });
            }
        }
        let mut blocks = Vec::new();
        let mut start = 0u32;
        for addr in 1..n {
            if leaders[addr as usize] {
                blocks.push(BasicBlock { start, end: addr });
                start = addr;
            }
        }
        if n > 0 {
            blocks.push(BasicBlock { start, end: n });
        }
        Cfg { blocks, jumps }
    }

    /// Forward jumps (Table 13).
    pub fn forward_jumps(&self) -> impl Iterator<Item = &Jump> {
        self.jumps.iter().filter(|j| !j.is_back())
    }

    /// Backward jumps (Table 14).
    pub fn back_jumps(&self) -> impl Iterator<Item = &Jump> {
        self.jumps.iter().filter(|j| j.is_back())
    }

    /// `(count, average length, max length)` over an iterator of jumps.
    fn jump_stats<'a>(jumps: impl Iterator<Item = &'a Jump>) -> (usize, f64, u32) {
        let mut count = 0usize;
        let mut sum = 0u64;
        let mut max = 0u32;
        for j in jumps {
            count += 1;
            sum += u64::from(j.length());
            max = max.max(j.length());
        }
        let avg = if count == 0 { 0.0 } else { sum as f64 / count as f64 };
        (count, avg, max)
    }

    /// `(count, average length, max length)` of forward jumps.
    #[must_use]
    pub fn forward_jump_stats(&self) -> (usize, f64, u32) {
        Cfg::jump_stats(self.forward_jumps())
    }

    /// `(count, average length, max length)` of backward jumps.
    #[must_use]
    pub fn back_jump_stats(&self) -> (usize, f64, u32) {
        Cfg::jump_stats(self.back_jumps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Insn, Operand};

    fn looped() -> Method {
        let mut m = Method::new("t", 1, false);
        m.code = vec![
            Insn::new(Opcode::ILoad, Operand::Local(0)), // 0
            Insn::new(Opcode::IfEq, Operand::Target(5)), // 1 fwd cond
            Insn::new(Opcode::IInc, Operand::Inc { local: 0, delta: -1 }), // 2
            Insn::new(Opcode::ILoad, Operand::Local(0)), // 3
            Insn::new(Opcode::IfNe, Operand::Target(2)), // 4 back cond
            Insn::simple(Opcode::ReturnVoid),            // 5
        ];
        m
    }

    #[test]
    fn blocks_split_at_branches_and_targets() {
        let cfg = Cfg::build(&looped());
        let starts: Vec<u32> = cfg.blocks.iter().map(|b| b.start).collect();
        assert_eq!(starts, vec![0, 2, 5]);
        assert_eq!(cfg.blocks.iter().map(BasicBlock::len).sum::<u32>(), 6);
        assert!(cfg.blocks.iter().all(|b| !b.is_empty()));
    }

    #[test]
    fn jump_direction_classified() {
        let cfg = Cfg::build(&looped());
        let (fc, favg, fmax) = cfg.forward_jump_stats();
        let (bc, bavg, bmax) = cfg.back_jump_stats();
        assert_eq!((fc, fmax), (1, 4));
        assert!((favg - 4.0).abs() < 1e-9);
        assert_eq!((bc, bmax), (1, 2));
        assert!((bavg - 2.0).abs() < 1e-9);
    }

    #[test]
    fn straight_line_single_block() {
        let mut m = Method::new("t", 0, false);
        m.code = vec![Insn::simple(Opcode::Nop), Insn::simple(Opcode::ReturnVoid)];
        let cfg = Cfg::build(&m);
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.jumps.is_empty());
    }
}

//! Runtime values and the JavaFlow datatype tags.
//!
//! Java is strongly typed (Figure 8 / Figure 15): every datum carried on the
//! serial or mesh networks is tagged with its type so that mismatches can
//! raise exceptions instead of corrupting state.

/// A strongly typed JVM value.
///
/// JavaFlow reasons in whole values: `long` and `double` are single values
/// here, matching the dissertation's Appendix A pop/push accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 32-bit signed integer (also carries boolean/byte/char/short).
    Int(i32),
    /// 64-bit signed integer.
    Long(i64),
    /// 32-bit IEEE float.
    Float(f32),
    /// 64-bit IEEE double.
    Double(f64),
    /// Object/array reference: a heap handle, or `None` for `null`.
    Ref(Option<u32>),
    /// A `jsr` return address (linear instruction index).
    RetAddr(u32),
}

/// The network type tag for a value (Figure 15 `JavaFlow DataTypes`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// `int` family.
    Int,
    /// `long`.
    Long,
    /// `float`.
    Float,
    /// `double`.
    Double,
    /// Object or array reference.
    Reference,
    /// Subroutine return address.
    ReturnAddress,
}

impl Value {
    /// A null reference.
    pub const NULL: Value = Value::Ref(None);

    /// The network type tag for this value.
    #[must_use]
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Long(_) => DataType::Long,
            Value::Float(_) => DataType::Float,
            Value::Double(_) => DataType::Double,
            Value::Ref(_) => DataType::Reference,
            Value::RetAddr(_) => DataType::ReturnAddress,
        }
    }

    /// Extracts an `int`, or `None` if the value is not an `Int`.
    #[must_use]
    pub fn as_int(&self) -> Option<i32> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a `long`.
    #[must_use]
    pub fn as_long(&self) -> Option<i64> {
        match self {
            Value::Long(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a `float`.
    #[must_use]
    pub fn as_float(&self) -> Option<f32> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a `double`.
    #[must_use]
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a reference handle (`Some(None)` is a present-but-null ref).
    #[must_use]
    pub fn as_ref_handle(&self) -> Option<Option<u32>> {
        match self {
            Value::Ref(h) => Some(*h),
            _ => None,
        }
    }

    /// Whether the value is the default zero of its type.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        match self {
            Value::Int(v) => *v == 0,
            Value::Long(v) => *v == 0,
            Value::Float(v) => *v == 0.0,
            Value::Double(v) => *v == 0.0,
            Value::Ref(h) => h.is_none(),
            Value::RetAddr(_) => false,
        }
    }

    /// Bit-exact equality (distinguishes NaNs; used by tests comparing the
    /// interpreter golden model against fabric execution).
    #[must_use]
    pub fn bits_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Long(a), Value::Long(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Double(a), Value::Double(b)) => a.to_bits() == b.to_bits(),
            (Value::Ref(a), Value::Ref(b)) => a == b,
            (Value::RetAddr(a), Value::RetAddr(b)) => a == b,
            _ => false,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(v) => write!(fm, "{v}"),
            Value::Long(v) => write!(fm, "{v}L"),
            Value::Float(v) => write!(fm, "{v}f"),
            Value::Double(v) => write!(fm, "{v}d"),
            Value::Ref(None) => write!(fm, "null"),
            Value::Ref(Some(h)) => write!(fm, "ref#{h}"),
            Value::RetAddr(a) => write!(fm, "ret@{a}"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Long(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_tags() {
        assert_eq!(Value::Int(3).data_type(), DataType::Int);
        assert_eq!(Value::Double(1.0).data_type(), DataType::Double);
        assert_eq!(Value::NULL.data_type(), DataType::Reference);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_long(), None);
        assert_eq!(Value::Long(9).as_long(), Some(9));
        assert_eq!(Value::Ref(Some(4)).as_ref_handle(), Some(Some(4)));
        assert_eq!(Value::NULL.as_ref_handle(), Some(None));
    }

    #[test]
    fn zero_detection() {
        assert!(Value::Int(0).is_zero());
        assert!(Value::NULL.is_zero());
        assert!(!Value::Int(1).is_zero());
        assert!(!Value::RetAddr(0).is_zero());
    }

    #[test]
    fn bit_equality_distinguishes_nan_payloads() {
        let a = Value::Float(f32::NAN);
        let b = Value::Float(f32::from_bits(f32::NAN.to_bits() ^ 1));
        assert!(!a.bits_eq(&b));
        assert!(a.bits_eq(&Value::Float(f32::NAN)));
        assert!(!Value::Int(1).bits_eq(&Value::Long(1)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::NULL.to_string(), "null");
        assert_eq!(Value::Long(5).to_string(), "5L");
    }
}

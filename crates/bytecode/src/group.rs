//! Instruction groups and DataFlow-fabric node kinds.
//!
//! Appendix A of the dissertation partitions the ByteCode instruction set
//! into groups whose processing in the fabric is similar; Chapter 5's static
//! mix then collapses those groups into the four *node kinds* used to build
//! heterogeneous fabrics (6 arithmetic : 1 floating-point : 2 storage :
//! 1 control per 10 nodes, Figure 26).

/// The Appendix A instruction group of an opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InstructionGroup {
    /// Integer/long arithmetic and logical operations (Table 30).
    ArithInteger,
    /// Constants, immediate pushes, and stack shuffles (Table 31).
    ArithMove,
    /// Floating-point arithmetic and long/float/double comparisons (Table 32).
    FloatArith,
    /// Numeric conversions (Table 29).
    FloatConversion,
    /// Conditional and unconditional jumps (Table 33).
    ControlFlow,
    /// Method invocations (Table 34).
    Call,
    /// Method returns and `athrow` (Table 35).
    Return,
    /// Unordered constant-pool reads (Table 36).
    MemConst,
    /// Ordered heap / class-data reads (Table 37).
    MemRead,
    /// Ordered heap / class-data writes (Table 38).
    MemWrite,
    /// Local-variable (register) reads (Table 39).
    LocalRead,
    /// Local-variable (register) writes (Table 40).
    LocalWrite,
    /// The `iinc` register increment.
    LocalInc,
    /// Object/service operations delegated to the GPP (Table 41).
    Special,
}

impl InstructionGroup {
    /// All groups.
    pub const ALL: &'static [InstructionGroup] = &[
        InstructionGroup::ArithInteger,
        InstructionGroup::ArithMove,
        InstructionGroup::FloatArith,
        InstructionGroup::FloatConversion,
        InstructionGroup::ControlFlow,
        InstructionGroup::Call,
        InstructionGroup::Return,
        InstructionGroup::MemConst,
        InstructionGroup::MemRead,
        InstructionGroup::MemWrite,
        InstructionGroup::LocalRead,
        InstructionGroup::LocalWrite,
        InstructionGroup::LocalInc,
        InstructionGroup::Special,
    ];

    /// A short human-readable label, used in table output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            InstructionGroup::ArithInteger => "arith-int",
            InstructionGroup::ArithMove => "arith-move",
            InstructionGroup::FloatArith => "float-arith",
            InstructionGroup::FloatConversion => "float-conv",
            InstructionGroup::ControlFlow => "control",
            InstructionGroup::Call => "call",
            InstructionGroup::Return => "return",
            InstructionGroup::MemConst => "mem-const",
            InstructionGroup::MemRead => "mem-read",
            InstructionGroup::MemWrite => "mem-write",
            InstructionGroup::LocalRead => "local-read",
            InstructionGroup::LocalWrite => "local-write",
            InstructionGroup::LocalInc => "local-inc",
            InstructionGroup::Special => "special",
        }
    }

    /// The heterogeneous-fabric node kind able to execute this group.
    #[must_use]
    pub fn node_kind(self) -> NodeKind {
        match self {
            InstructionGroup::FloatArith | InstructionGroup::FloatConversion => NodeKind::Float,
            InstructionGroup::MemConst | InstructionGroup::MemRead | InstructionGroup::MemWrite => {
                NodeKind::Storage
            }
            InstructionGroup::ControlFlow | InstructionGroup::Call | InstructionGroup::Return => {
                NodeKind::Control
            }
            InstructionGroup::ArithInteger
            | InstructionGroup::ArithMove
            | InstructionGroup::LocalRead
            | InstructionGroup::LocalWrite
            | InstructionGroup::LocalInc
            | InstructionGroup::Special => NodeKind::Arith,
        }
    }
}

impl std::fmt::Display for InstructionGroup {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.write_str(self.label())
    }
}

/// The four kinds of Instruction Node in a heterogeneous DataFlow fabric
/// (Chapter 5 static-mix conclusion: 60% arithmetic, 10% floating point,
/// 20% storage, 10% control).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeKind {
    /// Integer arithmetic, logical, move, and register operations.
    Arith,
    /// Floating-point arithmetic and conversions.
    Float,
    /// Memory (heap, class data, constant pool) access; on the storage ring.
    Storage,
    /// Control flow, calls, and returns.
    Control,
}

impl NodeKind {
    /// All node kinds.
    pub const ALL: &'static [NodeKind] =
        &[NodeKind::Arith, NodeKind::Float, NodeKind::Storage, NodeKind::Control];

    /// Short label used in table output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            NodeKind::Arith => "arith",
            NodeKind::Float => "float",
            NodeKind::Storage => "storage",
            NodeKind::Control => "control",
        }
    }
}

impl std::fmt::Display for NodeKind {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Opcode;

    #[test]
    fn every_group_maps_to_a_node_kind() {
        for g in InstructionGroup::ALL {
            let _ = g.node_kind();
            assert!(!g.label().is_empty());
        }
    }

    #[test]
    fn float_ops_need_float_nodes() {
        assert_eq!(Opcode::DMul.group().node_kind(), NodeKind::Float);
        assert_eq!(Opcode::I2D.group().node_kind(), NodeKind::Float);
        assert_eq!(Opcode::IMul.group().node_kind(), NodeKind::Arith);
        assert_eq!(Opcode::GetField.group().node_kind(), NodeKind::Storage);
        assert_eq!(Opcode::Goto.group().node_kind(), NodeKind::Control);
        assert_eq!(Opcode::InvokeStatic.group().node_kind(), NodeKind::Control);
    }
}

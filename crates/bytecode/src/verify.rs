//! ByteCode verification and static dataflow analysis.
//!
//! The JVM requires that "every instruction must have the same stack
//! configuration from any entry point" (Section 3.6, Figure 9). The verifier
//! enforces this by abstract interpretation over the control-flow graph,
//! tracking for every stack slot both its [`crate::DataType`] and the set of
//! *producer* linear addresses that may have pushed it.
//!
//! The producer sets are exactly the dataflow arcs the fabric's distributed
//! address-resolution protocol discovers at load time (Section 6.2), so the
//! verifier doubles as the golden model for
//! `javaflow_fabric::resolve` — a consumer side with more than one producer
//! is a *DataFlow merge*, and a producer whose linear address is greater
//! than its consumer's would be a *back merge* (never produced by a valid
//! Java compiler; Table 7 reports zero).

use std::collections::BTreeSet;

use crate::{DataType, Insn, InstructionGroup, Method, Opcode, Operand};

/// One dataflow arc: `producer` pushes the value that `consumer` pops as
/// operand number `side` (1-based, 1 = deepest operand, matching the
/// dissertation's "side" numbering in Figure 22).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DfEdge {
    /// Linear address of the producing instruction.
    pub producer: u32,
    /// Linear address of the consuming instruction.
    pub consumer: u32,
    /// Which operand side of the consumer this arc feeds (1-based).
    pub side: u16,
}

impl DfEdge {
    /// The linear arc length `|consumer − producer|` (Table 10).
    #[must_use]
    pub fn arc_len(&self) -> u32 {
        self.consumer.abs_diff(self.producer)
    }

    /// Whether the producer sits *below* the consumer in linear order — a
    /// back merge, which valid javac output never creates.
    #[must_use]
    pub fn is_back(&self) -> bool {
        self.producer > self.consumer
    }
}

/// Result of verifying a method.
#[derive(Debug, Clone)]
pub struct VerifiedMethod {
    /// Maximum operand-stack depth over all reachable instructions.
    pub max_stack: u16,
    /// Stack depth on entry to each instruction (`u16::MAX` = unreachable).
    pub depth_in: Vec<u16>,
    /// All dataflow arcs, sorted.
    pub edges: Vec<DfEdge>,
    /// Number of consumer sides fed by more than one producer (merges).
    pub merges: usize,
    /// Number of back-merge arcs (expected to be zero for javac output).
    pub back_merges: usize,
    /// Number of reachable instructions.
    pub reachable: usize,
}

impl VerifiedMethod {
    /// Per-producer fanout: how many `(consumer, side)` sinks each pushing
    /// instruction feeds. Only producers with at least one sink appear.
    #[must_use]
    pub fn fanouts(&self) -> Vec<(u32, usize)> {
        let mut v: Vec<(u32, usize)> = Vec::new();
        for e in &self.edges {
            match v.last_mut() {
                Some((p, n)) if *p == e.producer => *n += 1,
                _ => v.push((e.producer, 1)),
            }
        }
        v
    }
}

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// Structural validation failed first.
    Structure(crate::MethodError),
    /// An instruction popped from an empty stack.
    Underflow {
        /// Offending address.
        addr: u32,
    },
    /// Two paths reach an instruction with different stack depths
    /// (the Figure 9 "invalid stack example").
    ShapeMismatch {
        /// Join-point address.
        addr: u32,
        /// Depth along the first path.
        first: u16,
        /// Depth along the conflicting path.
        second: u16,
    },
    /// Two paths reach an instruction with different types in a slot.
    TypeMismatch {
        /// Join-point address.
        addr: u32,
        /// Stack slot index (0 = bottom).
        slot: u16,
        /// Type along the first path.
        first: DataType,
        /// Type along the conflicting path.
        second: DataType,
    },
    /// An instruction received an operand of the wrong type.
    BadOperandType {
        /// Offending address.
        addr: u32,
        /// 1-based operand side.
        side: u16,
        /// Expected type.
        expected: DataType,
        /// Found type.
        found: DataType,
    },
    /// The method's declared `max_stack` … exceeded? JavaFlow computes it,
    /// so this variant flags internal inconsistency only.
    StackOverflow {
        /// Offending address.
        addr: u32,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Structure(e) => write!(fm, "structure: {e}"),
            VerifyError::Underflow { addr } => write!(fm, "stack underflow at @{addr}"),
            VerifyError::ShapeMismatch { addr, first, second } => {
                write!(fm, "stack shape mismatch at @{addr}: depth {first} vs {second}")
            }
            VerifyError::TypeMismatch { addr, slot, first, second } => {
                write!(fm, "stack type mismatch at @{addr} slot {slot}: {first:?} vs {second:?}")
            }
            VerifyError::BadOperandType { addr, side, expected, found } => write!(
                fm,
                "operand type error at @{addr} side {side}: expected {expected:?}, found {found:?}"
            ),
            VerifyError::StackOverflow { addr } => write!(fm, "stack overflow at @{addr}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<crate::MethodError> for VerifyError {
    fn from(e: crate::MethodError) -> Self {
        VerifyError::Structure(e)
    }
}

/// Verifier type lattice: a known network type or `Unknown` (field loads
/// and call returns, whose types the post-resolution IR does not carry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VType {
    Known(DataType),
    Unknown,
}

impl VType {
    fn merge(self, other: VType) -> Result<VType, (DataType, DataType)> {
        match (self, other) {
            (VType::Known(a), VType::Known(b)) if a == b => Ok(self),
            (VType::Known(a), VType::Known(b)) => Err((a, b)),
            _ => Ok(VType::Unknown),
        }
    }
}

/// Abstract stack slot: type plus producer set.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Slot {
    ty: VType,
    producers: BTreeSet<u32>,
}

type AbsStack = Vec<Slot>;

/// The result type an opcode pushes, inferred from the JVM's mnemonic type
/// prefixes (`i`/`l`/`f`/`d`/`a`) with explicit exceptions.
fn push_types(insn: &Insn) -> Vec<DataType> {
    use DataType as T;
    use Opcode as O;
    let n = insn.pushes();
    if n == 0 {
        return Vec::new();
    }
    let one = |t: T| vec![t];
    match insn.op {
        O::AConstNull
        | O::ALoad
        | O::ALoad0
        | O::ALoad1
        | O::ALoad2
        | O::ALoad3
        | O::New
        | O::NewArray
        | O::ANewArray
        | O::CheckCast
        | O::MultiANewArray => one(T::Reference),
        O::Jsr | O::JsrW => one(T::ReturnAddress),
        O::LConst0
        | O::LConst1
        | O::LLoad
        | O::LLoad0
        | O::LLoad1
        | O::LLoad2
        | O::LLoad3
        | O::LALoad
        | O::LAdd
        | O::LSub
        | O::LMul
        | O::LDiv
        | O::LRem
        | O::LNeg
        | O::LShl
        | O::LShr
        | O::LUShr
        | O::LAnd
        | O::LOr
        | O::LXor
        | O::I2L
        | O::F2L
        | O::D2L => one(T::Long),
        O::FConst0
        | O::FConst1
        | O::FConst2
        | O::FLoad
        | O::FLoad0
        | O::FLoad1
        | O::FLoad2
        | O::FLoad3
        | O::FALoad
        | O::FAdd
        | O::FSub
        | O::FMul
        | O::FDiv
        | O::FRem
        | O::FNeg
        | O::I2F
        | O::L2F
        | O::D2F => one(T::Float),
        O::DConst0
        | O::DConst1
        | O::DLoad
        | O::DLoad0
        | O::DLoad1
        | O::DLoad2
        | O::DLoad3
        | O::DALoad
        | O::DAdd
        | O::DSub
        | O::DMul
        | O::DDiv
        | O::DRem
        | O::DNeg
        | O::I2D
        | O::L2D
        | O::F2D => one(T::Double),
        // Everything else that pushes a single value pushes an int-family
        // value (comparisons, int arithmetic, conversions to int, loads).
        _ if n == 1 && !matches!(insn.op.group(), InstructionGroup::Call) => one(T::Int),
        _ => Vec::new(), // calls, dup family: handled by the caller
    }
}

/// Expected operand types for opcodes where JavaFlow's strong typing can be
/// checked without full signature information. `None` entries are unchecked.
fn expected_pop_types(insn: &Insn) -> Vec<Option<DataType>> {
    use DataType as T;
    use Opcode as O;
    let pops = insn.pops() as usize;
    let mut v = vec![None; pops];
    match insn.op {
        // Array loads: arrayref, index.
        O::IALoad
        | O::LALoad
        | O::FALoad
        | O::DALoad
        | O::AALoad
        | O::BALoad
        | O::CALoad
        | O::SALoad => {
            v[0] = Some(T::Reference);
            v[1] = Some(T::Int);
        }
        // Array stores: arrayref, index, value (value checked loosely).
        O::IAStore | O::BAStore | O::CAStore | O::SAStore => {
            v = vec![Some(T::Reference), Some(T::Int), Some(T::Int)];
        }
        O::LAStore => v = vec![Some(T::Reference), Some(T::Int), Some(T::Long)],
        O::FAStore => v = vec![Some(T::Reference), Some(T::Int), Some(T::Float)],
        O::DAStore => v = vec![Some(T::Reference), Some(T::Int), Some(T::Double)],
        O::AAStore => v = vec![Some(T::Reference), Some(T::Int), Some(T::Reference)],
        // Int conditionals.
        O::IfEq | O::IfNe | O::IfLt | O::IfGe | O::IfGt | O::IfLe => v[0] = Some(T::Int),
        O::IfICmpEq | O::IfICmpNe | O::IfICmpLt | O::IfICmpGe | O::IfICmpGt | O::IfICmpLe => {
            v = vec![Some(T::Int), Some(T::Int)];
        }
        O::IfACmpEq | O::IfACmpNe => v = vec![Some(T::Reference), Some(T::Reference)],
        O::IfNull
        | O::IfNonNull
        | O::AThrow
        | O::ArrayLength
        | O::MonitorEnter
        | O::MonitorExit => v[0] = Some(T::Reference),
        O::GetField => v[0] = Some(T::Reference),
        O::PutField => v[0] = Some(T::Reference),
        // Typed returns.
        O::IReturn => v[0] = Some(T::Int),
        O::LReturn => v[0] = Some(T::Long),
        O::FReturn => v[0] = Some(T::Float),
        O::DReturn => v[0] = Some(T::Double),
        O::AReturn => v[0] = Some(T::Reference),
        // Typed register writes.
        O::IStore | O::IStore0 | O::IStore1 | O::IStore2 | O::IStore3 => v[0] = Some(T::Int),
        O::LStore | O::LStore0 | O::LStore1 | O::LStore2 | O::LStore3 => v[0] = Some(T::Long),
        O::FStore | O::FStore0 | O::FStore1 | O::FStore2 | O::FStore3 => v[0] = Some(T::Float),
        O::DStore | O::DStore0 | O::DStore1 | O::DStore2 | O::DStore3 => v[0] = Some(T::Double),
        O::TableSwitch | O::LookupSwitch | O::NewArray | O::ANewArray => v[0] = Some(T::Int),
        _ => {}
    }
    v
}

/// Verifies a method and computes its static dataflow structure.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
///
/// # Examples
///
/// ```
/// use javaflow_bytecode::{verify, Insn, Method, Opcode, Operand};
///
/// let mut m = Method::new("add", 2, true);
/// m.code = vec![
///     Insn::new(Opcode::ILoad, Operand::Local(0)),
///     Insn::new(Opcode::ILoad, Operand::Local(1)),
///     Insn::simple(Opcode::IAdd),
///     Insn::simple(Opcode::IReturn),
/// ];
/// let v = verify(&m).unwrap();
/// assert_eq!(v.max_stack, 2);
/// assert_eq!(v.edges.len(), 3); // two loads feed iadd; iadd feeds ireturn
/// assert_eq!(v.back_merges, 0);
/// ```
pub fn verify(method: &Method) -> Result<VerifiedMethod, VerifyError> {
    method.validate()?;
    let n = method.code.len();
    let mut state_in: Vec<Option<AbsStack>> = vec![None; n];
    let mut worklist: Vec<u32> = vec![0];
    state_in[0] = Some(Vec::new());
    let mut edges: BTreeSet<DfEdge> = BTreeSet::new();
    let mut max_stack: u16 = 0;

    // For `jsr`/`ret` support we treat `ret` as returning to every
    // `jsr`+1 site; methods in this repository do not use subroutines, but
    // the verifier stays total over the ISA.
    let jsr_returns: Vec<u32> = method
        .iter()
        .filter(|(_, i)| matches!(i.op, Opcode::Jsr | Opcode::JsrW))
        .map(|(a, _)| a + 1)
        .filter(|a| (*a as usize) < n)
        .collect();

    while let Some(addr) = worklist.pop() {
        let insn = method.insn(addr);
        let mut stack = state_in[addr as usize].clone().expect("scheduled with state");
        max_stack = max_stack.max(stack.len() as u16);

        // Pop operands, recording dataflow arcs. Side 1 is the deepest
        // operand (first pushed), matching Figure 22's side numbering.
        let pops = insn.pops() as usize;
        if stack.len() < pops {
            return Err(VerifyError::Underflow { addr });
        }
        let expect = expected_pop_types(insn);
        let operands: Vec<Slot> = stack.split_off(stack.len() - pops);
        for (k, slot) in operands.iter().enumerate() {
            let side = (k + 1) as u16;
            if let Some(Some(exp)) = expect.get(k) {
                if let VType::Known(found) = slot.ty {
                    if found != *exp {
                        return Err(VerifyError::BadOperandType {
                            addr,
                            side,
                            expected: *exp,
                            found,
                        });
                    }
                }
            }
            for &p in &slot.producers {
                edges.insert(DfEdge { producer: p, consumer: addr, side });
            }
        }

        // Push results.
        let n_push = insn.pushes() as usize;
        if n_push > 0 {
            let tys: Vec<VType> = push_types(insn).into_iter().map(VType::Known).collect();
            let dup_types: Vec<VType> = match insn.op {
                // Stack shuffles reproduce the *types* of their inputs; as
                // dataflow nodes they are still single producers.
                Opcode::Dup => vec![operands[0].ty; 2],
                Opcode::DupX1 => {
                    vec![operands[1].ty, operands[0].ty, operands[1].ty]
                }
                Opcode::DupX2 => {
                    vec![operands[2].ty, operands[0].ty, operands[1].ty, operands[2].ty]
                }
                Opcode::Dup2 => {
                    vec![operands[0].ty, operands[1].ty, operands[0].ty, operands[1].ty]
                }
                Opcode::Dup2X1 => vec![
                    operands[1].ty,
                    operands[2].ty,
                    operands[0].ty,
                    operands[1].ty,
                    operands[2].ty,
                ],
                Opcode::Dup2X2 => vec![
                    operands[2].ty,
                    operands[3].ty,
                    operands[0].ty,
                    operands[1].ty,
                    operands[2].ty,
                    operands[3].ty,
                ],
                Opcode::Swap => vec![operands[1].ty, operands[0].ty],
                Opcode::Ldc | Opcode::LdcW | Opcode::Ldc2W => {
                    let ty = match &insn.operand {
                        Operand::Cp(i) => method.cpool[usize::from(*i)].data_type(),
                        _ => DataType::Int,
                    };
                    vec![VType::Known(ty)]
                }
                // Types the post-resolution IR cannot know statically:
                // field loads, reference-array loads, and call returns.
                Opcode::GetField | Opcode::GetStatic | Opcode::AALoad => {
                    vec![VType::Unknown; n_push]
                }
                _ if insn.group() == InstructionGroup::Call => {
                    vec![VType::Unknown; n_push]
                }
                _ => tys,
            };
            debug_assert_eq!(dup_types.len(), n_push, "{} push type arity", insn.op);
            for ty in dup_types {
                stack.push(Slot { ty, producers: BTreeSet::from([addr]) });
            }
        }
        max_stack = max_stack.max(stack.len() as u16);

        // Propagate to successors, merging producer sets and checking the
        // Figure 9 shape invariant.
        let succs: Vec<u32> = if matches!(insn.op, Opcode::Ret) {
            jsr_returns.clone()
        } else {
            insn.successors(addr)
        };
        for s in succs {
            match &mut state_in[s as usize] {
                slot @ None => {
                    *slot = Some(stack.clone());
                    worklist.push(s);
                }
                Some(prev) => {
                    if prev.len() != stack.len() {
                        return Err(VerifyError::ShapeMismatch {
                            addr: s,
                            first: prev.len() as u16,
                            second: stack.len() as u16,
                        });
                    }
                    let mut changed = false;
                    for (i, (a, b)) in prev.iter_mut().zip(stack.iter()).enumerate() {
                        match a.ty.merge(b.ty) {
                            Ok(m) => {
                                if a.ty != m {
                                    a.ty = m;
                                    changed = true;
                                }
                            }
                            Err((first, second)) => {
                                return Err(VerifyError::TypeMismatch {
                                    addr: s,
                                    slot: i as u16,
                                    first,
                                    second,
                                });
                            }
                        }
                        for &p in &b.producers {
                            changed |= a.producers.insert(p);
                        }
                    }
                    if changed {
                        worklist.push(s);
                    }
                }
            }
        }
    }

    let depth_in: Vec<u16> =
        state_in.iter().map(|s| s.as_ref().map_or(u16::MAX, |st| st.len() as u16)).collect();
    let reachable = state_in.iter().filter(|s| s.is_some()).count();
    let edges: Vec<DfEdge> = edges.into_iter().collect();

    // A merge is a (consumer, side) pair with more than one producer.
    let mut by_sink: std::collections::BTreeMap<(u32, u16), usize> =
        std::collections::BTreeMap::new();
    for e in &edges {
        *by_sink.entry((e.consumer, e.side)).or_insert(0) += 1;
    }
    let merges = by_sink.values().filter(|&&c| c > 1).count();
    let back_merges = edges.iter().filter(|e| e.is_back()).count();

    Ok(VerifiedMethod { max_stack, depth_in, edges, merges, back_merges, reachable })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Insn, Method, Opcode, Operand};

    fn m(code: Vec<Insn>, args: u16, returns: bool, locals: u16) -> Method {
        let mut m = Method::new("t", args, returns);
        m.max_locals = locals.max(args);
        m.code = code;
        m
    }

    #[test]
    fn straight_line_edges() {
        // Figure 21's example: three loads, two adds, a store, return.
        let meth = m(
            vec![
                Insn::new(Opcode::ILoad, Operand::Local(1)),
                Insn::new(Opcode::ILoad, Operand::Local(2)),
                Insn::new(Opcode::ILoad, Operand::Local(3)),
                Insn::simple(Opcode::IAdd),
                Insn::new(Opcode::IStore, Operand::Local(4)),
                Insn::simple(Opcode::ReturnVoid),
            ],
            0,
            false,
            5,
        );
        let v = verify(&meth).unwrap();
        // iadd consumes loads @1 (side 1) and @2 (side 2)?? No: it consumes
        // the *top two*: loads @1 and @2 feed... stack is [l0,l1,l2]; iadd
        // pops l1 (side 1) and l2 (side 2); istore pops the add result; the
        // deep load @0 is never consumed before return — like Figure 21,
        // where instruction #0's push resolves to the *second* add. Here
        // there is no second add, so load @0 has no consumer.
        assert!(v.edges.contains(&DfEdge { producer: 1, consumer: 3, side: 1 }));
        assert!(v.edges.contains(&DfEdge { producer: 2, consumer: 3, side: 2 }));
        assert!(v.edges.contains(&DfEdge { producer: 3, consumer: 4, side: 1 }));
        assert_eq!(v.max_stack, 3);
        assert_eq!(v.merges, 0);
        assert_eq!(v.back_merges, 0);
    }

    #[test]
    fn dataflow_merge_detected() {
        // if (a) push 1 else push 2; consume at join → a merge with two
        // producers on one side (the Figure 22 pattern).
        let meth = m(
            vec![
                Insn::new(Opcode::ILoad, Operand::Local(0)), // 0
                Insn::new(Opcode::IfEq, Operand::Target(4)), // 1
                Insn::simple(Opcode::IConst1),               // 2
                Insn::new(Opcode::Goto, Operand::Target(5)), // 3
                Insn::simple(Opcode::IConst2),               // 4
                Insn::simple(Opcode::IReturn),               // 5
            ],
            1,
            true,
            1,
        );
        let v = verify(&meth).unwrap();
        assert_eq!(v.merges, 1);
        assert!(v.edges.contains(&DfEdge { producer: 2, consumer: 5, side: 1 }));
        assert!(v.edges.contains(&DfEdge { producer: 4, consumer: 5, side: 1 }));
        assert_eq!(v.back_merges, 0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        // Figure 9's invalid example: one path pushes, the other does not.
        let meth = m(
            vec![
                Insn::new(Opcode::ILoad, Operand::Local(0)), // 0
                Insn::new(Opcode::IfEq, Operand::Target(3)), // 1
                Insn::simple(Opcode::IConst1),               // 2  (+1 depth)
                Insn::simple(Opcode::ReturnVoid),            // 3  join: 0 vs 1
            ],
            1,
            false,
            1,
        );
        assert!(matches!(verify(&meth), Err(VerifyError::ShapeMismatch { addr: 3, .. })));
    }

    #[test]
    fn type_mismatch_rejected() {
        let meth = m(
            vec![
                Insn::new(Opcode::ILoad, Operand::Local(0)), // 0
                Insn::new(Opcode::IfEq, Operand::Target(4)), // 1
                Insn::simple(Opcode::IConst1),               // 2 int
                Insn::new(Opcode::Goto, Operand::Target(5)), // 3
                Insn::simple(Opcode::FConst1),               // 4 float
                Insn::simple(Opcode::Pop),                   // 5 join
                Insn::simple(Opcode::ReturnVoid),
            ],
            1,
            false,
            1,
        );
        assert!(matches!(verify(&meth), Err(VerifyError::TypeMismatch { addr: 5, .. })));
    }

    #[test]
    fn underflow_rejected() {
        let meth =
            m(vec![Insn::simple(Opcode::IAdd), Insn::simple(Opcode::ReturnVoid)], 0, false, 0);
        assert!(matches!(verify(&meth), Err(VerifyError::Underflow { addr: 0 })));
    }

    #[test]
    fn operand_type_checked() {
        let meth = m(
            vec![
                Insn::simple(Opcode::FConst1),
                Insn::new(Opcode::IfEq, Operand::Target(2)), // ifeq on a float
                Insn::simple(Opcode::ReturnVoid),
            ],
            0,
            false,
            0,
        );
        assert!(matches!(verify(&meth), Err(VerifyError::BadOperandType { .. })));
    }

    #[test]
    fn loop_with_register_carried_state_has_no_back_merge() {
        // i = 10; while (i != 0) i--;  — state crosses the back edge in a
        // register (iinc), so the dataflow graph has no back arcs.
        let meth = m(
            vec![
                Insn::new(Opcode::BiPush, Operand::Imm(10)),  // 0
                Insn::new(Opcode::IStore, Operand::Local(0)), // 1
                Insn::new(Opcode::ILoad, Operand::Local(0)),  // 2 loop head
                Insn::new(Opcode::IfEq, Operand::Target(6)),  // 3
                Insn::new(Opcode::IInc, Operand::Inc { local: 0, delta: -1 }), // 4
                Insn::new(Opcode::Goto, Operand::Target(2)),  // 5 back edge
                Insn::simple(Opcode::ReturnVoid),             // 6
            ],
            0,
            false,
            1,
        );
        let v = verify(&meth).unwrap();
        assert_eq!(v.back_merges, 0);
        assert_eq!(v.reachable, 7);
    }

    #[test]
    fn dup_produces_two_sinks_from_one_producer() {
        let meth = m(
            vec![
                Insn::simple(Opcode::IConst3), // 0
                Insn::simple(Opcode::Dup),     // 1
                Insn::simple(Opcode::IMul),    // 2
                Insn::simple(Opcode::IReturn), // 3
            ],
            0,
            true,
            0,
        );
        let v = verify(&meth).unwrap();
        // iconst_3 → dup (side 1); dup → imul sides 1 and 2 (fanout 2).
        let fan: Vec<(u32, usize)> = v.fanouts();
        assert!(fan.contains(&(1, 2)), "dup should feed two sides: {fan:?}");
    }

    #[test]
    fn unreachable_code_tolerated() {
        let meth = m(
            vec![
                Insn::simple(Opcode::ReturnVoid),
                Insn::simple(Opcode::IAdd), // dead
                Insn::simple(Opcode::ReturnVoid),
            ],
            0,
            false,
            0,
        );
        let v = verify(&meth).unwrap();
        assert_eq!(v.reachable, 1);
        assert_eq!(v.depth_in[1], u16::MAX);
    }
}

//! A structured builder for emitting valid ByteCode methods.
//!
//! The workload suite uses this in place of `javac`: kernels are written as
//! Rust code against the builder, which picks compact opcode forms
//! (`iconst_3` vs `bipush` vs `ldc`), manages the constant pool, and patches
//! branch labels. [`MethodBuilder::finish`] validates and verifies the
//! result, so a successfully built method is always fabric-loadable.

use crate::{
    verify, ArrayKind, CallRef, FieldRef, Insn, Method, MethodId, Opcode, Operand, Value,
    VerifyError,
};

/// A forward- or backward-referenced branch label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// A pending switch: instruction address, arms, default label.
type SwitchPatch = (u32, Vec<(i32, Label)>, Label);

/// Builds one [`Method`].
#[derive(Debug)]
pub struct MethodBuilder {
    method: Method,
    /// label id → bound address
    bound: Vec<Option<u32>>,
    /// (instruction addr, label id) patches
    patches: Vec<(u32, Label)>,
    switch_patches: Vec<SwitchPatch>,
}

impl MethodBuilder {
    /// Starts a method with `num_args` arguments (delivered in registers
    /// `0..num_args`).
    #[must_use]
    pub fn new(name: impl Into<String>, num_args: u16, returns: bool) -> MethodBuilder {
        MethodBuilder {
            method: Method::new(name, num_args, returns),
            bound: Vec::new(),
            patches: Vec::new(),
            switch_patches: Vec::new(),
        }
    }

    /// The current emission address.
    #[must_use]
    pub fn here(&self) -> u32 {
        self.method.code.len() as u32
    }

    /// Creates an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.bound.push(None);
        Label(self.bound.len() - 1)
    }

    /// Binds a label to the current address.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.bound[label.0].is_none(), "label bound twice");
        self.bound[label.0] = Some(self.here());
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, op: Opcode, operand: Operand) -> &mut Self {
        self.method.code.push(Insn { op, operand });
        self
    }

    /// Emits an operand-less instruction.
    pub fn op(&mut self, op: Opcode) -> &mut Self {
        self.emit(op, Operand::None)
    }

    /// Emits a branch to `label`.
    pub fn branch(&mut self, op: Opcode, label: Label) -> &mut Self {
        let addr = self.here();
        self.patches.push((addr, label));
        self.emit(op, Operand::Target(u32::MAX))
    }

    /// Emits a `tableswitch` with the given arms and default.
    pub fn switch(&mut self, arms: Vec<(i32, Label)>, default: Label) -> &mut Self {
        let addr = self.here();
        self.switch_patches.push((addr, arms, default));
        self.emit(
            Opcode::TableSwitch,
            Operand::Switch(crate::SwitchTable { arms: Vec::new(), default: u32::MAX }),
        )
    }

    /// Adds a constant to the pool, reusing an existing bit-equal entry.
    pub fn constant(&mut self, v: Value) -> u16 {
        if let Some(i) = self.method.cpool.iter().position(|c| c.bits_eq(&v)) {
            return i as u16;
        }
        self.method.cpool.push(v);
        (self.method.cpool.len() - 1) as u16
    }

    fn touch_local(&mut self, r: u16) {
        self.method.max_locals = self.method.max_locals.max(r + 1);
    }

    // ---- Typed convenience emitters ------------------------------------

    /// Pushes an `int` constant using the most compact form.
    pub fn iconst(&mut self, v: i32) -> &mut Self {
        match v {
            -1 => self.op(Opcode::IConstM1),
            0 => self.op(Opcode::IConst0),
            1 => self.op(Opcode::IConst1),
            2 => self.op(Opcode::IConst2),
            3 => self.op(Opcode::IConst3),
            4 => self.op(Opcode::IConst4),
            5 => self.op(Opcode::IConst5),
            v if i32::from(v as i8) == v => self.emit(Opcode::BiPush, Operand::Imm(v)),
            v if i32::from(v as i16) == v => self.emit(Opcode::SiPush, Operand::Imm(v)),
            v => {
                let i = self.constant(Value::Int(v));
                self.emit(Opcode::Ldc, Operand::Cp(i))
            }
        }
    }

    /// Pushes a `long` constant.
    pub fn lconst(&mut self, v: i64) -> &mut Self {
        match v {
            0 => self.op(Opcode::LConst0),
            1 => self.op(Opcode::LConst1),
            v => {
                let i = self.constant(Value::Long(v));
                self.emit(Opcode::Ldc2W, Operand::Cp(i))
            }
        }
    }

    /// Pushes a `float` constant.
    pub fn fconst(&mut self, v: f32) -> &mut Self {
        if v == 0.0 && v.is_sign_positive() {
            self.op(Opcode::FConst0)
        } else if v == 1.0 {
            self.op(Opcode::FConst1)
        } else if v == 2.0 {
            self.op(Opcode::FConst2)
        } else {
            let i = self.constant(Value::Float(v));
            self.emit(Opcode::Ldc, Operand::Cp(i))
        }
    }

    /// Pushes a `double` constant.
    pub fn dconst(&mut self, v: f64) -> &mut Self {
        if v == 0.0 && v.is_sign_positive() {
            self.op(Opcode::DConst0)
        } else if v == 1.0 {
            self.op(Opcode::DConst1)
        } else {
            let i = self.constant(Value::Double(v));
            self.emit(Opcode::Ldc2W, Operand::Cp(i))
        }
    }

    /// Loads an `int` register (compact `iload_N` when possible).
    pub fn iload(&mut self, r: u16) -> &mut Self {
        self.touch_local(r);
        match r {
            0 => self.op(Opcode::ILoad0),
            1 => self.op(Opcode::ILoad1),
            2 => self.op(Opcode::ILoad2),
            3 => self.op(Opcode::ILoad3),
            r => self.emit(Opcode::ILoad, Operand::Local(r)),
        }
    }

    /// Stores an `int` register.
    pub fn istore(&mut self, r: u16) -> &mut Self {
        self.touch_local(r);
        match r {
            0 => self.op(Opcode::IStore0),
            1 => self.op(Opcode::IStore1),
            2 => self.op(Opcode::IStore2),
            3 => self.op(Opcode::IStore3),
            r => self.emit(Opcode::IStore, Operand::Local(r)),
        }
    }

    /// Loads a `long` register.
    pub fn lload(&mut self, r: u16) -> &mut Self {
        self.touch_local(r);
        match r {
            0 => self.op(Opcode::LLoad0),
            1 => self.op(Opcode::LLoad1),
            2 => self.op(Opcode::LLoad2),
            3 => self.op(Opcode::LLoad3),
            r => self.emit(Opcode::LLoad, Operand::Local(r)),
        }
    }

    /// Stores a `long` register.
    pub fn lstore(&mut self, r: u16) -> &mut Self {
        self.touch_local(r);
        match r {
            0 => self.op(Opcode::LStore0),
            1 => self.op(Opcode::LStore1),
            2 => self.op(Opcode::LStore2),
            3 => self.op(Opcode::LStore3),
            r => self.emit(Opcode::LStore, Operand::Local(r)),
        }
    }

    /// Loads a `float` register.
    pub fn fload(&mut self, r: u16) -> &mut Self {
        self.touch_local(r);
        match r {
            0 => self.op(Opcode::FLoad0),
            1 => self.op(Opcode::FLoad1),
            2 => self.op(Opcode::FLoad2),
            3 => self.op(Opcode::FLoad3),
            r => self.emit(Opcode::FLoad, Operand::Local(r)),
        }
    }

    /// Stores a `float` register.
    pub fn fstore(&mut self, r: u16) -> &mut Self {
        self.touch_local(r);
        match r {
            0 => self.op(Opcode::FStore0),
            1 => self.op(Opcode::FStore1),
            2 => self.op(Opcode::FStore2),
            3 => self.op(Opcode::FStore3),
            r => self.emit(Opcode::FStore, Operand::Local(r)),
        }
    }

    /// Loads a `double` register.
    pub fn dload(&mut self, r: u16) -> &mut Self {
        self.touch_local(r);
        match r {
            0 => self.op(Opcode::DLoad0),
            1 => self.op(Opcode::DLoad1),
            2 => self.op(Opcode::DLoad2),
            3 => self.op(Opcode::DLoad3),
            r => self.emit(Opcode::DLoad, Operand::Local(r)),
        }
    }

    /// Stores a `double` register.
    pub fn dstore(&mut self, r: u16) -> &mut Self {
        self.touch_local(r);
        match r {
            0 => self.op(Opcode::DStore0),
            1 => self.op(Opcode::DStore1),
            2 => self.op(Opcode::DStore2),
            3 => self.op(Opcode::DStore3),
            r => self.emit(Opcode::DStore, Operand::Local(r)),
        }
    }

    /// Loads a reference register.
    pub fn aload(&mut self, r: u16) -> &mut Self {
        self.touch_local(r);
        match r {
            0 => self.op(Opcode::ALoad0),
            1 => self.op(Opcode::ALoad1),
            2 => self.op(Opcode::ALoad2),
            3 => self.op(Opcode::ALoad3),
            r => self.emit(Opcode::ALoad, Operand::Local(r)),
        }
    }

    /// Stores a reference register.
    pub fn astore(&mut self, r: u16) -> &mut Self {
        self.touch_local(r);
        match r {
            0 => self.op(Opcode::AStore0),
            1 => self.op(Opcode::AStore1),
            2 => self.op(Opcode::AStore2),
            3 => self.op(Opcode::AStore3),
            r => self.emit(Opcode::AStore, Operand::Local(r)),
        }
    }

    /// Emits `iinc reg, delta`.
    pub fn iinc(&mut self, r: u16, delta: i32) -> &mut Self {
        self.touch_local(r);
        self.emit(Opcode::IInc, Operand::Inc { local: r, delta })
    }

    /// Emits a resolved field access.
    pub fn field(&mut self, op: Opcode, class: u16, slot: u16) -> &mut Self {
        self.emit(op, Operand::Field(FieldRef { class, slot }))
    }

    /// Emits a call; the caller supplies the resolved signature.
    pub fn invoke(&mut self, op: Opcode, method: MethodId, argc: u8, returns: bool) -> &mut Self {
        self.emit(op, Operand::Call(CallRef { method, argc, returns }))
    }

    /// Emits `newarray` of a primitive kind.
    pub fn newarray(&mut self, kind: ArrayKind) -> &mut Self {
        self.emit(Opcode::NewArray, Operand::ArrayType(kind))
    }

    /// Finishes the method: patches labels, validates, and verifies.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when a label is unbound or the generated code
    /// fails validation/verification.
    pub fn finish(mut self) -> Result<Method, BuildError> {
        for (addr, label) in std::mem::take(&mut self.patches) {
            let target = self.bound[label.0].ok_or(BuildError::UnboundLabel)?;
            self.method.code[addr as usize].operand = Operand::Target(target);
        }
        for (addr, arms, default) in std::mem::take(&mut self.switch_patches) {
            let mut table = crate::SwitchTable { arms: Vec::new(), default: 0 };
            for (k, l) in arms {
                table.arms.push((k, self.bound[l.0].ok_or(BuildError::UnboundLabel)?));
            }
            table.default = self.bound[default.0].ok_or(BuildError::UnboundLabel)?;
            self.method.code[addr as usize].operand = Operand::Switch(table);
        }
        verify(&self.method).map_err(BuildError::Verify)?;
        Ok(self.method)
    }
}

/// Failure to finish a built method.
#[derive(Debug)]
#[non_exhaustive]
pub enum BuildError {
    /// A label was referenced but never bound.
    UnboundLabel,
    /// The generated code failed verification.
    Verify(VerifyError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnboundLabel => write!(fm, "unbound label"),
            BuildError::Verify(e) => write!(fm, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Verify(e) => Some(e),
            BuildError::UnboundLabel => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_countdown_loop() {
        let mut b = MethodBuilder::new("countdown", 1, false);
        let top = b.new_label();
        b.bind(top);
        b.iinc(0, -1).iload(0);
        b.branch(Opcode::IfNe, top);
        b.op(Opcode::ReturnVoid);
        let m = b.finish().unwrap();
        assert_eq!(m.code.len(), 4);
        assert!(m.is_back_branch(2));
    }

    #[test]
    fn compact_forms_chosen() {
        let mut b = MethodBuilder::new("t", 0, true);
        b.iconst(3).iconst(100).iconst(40_000).op(Opcode::IAdd).op(Opcode::IAdd);
        b.op(Opcode::IReturn);
        let m = b.finish().unwrap();
        assert_eq!(m.code[0].op, Opcode::IConst3);
        assert_eq!(m.code[1].op, Opcode::BiPush);
        assert_eq!(m.code[2].op, Opcode::Ldc);
        assert_eq!(m.cpool, vec![Value::Int(40_000)]);
    }

    #[test]
    fn constant_pool_deduplicated() {
        let mut b = MethodBuilder::new("t", 0, true);
        b.dconst(3.25).dconst(3.25).op(Opcode::DAdd).op(Opcode::DReturn);
        let m = b.finish().unwrap();
        assert_eq!(m.cpool.len(), 1);
    }

    #[test]
    fn unbound_label_detected() {
        let mut b = MethodBuilder::new("t", 0, false);
        let l = b.new_label();
        b.branch(Opcode::Goto, l);
        b.op(Opcode::ReturnVoid);
        assert!(matches!(b.finish(), Err(BuildError::UnboundLabel)));
    }

    #[test]
    fn invalid_stack_rejected_at_finish() {
        let mut b = MethodBuilder::new("t", 0, false);
        b.op(Opcode::IAdd).op(Opcode::ReturnVoid);
        assert!(matches!(b.finish(), Err(BuildError::Verify(_))));
    }

    #[test]
    fn max_locals_tracked() {
        let mut b = MethodBuilder::new("t", 2, false);
        b.iconst(1).istore(7);
        b.op(Opcode::ReturnVoid);
        let m = b.finish().unwrap();
        assert_eq!(m.max_locals, 8);
    }
}

//! Instructions: an opcode plus its resolved operand.
//!
//! JavaFlow's IR is *post-resolution*: symbolic constant-pool references have
//! already been linked to field slots and method ids, exactly as the
//! dissertation's simulation assumes (the `_Quick` forms of Table 5, which
//! cover 97–99% of dynamic storage accesses). Each instruction occupies one
//! linear address — "all instructions are a single length and the linear
//! addresses are independent of the size of the ByteCode instructions"
//! (Section 4.2).

use crate::{InstructionGroup, Opcode};

/// Identifies a method within a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId(pub u32);

impl std::fmt::Display for MethodId {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fm, "m{}", self.0)
    }
}

/// A resolved (quickened) field reference: class id plus field slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldRef {
    /// The owning class id (index into the program's class table).
    pub class: u16,
    /// The field slot within the class's instance or static area.
    pub slot: u16,
}

/// A resolved call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CallRef {
    /// The callee.
    pub method: MethodId,
    /// Total number of values popped: declared arguments plus the receiver
    /// for instance invocations.
    pub argc: u8,
    /// Whether the callee pushes a return value.
    pub returns: bool,
}

/// Element kind for `newarray`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ArrayKind {
    Boolean,
    Char,
    Float,
    Double,
    Byte,
    Short,
    Int,
    Long,
}

/// A `tableswitch`/`lookupswitch` jump table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SwitchTable {
    /// `(match key, target linear address)` pairs.
    pub arms: Vec<(i32, u32)>,
    /// Default target linear address.
    pub default: u32,
}

/// The resolved operand of an instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// No operand.
    None,
    /// Immediate integer (`bipush`, `sipush`).
    Imm(i32),
    /// Local-variable (register) index.
    Local(u16),
    /// Branch target: the linear address of the taken path.
    Target(u32),
    /// Constant-pool index (`ldc`, `ldc_w`, `ldc2_w`).
    Cp(u16),
    /// Resolved field reference.
    Field(FieldRef),
    /// Resolved call site.
    Call(CallRef),
    /// `iinc` register and signed delta.
    Inc {
        /// Register index.
        local: u16,
        /// Signed increment.
        delta: i32,
    },
    /// Primitive element kind for `newarray`.
    ArrayType(ArrayKind),
    /// Class id for `new`, `anewarray`, `checkcast`, `instanceof`.
    ClassId(u16),
    /// Jump table for the switch instructions.
    Switch(SwitchTable),
    /// `multianewarray`: class id and dimension count.
    Dims {
        /// Array class id.
        class: u16,
        /// Number of dimensions popped.
        dims: u8,
    },
}

/// One linear-addressed instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Insn {
    /// The operation code.
    pub op: Opcode,
    /// The resolved operand.
    pub operand: Operand,
}

impl Insn {
    /// Creates an instruction with no operand.
    #[must_use]
    pub fn simple(op: Opcode) -> Insn {
        Insn { op, operand: Operand::None }
    }

    /// Creates an instruction with the given operand.
    #[must_use]
    pub fn new(op: Opcode, operand: Operand) -> Insn {
        Insn { op, operand }
    }

    /// The instruction group (Appendix A).
    #[must_use]
    pub fn group(&self) -> InstructionGroup {
        self.op.group()
    }

    /// Number of values this instruction pops ('Pop' in Appendix A; the
    /// count of mesh operands a fabric node must receive before firing).
    #[must_use]
    pub fn pops(&self) -> u16 {
        if let Some(n) = self.op.base_pops() {
            return n;
        }
        match &self.operand {
            Operand::Call(c) => u16::from(c.argc),
            Operand::Dims { dims, .. } => u16::from(*dims),
            _ => 0,
        }
    }

    /// Number of values this instruction pushes ('Push' in Appendix A; the
    /// number of dataflow results to fan out to consumer nodes).
    #[must_use]
    pub fn pushes(&self) -> u16 {
        if let Some(n) = self.op.base_pushes() {
            return n;
        }
        match &self.operand {
            Operand::Call(c) => u16::from(c.returns),
            _ => 0,
        }
    }

    /// The explicit branch target (taken-path linear address), if any.
    ///
    /// Switch instructions have multiple targets; see
    /// [`Insn::switch_targets`].
    #[must_use]
    pub fn branch_target(&self) -> Option<u32> {
        match &self.operand {
            Operand::Target(t) => Some(*t),
            _ => None,
        }
    }

    /// All switch targets (arms then default) for switch instructions.
    pub fn switch_targets(&self) -> impl Iterator<Item = u32> + '_ {
        let table = match &self.operand {
            Operand::Switch(t) => Some(t),
            _ => None,
        };
        table
            .into_iter()
            .flat_map(|t| t.arms.iter().map(|(_, tgt)| *tgt).chain(std::iter::once(t.default)))
    }

    /// All possible successor linear addresses of this instruction at `addr`.
    ///
    /// Returns-and-throws have none; `goto` has one; conditionals have two
    /// (fall-through first); switches have all arms plus default.
    #[must_use]
    pub fn successors(&self, addr: u32) -> Vec<u32> {
        if self.op.is_return() {
            return Vec::new();
        }
        match self.op {
            Opcode::Goto | Opcode::GotoW | Opcode::Jsr | Opcode::JsrW => {
                self.branch_target().into_iter().collect()
            }
            Opcode::Ret => Vec::new(), // dynamic; handled by jsr pairing
            Opcode::TableSwitch | Opcode::LookupSwitch => self.switch_targets().collect(),
            _ if self.op.is_conditional() => {
                let mut v = vec![addr + 1];
                v.extend(self.branch_target());
                v
            }
            _ => vec![addr + 1],
        }
    }

    /// Checks that the operand kind matches what the opcode requires.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch.
    pub fn validate(&self) -> Result<(), String> {
        use Opcode as O;
        let ok = match self.op {
            O::BiPush | O::SiPush => matches!(self.operand, Operand::Imm(_)),
            O::Ldc | O::LdcW | O::Ldc2W => matches!(self.operand, Operand::Cp(_)),
            O::ILoad
            | O::LLoad
            | O::FLoad
            | O::DLoad
            | O::ALoad
            | O::IStore
            | O::LStore
            | O::FStore
            | O::DStore
            | O::AStore
            | O::Ret => {
                matches!(self.operand, Operand::Local(_))
            }
            O::IInc => matches!(self.operand, Operand::Inc { .. }),
            O::GetStatic | O::PutStatic | O::GetField | O::PutField => {
                matches!(self.operand, Operand::Field(_))
            }
            O::InvokeVirtual
            | O::InvokeSpecial
            | O::InvokeStatic
            | O::InvokeInterface
            | O::InvokeDynamic => matches!(self.operand, Operand::Call(_)),
            O::New | O::ANewArray | O::CheckCast | O::InstanceOf => {
                matches!(self.operand, Operand::ClassId(_))
            }
            O::NewArray => matches!(self.operand, Operand::ArrayType(_)),
            O::MultiANewArray => matches!(self.operand, Operand::Dims { .. }),
            O::TableSwitch | O::LookupSwitch => matches!(self.operand, Operand::Switch(_)),
            op if op.is_branch() => matches!(self.operand, Operand::Target(_)),
            _ => matches!(self.operand, Operand::None),
        };
        if ok {
            Ok(())
        } else {
            Err(format!("operand {:?} invalid for opcode {}", self.operand, self.op))
        }
    }
}

impl std::fmt::Display for Insn {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fm, "{}", self.op)?;
        match &self.operand {
            Operand::None => Ok(()),
            Operand::Imm(v) => write!(fm, " {v}"),
            Operand::Local(n) => write!(fm, " {n}"),
            Operand::Target(t) => write!(fm, " @{t}"),
            Operand::Cp(i) => write!(fm, " #{i}"),
            Operand::Field(fr) => write!(fm, " c{}.f{}", fr.class, fr.slot),
            Operand::Call(c) => {
                write!(fm, " {} argc={} ret={}", c.method, c.argc, u8::from(c.returns))
            }
            Operand::Inc { local, delta } => write!(fm, " {local} {delta:+}"),
            Operand::ArrayType(k) => write!(fm, " {k:?}"),
            Operand::ClassId(c) => write!(fm, " c{c}"),
            Operand::Switch(t) => write!(fm, " [{} arms, default @{}]", t.arms.len(), t.default),
            Operand::Dims { class, dims } => write!(fm, " c{class} dims={dims}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_and_pushes_fixed() {
        assert_eq!(Insn::simple(Opcode::IAdd).pops(), 2);
        assert_eq!(Insn::simple(Opcode::IAdd).pushes(), 1);
        assert_eq!(Insn::simple(Opcode::Dup2X2).pushes(), 6);
    }

    #[test]
    fn pops_and_pushes_calls() {
        let call = Insn::new(
            Opcode::InvokeStatic,
            Operand::Call(CallRef { method: MethodId(3), argc: 4, returns: true }),
        );
        assert_eq!(call.pops(), 4);
        assert_eq!(call.pushes(), 1);
        let void_call = Insn::new(
            Opcode::InvokeVirtual,
            Operand::Call(CallRef { method: MethodId(1), argc: 1, returns: false }),
        );
        assert_eq!(void_call.pops(), 1);
        assert_eq!(void_call.pushes(), 0);
    }

    #[test]
    fn successors_shapes() {
        let add = Insn::simple(Opcode::IAdd);
        assert_eq!(add.successors(5), vec![6]);
        let goto = Insn::new(Opcode::Goto, Operand::Target(2));
        assert_eq!(goto.successors(9), vec![2]);
        let jump = Insn::new(Opcode::IfEq, Operand::Target(20));
        assert_eq!(jump.successors(9), vec![10, 20]);
        let ret = Insn::simple(Opcode::ReturnVoid);
        assert!(ret.successors(3).is_empty());
        let sw = Insn::new(
            Opcode::TableSwitch,
            Operand::Switch(SwitchTable { arms: vec![(0, 4), (1, 8)], default: 12 }),
        );
        assert_eq!(sw.successors(0), vec![4, 8, 12]);
    }

    #[test]
    fn validation_catches_mismatches() {
        assert!(Insn::simple(Opcode::IAdd).validate().is_ok());
        assert!(Insn::new(Opcode::IAdd, Operand::Imm(1)).validate().is_err());
        assert!(Insn::new(Opcode::Goto, Operand::Target(0)).validate().is_ok());
        assert!(Insn::simple(Opcode::Goto).validate().is_err());
        assert!(Insn::new(Opcode::ILoad, Operand::Local(2)).validate().is_ok());
        assert!(Insn::simple(Opcode::ILoad).validate().is_err());
    }

    #[test]
    fn display_round_trippable_mnemonics() {
        let i = Insn::new(Opcode::IInc, Operand::Inc { local: 4, delta: -1 });
        assert_eq!(i.to_string(), "iinc 4 -1");
        assert_eq!(Insn::simple(Opcode::IAdd).to_string(), "iadd");
    }
}

//! Methods, classes, and programs.
//!
//! A [`Method`] is the unit JavaFlow deploys to the DataFlow fabric: a
//! linear list of resolved instructions plus the compile-time-known maximum
//! register count (Section 3.6: "Java Byte Code programs have the maximum
//! number of local registers utilized and the maximum number of stack
//! elements defined at compile time").

use crate::{Insn, MethodId, Operand, Value};

/// A class definition: field layout for the interpreter's method area and
/// heap (Figure 10).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDef {
    /// Class name.
    pub name: String,
    /// Number of instance field slots on the heap.
    pub instance_fields: u16,
    /// Number of static field slots in the class (method) area.
    pub static_fields: u16,
}

/// A Java method: resolved linear ByteCode plus its frame requirements.
#[derive(Debug, Clone, PartialEq)]
pub struct Method {
    /// Method name (free-form; by convention `Class.method` style).
    pub name: String,
    /// Number of argument values (including the receiver for instance
    /// methods, which arrives in local register 0).
    pub num_args: u16,
    /// Whether the method returns a value.
    pub returns: bool,
    /// Maximum local-variable (register) count.
    pub max_locals: u16,
    /// The instruction stream; index = linear address.
    pub code: Vec<Insn>,
    /// The method's constant pool (already linked; `ldc` indexes here).
    pub cpool: Vec<Value>,
}

impl Method {
    /// Creates an empty method.
    #[must_use]
    pub fn new(name: impl Into<String>, num_args: u16, returns: bool) -> Method {
        Method {
            name: name.into(),
            num_args,
            returns,
            max_locals: num_args,
            code: Vec::new(),
            cpool: Vec::new(),
        }
    }

    /// Number of instructions (the method's static size).
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the method has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The instruction at a linear address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[must_use]
    pub fn insn(&self, addr: u32) -> &Insn {
        &self.code[addr as usize]
    }

    /// Iterates `(linear address, instruction)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Insn)> {
        self.code.iter().enumerate().map(|(i, insn)| (i as u32, insn))
    }

    /// Whether the branch at `addr` (if any) jumps backwards (a loop edge).
    #[must_use]
    pub fn is_back_branch(&self, addr: u32) -> bool {
        self.insn(addr).branch_target().is_some_and(|t| t <= addr)
    }

    /// Structural validation: operand kinds, branch targets in range,
    /// constant-pool indices in range, register indices within
    /// `max_locals`, and a terminated instruction stream.
    ///
    /// # Errors
    ///
    /// Returns [`MethodError`] describing the first problem found.
    pub fn validate(&self) -> Result<(), MethodError> {
        if self.code.is_empty() {
            return Err(MethodError::Empty);
        }
        if self.num_args > self.max_locals {
            return Err(MethodError::ArgsExceedLocals {
                num_args: self.num_args,
                max_locals: self.max_locals,
            });
        }
        let n = self.code.len() as u32;
        for (addr, insn) in self.iter() {
            insn.validate().map_err(|reason| MethodError::BadOperand { addr, reason })?;
            for t in insn.successors(addr) {
                if t >= n {
                    // Implicit fall-through past the last instruction is a
                    // termination problem; an explicit target beyond the
                    // method is a range problem.
                    if t == n && t == addr + 1 && insn.branch_target() != Some(t) {
                        return Err(MethodError::FallsOffEnd { addr });
                    }
                    return Err(MethodError::TargetOutOfRange { addr, target: t, len: n });
                }
            }
            match &insn.operand {
                Operand::Cp(i) if usize::from(*i) >= self.cpool.len() => {
                    return Err(MethodError::CpOutOfRange { addr, index: *i });
                }
                Operand::Local(r) if *r >= self.max_locals => {
                    return Err(MethodError::LocalOutOfRange { addr, local: *r });
                }
                Operand::Inc { local, .. } if *local >= self.max_locals => {
                    return Err(MethodError::LocalOutOfRange { addr, local: *local });
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// Structural validation error for a [`Method`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MethodError {
    /// The method has no instructions.
    Empty,
    /// More arguments than registers.
    ArgsExceedLocals {
        /// Declared argument count.
        num_args: u16,
        /// Declared register count.
        max_locals: u16,
    },
    /// An operand does not match its opcode.
    BadOperand {
        /// Offending linear address.
        addr: u32,
        /// Human-readable mismatch description.
        reason: String,
    },
    /// A branch target is outside the method.
    TargetOutOfRange {
        /// Branching address.
        addr: u32,
        /// Offending target.
        target: u32,
        /// Method length.
        len: u32,
    },
    /// A constant-pool index is out of range.
    CpOutOfRange {
        /// Offending address.
        addr: u32,
        /// Offending index.
        index: u16,
    },
    /// A register index exceeds `max_locals`.
    LocalOutOfRange {
        /// Offending address.
        addr: u32,
        /// Offending register.
        local: u16,
    },
    /// Control can run off the end of the code.
    FallsOffEnd {
        /// Address of the final instruction.
        addr: u32,
    },
}

impl std::fmt::Display for MethodError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MethodError::Empty => write!(fm, "method has no instructions"),
            MethodError::ArgsExceedLocals { num_args, max_locals } => {
                write!(fm, "{num_args} arguments exceed {max_locals} locals")
            }
            MethodError::BadOperand { addr, reason } => write!(fm, "at @{addr}: {reason}"),
            MethodError::TargetOutOfRange { addr, target, len } => {
                write!(fm, "at @{addr}: target @{target} outside method of {len} instructions")
            }
            MethodError::CpOutOfRange { addr, index } => {
                write!(fm, "at @{addr}: constant pool index #{index} out of range")
            }
            MethodError::LocalOutOfRange { addr, local } => {
                write!(fm, "at @{addr}: register {local} exceeds max_locals")
            }
            MethodError::FallsOffEnd { addr } => {
                write!(fm, "control falls off the end after @{addr}")
            }
        }
    }
}

impl std::error::Error for MethodError {}

/// A linked program: methods plus the class table they reference.
#[derive(Debug, Clone, Default)]
pub struct Program {
    methods: Vec<Method>,
    classes: Vec<ClassDef>,
}

impl Program {
    /// Creates an empty program.
    #[must_use]
    pub fn new() -> Program {
        Program::default()
    }

    /// Adds a method, returning its id.
    pub fn add_method(&mut self, method: Method) -> MethodId {
        let id = MethodId(self.methods.len() as u32);
        self.methods.push(method);
        id
    }

    /// Adds a class, returning its id.
    pub fn add_class(&mut self, class: ClassDef) -> u16 {
        let id = self.classes.len() as u16;
        self.classes.push(class);
        id
    }

    /// The method with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    #[must_use]
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.0 as usize]
    }

    /// Mutable access to a method.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    pub fn method_mut(&mut self, id: MethodId) -> &mut Method {
        &mut self.methods[id.0 as usize]
    }

    /// Looks a method up by name.
    #[must_use]
    pub fn method_by_name(&self, name: &str) -> Option<(MethodId, &Method)> {
        self.methods
            .iter()
            .enumerate()
            .find(|(_, m)| m.name == name)
            .map(|(i, m)| (MethodId(i as u32), m))
    }

    /// The class with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    #[must_use]
    pub fn class(&self, id: u16) -> &ClassDef {
        &self.classes[usize::from(id)]
    }

    /// All methods with their ids.
    pub fn methods(&self) -> impl Iterator<Item = (MethodId, &Method)> {
        self.methods.iter().enumerate().map(|(i, m)| (MethodId(i as u32), m))
    }

    /// All classes.
    #[must_use]
    pub fn classes(&self) -> &[ClassDef] {
        &self.classes
    }

    /// Number of methods.
    #[must_use]
    pub fn num_methods(&self) -> usize {
        self.methods.len()
    }

    /// Validates every method, plus cross-references (call targets exist and
    /// agree on arity; field references name real classes and slots).
    ///
    /// # Errors
    ///
    /// Returns the offending method's id and error.
    pub fn validate(&self) -> Result<(), (MethodId, MethodError)> {
        for (id, m) in self.methods() {
            m.validate().map_err(|e| (id, e))?;
            for (addr, insn) in m.iter() {
                match &insn.operand {
                    Operand::Call(c) => {
                        let Some(callee) = self.methods.get(c.method.0 as usize) else {
                            return Err((
                                id,
                                MethodError::BadOperand {
                                    addr,
                                    reason: format!("call to unknown method {}", c.method),
                                },
                            ));
                        };
                        if u16::from(c.argc) != callee.num_args || c.returns != callee.returns {
                            return Err((
                                id,
                                MethodError::BadOperand {
                                    addr,
                                    reason: format!(
                                        "call signature ({} args, ret={}) disagrees with callee \
                                         `{}` ({} args, ret={})",
                                        c.argc,
                                        c.returns,
                                        callee.name,
                                        callee.num_args,
                                        callee.returns
                                    ),
                                },
                            ));
                        }
                    }
                    Operand::Field(fr) if usize::from(fr.class) >= self.classes.len() => {
                        return Err((
                            id,
                            MethodError::BadOperand {
                                addr,
                                reason: format!("field reference to unknown class {}", fr.class),
                            },
                        ));
                    }
                    Operand::ClassId(c) | Operand::Dims { class: c, .. }
                        if usize::from(*c) >= self.classes.len() =>
                    {
                        return Err((
                            id,
                            MethodError::BadOperand {
                                addr,
                                reason: format!("reference to unknown class {c}"),
                            },
                        ));
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// Total static instruction count across all methods.
    #[must_use]
    pub fn total_instructions(&self) -> usize {
        self.methods.iter().map(Method::len).sum()
    }
}

/// Convenience for building a single-method program (tests, examples).
impl From<Method> for Program {
    fn from(method: Method) -> Program {
        let mut p = Program::new();
        p.add_method(method);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CallRef, Opcode};

    fn ret_method() -> Method {
        let mut m = Method::new("t", 0, false);
        m.code.push(Insn::simple(Opcode::ReturnVoid));
        m
    }

    #[test]
    fn empty_method_invalid() {
        let m = Method::new("t", 0, false);
        assert_eq!(m.validate(), Err(MethodError::Empty));
    }

    #[test]
    fn minimal_method_valid() {
        assert_eq!(ret_method().validate(), Ok(()));
    }

    #[test]
    fn branch_out_of_range_detected() {
        let mut m = Method::new("t", 0, false);
        m.code.push(Insn::new(Opcode::Goto, Operand::Target(5)));
        m.code.push(Insn::simple(Opcode::ReturnVoid));
        assert!(matches!(m.validate(), Err(MethodError::TargetOutOfRange { target: 5, .. })));
    }

    #[test]
    fn falling_off_end_detected() {
        let mut m = Method::new("t", 0, false);
        m.code.push(Insn::simple(Opcode::IConst0));
        m.code.push(Insn::new(Opcode::IStore, Operand::Local(0)));
        m.max_locals = 1;
        assert!(matches!(m.validate(), Err(MethodError::FallsOffEnd { .. })));
    }

    #[test]
    fn local_out_of_range_detected() {
        let mut m = Method::new("t", 0, false);
        m.max_locals = 1;
        m.code.push(Insn::new(Opcode::ILoad, Operand::Local(3)));
        m.code.push(Insn::simple(Opcode::IReturn));
        assert!(matches!(m.validate(), Err(MethodError::LocalOutOfRange { local: 3, .. })));
    }

    #[test]
    fn back_branch_detection() {
        let mut m = Method::new("t", 0, false);
        m.code.push(Insn::simple(Opcode::IConst0));
        m.code.push(Insn::new(Opcode::Goto, Operand::Target(0)));
        assert!(!m.is_back_branch(0));
        assert!(m.is_back_branch(1));
    }

    #[test]
    fn program_call_signature_checked() {
        let mut p = Program::new();
        let callee = p.add_method(ret_method());
        let mut caller = Method::new("caller", 0, false);
        caller.code.push(Insn::new(
            Opcode::InvokeStatic,
            Operand::Call(CallRef { method: callee, argc: 2, returns: false }),
        ));
        caller.code.push(Insn::simple(Opcode::ReturnVoid));
        let id = p.add_method(caller);
        let err = p.validate().unwrap_err();
        assert_eq!(err.0, id);
    }

    #[test]
    fn lookup_by_name() {
        let mut p = Program::new();
        let id = p.add_method(ret_method());
        assert_eq!(p.method_by_name("t").map(|(i, _)| i), Some(id));
        assert!(p.method_by_name("nope").is_none());
    }
}

//! The Java ByteCode substrate for the JavaFlow dataflow machine.
//!
//! This crate defines everything JavaFlow needs to know about Java ByteCode
//! without depending on a real JVM:
//!
//! * [`Opcode`] — the full architected instruction set with per-opcode
//!   instruction groups and value-semantics pop/push counts (Appendix A of
//!   the dissertation);
//! * [`Insn`], [`Method`], [`Program`] — a *post-resolution* linear IR where
//!   every instruction occupies one linear address and symbolic references
//!   are already quickened to field slots and method ids;
//! * [`verify`] — the stack-shape verifier and static dataflow analysis
//!   whose producer/consumer arcs are the golden model for the fabric's
//!   distributed address resolution;
//! * [`Cfg`] — basic blocks and forward/back branch statistics;
//! * [`asm`] — a javap-style assembler/disassembler;
//! * [`MethodBuilder`] — structured emission of valid methods (the workload
//!   suite's stand-in for `javac`).
//!
//! # Example
//!
//! ```
//! use javaflow_bytecode::{asm, verify, Cfg};
//!
//! let program = asm::assemble(
//!     ".method abs args=1 returns=true locals=1
//!        iload 0
//!        ifge @pos
//!        iload 0
//!        ineg
//!        ireturn
//!      pos:
//!        iload 0
//!        ireturn
//!      .end",
//! )
//! .unwrap();
//! let (_, method) = program.method_by_name("abs").unwrap();
//! let verified = verify(method).unwrap();
//! assert_eq!(verified.max_stack, 1);
//! assert_eq!(verified.back_merges, 0); // valid javac output never has any
//! let cfg = Cfg::build(method);
//! assert_eq!(cfg.forward_jump_stats().0, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
mod builder;
mod cfg;
mod group;
mod insn;
mod method;
mod opcode;
mod value;
mod verify;

pub use builder::{BuildError, Label, MethodBuilder};
pub use cfg::{BasicBlock, Cfg, Jump};
pub use group::{InstructionGroup, NodeKind};
pub use insn::{ArrayKind, CallRef, FieldRef, Insn, MethodId, Operand, SwitchTable};
pub use method::{ClassDef, Method, MethodError, Program};
pub use opcode::Opcode;
pub use value::{DataType, Value};
pub use verify::{verify, DfEdge, VerifiedMethod, VerifyError};

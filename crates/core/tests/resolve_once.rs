//! The once-per-record resolution contract: an evaluation sweep must call
//! the fabric resolver exactly once per population record — the resolution
//! is configuration-independent and cached, not recomputed per
//! configuration or branch script.
//!
//! This is the only test in this binary: the call counter is process-wide,
//! so it must not share a process with other tests that resolve methods.

use javaflow_core::{EvalConfig, Evaluation};
use javaflow_fabric::resolve_call_count;

#[test]
fn sweep_resolves_each_record_exactly_once() {
    let before = resolve_call_count();
    let e = Evaluation::run(&EvalConfig {
        synthetic_count: 10,
        max_mesh_cycles: 100_000,
        threads: 2,
        ..EvalConfig::default()
    });
    let after = resolve_call_count();
    assert!(e.configs.len() > 1, "sweep must cover multiple configurations");
    assert_eq!(
        after - before,
        e.records.len() as u64,
        "resolve() must run exactly once per record ({} records, {} configs)",
        e.records.len(),
        e.configs.len()
    );
}

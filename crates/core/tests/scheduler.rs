//! Adversarial scheduling tests for the work-stealing sweep: a long-tail
//! cost distribution must not hold the join hostage, output must stay
//! order-preserving under any schedule, and worker panics must propagate.

use std::time::{Duration, Instant};

use javaflow_core::parallel::{par_map, sweep_ordered};

/// Simulated per-item work: sleeping (rather than spinning) makes the
/// test's parallelism real even on a single-core runner, and keeps the
/// costs independent of machine speed.
fn busy(cost: Duration) {
    std::thread::sleep(cost);
}

/// Builds the harness's dispatch order: descending cost, ties by index.
fn descending_schedule(costs: &[u64]) -> Vec<u32> {
    let mut schedule: Vec<u32> = (0..costs.len() as u32).collect();
    schedule.sort_by(|&a, &b| costs[b as usize].cmp(&costs[a as usize]).then(a.cmp(&b)));
    schedule
}

#[test]
fn long_tail_is_scheduled_first_and_does_not_hold_the_join() {
    // The adversarial distribution from the events_per_run histogram: one
    // 100×-cost straggler hiding in 1000 uniform records.
    const UNIFORM_US: u64 = 40;
    const HEAVY_INDEX: usize = 700;
    let costs: Vec<u64> =
        (0..1001).map(|i| if i == HEAVY_INDEX { UNIFORM_US * 100 } else { UNIFORM_US }).collect();

    let schedule = descending_schedule(&costs);
    assert_eq!(
        schedule[0] as usize, HEAVY_INDEX,
        "cost-ordered dispatch must start the straggler first"
    );

    let run = |threads: usize| {
        let start = Instant::now();
        let out = sweep_ordered(
            &costs,
            threads,
            &schedule,
            || (),
            |()| (),
            |(), i, &c| {
                busy(Duration::from_micros(c));
                i as u64 * 2
            },
        );
        (out, start.elapsed())
    };

    let (serial, serial_elapsed) = run(1);
    let (parallel, parallel_elapsed) = run(4);

    // Order-preserving output: the splice is by original index.
    let expect: Vec<u64> = (0..costs.len() as u64).map(|i| i * 2).collect();
    assert_eq!(serial.results, expect);
    assert_eq!(parallel.results, expect);

    // Join-wait bound: four workers over sleep-based work must beat the
    // serial wall time by a wide margin even under CI noise. A scheduler
    // that starts the straggler last (or lets one worker hoard it behind
    // a large batch with no stealing) pays nearly the serial time again
    // at the join and fails this bound.
    assert!(
        parallel_elapsed < serial_elapsed.mul_f64(0.6),
        "parallel sweep {parallel_elapsed:?} did not beat serial {serial_elapsed:?} by ≥ 40%"
    );

    // The work must actually have been distributed.
    let stats = &parallel.stats;
    assert_eq!(stats.threads_used, 4);
    assert_eq!(stats.workers.iter().map(|w| w.records_done).sum::<u64>(), costs.len() as u64);
    assert!(
        stats.workers.iter().filter(|w| w.records_done > 0).count() >= 2,
        "only one worker did any work: {stats:?}"
    );
    let batches: u64 = stats.workers.iter().map(|w| w.batches).sum();
    assert!(batches >= 4, "1001 records must be claimed in many guided batches, got {batches}");
}

#[test]
fn worker_panic_propagates_to_the_caller() {
    let items: Vec<u32> = (0..256).collect();
    let result = std::panic::catch_unwind(|| {
        par_map(&items, 4, |i, &x| {
            assert!(i != 171, "injected worker failure");
            x
        })
    });
    assert!(result.is_err(), "a panicking worker must fail the sweep, not drop its records");
}

#[test]
fn stealing_redistributes_a_hoarded_expensive_batch() {
    // Cost-descending dispatch packs the 8 expensive records into the
    // first guided batch (64 items / (2 threads × 4) = 8), so one worker
    // claims *all* of them. The other worker burns through the 56
    // free items, drains the queue, and must then steal the expensive
    // batch's unstarted half instead of idling at the join.
    let costs: Vec<u64> = (0..64).map(|i| if i < 8 { 20_000 } else { 0 }).collect();
    let schedule = descending_schedule(&costs);
    let start = Instant::now();
    let out = sweep_ordered(
        &costs,
        2,
        &schedule,
        || (),
        |()| (),
        |(), i, &c| {
            busy(Duration::from_micros(c));
            i
        },
    );
    let elapsed = start.elapsed();
    assert_eq!(out.results, (0..64).collect::<Vec<_>>());
    assert_eq!(out.stats.workers.iter().map(|w| w.records_done).sum::<u64>(), 64);
    let steals: u64 = out.stats.workers.iter().map(|w| w.steals).sum();
    assert!(steals >= 1, "the idle worker never stole from the expensive batch: {:?}", out.stats);
    // 8 × 20ms of sleeps split across two workers: well under the 160ms
    // a no-steal schedule would serialize onto one worker.
    assert!(
        elapsed < Duration::from_millis(145),
        "sweep took {elapsed:?}; stolen work is not actually running in parallel"
    );
}

//! The persisted cost profile: a sweep run under `JAVAFLOW_COST_PROFILE`
//! writes its observed `events_per_run` history, a later sweep schedules
//! from it, and — because the splice is order-preserving no matter the
//! dispatch order — the refined schedule cannot change a single byte of
//! the output.
//!
//! One `#[test]` on purpose: the profile path is process-global
//! environment state.

use javaflow_core::{EvalConfig, Evaluation};
use javaflow_fabric::CostProfile;

fn eval() -> Evaluation {
    Evaluation::run(&EvalConfig {
        synthetic_count: 12,
        max_mesh_cycles: 120_000,
        threads: 2,
        ..EvalConfig::default()
    })
}

#[test]
fn profile_persists_refines_and_preserves_output() {
    let dir = std::env::temp_dir().join(format!("javaflow-cost-profile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("profile.txt");

    // Reference sweep with no profile: the schedule falls back to the
    // static-length heuristic.
    let reference = eval();
    assert!(!reference.cost_profile().is_empty(), "a sweep must observe its own run costs");

    // First profiled sweep: writes the observed history.
    std::env::set_var("JAVAFLOW_COST_PROFILE", &path);
    let first = eval();
    let persisted = CostProfile::load(&path).expect("sweep must persist a parseable profile");
    assert!(!persisted.is_empty());
    assert_eq!(
        persisted,
        first.cost_profile(),
        "the persisted profile is exactly the sweep's observed history"
    );

    // Second profiled sweep: schedules tail-first from measured events
    // and folds its own observations back in.
    let second = eval();
    let refined = CostProfile::load(&path).unwrap();
    let doubled = {
        let mut p = first.cost_profile();
        p.merge(&second.cost_profile());
        p
    };
    assert_eq!(refined, doubled, "each sweep folds its history into the persisted profile");

    // The profile only reorders dispatch; the output must stay
    // bit-identical to the unprofiled sweep.
    std::env::remove_var("JAVAFLOW_COST_PROFILE");
    for run in [&first, &second] {
        assert_eq!(reference.samples.len(), run.samples.len());
        assert_eq!(
            format!("{:?}", reference.samples),
            format!("{:?}", run.samples),
            "cost-ordered dispatch changed the output"
        );
        assert_eq!(format!("{:?}", reference.statics), format!("{:?}", run.statics));
    }

    std::fs::remove_dir_all(&dir).ok();
}

//! Counting-allocator coverage for the parallel sweep path: once the
//! arena pool is warm, the per-record simulation work allocates nothing,
//! so a whole sweep's heap traffic is a small constant (thread spawns
//! plus a handful of pre-sized scheduler vectors) — **independent of the
//! record count**. A per-record allocation anywhere in the claim / steal /
//! splice path would scale with the item count and fail this test.
//!
//! Single-test file on purpose: the counting `#[global_allocator]` is
//! process-wide, and a concurrent test's allocations would show up in the
//! measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use javaflow_bytecode::asm::assemble;
use javaflow_core::parallel::sweep_ordered;
use javaflow_fabric::{
    execute_in, load, ArenaPool, BranchMode, ExecParams, FabricConfig, Outcome, SimArena,
};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const SUM_LOOP: &str = ".method sum args=1 returns=true locals=3
   iconst_0
   istore 1
 top:
   iload 1
   iload 0
   iadd
   istore 1
   iinc 0 -1
   iload 0
   ifgt @top
   iload 1
   ireturn
 .end";

#[test]
fn warm_parallel_sweep_allocates_independent_of_record_count() {
    const THREADS: usize = 2;
    let p = assemble(SUM_LOOP).unwrap();
    let (_, m) = p.method_by_name("sum").unwrap();
    let config = FabricConfig::compact2();
    let loaded = load(m, &config).unwrap();
    let pool = ArenaPool::new();

    // Every item is the same method, so any pooled arena is warm for any
    // item after one run through it.
    let small: Vec<u32> = (0..16).collect();
    let large: Vec<u32> = (0..160).collect();
    let schedule_small: Vec<u32> = (0..small.len() as u32).collect();
    let schedule_large: Vec<u32> = (0..large.len() as u32).collect();

    // The per-record closure returns plain counters — an ideal-net run
    // attaches no heap-backed report parts.
    let sweep = |items: &[u32], schedule: &[u32]| {
        sweep_ordered(
            items,
            THREADS,
            schedule,
            || pool.checkout(),
            |arena: SimArena| pool.checkin(arena),
            |arena, _, _| {
                let report = execute_in(
                    &loaded,
                    &config,
                    ExecParams { mode: BranchMode::Bp1, ..ExecParams::default() },
                    arena,
                );
                assert!(matches!(report.outcome, Outcome::Returned(_)));
                (report.executed, report.events)
            },
        )
    };

    // Warm-up: builds (and pools) one arena per worker, sizes the pool's
    // free list, and faults in thread-spawn lazy state.
    let warm = sweep(&large, &schedule_large);
    assert_eq!(warm.results.len(), large.len());
    assert!(pool.warm_len() >= 1, "workers must return their arenas to the pool");

    let measure = |items: &[u32], schedule: &[u32]| {
        let before = ALLOCS.load(Relaxed);
        let out = sweep(items, schedule);
        let allocs = ALLOCS.load(Relaxed) - before;
        assert!(out.results.len() == items.len());
        assert!(out.results.iter().all(|r| r == &out.results[0]));
        allocs
    };

    let small_allocs = measure(&small, &schedule_small);
    let large_allocs = measure(&large, &schedule_large);

    // 10× the records must not cost more heap traffic: the steady-state
    // per-record path (claim, simulate on a warm arena, splice) is
    // allocation-free, so both sweeps pay only the constant per-sweep
    // overhead (2 thread spawns + pre-sized result/schedule vectors).
    assert!(
        large_allocs <= small_allocs + 8,
        "sweep allocations scale with record count: {small_allocs} for 16 records, \
         {large_allocs} for 160"
    );
}

//! The resident-process path ([`PreparedPopulation`]) must produce
//! results bit-identical to the batch path ([`Evaluation::run`]): the
//! server's "byte-identical responses" guarantee reduces to this.

use javaflow_core::{EvalConfig, Evaluation, PreparedPopulation};

fn cfg(synthetic: usize) -> EvalConfig {
    EvalConfig { synthetic_count: synthetic, max_mesh_cycles: 150_000, ..EvalConfig::default() }
}

#[test]
fn prepared_population_matches_evaluation_run() {
    let cfg = cfg(10);
    let direct = Evaluation::run(&cfg);
    let pop = PreparedPopulation::prepare(cfg.synthetic_count, cfg.threads);
    let served = pop.evaluate(&cfg);

    // Debug-string comparison: NaN-valued returns (legitimate in scripted
    // float kernels) are bitwise-identical but `!=` under IEEE 754.
    assert_eq!(
        format!("{:?}", direct.samples),
        format!("{:?}", served.samples),
        "cached-prepare sweep diverged from Evaluation::run"
    );
    assert_eq!(format!("{:?}", direct.statics), format!("{:?}", served.statics));
    assert_eq!(
        direct.records.iter().map(|r| &r.name).collect::<Vec<_>>(),
        served.records.iter().map(|r| &r.name).collect::<Vec<_>>(),
    );
    assert_eq!(direct.configs.len(), served.configs.len());
}

#[test]
fn batching_changes_nothing_but_the_callbacks() {
    let cfg = cfg(8);
    let pop = PreparedPopulation::prepare(cfg.synthetic_count, cfg.threads);
    let whole = pop.evaluate(&cfg);

    let mut batch_firsts = Vec::new();
    let mut seen_records = 0usize;
    let batched = pop
        .evaluate_batched(&cfg, 3, |first, results| {
            batch_firsts.push(first);
            seen_records += results.len();
            true
        })
        .expect("uncancelled sweep completes");

    assert_eq!(format!("{:?}", whole.samples), format!("{:?}", batched.samples));
    assert_eq!(format!("{:?}", whole.statics), format!("{:?}", batched.statics));
    assert_eq!(seen_records, pop.len(), "every record must pass through a batch callback");
    // Batches start at 0 and stride by the batch size.
    assert_eq!(batch_firsts, (0..pop.len()).step_by(3).collect::<Vec<_>>());
}

#[test]
fn cancellation_stops_between_batches() {
    let cfg = cfg(8);
    let pop = PreparedPopulation::prepare(cfg.synthetic_count, cfg.threads);
    let mut calls = 0usize;
    let out = pop.evaluate_batched(&cfg, 2, |_, _| {
        calls += 1;
        false
    });
    assert!(out.is_none(), "a cancelled sweep must not assemble an Evaluation");
    assert_eq!(calls, 1, "cancellation after the first batch must stop the sweep");
}

#[test]
fn fast_forward_off_is_honoured() {
    // With fast-forwarding disabled every event is walked naively, so the
    // skip counter must be zero — and the reports otherwise identical.
    let on = cfg(4);
    let off = EvalConfig { fast_forward: false, ..cfg(4) };
    let pop = PreparedPopulation::prepare(4, on.threads);
    let e_on = pop.evaluate(&on);
    let e_off = pop.evaluate(&off);
    assert!(
        e_on.samples.iter().map(|s| s.report.events_skipped).sum::<u64>() > 0,
        "the default sweep should fast-forward something"
    );
    assert!(e_off.samples.iter().all(|s| s.report.events_skipped == 0));
    let strip = |e: &Evaluation| {
        e.samples
            .iter()
            .map(|s| {
                let mut r = s.report.clone();
                r.events = 0;
                r.events_skipped = 0;
                r.wheel_pushes = 0;
                r.wheel_high_water = 0;
                format!("{r:?}")
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(strip(&e_on), strip(&e_off), "fast-forward must be report-invariant");
}

//! Accessor-level tests for the evaluation harness: table-row extraction,
//! per-method sample lookup, hot-method rows, and custom configuration
//! lists.

use javaflow_core::{EvalConfig, Evaluation, Filter};
use javaflow_fabric::{BranchMode, FabricConfig};
use javaflow_workloads::SuiteKind;

fn tiny() -> Evaluation {
    Evaluation::run(&EvalConfig {
        synthetic_count: 6,
        max_mesh_cycles: 120_000,
        ..EvalConfig::default()
    })
}

#[test]
fn sample_lookup_round_trips() {
    let e = tiny();
    let ri = e.filtered(Filter::Filter2)[0];
    for (ci, _) in e.configs.iter().enumerate() {
        for bp in [BranchMode::Bp1, BranchMode::Bp2] {
            let rep = e.sample(ri, ci, bp).expect("hot methods run everywhere");
            assert!(rep.ipc > 0.0);
        }
    }
    assert!(e.sample(usize::MAX, 0, BranchMode::Bp1).is_none());
}

#[test]
fn hot_method_rows_cover_both_suites() {
    let e = tiny();
    let rows08 = e.hot_method_rows(SuiteKind::Jvm2008);
    let rows98 = e.hot_method_rows(SuiteKind::Jvm98);
    assert!(rows08.len() >= 15, "{}", rows08.len());
    assert!(rows98.len() >= 12, "{}", rows98.len());
    for (bench, name, total_i, spanned, fms) in rows08.iter().chain(&rows98) {
        assert!(!bench.is_empty() && !name.is_empty());
        assert!(*total_i > 10 && *total_i < 1000, "{name}: {total_i}");
        assert!(spanned >= total_i, "{name}: spans {spanned} < {total_i}");
        assert_eq!(fms.len(), 6);
        // Baseline FoM is 1 by definition; others are in (0, ~1.2].
        assert!((fms[0] - 1.0).abs() < 1e-9, "{name}: fm0 = {}", fms[0]);
        for fm in &fms[1..] {
            assert!(fm.is_nan() || (*fm > 0.0 && *fm < 1.5), "{name}: {fm}");
        }
    }
    // The case-study method appears.
    assert!(rows08.iter().any(|(_, n, _, _, _)| n == "Random.nextDouble"));
}

#[test]
fn dataflow_summaries_expose_all_table_rows() {
    let e = tiny();
    let names: Vec<&str> = e.dataflow_summaries(Filter::All).iter().map(|(n, _)| *n).collect();
    for wanted in [
        "Static Inst",
        "Local Regs",
        "Stack",
        "Back Merge",
        "FanOut Avg",
        "Arc Avg",
        "Max Q Up",
        "Merges",
        "Fwd Jumps",
        "Back Jumps",
    ] {
        assert!(names.contains(&wanted), "missing summary `{wanted}`");
    }
    // The back-merge row must be identically zero.
    let (_, s) =
        e.dataflow_summaries(Filter::All).into_iter().find(|(n, _)| *n == "Back Merge").unwrap();
    assert_eq!(s.max, 0.0);
}

#[test]
fn custom_config_subset_works() {
    let e = Evaluation::run(&EvalConfig {
        synthetic_count: 4,
        max_mesh_cycles: 80_000,
        configs: vec![FabricConfig::baseline(), FabricConfig::sparse2()],
        ..EvalConfig::default()
    });
    let rows = e.config_rows(Filter::All);
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].name, "Baseline");
    assert!((rows[0].fom.mean - 1.0).abs() < 1e-9);
    assert!(rows[1].fom.mean < 1.0);
}

#[test]
fn filter2_is_subset_of_filter1() {
    let e = tiny();
    let f1 = e.filtered(Filter::Filter1);
    let f2 = e.filtered(Filter::Filter2);
    assert!(f2.iter().all(|i| f1.contains(i)));
    assert!(f2.len() < f1.len());
}
